// `ril` -- command-line front end for the RIL-Blocks tool suite.
//
//   ril gen <name> <out.bench> [--scale F]
//       Emit a benchmark circuit (c7552, b15, s35932, s38584, b20, aes,
//       sha256, md5, gps).
//
//   ril lock <scheme> <in.bench> <out.bench> <key.txt> [options]
//       Schemes: ril | xor | sarlock | antisat | sfll | lut | fulllock |
//       routing. RIL options: --blocks N --size N --lutk M --output-net
//       --scan. Generic: --bits N --seed S. Writes the locked netlist and
//       the correct key (functional key for RIL; with --scan a second line
//       carries the oracle scan key).
//
//   ril attack <method> <locked.bench> <activated.bench> [--timeout S]
//              [--jobs N | --portfolio] [--stats out.json] [--no-specialize]
//              [--no-preprocess] [--no-inprocess]
//              [--certify [--proof out.drat]]
//       Methods: sat | appsat | onehot | removal | sps | bypass. The
//       activated netlist (no key inputs) acts as the oracle. Prints the
//       result and, when a key is recovered, verifies it by SAT CEC.
//       --jobs N races N diversified CDCL configurations per solve
//       (first-to-finish-wins, losers cancelled); --portfolio uses all
//       hardware threads; --stats writes per-solve JSON records (seed,
//       winning configuration, conflicts, wall time, constraint clause
//       costs); --no-specialize reverts the SAT/AppSAT I/O constraints to
//       the historical full-circuit re-encoding. SatELite-style
//       preprocessing (subsumption, self-subsuming resolution, bounded
//       variable elimination) of the miter and key formulas and
//       restart-time inprocessing (clause vivification, learned-clause
//       subsumption, failed-literal probing) inside the solvers are both
//       on by default; --no-preprocess and --no-inprocess turn them off
//       independently. --certify
//       (sat only) DRAT-logs every miter solve, self-checks SAT models,
//       validates the final UNSAT certificate with the independent RUP
//       checker, and with --proof streams the certificate to disk as
//       binary DRAT (bounded memory, atomic temp+rename publish) for
//       offline `ril check-proof`. A run that stops before miter-UNSAT
//       (timeout, --max-iterations) still publishes the streamed trace as
//       an open certificate for `ril check-proof --open`. Preprocessing
//       and inprocessing compose with --certify: elimination, vivification,
//       and probing steps are all emitted into the trace.
//
//   ril check-proof <trace.drat> [--open]
//       Re-validate a previously written certificate (binary or text)
//       with the streaming forward RUP checker. By default the trace must
//       be a complete refutation (ends in the empty clause); --open
//       accepts open certificates -- every step RUP-checks but no empty
//       clause lands -- which is what an attack that stopped before
//       miter-UNSAT (timeout, --max-iterations) publishes. Exit codes:
//       0 valid, 1 invalid proof, 2 usage, 3 missing/unreadable file,
//       4 empty trace, 5 malformed/truncated trace.
//
//   ril analyze <file.bench> [key.txt]
//       Structural report: stats, detected routing networks and keyed
//       LUTs, and (with a key) output corruptibility.
//
//   ril unlock <locked.bench> <key.txt> <out.bench>
//       Specialize the key, simplify, and write the unlocked netlist.
//
//   ril campaign <spec.campaign> [--jobs N] [--out results.jsonl] [--resume]
//               [--solver-jobs N] [--no-preprocess] [--no-inprocess]
//       Run a whole experiment suite from one declarative spec: each
//       non-comment line is `<key> <circuit> <scale> <scheme[:opt=v,...]>
//       <attack> <timeout> <seed>`. --jobs N runs N cells concurrently;
//       --out streams one JSON line per cell (see docs/ARCHITECTURE.md for
//       the schema); --resume skips cells already present in that file.
//
//   ril serve [--port N] [--workers N] [--solver-jobs N]
//             [--journal file.jsonl] [--proof-dir DIR] [--timeout S]
//       Long-lived attack-as-a-service daemon: lock / attack / verify /
//       check-proof jobs over HTTP/1.1 + JSON on 127.0.0.1, with
//       cross-request netlist / CNF-skeleton / warm-verifier caches,
//       per-job deadlines, a kill-safe JSONL journal, and streamed DRAT
//       certificate retrieval. See docs/SERVICE.md for the API.
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "attacks/appsat.hpp"
#include "attacks/bypass.hpp"
#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "attacks/removal.hpp"
#include "attacks/routing_encoding.hpp"
#include "attacks/sat_attack.hpp"
#include "attacks/sps.hpp"
#include "benchgen/suite.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "netlist/simplify.hpp"
#include "netlist/stats.hpp"
#include "runtime/campaign.hpp"
#include "sat/drat_check.hpp"
#include "service/http.hpp"
#include "service/service.hpp"
#include "sat/proof.hpp"
#include "sca/circuit_dpa.hpp"

namespace {

using namespace ril;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::fprintf(stderr, "error: %s\n", message);
  std::fprintf(stderr,
               "usage:\n"
               "  ril gen <name> <out.bench> [--scale F]\n"
               "  ril lock <scheme> <in.bench> <out.bench> <key.txt>"
               " [--blocks N --size N --lutk M --output-net --scan"
               " --bits N --seed S]\n"
               "  ril attack <method> <locked.bench> <activated.bench>"
               " [--timeout S --jobs N --portfolio --stats out.json"
               " --no-specialize --no-preprocess --no-inprocess --certify"
               " --proof out.drat --max-iterations N]\n"
               "  ril check-proof <trace.drat> [--open]\n"
               "  ril analyze <file.bench> [key.txt]\n"
               "  ril unlock <locked.bench> <key.txt> <out.bench>\n"
               "  ril campaign <spec.campaign> [--jobs N --out results.jsonl"
               " --resume --solver-jobs N --no-preprocess --no-inprocess"
               " --certify --proof-dir DIR]\n"
               "  ril serve [--port N --workers N --solver-jobs N"
               " --journal file.jsonl --proof-dir DIR --timeout S]\n");
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  double scale = 1.0;
  double timeout = 60.0;
  std::size_t blocks = 1;
  std::size_t size = 8;
  std::size_t lutk = 2;
  std::size_t bits = 32;
  std::size_t max_iterations = 0;
  std::uint64_t seed = 1;
  unsigned jobs = 1;
  unsigned solver_jobs = 1;
  std::string stats_path;
  std::string out_path;
  std::string proof_path;
  bool resume = false;
  bool output_net = false;
  bool scan = false;
  bool specialize = true;
  /// Preprocessing is on by default at every scale (the Table-5 medians
  /// confirmed a net win); --no-preprocess forces it off.
  bool preprocess = true;
  /// --no-preprocess clears this too, forcing preprocessing off even on
  /// hosts above the auto-enable gate threshold.
  bool preprocess_auto = true;
  /// Restart-time inprocessing inside the solvers; --no-inprocess turns it
  /// off independently of --no-preprocess.
  bool inprocess = true;
  bool certify = false;
  /// check-proof: accept an open certificate (no empty clause required).
  bool open_certificate = false;
  std::string proof_dir;
  /// serve: TCP port to bind (0 = ephemeral, printed on startup).
  unsigned port = 0;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (arg == "--scale") args.scale = std::atof(value());
    else if (arg == "--timeout") args.timeout = std::atof(value());
    else if (arg == "--blocks") args.blocks = std::strtoull(value(), nullptr, 10);
    else if (arg == "--size") args.size = std::strtoull(value(), nullptr, 10);
    else if (arg == "--lutk") args.lutk = std::strtoull(value(), nullptr, 10);
    else if (arg == "--bits") args.bits = std::strtoull(value(), nullptr, 10);
    else if (arg == "--max-iterations") args.max_iterations = std::strtoull(value(), nullptr, 10);
    else if (arg == "--seed") args.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--jobs") args.jobs = std::max(1u, static_cast<unsigned>(std::strtoul(value(), nullptr, 10)));
    else if (arg == "--portfolio") args.jobs = std::max(1u, std::thread::hardware_concurrency());
    else if (arg == "--solver-jobs") args.solver_jobs = std::max(1u, static_cast<unsigned>(std::strtoul(value(), nullptr, 10)));
    else if (arg == "--out") args.out_path = value();
    else if (arg == "--resume") args.resume = true;
    else if (arg == "--stats") args.stats_path = value();
    else if (arg == "--output-net") args.output_net = true;
    else if (arg == "--scan") args.scan = true;
    else if (arg == "--no-specialize") args.specialize = false;
    else if (arg == "--preprocess") args.preprocess = true;
    else if (arg == "--no-preprocess") {
      args.preprocess = false;
      args.preprocess_auto = false;
    }
    else if (arg == "--inprocess") args.inprocess = true;
    else if (arg == "--no-inprocess") args.inprocess = false;
    else if (arg == "--certify") args.certify = true;
    else if (arg == "--open") args.open_certificate = true;
    else if (arg == "--proof") args.proof_path = value();
    else if (arg == "--proof-dir") args.proof_dir = value();
    else if (arg == "--port") {
      const unsigned long port = std::strtoul(value(), nullptr, 10);
      if (port > 65535) usage("--port must be in [0, 65535]");
      args.port = static_cast<unsigned>(port);
    }
    else if (arg == "--workers") args.jobs = std::max(1u, static_cast<unsigned>(std::strtoul(value(), nullptr, 10)));
    else if (arg == "--journal") args.out_path = value();
    else if (arg.rfind("--", 0) == 0) usage(("unknown option " + arg).c_str());
    else args.positional.push_back(arg);
  }
  return args;
}

bool has_suffix(const std::string& path, const char* suffix) {
  const std::string s = suffix;
  return path.size() >= s.size() &&
         path.compare(path.size() - s.size(), s.size(), s) == 0;
}

netlist::Netlist read_netlist(const std::string& path) {
  netlist::Netlist nl = has_suffix(path, ".v")
                            ? netlist::read_verilog_file(path)
                            : netlist::read_bench_file(path);
  // The parsers accept a file with no recognizable statements as an empty
  // netlist; surface that as an error instead of attacking thin air.
  if (nl.node_count() == 0 || nl.outputs().empty()) {
    throw std::runtime_error(path +
                             ": no usable netlist parsed (missing gates or "
                             "outputs; corrupt input?)");
  }
  return nl;
}

void write_netlist(const std::string& path, const netlist::Netlist& nl) {
  if (has_suffix(path, ".v")) {
    netlist::write_verilog_file(path, nl);
  } else {
    netlist::write_bench_file(path, nl);
  }
}

std::vector<bool> read_key_line(const std::string& line) {
  std::vector<bool> key;
  for (char c : line) {
    if (c == '0') key.push_back(false);
    else if (c == '1') key.push_back(true);
  }
  return key;
}

std::vector<bool> read_key_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open key file " + path).c_str());
  std::string line;
  std::getline(in, line);
  return read_key_line(line);
}

void write_key_file(const std::string& path,
                    const std::vector<bool>& functional,
                    const std::vector<bool>* scan_key) {
  std::ofstream out(path);
  if (!out) usage(("cannot open key file " + path).c_str());
  for (bool b : functional) out << (b ? '1' : '0');
  out << "\n";
  if (scan_key) {
    for (bool b : *scan_key) out << (b ? '1' : '0');
    out << "\n";
  }
}

/// Prints the per-configuration win tally of a recorded portfolio run.
void print_portfolio_wins(const std::vector<attacks::SolveRecord>& log) {
  if (log.empty()) return;
  std::map<std::string, std::size_t> wins;
  for (const auto& record : log) {
    if (record.outcome.winner >= 0) ++wins[record.outcome.winner_config];
  }
  std::printf("portfolio wins:");
  for (const auto& [config, count] : wins) {
    std::printf(" %s=%zu", config.c_str(), count);
  }
  std::printf("\n");
}

/// Writes the attack-level + per-solve stats JSON shared by sat/appsat.
void write_stats_file(const std::string& path, const char* attack,
                      const Args& args, const std::string& status,
                      std::size_t iterations, double seconds,
                      std::uint64_t conflicts, std::size_t encoded_clauses,
                      std::size_t saved_clauses,
                      const std::vector<attacks::SolveRecord>& log,
                      const std::string& extra_fields = "") {
  std::ofstream stats(path);
  if (!stats) usage(("cannot open stats file " + path).c_str());
  stats << "{\"attack\":\"" << attack << "\",\"jobs\":" << args.jobs
        << ",\"status\":\"" << status << "\",\"iterations\":" << iterations
        << ",\"seconds\":" << seconds << ",\"conflicts\":" << conflicts
        << ",\"encoded_clauses\":" << encoded_clauses
        << ",\"saved_clauses\":" << saved_clauses
        << ",\"preprocess\":" << (args.preprocess ? "true" : "false")
        << ",\"inprocess\":" << (args.inprocess ? "true" : "false")
        << extra_fields << ",\"solves\":[\n";
  for (std::size_t i = 0; i < log.size(); ++i) {
    stats << attacks::solve_record_json(log[i])
          << (i + 1 < log.size() ? ",\n" : "\n");
  }
  stats << "]}\n";
  std::printf("per-solve stats -> %s\n", path.c_str());
}

/// JSON fragment describing the certification outcome. Empty unless the
/// attack was run with --certify so the legacy telemetry shape is untouched.
std::string certification_fields(const attacks::SatAttackResult& result) {
  if (result.proof_status == attacks::ProofStatus::kNotRequested) return "";
  return ",\"proof\":\"" + attacks::to_string(result.proof_status) +
         "\",\"proof_steps\":" + std::to_string(result.proof_steps) +
         ",\"proof_bytes\":" + std::to_string(result.proof_bytes) +
         ",\"models_ok\":" + (result.models_verified ? "true" : "false");
}

/// JSON fragment with the aggregated inprocessing counters. Empty when the
/// attack ran with --no-inprocess, keeping the legacy telemetry shape.
std::string inprocess_fields(const attacks::SatAttackResult& result) {
  if (!result.inprocessed) return "";
  const sat::InprocessStats& s = result.inprocess;
  return ",\"inprocess_passes\":" + std::to_string(s.passes) +
         ",\"vivified\":" + std::to_string(s.vivified_clauses) +
         ",\"subsumed\":" +
         std::to_string(s.subsumed_clauses + s.strengthened_clauses) +
         ",\"failed_literals\":" + std::to_string(s.failed_literals) +
         ",\"hyper_binaries\":" + std::to_string(s.hyper_binaries);
}

int cmd_gen(const Args& args) {
  if (args.positional.size() != 2) usage("gen needs <name> <out.bench>");
  const auto nl = benchgen::make_benchmark(args.positional[0], args.scale);
  write_netlist(args.positional[1], nl);
  std::printf("%s -> %s (%s)\n", args.positional[0].c_str(),
              args.positional[1].c_str(),
              netlist::format_stats(netlist::compute_stats(nl)).c_str());
  return 0;
}

int cmd_lock(const Args& args) {
  if (args.positional.size() != 4) {
    usage("lock needs <scheme> <in.bench> <out.bench> <key.txt>");
  }
  const std::string& scheme = args.positional[0];
  netlist::Netlist host = read_netlist(args.positional[1]);
  if (host.dff_count() > 0) {
    std::printf("note: sequential input; locking the combinational core\n");
    host = host.combinational_core();
  }

  netlist::Netlist locked;
  std::vector<bool> key;
  const std::vector<bool>* scan_key = nullptr;
  std::vector<bool> scan_storage;
  if (scheme == "ril") {
    core::RilBlockConfig config;
    config.size = args.size;
    config.output_network = args.output_net;
    config.scan_obfuscation = args.scan;
    config.lut_inputs = args.lutk;
    auto ril = locking::lock_ril(host, args.blocks, config, args.seed);
    locked = std::move(ril.locked.netlist);
    key = ril.info.functional_key;
    if (args.scan) {
      scan_storage = ril.info.oracle_scan_key;
      scan_key = &scan_storage;
    }
  } else {
    locking::LockedCircuit result;
    if (scheme == "xor") result = locking::lock_xor(host, args.bits, args.seed);
    else if (scheme == "sarlock") result = locking::lock_sarlock(host, args.bits, args.seed);
    else if (scheme == "antisat") result = locking::lock_antisat(host, args.bits, args.seed);
    else if (scheme == "sfll") result = locking::lock_sfll_hd0(host, args.bits, args.seed);
    else if (scheme == "lut") result = locking::lock_lut(host, args.bits, args.seed);
    else if (scheme == "fulllock") result = locking::lock_fulllock(host, args.size, args.seed);
    else if (scheme == "routing") result = locking::lock_banyan_routing(host, args.size, args.seed);
    else usage(("unknown scheme " + scheme).c_str());
    locked = std::move(result.netlist);
    key = std::move(result.key);
  }
  write_netlist(args.positional[2], locked);
  write_key_file(args.positional[3], key, scan_key);
  std::printf("locked with %s: %s, key width %zu -> %s / %s\n",
              scheme.c_str(),
              netlist::format_stats(netlist::compute_stats(locked)).c_str(),
              key.size(), args.positional[2].c_str(),
              args.positional[3].c_str());
  return 0;
}

int cmd_attack(const Args& args) {
  if (args.positional.size() != 3) {
    usage("attack needs <method> <locked.bench> <activated.bench>");
  }
  const std::string& method = args.positional[0];
  const netlist::Netlist locked =
      read_netlist(args.positional[1]);
  const netlist::Netlist activated =
      read_netlist(args.positional[2]);
  if (!activated.key_inputs().empty()) {
    usage("activated netlist must not have key inputs (use `ril unlock`)");
  }
  attacks::Oracle oracle(activated, {});

  auto verify = [&](const std::vector<bool>& key) {
    sat::SolverLimits limits{.time_limit_seconds = args.timeout};
    const auto eq =
        cnf::check_equivalence(locked, activated, key, {}, limits);
    return eq.equivalent() ? "correct (CEC UNSAT)"
           : eq.status == sat::Result::kUnknown ? "unverified (CEC timeout)"
                                                : "WRONG";
  };

  if (method == "sat" || method == "appsat" || method == "onehot") {
    attacks::SatAttackOptions options;
    options.time_limit_seconds = args.timeout;
    options.max_iterations = args.max_iterations;
    options.jobs = args.jobs;
    options.portfolio_seed = args.seed;
    options.record_solves = args.jobs > 1 || !args.stats_path.empty();
    options.specialize_dips = args.specialize;
    options.preprocess = args.preprocess;
    options.preprocess_auto = args.preprocess_auto;
    options.inprocess = args.inprocess;
    options.certify = args.certify || !args.proof_path.empty();
    // --proof selects streaming certification: the trace goes to disk as
    // binary DRAT while the attack runs, never through a DratTrace in RAM.
    options.proof_file = args.proof_path;
    if (method == "sat") {
      const auto result = attacks::run_sat_attack(locked, oracle, options);
      std::printf("sat attack: %s in %.2fs, %zu DIPs, %llu conflicts"
                  " (%u jobs)\n",
                  to_string(result.status).c_str(), result.seconds,
                  result.iterations,
                  static_cast<unsigned long long>(result.conflicts),
                  args.jobs);
      if (result.preprocessed) {
        const sat::PreprocessStats& p = result.preprocess;
        std::printf("preprocess: miter %zu -> %zu clauses, %zu -> %zu vars"
                    " (%zu eliminated, %zu subsumed, %zu strengthened)\n",
                    p.clauses_before, p.clauses_after, p.vars_before,
                    p.vars_after, p.eliminated_vars, p.subsumed_clauses,
                    p.strengthened_literals);
      }
      if (result.inprocessed && result.inprocess.passes > 0) {
        const sat::InprocessStats& s = result.inprocess;
        std::printf("inprocess: %llu passes, %llu vivified, %llu subsumed,"
                    " %llu failed literals, %llu hyper-binaries\n",
                    static_cast<unsigned long long>(s.passes),
                    static_cast<unsigned long long>(s.vivified_clauses),
                    static_cast<unsigned long long>(s.subsumed_clauses +
                                                    s.strengthened_clauses),
                    static_cast<unsigned long long>(s.failed_literals),
                    static_cast<unsigned long long>(s.hyper_binaries));
      }
      if (result.saved_clauses > 0) {
        std::printf("constraint clauses: %zu encoded, %zu saved by cone"
                    " specialization\n",
                    result.encoded_clauses, result.saved_clauses);
      }
      if (options.certify) {
        std::printf("certificate: %s (%llu steps), models %s\n",
                    to_string(result.proof_status).c_str(),
                    static_cast<unsigned long long>(result.proof_steps),
                    result.models_verified ? "self-checked" : "UNSOUND");
        if (!args.proof_path.empty()) {
          if (!result.proof_path.empty()) {
            std::printf("proof trace -> %s (%llu bytes, streamed)\n",
                        result.proof_path.c_str(),
                        static_cast<unsigned long long>(result.proof_bytes));
            if (result.proof_status == attacks::ProofStatus::kOpen) {
              std::printf("open certificate: validate with"
                          " `ril check-proof --open %s`\n",
                          result.proof_path.c_str());
            }
          } else {
            std::printf("proof trace not written: no solver trace to"
                        " publish\n");
          }
        }
      }
      print_portfolio_wins(result.solve_log);
      if (!args.stats_path.empty()) {
        write_stats_file(args.stats_path, "sat", args,
                         to_string(result.status), result.iterations,
                         result.seconds, result.conflicts,
                         result.encoded_clauses, result.saved_clauses,
                         result.solve_log,
                         certification_fields(result) +
                             inprocess_fields(result));
      }
      if (result.status == attacks::SatAttackStatus::kKeyFound) {
        std::printf("recovered key: ");
        for (bool b : result.key) std::printf("%c", b ? '1' : '0');
        std::printf("\nkey check: %s\n", verify(result.key));
      }
    } else if (method == "onehot") {
      const auto result =
          attacks::run_sat_attack_onehot(locked, oracle, options);
      std::printf("one-hot attack: %s in %.2fs, %zu DIPs "
                  "(%zu routing components, %zu key bits -> %zu selectors)\n",
                  to_string(result.status).c_str(), result.seconds,
                  result.iterations, result.components,
                  result.routing_key_bits_replaced, result.selector_bits);
      if (result.status == attacks::SatAttackStatus::kKeyFound) {
        sat::SolverLimits limits{.time_limit_seconds = args.timeout};
        const auto eq = cnf::check_equivalence(result.reconstructed,
                                               activated, {}, {}, limits);
        std::printf("reconstruction: %s\n",
                    eq.equivalent() ? "equivalent to oracle" : "NOT exact");
      }
    } else {
      attacks::AppSatOptions appsat;
      appsat.time_limit_seconds = args.timeout;
      appsat.jobs = args.jobs;
      appsat.portfolio_seed = args.seed;
      appsat.record_solves = options.record_solves;
      appsat.specialize_dips = args.specialize;
      appsat.preprocess = args.preprocess;
      appsat.inprocess = args.inprocess;
      const auto result = attacks::run_appsat(locked, oracle, appsat);
      std::printf("appsat: %s in %.2fs, %zu DIPs, sampled error %.3f,"
                  " %llu conflicts (%u jobs)\n",
                  to_string(result.status).c_str(), result.seconds,
                  result.iterations, result.sampled_error,
                  static_cast<unsigned long long>(result.conflicts),
                  args.jobs);
      if (result.saved_clauses > 0) {
        std::printf("constraint clauses: %zu encoded, %zu saved by cone"
                    " specialization\n",
                    result.encoded_clauses, result.saved_clauses);
      }
      print_portfolio_wins(result.solve_log);
      if (!args.stats_path.empty()) {
        write_stats_file(args.stats_path, "appsat", args,
                         to_string(result.status), result.iterations,
                         result.seconds, result.conflicts,
                         result.encoded_clauses, result.saved_clauses,
                         result.solve_log);
      }
      if (!result.key.empty()) {
        std::printf("key check: %s\n", verify(result.key));
      }
    }
    return 0;
  }
  if (method == "removal") {
    const auto result = attacks::run_removal_attack(locked);
    sat::SolverLimits limits{.time_limit_seconds = args.timeout};
    const auto eq =
        cnf::check_equivalence(result.recovered, activated, {}, {}, limits);
    std::printf("removal: cuts=%zu grounded=%zu reconstruction %s\n",
                result.cuts, result.grounded_keys,
                eq.equivalent() ? "EQUIVALENT (defense broken)"
                                : "wrong (defense held)");
    return 0;
  }
  if (method == "sps") {
    const auto result = attacks::run_sps_attack(locked);
    sat::SolverLimits limits{.time_limit_seconds = args.timeout};
    const auto eq =
        cnf::check_equivalence(result.recovered, activated, {}, {}, limits);
    std::printf("sps: cuts=%zu max skew=%.3f reconstruction %s\n",
                result.cuts, result.max_observed_skew,
                eq.equivalent() ? "EQUIVALENT (defense broken)"
                                : "wrong (defense held)");
    return 0;
  }
  if (method == "bypass") {
    attacks::BypassOptions options;
    options.time_limit_seconds = args.timeout;
    options.jobs = args.jobs;
    options.portfolio_seed = args.seed;
    const auto result = attacks::run_bypass_attack(locked, oracle, options);
    std::printf("bypass: %s, %zu patterns\n",
                to_string(result.status).c_str(), result.patterns);
    if (result.status == attacks::BypassStatus::kBypassed) {
      sat::SolverLimits limits{.time_limit_seconds = args.timeout};
      const auto eq =
          cnf::check_equivalence(result.pirated, activated, {}, {}, limits);
      std::printf("pirated chip %s\n",
                  eq.equivalent() ? "EQUIVALENT (defense broken)"
                                  : "wrong (defense held)");
    }
    return 0;
  }
  usage(("unknown attack method " + method).c_str());
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) usage("analyze needs <file.bench>");
  const netlist::Netlist nl = read_netlist(args.positional[0]);
  std::printf("%s: %s\n", nl.name().c_str(),
              netlist::format_stats(netlist::compute_stats(nl)).c_str());
  const auto components = attacks::find_routing_networks(nl);
  std::printf("routing networks: %zu\n", components.size());
  for (const auto& component : components) {
    std::printf("  %zu-in/%zu-out, %zu switches, terminal=%s\n",
                component.inputs.size(), component.outputs.size(),
                component.key_inputs.size(),
                component.terminal ? "yes" : "no");
  }
  const auto luts = sca::find_keyed_luts(nl);
  std::size_t attackable = 0;
  for (const auto& lut : luts) attackable += lut.attackable;
  std::printf("keyed 2-input LUTs: %zu (%zu with key-free input cones)\n",
              luts.size(), attackable);
  if (args.positional.size() > 1) {
    const auto key = read_key_file(args.positional[1]);
    const double corruption =
        attacks::output_corruptibility(nl, key, 8192, args.seed);
    std::printf("output corruptibility: %.4f\n", corruption);
  }
  return 0;
}

int cmd_unlock(const Args& args) {
  if (args.positional.size() != 3) {
    usage("unlock needs <locked.bench> <key.txt> <out.bench>");
  }
  const netlist::Netlist locked =
      read_netlist(args.positional[0]);
  const auto key = read_key_file(args.positional[1]);
  netlist::Netlist fixed = locking::specialize_keys(locked, key);
  const auto stats = netlist::simplify(fixed);
  write_netlist(args.positional[2], fixed);
  std::printf("unlocked: %s (folded %zu, pruned %zu) -> %s\n",
              netlist::format_stats(netlist::compute_stats(fixed)).c_str(),
              stats.constants_folded, stats.gates_pruned,
              args.positional[2].c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// `ril campaign` -- run a declarative experiment suite.
// ---------------------------------------------------------------------------

/// One parsed spec line:
///   <key> <circuit> <scale> <scheme[:opt=v,...]> <attack> <timeout> <seed>
/// Scheme options: blocks=N size=N lutk=M bits=N outnet scan.
struct CampaignCell {
  std::string key;
  std::string circuit;
  double scale = 1.0;
  std::string scheme;
  std::map<std::string, std::string> scheme_opts;
  std::string attack;
  double timeout = 10.0;
  std::uint64_t seed = 1;
};

std::vector<CampaignCell> parse_campaign_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open campaign spec " + path);
  }
  std::vector<CampaignCell> cells;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    CampaignCell cell;
    std::string scheme_field;
    if (!(fields >> cell.key >> cell.circuit >> cell.scale >> scheme_field >>
          cell.attack >> cell.timeout >> cell.seed)) {
      throw std::runtime_error(
          path + ":" + std::to_string(line_no) +
          ": expected <key> <circuit> <scale> <scheme[:opt=v,...]> "
          "<attack> <timeout> <seed>");
    }
    const auto colon = scheme_field.find(':');
    cell.scheme = scheme_field.substr(0, colon);
    if (colon != std::string::npos) {
      std::istringstream opts(scheme_field.substr(colon + 1));
      std::string opt;
      while (std::getline(opts, opt, ',')) {
        if (opt.empty()) continue;
        const auto eq = opt.find('=');
        cell.scheme_opts[opt.substr(0, eq)] =
            eq == std::string::npos ? "1" : opt.substr(eq + 1);
      }
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::size_t scheme_opt(const CampaignCell& cell, const char* name,
                       std::size_t fallback) {
  const auto it = cell.scheme_opts.find(name);
  if (it == cell.scheme_opts.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

/// Runs one campaign cell: build the host, lock it, attack the oracle, and
/// report what the attacker walked away with.
std::string run_campaign_cell(const CampaignCell& cell, const Args& args,
                              runtime::JobContext& ctx) {
  const auto host = benchgen::make_benchmark(cell.circuit, cell.scale);

  netlist::Netlist locked;
  std::vector<bool> oracle_key;
  std::vector<std::size_t> se_positions;
  std::vector<bool> functional_key;
  if (cell.scheme == "ril") {
    core::RilBlockConfig config;
    config.size = scheme_opt(cell, "size", 8);
    config.lut_inputs = scheme_opt(cell, "lutk", 2);
    config.output_network = scheme_opt(cell, "outnet", 0) != 0;
    config.scan_obfuscation = scheme_opt(cell, "scan", 0) != 0;
    auto ril = locking::lock_ril(host, scheme_opt(cell, "blocks", 1), config,
                                 cell.seed);
    locked = std::move(ril.locked.netlist);
    functional_key = ril.info.functional_key;
    oracle_key = config.scan_obfuscation ? ril.info.oracle_scan_key
                                         : ril.info.functional_key;
    se_positions = ril.info.se_key_positions;
  } else {
    locking::LockedCircuit result;
    const std::size_t bits = scheme_opt(cell, "bits", 16);
    if (cell.scheme == "xor") result = locking::lock_xor(host, bits, cell.seed);
    else if (cell.scheme == "sarlock") result = locking::lock_sarlock(host, bits, cell.seed);
    else if (cell.scheme == "antisat") result = locking::lock_antisat(host, bits, cell.seed);
    else if (cell.scheme == "sfll") result = locking::lock_sfll_hd0(host, bits, cell.seed);
    else if (cell.scheme == "lut") result = locking::lock_lut(host, bits, cell.seed);
    else if (cell.scheme == "fulllock") result = locking::lock_fulllock(host, scheme_opt(cell, "size", 8), cell.seed);
    else if (cell.scheme == "routing") result = locking::lock_banyan_routing(host, scheme_opt(cell, "size", 8), cell.seed);
    else throw std::runtime_error("unknown scheme '" + cell.scheme + "'");
    locked = std::move(result.netlist);
    functional_key = result.key;
    oracle_key = std::move(result.key);
  }

  auto verdict_payload = [&](const std::string& verdict) {
    return "\"cell\":\"" + runtime::json_escape(verdict) + "\",\"circuit\":\"" +
           runtime::json_escape(cell.circuit) + "\",\"scheme\":\"" +
           runtime::json_escape(cell.scheme) + "\",\"attack\":\"" +
           runtime::json_escape(cell.attack) + "\"";
  };
  auto sat_telemetry = [](const attacks::SatAttackResult& result) {
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  ",\"iterations\":%zu,\"conflicts\":%llu,"
                  "\"encoded_clauses\":%zu,\"saved_clauses\":%zu,"
                  "\"attack_seconds\":%.3f",
                  result.iterations,
                  static_cast<unsigned long long>(result.conflicts),
                  result.encoded_clauses, result.saved_clauses,
                  result.seconds);
    return std::string(buffer) + certification_fields(result);
  };
  // A recovered key is deployed with the hidden SE bits inactive; it only
  // counts as broken if the deployed key realizes the host function.
  auto breaks_scheme = [&](std::vector<bool> key) {
    for (std::size_t pos : se_positions) key[pos] = false;
    sat::SolverLimits limits{.time_limit_seconds = cell.timeout};
    return cnf::check_equivalence(locked, host, key, {}, limits).equivalent();
  };

  attacks::Oracle oracle(locked, oracle_key);
  if (cell.attack == "sat" || cell.attack == "onehot") {
    attacks::SatAttackOptions options;
    options.time_limit_seconds = cell.timeout;
    options.jobs = args.solver_jobs;
    options.portfolio_seed = cell.seed;
    options.cancel = &ctx.cancel_flag();
    options.certify = args.certify;
    options.preprocess = args.preprocess;
    options.preprocess_auto = args.preprocess_auto;
    options.inprocess = args.inprocess;
    // --proof-dir: stream each certified cell's miter certificate to
    // <dir>/<cell-key>.drat (cell keys are sanitized for the filesystem).
    if (options.certify && !args.proof_dir.empty()) {
      std::string name = cell.key;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '.' && c != '_') {
          c = '_';
        }
      }
      options.proof_file = args.proof_dir + "/" + name + ".drat";
    }
    if (cell.attack == "onehot") {
      const auto result = attacks::run_sat_attack_onehot(locked, oracle,
                                                         options);
      const bool broken =
          result.status == attacks::SatAttackStatus::kKeyFound &&
          cnf::check_equivalence(result.reconstructed, host, {}, {},
                                 sat::SolverLimits{.time_limit_seconds =
                                                       cell.timeout})
              .equivalent();
      char buffer[96];
      std::snprintf(buffer, sizeof(buffer),
                    ",\"iterations\":%zu,\"attack_seconds\":%.3f",
                    result.iterations, result.seconds);
      return verdict_payload(broken ? "broken" : "resilient") + buffer;
    }
    const auto result = attacks::run_sat_attack(locked, oracle, options);
    const bool broken =
        result.status == attacks::SatAttackStatus::kKeyFound &&
        breaks_scheme(result.key);
    return verdict_payload(broken ? "broken" : "resilient") +
           sat_telemetry(result);
  }
  if (cell.attack == "appsat") {
    attacks::AppSatOptions options;
    options.time_limit_seconds = cell.timeout;
    options.jobs = args.solver_jobs;
    options.portfolio_seed = cell.seed;
    options.max_iterations = 64;
    options.preprocess = args.preprocess;
    options.inprocess = args.inprocess;
    options.cancel = &ctx.cancel_flag();
    const auto result = attacks::run_appsat(locked, oracle, options);
    const bool broken = !result.key.empty() && breaks_scheme(result.key);
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  ",\"iterations\":%zu,\"attack_seconds\":%.3f",
                  result.iterations, result.seconds);
    return verdict_payload(broken ? "broken" : "resilient") + buffer;
  }
  if (cell.attack == "removal") {
    const auto result = attacks::run_removal_attack(locked);
    const bool broken = cnf::check_equivalence(result.recovered, host)
                            .equivalent();
    return verdict_payload(broken ? "broken" : "resilient");
  }
  if (cell.attack == "sps") {
    const auto result = attacks::run_sps_attack(locked);
    const bool broken = cnf::check_equivalence(result.recovered, host)
                            .equivalent();
    return verdict_payload(broken ? "broken" : "resilient");
  }
  if (cell.attack == "bypass") {
    attacks::BypassOptions options;
    options.time_limit_seconds = cell.timeout;
    const auto result = attacks::run_bypass_attack(locked, oracle, options);
    const bool broken =
        result.status == attacks::BypassStatus::kBypassed &&
        cnf::check_equivalence(result.pirated, host).equivalent();
    return verdict_payload(broken ? "broken" : "resilient");
  }
  (void)functional_key;
  throw std::runtime_error("unknown attack '" + cell.attack + "'");
}

/// Re-validates a DRAT certificate written by `ril attack sat --proof`,
/// reading the trace (binary or text) from disk in one streaming pass.
/// --open drops the empty-clause requirement (open certificates from
/// attacks that stopped before miter-UNSAT). Distinct exit codes keep
/// failures scriptable: 0 valid, 1 invalid proof, 2 usage,
/// 3 missing/unreadable file, 4 empty trace, 5 malformed trace.
int cmd_check_proof(const Args& args) {
  if (args.positional.size() != 1) usage("check-proof needs <trace.drat>");
  const std::string& path = args.positional[0];
  // Probe the file up front so missing/unreadable (3) and empty (4) get
  // their own one-line diagnostics instead of a generic parse error.
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (!probe) {
      std::fprintf(stderr, "check-proof: cannot open %s: %s\n", path.c_str(),
                   std::strerror(errno));
      return 3;
    }
    if (probe.tellg() == std::streampos(0)) {
      std::fprintf(stderr, "check-proof: %s: empty trace (no proof steps)\n",
                   path.c_str());
      return 4;
    }
  }
  sat::DratCheckResult check;
  try {
    check = args.open_certificate ? sat::check_derivations_file(path)
                                  : sat::check_refutation_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "check-proof: %s\n", e.what());
    return 5;
  }
  if (check.malformed) {
    std::fprintf(stderr, "check-proof: %s\n", check.error.c_str());
    return 5;
  }
  std::printf("%s: %llu steps checked (%llu originals, %llu derivations,"
              " %llu deletions, %llu propagations)\n",
              path.c_str(),
              static_cast<unsigned long long>(
                  check.stats.originals + check.stats.derivations +
                  check.stats.deletions + check.stats.ignored_deletions),
              static_cast<unsigned long long>(check.stats.originals),
              static_cast<unsigned long long>(check.stats.derivations),
              static_cast<unsigned long long>(check.stats.deletions),
              static_cast<unsigned long long>(check.stats.propagations));
  if (check.valid) {
    std::printf(args.open_certificate
                    ? "proof VALID: open certificate, every step RUP-checked\n"
                    : "proof VALID: complete RUP refutation\n");
    return 0;
  }
  std::fprintf(stderr, "check-proof: %s: INVALID: %s%s\n", path.c_str(),
               check.error.c_str(),
               !args.open_certificate &&
                       check.error == "trace never derives the empty clause"
                   ? " (open certificate? retry with --open)"
                   : "");
  std::printf("proof INVALID: %s\n", check.error.c_str());
  return 1;
}

/// `ril serve` -- the attack-as-a-service daemon (docs/SERVICE.md).
/// Binds 127.0.0.1:<port> (0 picks an ephemeral port, printed on stdout),
/// runs jobs on --workers queue slots with --solver-jobs-wide portfolios,
/// journals every terminal job to --journal, and streams certified attack
/// proofs into --proof-dir. Stops on POST /v1/shutdown.
int cmd_serve(const Args& args) {
  service::ServiceOptions options;
  options.workers = args.jobs;
  options.solver_jobs = args.solver_jobs;
  options.journal_path = args.out_path;
  if (!args.proof_dir.empty()) options.proof_dir = args.proof_dir;
  options.default_timeout_seconds = args.timeout;

  service::AttackService attack_service(options);
  service::HttpServer server(
      [&attack_service](const service::HttpRequest& request) {
        return attack_service.handle(request);
      });
  // More acceptor threads than workers so status polls are never starved
  // behind long wait=1 submissions.
  server.start(args.port, args.jobs + 4);
  std::printf("ril serve: listening on 127.0.0.1:%u (%u workers, %u solver"
              " jobs)\n",
              server.port(), args.jobs, args.solver_jobs);
  if (!options.journal_path.empty()) {
    std::printf("ril serve: journal -> %s\n", options.journal_path.c_str());
  }
  std::fflush(stdout);
  attack_service.wait_shutdown();
  server.stop();
  std::printf("ril serve: shutdown complete\n");
  return 0;
}

int cmd_campaign(const Args& args) {
  if (args.positional.size() != 1) usage("campaign needs <spec.campaign>");
  const auto cells = parse_campaign_spec(args.positional[0]);
  if (cells.empty()) {
    std::fprintf(stderr, "campaign spec %s has no cells\n",
                 args.positional[0].c_str());
    return 1;
  }

  std::vector<runtime::CampaignJob> jobs;
  jobs.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    runtime::CampaignJob job;
    job.key = cell.key;
    // Lock + attack + equivalence check, each timeout-bounded.
    job.timeout_seconds = 4 * cell.timeout + 60;
    job.run = [&cell, &args](runtime::JobContext& ctx) {
      return run_campaign_cell(cell, args, ctx);
    };
    jobs.push_back(std::move(job));
  }

  runtime::CampaignOptions options;
  options.jobs = args.jobs;
  options.out_path = args.out_path;
  options.resume = args.resume;
  const auto summary = runtime::run_campaign(jobs, options);

  for (const auto& record : summary.records) {
    const std::string wrapped = "{" + record.payload + "}";
    if (record.status == "error") {
      std::printf("%-32s ERROR  %s\n", record.key.c_str(),
                  record.error.c_str());
    } else {
      std::printf("%-32s %-9s  %6.2fs%s\n", record.key.c_str(),
                  runtime::json_string_field(wrapped, "cell").c_str(),
                  record.run_seconds,
                  record.status == "cached" ? "  (resumed)" : "");
    }
  }
  std::printf("campaign: %zu cells ran, %zu resumed, %zu errors in %.2fs",
              summary.completed, summary.cached, summary.errors,
              summary.seconds);
  if (!args.out_path.empty()) {
    std::printf(" -> %s", args.out_path.c_str());
  }
  std::printf("\n");
  return summary.errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    const Args args = parse(argc, argv);
    if (command == "gen") return cmd_gen(args);
    if (command == "lock") return cmd_lock(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "check-proof") return cmd_check_proof(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "unlock") return cmd_unlock(args);
    if (command == "campaign") return cmd_campaign(args);
    if (command == "serve") return cmd_serve(args);
    usage(("unknown command " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unexpected failure\n");
    return 1;
  }
}
