// `ril` -- command-line front end for the RIL-Blocks tool suite.
//
//   ril gen <name> <out.bench> [--scale F]
//       Emit a benchmark circuit (c7552, b15, s35932, s38584, b20, aes,
//       sha256, md5, gps).
//
//   ril lock <scheme> <in.bench> <out.bench> <key.txt> [options]
//       Schemes: ril | xor | sarlock | antisat | sfll | lut | fulllock |
//       routing. RIL options: --blocks N --size N --lutk M --output-net
//       --scan. Generic: --bits N --seed S. Writes the locked netlist and
//       the correct key (functional key for RIL; with --scan a second line
//       carries the oracle scan key).
//
//   ril attack <method> <locked.bench> <activated.bench> [--timeout S]
//              [--jobs N | --portfolio] [--stats out.json] [--no-specialize]
//       Methods: sat | appsat | onehot | removal | sps | bypass. The
//       activated netlist (no key inputs) acts as the oracle. Prints the
//       result and, when a key is recovered, verifies it by SAT CEC.
//       --jobs N races N diversified CDCL configurations per solve
//       (first-to-finish-wins, losers cancelled); --portfolio uses all
//       hardware threads; --stats writes per-solve JSON records (seed,
//       winning configuration, conflicts, wall time, constraint clause
//       costs); --no-specialize reverts the SAT/AppSAT I/O constraints to
//       the historical full-circuit re-encoding.
//
//   ril analyze <file.bench> [key.txt]
//       Structural report: stats, detected routing networks and keyed
//       LUTs, and (with a key) output corruptibility.
//
//   ril unlock <locked.bench> <key.txt> <out.bench>
//       Specialize the key, simplify, and write the unlocked netlist.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "attacks/appsat.hpp"
#include "attacks/bypass.hpp"
#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "attacks/removal.hpp"
#include "attacks/routing_encoding.hpp"
#include "attacks/sat_attack.hpp"
#include "attacks/sps.hpp"
#include "benchgen/suite.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "netlist/simplify.hpp"
#include "netlist/stats.hpp"
#include "sca/circuit_dpa.hpp"

namespace {

using namespace ril;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::fprintf(stderr, "error: %s\n", message);
  std::fprintf(stderr,
               "usage:\n"
               "  ril gen <name> <out.bench> [--scale F]\n"
               "  ril lock <scheme> <in.bench> <out.bench> <key.txt>"
               " [--blocks N --size N --lutk M --output-net --scan"
               " --bits N --seed S]\n"
               "  ril attack <method> <locked.bench> <activated.bench>"
               " [--timeout S --jobs N --portfolio --stats out.json"
               " --no-specialize]\n"
               "  ril analyze <file.bench> [key.txt]\n"
               "  ril unlock <locked.bench> <key.txt> <out.bench>\n");
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  double scale = 1.0;
  double timeout = 60.0;
  std::size_t blocks = 1;
  std::size_t size = 8;
  std::size_t lutk = 2;
  std::size_t bits = 32;
  std::uint64_t seed = 1;
  unsigned jobs = 1;
  std::string stats_path;
  bool output_net = false;
  bool scan = false;
  bool specialize = true;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (arg == "--scale") args.scale = std::atof(value());
    else if (arg == "--timeout") args.timeout = std::atof(value());
    else if (arg == "--blocks") args.blocks = std::strtoull(value(), nullptr, 10);
    else if (arg == "--size") args.size = std::strtoull(value(), nullptr, 10);
    else if (arg == "--lutk") args.lutk = std::strtoull(value(), nullptr, 10);
    else if (arg == "--bits") args.bits = std::strtoull(value(), nullptr, 10);
    else if (arg == "--seed") args.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--jobs") args.jobs = std::max(1u, static_cast<unsigned>(std::strtoul(value(), nullptr, 10)));
    else if (arg == "--portfolio") args.jobs = std::max(1u, std::thread::hardware_concurrency());
    else if (arg == "--stats") args.stats_path = value();
    else if (arg == "--output-net") args.output_net = true;
    else if (arg == "--scan") args.scan = true;
    else if (arg == "--no-specialize") args.specialize = false;
    else if (arg.rfind("--", 0) == 0) usage(("unknown option " + arg).c_str());
    else args.positional.push_back(arg);
  }
  return args;
}

bool has_suffix(const std::string& path, const char* suffix) {
  const std::string s = suffix;
  return path.size() >= s.size() &&
         path.compare(path.size() - s.size(), s.size(), s) == 0;
}

netlist::Netlist read_netlist(const std::string& path) {
  netlist::Netlist nl = has_suffix(path, ".v")
                            ? netlist::read_verilog_file(path)
                            : netlist::read_bench_file(path);
  // The parsers accept a file with no recognizable statements as an empty
  // netlist; surface that as an error instead of attacking thin air.
  if (nl.node_count() == 0 || nl.outputs().empty()) {
    throw std::runtime_error(path +
                             ": no usable netlist parsed (missing gates or "
                             "outputs; corrupt input?)");
  }
  return nl;
}

void write_netlist(const std::string& path, const netlist::Netlist& nl) {
  if (has_suffix(path, ".v")) {
    netlist::write_verilog_file(path, nl);
  } else {
    netlist::write_bench_file(path, nl);
  }
}

std::vector<bool> read_key_line(const std::string& line) {
  std::vector<bool> key;
  for (char c : line) {
    if (c == '0') key.push_back(false);
    else if (c == '1') key.push_back(true);
  }
  return key;
}

std::vector<bool> read_key_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open key file " + path).c_str());
  std::string line;
  std::getline(in, line);
  return read_key_line(line);
}

void write_key_file(const std::string& path,
                    const std::vector<bool>& functional,
                    const std::vector<bool>* scan_key) {
  std::ofstream out(path);
  if (!out) usage(("cannot open key file " + path).c_str());
  for (bool b : functional) out << (b ? '1' : '0');
  out << "\n";
  if (scan_key) {
    for (bool b : *scan_key) out << (b ? '1' : '0');
    out << "\n";
  }
}

/// Prints the per-configuration win tally of a recorded portfolio run.
void print_portfolio_wins(const std::vector<attacks::SolveRecord>& log) {
  if (log.empty()) return;
  std::map<std::string, std::size_t> wins;
  for (const auto& record : log) {
    if (record.outcome.winner >= 0) ++wins[record.outcome.winner_config];
  }
  std::printf("portfolio wins:");
  for (const auto& [config, count] : wins) {
    std::printf(" %s=%zu", config.c_str(), count);
  }
  std::printf("\n");
}

/// Writes the attack-level + per-solve stats JSON shared by sat/appsat.
void write_stats_file(const std::string& path, const char* attack,
                      const Args& args, const std::string& status,
                      std::size_t iterations, double seconds,
                      std::uint64_t conflicts, std::size_t encoded_clauses,
                      std::size_t saved_clauses,
                      const std::vector<attacks::SolveRecord>& log) {
  std::ofstream stats(path);
  if (!stats) usage(("cannot open stats file " + path).c_str());
  stats << "{\"attack\":\"" << attack << "\",\"jobs\":" << args.jobs
        << ",\"status\":\"" << status << "\",\"iterations\":" << iterations
        << ",\"seconds\":" << seconds << ",\"conflicts\":" << conflicts
        << ",\"encoded_clauses\":" << encoded_clauses
        << ",\"saved_clauses\":" << saved_clauses << ",\"solves\":[\n";
  for (std::size_t i = 0; i < log.size(); ++i) {
    stats << attacks::solve_record_json(log[i])
          << (i + 1 < log.size() ? ",\n" : "\n");
  }
  stats << "]}\n";
  std::printf("per-solve stats -> %s\n", path.c_str());
}

int cmd_gen(const Args& args) {
  if (args.positional.size() != 2) usage("gen needs <name> <out.bench>");
  const auto nl = benchgen::make_benchmark(args.positional[0], args.scale);
  write_netlist(args.positional[1], nl);
  std::printf("%s -> %s (%s)\n", args.positional[0].c_str(),
              args.positional[1].c_str(),
              netlist::format_stats(netlist::compute_stats(nl)).c_str());
  return 0;
}

int cmd_lock(const Args& args) {
  if (args.positional.size() != 4) {
    usage("lock needs <scheme> <in.bench> <out.bench> <key.txt>");
  }
  const std::string& scheme = args.positional[0];
  netlist::Netlist host = read_netlist(args.positional[1]);
  if (host.dff_count() > 0) {
    std::printf("note: sequential input; locking the combinational core\n");
    host = host.combinational_core();
  }

  netlist::Netlist locked;
  std::vector<bool> key;
  const std::vector<bool>* scan_key = nullptr;
  std::vector<bool> scan_storage;
  if (scheme == "ril") {
    core::RilBlockConfig config;
    config.size = args.size;
    config.output_network = args.output_net;
    config.scan_obfuscation = args.scan;
    config.lut_inputs = args.lutk;
    auto ril = locking::lock_ril(host, args.blocks, config, args.seed);
    locked = std::move(ril.locked.netlist);
    key = ril.info.functional_key;
    if (args.scan) {
      scan_storage = ril.info.oracle_scan_key;
      scan_key = &scan_storage;
    }
  } else {
    locking::LockedCircuit result;
    if (scheme == "xor") result = locking::lock_xor(host, args.bits, args.seed);
    else if (scheme == "sarlock") result = locking::lock_sarlock(host, args.bits, args.seed);
    else if (scheme == "antisat") result = locking::lock_antisat(host, args.bits, args.seed);
    else if (scheme == "sfll") result = locking::lock_sfll_hd0(host, args.bits, args.seed);
    else if (scheme == "lut") result = locking::lock_lut(host, args.bits, args.seed);
    else if (scheme == "fulllock") result = locking::lock_fulllock(host, args.size, args.seed);
    else if (scheme == "routing") result = locking::lock_banyan_routing(host, args.size, args.seed);
    else usage(("unknown scheme " + scheme).c_str());
    locked = std::move(result.netlist);
    key = std::move(result.key);
  }
  write_netlist(args.positional[2], locked);
  write_key_file(args.positional[3], key, scan_key);
  std::printf("locked with %s: %s, key width %zu -> %s / %s\n",
              scheme.c_str(),
              netlist::format_stats(netlist::compute_stats(locked)).c_str(),
              key.size(), args.positional[2].c_str(),
              args.positional[3].c_str());
  return 0;
}

int cmd_attack(const Args& args) {
  if (args.positional.size() != 3) {
    usage("attack needs <method> <locked.bench> <activated.bench>");
  }
  const std::string& method = args.positional[0];
  const netlist::Netlist locked =
      read_netlist(args.positional[1]);
  const netlist::Netlist activated =
      read_netlist(args.positional[2]);
  if (!activated.key_inputs().empty()) {
    usage("activated netlist must not have key inputs (use `ril unlock`)");
  }
  attacks::Oracle oracle(activated, {});

  auto verify = [&](const std::vector<bool>& key) {
    sat::SolverLimits limits{.time_limit_seconds = args.timeout};
    const auto eq =
        cnf::check_equivalence(locked, activated, key, {}, limits);
    return eq.equivalent() ? "correct (CEC UNSAT)"
           : eq.status == sat::Result::kUnknown ? "unverified (CEC timeout)"
                                                : "WRONG";
  };

  if (method == "sat" || method == "appsat" || method == "onehot") {
    attacks::SatAttackOptions options;
    options.time_limit_seconds = args.timeout;
    options.jobs = args.jobs;
    options.portfolio_seed = args.seed;
    options.record_solves = args.jobs > 1 || !args.stats_path.empty();
    options.specialize_dips = args.specialize;
    if (method == "sat") {
      const auto result = attacks::run_sat_attack(locked, oracle, options);
      std::printf("sat attack: %s in %.2fs, %zu DIPs, %llu conflicts"
                  " (%u jobs)\n",
                  to_string(result.status).c_str(), result.seconds,
                  result.iterations,
                  static_cast<unsigned long long>(result.conflicts),
                  args.jobs);
      if (result.saved_clauses > 0) {
        std::printf("constraint clauses: %zu encoded, %zu saved by cone"
                    " specialization\n",
                    result.encoded_clauses, result.saved_clauses);
      }
      print_portfolio_wins(result.solve_log);
      if (!args.stats_path.empty()) {
        write_stats_file(args.stats_path, "sat", args,
                         to_string(result.status), result.iterations,
                         result.seconds, result.conflicts,
                         result.encoded_clauses, result.saved_clauses,
                         result.solve_log);
      }
      if (result.status == attacks::SatAttackStatus::kKeyFound) {
        std::printf("recovered key: ");
        for (bool b : result.key) std::printf("%c", b ? '1' : '0');
        std::printf("\nkey check: %s\n", verify(result.key));
      }
    } else if (method == "onehot") {
      const auto result =
          attacks::run_sat_attack_onehot(locked, oracle, options);
      std::printf("one-hot attack: %s in %.2fs, %zu DIPs "
                  "(%zu routing components, %zu key bits -> %zu selectors)\n",
                  to_string(result.status).c_str(), result.seconds,
                  result.iterations, result.components,
                  result.routing_key_bits_replaced, result.selector_bits);
      if (result.status == attacks::SatAttackStatus::kKeyFound) {
        sat::SolverLimits limits{.time_limit_seconds = args.timeout};
        const auto eq = cnf::check_equivalence(result.reconstructed,
                                               activated, {}, {}, limits);
        std::printf("reconstruction: %s\n",
                    eq.equivalent() ? "equivalent to oracle" : "NOT exact");
      }
    } else {
      attacks::AppSatOptions appsat;
      appsat.time_limit_seconds = args.timeout;
      appsat.jobs = args.jobs;
      appsat.portfolio_seed = args.seed;
      appsat.record_solves = options.record_solves;
      appsat.specialize_dips = args.specialize;
      const auto result = attacks::run_appsat(locked, oracle, appsat);
      std::printf("appsat: %s in %.2fs, %zu DIPs, sampled error %.3f,"
                  " %llu conflicts (%u jobs)\n",
                  to_string(result.status).c_str(), result.seconds,
                  result.iterations, result.sampled_error,
                  static_cast<unsigned long long>(result.conflicts),
                  args.jobs);
      if (result.saved_clauses > 0) {
        std::printf("constraint clauses: %zu encoded, %zu saved by cone"
                    " specialization\n",
                    result.encoded_clauses, result.saved_clauses);
      }
      print_portfolio_wins(result.solve_log);
      if (!args.stats_path.empty()) {
        write_stats_file(args.stats_path, "appsat", args,
                         to_string(result.status), result.iterations,
                         result.seconds, result.conflicts,
                         result.encoded_clauses, result.saved_clauses,
                         result.solve_log);
      }
      if (!result.key.empty()) {
        std::printf("key check: %s\n", verify(result.key));
      }
    }
    return 0;
  }
  if (method == "removal") {
    const auto result = attacks::run_removal_attack(locked);
    sat::SolverLimits limits{.time_limit_seconds = args.timeout};
    const auto eq =
        cnf::check_equivalence(result.recovered, activated, {}, {}, limits);
    std::printf("removal: cuts=%zu grounded=%zu reconstruction %s\n",
                result.cuts, result.grounded_keys,
                eq.equivalent() ? "EQUIVALENT (defense broken)"
                                : "wrong (defense held)");
    return 0;
  }
  if (method == "sps") {
    const auto result = attacks::run_sps_attack(locked);
    sat::SolverLimits limits{.time_limit_seconds = args.timeout};
    const auto eq =
        cnf::check_equivalence(result.recovered, activated, {}, {}, limits);
    std::printf("sps: cuts=%zu max skew=%.3f reconstruction %s\n",
                result.cuts, result.max_observed_skew,
                eq.equivalent() ? "EQUIVALENT (defense broken)"
                                : "wrong (defense held)");
    return 0;
  }
  if (method == "bypass") {
    attacks::BypassOptions options;
    options.time_limit_seconds = args.timeout;
    options.jobs = args.jobs;
    options.portfolio_seed = args.seed;
    const auto result = attacks::run_bypass_attack(locked, oracle, options);
    std::printf("bypass: %s, %zu patterns\n",
                to_string(result.status).c_str(), result.patterns);
    if (result.status == attacks::BypassStatus::kBypassed) {
      sat::SolverLimits limits{.time_limit_seconds = args.timeout};
      const auto eq =
          cnf::check_equivalence(result.pirated, activated, {}, {}, limits);
      std::printf("pirated chip %s\n",
                  eq.equivalent() ? "EQUIVALENT (defense broken)"
                                  : "wrong (defense held)");
    }
    return 0;
  }
  usage(("unknown attack method " + method).c_str());
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) usage("analyze needs <file.bench>");
  const netlist::Netlist nl = read_netlist(args.positional[0]);
  std::printf("%s: %s\n", nl.name().c_str(),
              netlist::format_stats(netlist::compute_stats(nl)).c_str());
  const auto components = attacks::find_routing_networks(nl);
  std::printf("routing networks: %zu\n", components.size());
  for (const auto& component : components) {
    std::printf("  %zu-in/%zu-out, %zu switches, terminal=%s\n",
                component.inputs.size(), component.outputs.size(),
                component.key_inputs.size(),
                component.terminal ? "yes" : "no");
  }
  const auto luts = sca::find_keyed_luts(nl);
  std::size_t attackable = 0;
  for (const auto& lut : luts) attackable += lut.attackable;
  std::printf("keyed 2-input LUTs: %zu (%zu with key-free input cones)\n",
              luts.size(), attackable);
  if (args.positional.size() > 1) {
    const auto key = read_key_file(args.positional[1]);
    const double corruption =
        attacks::output_corruptibility(nl, key, 8192, args.seed);
    std::printf("output corruptibility: %.4f\n", corruption);
  }
  return 0;
}

int cmd_unlock(const Args& args) {
  if (args.positional.size() != 3) {
    usage("unlock needs <locked.bench> <key.txt> <out.bench>");
  }
  const netlist::Netlist locked =
      read_netlist(args.positional[0]);
  const auto key = read_key_file(args.positional[1]);
  netlist::Netlist fixed = locking::specialize_keys(locked, key);
  const auto stats = netlist::simplify(fixed);
  write_netlist(args.positional[2], fixed);
  std::printf("unlocked: %s (folded %zu, pruned %zu) -> %s\n",
              netlist::format_stats(netlist::compute_stats(fixed)).c_str(),
              stats.constants_folded, stats.gates_pruned,
              args.positional[2].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    const Args args = parse(argc, argv);
    if (command == "gen") return cmd_gen(args);
    if (command == "lock") return cmd_lock(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "unlock") return cmd_unlock(args);
    usage(("unknown command " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unexpected failure\n");
    return 1;
  }
}
