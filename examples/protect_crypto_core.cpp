// Scenario: an IP vendor protects a CEP-class crypto datapath (a real
// gate-level SHA-256 round pipeline) before sending it to an untrusted
// foundry, then audits it against the attack suite.
//
// Demonstrates: crypto benchmark generation, full RIL defense-in-depth
// (routing + LUTs + output routing + Scan-Enable), oracle modelling of the
// scan interface, and the attacker's deployed-key error.
#include <cstdio>

#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "attacks/removal.hpp"
#include "attacks/sat_attack.hpp"
#include "benchgen/crypto.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/stats.hpp"

int main() {
  using namespace ril;

  // A 2-round SHA-256 compression datapath, gate by gate.
  const netlist::Netlist host = benchgen::make_sha256_rounds(2);
  std::printf("SHA-256 core: %s\n",
              netlist::format_stats(netlist::compute_stats(host)).c_str());

  // Vendor locks it: two 8x8x8 RIL-Blocks with Scan-Enable obfuscation.
  core::RilBlockConfig config;
  config.size = 8;
  config.output_network = true;
  config.scan_obfuscation = true;
  const locking::RilLocked ril = locking::lock_ril(host, 2, config, 7);
  std::printf("locked with %zu blocks, %zu key bits (%zu of them hidden "
              "MTJ_SE cells)\n",
              ril.info.blocks_inserted, ril.info.key_width,
              ril.info.se_key_positions.size());

  // Vendor sanity check: functional key restores the design (simulation
  // sweep; SAT CEC also available via cnf::check_equivalence).
  const double self_error = attacks::functional_error_rate(
      ril.locked.netlist, ril.info.functional_key, ril.info.functional_key,
      512, 1);
  std::printf("vendor check, functional key self-consistency: %s\n",
              self_error == 0.0 ? "ok" : "BROKEN");

  // Foundry-side attacker: reverse-engineered netlist + activated chip,
  // queried through the scan interface (SE asserted -> responses are
  // corrupted by the hidden MTJ_SE bits).
  attacks::Oracle scan_oracle(ril.locked.netlist, ril.info.oracle_scan_key);
  attacks::SatAttackOptions options;
  options.time_limit_seconds = 20;
  const auto attack =
      attacks::run_sat_attack(ril.locked.netlist, scan_oracle, options);
  std::printf("SAT attack through scan interface: %s (%zu DIPs, %.2fs)\n",
              to_string(attack.status).c_str(), attack.iterations,
              attack.seconds);
  if (attack.status == attacks::SatAttackStatus::kKeyFound) {
    auto deployed = attack.key;
    for (std::size_t pos : ril.info.se_key_positions) deployed[pos] = false;
    const double error = attacks::functional_error_rate(
        ril.locked.netlist, deployed, ril.info.functional_key, 4096, 2);
    std::printf("attacker deploys recovered key -> functional error %.1f%% "
                "of input vectors (IP remains protected: %s)\n",
                error * 100, error > 0 ? "yes" : "no");
  }

  // Removal attack: the blocks absorbed real gates, nothing to cut away.
  const auto removal = attacks::run_removal_attack(ril.locked.netlist);
  const double removal_error =
      attacks::circuit_error_rate(removal.recovered, host, 4096, 3);
  std::printf("removal attack reconstruction error: %.1f%% (cuts=%zu, "
              "grounded keys=%zu)\n",
              removal_error * 100, removal.cuts, removal.grounded_keys);
  return 0;
}
