// Quickstart: lock a small adder with RIL-Blocks, verify the key, attack it.
//
//   1. build a host circuit (8-bit ripple adder)
//   2. insert one 4x4x4 RIL-Block (banyan -> keyed LUTs -> banyan)
//   3. prove the functional key restores the original circuit (SAT CEC)
//   4. run the oracle-guided SAT attack and check what it recovers
//   5. export the locked design as a .bench file
#include <cstdio>

#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "attacks/sat_attack.hpp"
#include "benchgen/arithmetic.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"

int main() {
  using namespace ril;

  // 1. Host circuit.
  const netlist::Netlist host = benchgen::make_ripple_adder(8);
  std::printf("host: %s\n",
              netlist::format_stats(netlist::compute_stats(host)).c_str());

  // 2. Lock with one 4x4x4 RIL-Block.
  core::RilBlockConfig config;
  config.size = 4;
  config.output_network = true;
  const locking::RilLocked ril = locking::lock_ril(host, 1, config, 2024);
  std::printf("locked (%s): %s, key width %zu\n",
              ril.locked.scheme.c_str(),
              netlist::format_stats(
                  netlist::compute_stats(ril.locked.netlist))
                  .c_str(),
              ril.locked.key.size());

  // 3. Correct key -> provably equivalent.
  const auto equivalence =
      cnf::check_equivalence(ril.locked.netlist, host, ril.locked.key, {});
  std::printf("correct key restores circuit: %s\n",
              equivalence.equivalent() ? "yes (UNSAT miter)" : "NO");

  // A wrong key corrupts a large share of input space.
  const double corruption = attacks::output_corruptibility(
      ril.locked.netlist, ril.locked.key, 4096, 1);
  std::printf("output corruptibility under random wrong keys: %.1f%%\n",
              corruption * 100);

  // 4. SAT attack with oracle access.
  attacks::Oracle oracle(ril.locked.netlist, ril.locked.key);
  const auto attack = attacks::run_sat_attack(ril.locked.netlist, oracle);
  std::printf("SAT attack: %s in %.3fs after %zu DIPs (%llu conflicts)\n",
              to_string(attack.status).c_str(), attack.seconds,
              attack.iterations,
              static_cast<unsigned long long>(attack.conflicts));
  if (attack.status == attacks::SatAttackStatus::kKeyFound) {
    const bool works =
        cnf::check_equivalence(ril.locked.netlist, host, attack.key, {})
            .equivalent();
    std::printf("recovered key functionally correct: %s "
                "(a single small block falls quickly -- see bench_table1 "
                "for how 3x 8x8x8 blocks time out)\n",
                works ? "yes" : "no");
  }

  // 5. Export.
  const std::string path = "quickstart_locked.bench";
  netlist::write_bench_file(path, ril.locked.netlist);
  std::printf("locked netlist written to %s\n", path.c_str());
  return 0;
}
