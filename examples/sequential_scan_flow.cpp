// Scenario: locking a *sequential* design and attacking it the way real
// silicon is attacked -- through the scan chain.
//
//   1. generate a random sequential host (DFF state + combinational cloud)
//   2. extract the combinational core (DFFs -> pseudo-PI/PO) and lock it
//      with a Scan-Enable-obfuscated RIL block
//   3. rebuild the activated sequential chip and insert a scan chain
//   4. attack via ScanOracle (shift-in, capture, shift-out per query)
//   5. show the SE defense: scan-mode responses poison the recovered key
#include <cstdio>

#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "attacks/sat_attack.hpp"
#include "attacks/scansat.hpp"
#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/scan_chain.hpp"
#include "netlist/stats.hpp"

int main() {
  using namespace ril;

  // 1. Sequential host.
  benchgen::RandomSequentialParams params;
  params.combinational.num_inputs = 12;
  params.combinational.num_outputs = 8;
  params.combinational.num_gates = 220;
  params.combinational.seed = 9;
  params.num_dffs = 16;
  const netlist::Netlist seq = benchgen::generate_random_sequential(params);
  std::printf("sequential host: %s\n",
              netlist::format_stats(netlist::compute_stats(seq)).c_str());

  // 2. Lock the combinational core (the standard sequential-locking view).
  const netlist::Netlist core = seq.combinational_core();
  core::RilBlockConfig config;
  config.size = 4;
  config.scan_obfuscation = true;
  const auto ril = locking::lock_ril(core, 1, config, 11);
  std::printf("locked core: %zu key bits (%zu hidden SE cells)\n",
              ril.info.key_width, ril.info.se_key_positions.size());

  // 3. Activated chip = locked core with the key programmed; give it a
  //    scan chain like any testable silicon. (For the demo we activate the
  //    combinational core directly -- the ScanOracle below exercises the
  //    real shift/capture protocol on the sequential host instead.)
  const netlist::ScanInsertion scan = netlist::insert_scan_chain(seq);
  std::printf("scan chain inserted: %zu flops, SCAN_IN -> %s -> SCAN_OUT\n",
              scan.chain.size(),
              scan.netlist.name_of(scan.chain[0]).c_str());

  // Demonstrate ATE-style access on the unlocked chip.
  netlist::ScanTester tester(scan);
  std::vector<bool> state(scan.chain.size(), false);
  state[0] = state[3] = true;
  tester.shift_in(state);
  tester.capture(std::vector<bool>(12, true));
  const auto next = tester.shift_out();
  std::printf("scan round trip ok: captured %zu outputs, %zu next-state "
              "bits\n",
              tester.last_outputs().size(), next.size());

  // 4./5. Attack through the scan interface. With SE active, the oracle's
  // scan responses are corrupted by the hidden MTJ_SE bits.
  attacks::Oracle scan_mode_oracle(ril.locked.netlist,
                                   ril.info.oracle_scan_key);
  attacks::SatAttackOptions options;
  options.time_limit_seconds = 30;
  const auto attack =
      attacks::run_sat_attack(ril.locked.netlist, scan_mode_oracle, options);
  std::printf("SAT attack via scan interface: %s (%zu DIPs, %.2fs)\n",
              to_string(attack.status).c_str(), attack.iterations,
              attack.seconds);
  if (attack.status == attacks::SatAttackStatus::kKeyFound) {
    auto deployed = attack.key;
    for (std::size_t pos : ril.info.se_key_positions) deployed[pos] = false;
    const bool works =
        cnf::check_equivalence(ril.locked.netlist, core, deployed, {})
            .equivalent();
    std::printf("deployed key unlocks the real chip: %s\n",
                works ? "YES (SE bits were all zero this run)"
                      : "no -- Scan-Enable obfuscation held");
  }
  return 0;
}
