// Scenario: device engineer characterizes the MRAM LUT before tape-out --
// programs all 16 functions, runs a PV Monte Carlo, checks read margins,
// energy, and side-channel leakage against the SRAM alternative.
#include <cstdio>
#include <random>

#include "core/lut2.hpp"
#include "device/montecarlo.hpp"
#include "device/mram_lut.hpp"
#include "device/sram_lut.hpp"
#include "device/transient.hpp"
#include "sca/dpa.hpp"

int main() {
  using namespace ril;

  // 1. Functional bring-up: all 16 configurations on a nominal device.
  std::mt19937_64 rng(1);
  device::MtjParams mtj;
  device::CmosParams cmos;
  cmos.sense_offset_sigma = 0;
  device::VariationSpec nominal{0, 0, 0};
  std::printf("-- bring-up: all 16 functions --\n");
  for (unsigned mask = 0; mask < 16; ++mask) {
    device::MramLut2 lut(mtj, cmos, nominal, rng);
    lut.configure(static_cast<std::uint8_t>(mask));
    bool ok = true;
    for (unsigned m = 0; m < 4; ++m) {
      ok &= lut.read_cell(m & 1, (m >> 1) & 1).value ==
            (((mask >> m) & 1) != 0);
    }
    std::printf("  mask %2u (%-12s) %s\n", mask,
                core::function_name(static_cast<std::uint8_t>(mask)).c_str(),
                ok ? "ok" : "FAIL");
  }

  // 2. Reconfiguration transient (the Fig. 5 experiment).
  device::TransientOptions transient;
  transient.variation = nominal;
  transient.cmos.sense_offset_sigma = 0;
  const auto waveform = device::simulate_and_to_nor(transient);
  std::printf("\n-- AND -> NOR reconfiguration: writes %s, %.1f fJ config "
              "energy, %zu waveform points --\n",
              waveform.all_writes_ok ? "ok" : "FAILED",
              waveform.total_config_energy * 1e15,
              waveform.waveform.size());

  // 3. Process-variation Monte Carlo (the Fig. 6 experiment).
  device::McOptions mc;
  mc.instances = 500;
  const auto summary = device::run_monte_carlo(mc);
  std::printf("\n-- Monte Carlo, %zu instances --\n", summary.instances);
  std::printf("  read errors %zu, write errors %zu, disturbs %zu\n",
              summary.read_errors, summary.write_errors, summary.disturbs);
  std::printf("  mean read power 0/1: %.3f / %.3f uW (asymmetry %.3f%%)\n",
              summary.mean_read_power_0 * 1e6,
              summary.mean_read_power_1 * 1e6,
              summary.power_asymmetry * 100);
  std::printf("  R_P %.2f kOhm / R_AP %.2f kOhm\n", summary.mean_r_p / 1e3,
              summary.mean_r_ap / 1e3);

  // 4. Side-channel audit: DPA against both technologies.
  std::printf("\n-- P-SCA audit (DPA on 2000 traces, config = AND) --\n");
  for (const auto tech :
       {sca::LutTechnology::kSram, sca::LutTechnology::kMram}) {
    sca::TraceOptions traces;
    traces.technology = tech;
    traces.mask = 0b1000;
    traces.traces = 2000;
    traces.variation = nominal;
    const auto result = sca::run_dpa(sca::generate_traces(traces));
    std::printf("  %s: best hypothesis %s (true: %s) -> %s\n",
                tech == sca::LutTechnology::kSram ? "SRAM" : "MRAM",
                core::function_name(result.best_mask).c_str(),
                core::function_name(0b1000).c_str(),
                result.recovered(0b1000) ? "KEY LEAKED" : "key safe");
  }
  return 0;
}
