// Scenario: a security architect compares locking schemes on their own
// netlist (loaded from .bench or generated) before committing to one --
// key length, overhead, SAT-attack effort, corruptibility.
//
// Usage: compare_defenses [path/to/netlist.bench]
#include <cstdio>

#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "attacks/sat_attack.hpp"
#include "benchgen/suite.hpp"
#include "locking/schemes.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"

int main(int argc, char** argv) {
  using namespace ril;

  netlist::Netlist host = argc > 1
                              ? netlist::read_bench_file(argv[1])
                              : benchgen::make_benchmark("c7552", 0.08);
  if (host.dff_count() > 0) {
    std::printf("sequential design: cutting %zu DFFs into pseudo-PI/PO\n",
                host.dff_count());
    host = host.combinational_core();
  }
  std::printf("host %s: %s\n", host.name().c_str(),
              netlist::format_stats(netlist::compute_stats(host)).c_str());
  std::printf("%-18s %8s %8s %12s %8s %14s\n", "scheme", "keybits",
              "gates+", "attack[s]", "dips", "corruptibility");

  auto evaluate = [&](const std::string& name,
                      const locking::LockedCircuit& locked) {
    attacks::Oracle oracle(locked.netlist, locked.key);
    attacks::SatAttackOptions options;
    options.time_limit_seconds = 10;
    const auto result =
        attacks::run_sat_attack(locked.netlist, oracle, options);
    const double corruption = attacks::output_corruptibility(
        locked.netlist, locked.key, 4096, 11);
    char attack_cell[32];
    if (result.status == attacks::SatAttackStatus::kKeyFound) {
      std::snprintf(attack_cell, sizeof(attack_cell), "%.2f",
                    result.seconds);
    } else {
      std::snprintf(attack_cell, sizeof(attack_cell), ">10 (t/o)");
    }
    std::printf("%-18s %8zu %8zd %12s %8zu %13.1f%%\n", name.c_str(),
                locked.key.size(),
                static_cast<std::ptrdiff_t>(locked.netlist.gate_count()) -
                    static_cast<std::ptrdiff_t>(host.gate_count()),
                attack_cell, result.iterations, corruption * 100);
  };

  evaluate("RLL-XOR-32", locking::lock_xor(host, 32, 1));
  evaluate("SARLock-12", locking::lock_sarlock(host, 12, 2));
  evaluate("Anti-SAT-12", locking::lock_antisat(host, 12, 3));
  evaluate("SFLL-HD0-12", locking::lock_sfll_hd0(host, 12, 4));
  evaluate("LUT-8", locking::lock_lut(host, 8, 5));
  evaluate("FullLock-16", locking::lock_fulllock(host, 16, 6));
  {
    core::RilBlockConfig config;
    config.size = 8;
    config.output_network = true;
    evaluate("RIL-2x-8x8x8", locking::lock_ril(host, 2, config, 7).locked);
  }
  std::printf(
      "\nReading the table: one-point functions resist the SAT attack by "
      "iteration count but have ~0 corruptibility; RIL-Blocks combine "
      "SAT-hardness with high corruptibility at modest overhead.\n");
  return 0;
}
