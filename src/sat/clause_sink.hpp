// Abstract CNF construction interface.
//
// Encoders (Tseitin, miters, one-hot re-encodings, I/O constraints) only
// need three operations: allocate variables and add clauses. Routing them
// through this interface lets the same encoding code target either a single
// Solver or a runtime::SolverPortfolio that mirrors every variable and
// clause into N diversified solver instances kept in lock-step.
#pragma once

#include <initializer_list>

#include "sat/types.hpp"

namespace ril::sat {

class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable and returns it.
  virtual Var new_var() = 0;
  /// Ensures variables [0, v] exist.
  virtual void ensure_var(Var v) = 0;
  /// Adds a problem clause. Returns false if the formula became trivially
  /// unsatisfiable at the root level.
  virtual bool add_clause(Clause lits) = 0;

  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }
};

}  // namespace ril::sat
