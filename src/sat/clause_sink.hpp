// Abstract CNF construction interface.
//
// Encoders (Tseitin, miters, one-hot re-encodings, I/O constraints) only
// need three operations: allocate variables and add clauses. Routing them
// through this interface lets the same encoding code target either a single
// Solver or a runtime::SolverPortfolio that mirrors every variable and
// clause into N diversified solver instances kept in lock-step.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <utility>

#include "sat/types.hpp"

namespace ril::sat {

class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable and returns it.
  virtual Var new_var() = 0;
  /// Ensures variables [0, v] exist.
  virtual void ensure_var(Var v) = 0;
  /// Adds a problem clause. Returns false if the formula became trivially
  /// unsatisfiable at the root level.
  virtual bool add_clause(Clause lits) = 0;

  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }
};

/// Decorator that counts the variables and clauses flowing through it.
/// With a null inner sink it becomes a pure dry-run counter (allocating
/// its own variable numbers and discarding clauses), which is how the
/// attack engine prices a full circuit encoding without touching a solver.
/// Counts are clauses as *submitted*; a receiving solver may still drop
/// satisfied or tautological ones at the root.
class CountingSink final : public ClauseSink {
 public:
  explicit CountingSink(ClauseSink* inner = nullptr) : inner_(inner) {}

  Var new_var() override {
    ++vars_;
    return inner_ ? inner_->new_var() : next_var_++;
  }
  void ensure_var(Var v) override {
    if (inner_) {
      inner_->ensure_var(v);
    } else if (v >= next_var_) {
      next_var_ = v + 1;
    }
  }
  bool add_clause(Clause lits) override {
    ++clauses_;
    return inner_ ? inner_->add_clause(std::move(lits)) : true;
  }
  using ClauseSink::add_clause;

  std::size_t vars() const { return vars_; }
  std::size_t clauses() const { return clauses_; }

 private:
  ClauseSink* inner_ = nullptr;
  Var next_var_ = 0;
  std::size_t vars_ = 0;
  std::size_t clauses_ = 0;
};

}  // namespace ril::sat
