// Abstract CNF construction interface.
//
// Encoders (Tseitin, miters, one-hot re-encodings, I/O constraints) only
// need three operations: allocate variables and add clauses. Routing them
// through this interface lets the same encoding code target either a single
// Solver or a runtime::SolverPortfolio that mirrors every variable and
// clause into N diversified solver instances kept in lock-step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>

#include "sat/types.hpp"

namespace ril::sat {

/// A chunk of clauses in one flat buffer: `lits` holds the concatenated
/// literals and `ends[i]` is the end offset of clause i, so clause i spans
/// lits[ends[i-1] .. ends[i]) (with ends[-1] read as 0). Streaming encoders
/// fill a batch and hand it to ClauseSink::add_clauses, which moves a whole
/// topological chunk across the virtual-call boundary at once instead of
/// one heap-allocated Clause per gate clause.
struct ClauseBatch {
  std::vector<Lit> lits;
  std::vector<std::uint32_t> ends;

  /// Appends one literal of the clause currently being built.
  void push(Lit l) { lits.push_back(l); }
  /// Terminates the clause currently being built.
  void seal() { ends.push_back(static_cast<std::uint32_t>(lits.size())); }
  /// Appends a complete clause.
  void add(std::initializer_list<Lit> clause) {
    lits.insert(lits.end(), clause);
    seal();
  }

  std::size_t size() const { return ends.size(); }
  bool empty() const { return ends.empty(); }
  std::size_t lit_count() const { return lits.size(); }
  void clear() {
    lits.clear();
    ends.clear();
  }
  std::span<const Lit> clause(std::size_t i) const {
    const std::uint32_t begin = i == 0 ? 0 : ends[i - 1];
    return {lits.data() + begin, ends[i] - begin};
  }
};

class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable and returns it.
  virtual Var new_var() = 0;
  /// Ensures variables [0, v] exist.
  virtual void ensure_var(Var v) = 0;
  /// Adds a problem clause. Returns false if the formula became trivially
  /// unsatisfiable at the root level.
  virtual bool add_clause(Clause lits) = 0;

  /// Allocates `n` fresh consecutive variables and returns the first
  /// (kNoVar when n == 0). Observably equivalent to n new_var() calls --
  /// every sink hands out dense consecutive numbers -- but a bulk reserve
  /// lets encoders pre-number a whole netlist in O(1) virtual calls.
  virtual Var new_vars(std::size_t n) {
    if (n == 0) return kNoVar;
    const Var first = new_var();
    if (n > 1) ensure_var(first + static_cast<Var>(n) - 1);
    return first;
  }

  /// Adds every clause of `batch` in order. Returns false if any clause
  /// made the formula trivially unsatisfiable at the root. The default
  /// forwards clause by clause (bit-identical to looping add_clause);
  /// sinks that fan out to several receivers (the portfolio) override it
  /// to move whole chunks at once.
  virtual bool add_clauses(const ClauseBatch& batch) {
    bool ok = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto c = batch.clause(i);
      if (!add_clause(Clause(c.begin(), c.end()))) ok = false;
    }
    return ok;
  }

  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }
};

/// Decorator that counts the variables and clauses flowing through it.
/// With a null inner sink it becomes a pure dry-run counter (allocating
/// its own variable numbers and discarding clauses), which is how the
/// attack engine prices a full circuit encoding without touching a solver.
/// Counts are clauses as *submitted*; a receiving solver may still drop
/// satisfied or tautological ones at the root.
class CountingSink final : public ClauseSink {
 public:
  explicit CountingSink(ClauseSink* inner = nullptr) : inner_(inner) {}

  Var new_var() override {
    ++vars_;
    return inner_ ? inner_->new_var() : next_var_++;
  }
  void ensure_var(Var v) override {
    if (inner_) {
      inner_->ensure_var(v);
    } else if (v >= next_var_) {
      next_var_ = v + 1;
    }
  }
  bool add_clause(Clause lits) override {
    ++clauses_;
    return inner_ ? inner_->add_clause(std::move(lits)) : true;
  }
  Var new_vars(std::size_t n) override {
    vars_ += n;
    if (inner_) return inner_->new_vars(n);
    if (n == 0) return kNoVar;
    const Var first = next_var_;
    next_var_ += static_cast<Var>(n);
    return first;
  }
  bool add_clauses(const ClauseBatch& batch) override {
    clauses_ += batch.size();
    return inner_ ? inner_->add_clauses(batch) : true;
  }
  using ClauseSink::add_clause;

  std::size_t vars() const { return vars_; }
  std::size_t clauses() const { return clauses_; }

 private:
  ClauseSink* inner_ = nullptr;
  Var next_var_ = 0;
  std::size_t vars_ = 0;
  std::size_t clauses_ = 0;
};

}  // namespace ril::sat
