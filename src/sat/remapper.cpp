#include "sat/remapper.hpp"

#include <stdexcept>

namespace ril::sat {

Remapper Remapper::identity(std::size_t n) {
  Remapper map;
  map.to_inner_.resize(n);
  map.to_outer_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    map.to_inner_[v] = static_cast<Var>(v);
    map.to_outer_[v] = static_cast<Var>(v);
  }
  return map;
}

Remapper Remapper::compacting(const std::vector<bool>& keep) {
  Remapper map;
  map.to_inner_.assign(keep.size(), kNoVar);
  for (std::size_t v = 0; v < keep.size(); ++v) {
    if (!keep[v]) continue;
    map.to_inner_[v] = static_cast<Var>(map.to_outer_.size());
    map.to_outer_.push_back(static_cast<Var>(v));
  }
  return map;
}

bool Remapper::clause_to_inner(const Clause& outer, Clause& out) const {
  out.clear();
  out.reserve(outer.size());
  for (const Lit l : outer) {
    if (!maps(l.var())) return false;
    out.push_back(lit_to_inner(l));
  }
  return true;
}

void Remapper::append(Var outer, Var inner) {
  if (outer < 0 || inner < 0) {
    throw std::invalid_argument("Remapper::append: negative variable");
  }
  if (static_cast<std::size_t>(outer) < to_inner_.size()) {
    throw std::invalid_argument("Remapper::append: outer var already mapped");
  }
  to_inner_.resize(static_cast<std::size_t>(outer) + 1, kNoVar);
  to_inner_[outer] = inner;
  if (static_cast<std::size_t>(inner) >= to_outer_.size()) {
    to_outer_.resize(static_cast<std::size_t>(inner) + 1, kNoVar);
  }
  to_outer_[inner] = outer;
}

}  // namespace ril::sat
