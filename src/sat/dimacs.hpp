// DIMACS CNF import/export, mainly for debugging and interoperability.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace ril::sat {

struct CnfFormula {
  std::size_t num_vars = 0;
  std::vector<Clause> clauses;
};

/// Parses DIMACS text ("p cnf V C" header plus 0-terminated clauses).
CnfFormula read_dimacs(std::istream& in);
CnfFormula read_dimacs_string(const std::string& text);

/// Writes DIMACS text.
void write_dimacs(std::ostream& out, const CnfFormula& formula);
std::string write_dimacs_string(const CnfFormula& formula);

/// Loads a formula into a solver. Returns false if root-level UNSAT.
bool load_into_solver(const CnfFormula& formula, class Solver& solver);

}  // namespace ril::sat
