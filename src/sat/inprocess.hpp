// Restart-time inprocessing for the CDCL solver.
//
// Where the SatELite pass (sat/preprocessor.hpp) simplifies the formula
// once before search, the Inprocessor keeps simplifying *during* search:
// at conflict-count intervals the solver's restart path hands control to
// run(), which spends a small bounded budget on three techniques and then
// resumes CDCL where it left off.
//
//  * clause vivification -- a rotating slice of the learned and long
//    problem clauses is re-derived literal by literal: assume the negation
//    of each kept literal in turn and unit-propagate; a propagation
//    conflict or an implied literal proves a strict prefix of the clause,
//    and literals falsified along the way (or at the root) are dropped.
//    The shrunken clause replaces the original.
//  * learned-clause subsumption -- a bounded window of live clauses is
//    indexed by occurrence lists with bloom signatures (the same
//    machinery as the preprocessor); clauses subsumed inside the window
//    are deleted and self-subsumption resolution strengthens the rest.
//  * failed-literal probing -- the highest-activity unassigned variables
//    are probed in both polarities at a throwaway decision level; a
//    conflict yields a root unit (the failed literal's negation), and
//    literals propagated through long reasons yield hyper-binary
//    resolvents (~probe \/ implied), added as glue binaries.
//
// Every transformation is RUP at its position in the proof stream, so
// with a ProofTracer attached the emitted derive/erase steps keep the
// trace DRAT-valid end to end (sat/drat_check.hpp accepts it, buffered
// or file-backed alike): a strengthened clause is derived *before* its
// parent is erased, root units are derived before they propagate, and a
// hyper-binary follows from its probe's propagation, which the checker
// replays against a superset of the clauses the solver used.
//
// Frozen variables (Solver::freeze_inprocess) are never probed, so
// attack-level variables that outside code fixes via assumptions keep
// their full model range; inprocessing never eliminates variables at
// all, so model reconstruction is a no-op.
//
// Scheduling is driven by the solver's cumulative conflict count plus a
// per-solve gate: a pass fires once the cumulative count crosses the
// next interval AND the current solve() call has itself contributed
// interval_base / solve_gate_divisor conflicts, so both a single cheap
// solve and a long train of cheap incremental solves pay nothing beyond
// one integer compare per restart. Passes that derive nothing back off
// multiplicatively (stale_backoff_max) so formulas inprocessing cannot
// help stop paying for it.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace ril::sat {

class Solver;

struct InprocessConfig {
  /// Master switch; the default-constructed Solver keeps it off so the
  /// historical search is bit-identical until a caller opts in.
  bool enabled = false;
  /// Conflicts before the first pass and the base spacing between passes.
  std::uint64_t interval_base = 4000;
  /// Extra spacing added per completed pass (linear back-off, so a long
  /// solve runs passes ever less often).
  std::uint64_t interval_growth = 1000;
  /// Per-solve gate: a pass fires only when the *current* solve() call
  /// has itself contributed at least interval_base / solve_gate_divisor
  /// conflicts. The cumulative threshold alone lets an attack that issues
  /// hundreds of cheap incremental solves (AntiSAT's forced DIP
  /// enumeration runs ~160-conflict solves) cross every interval and eat
  /// pass perturbation it can never amortize; the gate makes such solves
  /// genuinely pay ~zero. 0 disables the gate.
  std::uint64_t solve_gate_divisor = 4;
  /// Multiplicative back-off for stale passes: a pass that derives
  /// nothing (no clause shrunk, subsumed, strengthened, failed literal,
  /// or hyper-binary) doubles the spacing multiplier up to this cap; any
  /// productive pass resets it to 1.
  std::uint64_t stale_backoff_max = 16;
  /// Clauses vivified per pass (rotating cursor over learned + problem).
  std::uint32_t vivify_budget = 96;
  /// Only clauses of 3..vivify_max_size literals are vivification
  /// candidates (binaries cannot shrink; huge clauses cost too many
  /// propagations per literal).
  std::uint32_t vivify_max_size = 48;
  /// Clauses in the subsumption window per pass.
  std::uint32_t subsume_budget = 768;
  /// Subset-check steps per pass (caps the occ-list scans).
  std::uint32_t subsume_steps = 20000;
  /// Variables probed per pass (both polarities each).
  std::uint32_t probe_budget = 48;
  /// Hyper-binary resolvents added per pass.
  std::uint32_t hbr_limit = 64;
};

struct InprocessStats {
  std::uint64_t passes = 0;
  /// Vivification: candidates examined / clauses shrunk / literals removed.
  std::uint64_t vivify_checked = 0;
  std::uint64_t vivified_clauses = 0;
  std::uint64_t vivified_literals = 0;
  /// Subsumption window: pairs checked / clauses deleted / strengthened.
  std::uint64_t subsume_checked = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t strengthened_clauses = 0;
  /// Probing: literals probed / failed (root units derived) / binaries.
  std::uint64_t probed_literals = 0;
  std::uint64_t failed_literals = 0;
  std::uint64_t hyper_binaries = 0;
};

/// One bounded inprocessing pass over a Solver. Construct on the restart
/// path (decision level 0) and call run(); all state that must persist
/// between passes (cursors, schedule) lives in the Solver.
class Inprocessor {
 public:
  explicit Inprocessor(Solver& solver) : s_(solver) {}

  /// Runs one pass: vivification, then window subsumption, then probing.
  /// Returns false when the pass refuted the formula (the empty clause
  /// was derived and the solver is dead); the caller must then return
  /// kUnsat.
  bool run();

 private:
  // Each phase returns false on refutation.
  bool vivify_pass();
  bool subsume_pass();
  bool probe_pass();

  /// Vivifies the clause at `cref`; may delete or replace it. Sets
  /// `unsat` on refutation.
  void vivify_clause(std::uint32_t cref, bool learned, bool& unsat);
  /// Retires `cref` (proof erase + detach + mark) and installs `kept` in
  /// its place on `list`. The caller has already emitted the derive step
  /// for `kept` (install and derive must carry the same literals so a
  /// later deletion matches the checker's database). Returns the new
  /// clause ref, or kNoClause when `kept` collapsed to a root unit or a
  /// refutation; sets `unsat` when the replacement refuted the formula.
  std::uint32_t replace_clause(std::uint32_t cref, const Clause& kept,
                               std::vector<std::uint32_t>& list,
                               bool learned, bool& unsat);
  /// Proof-erases, detaches, and marks `cref` deleted.
  void delete_clause(std::uint32_t cref);
  /// True if `cref` is the reason of its first literal's assignment (such
  /// a clause must not be deleted or rewritten).
  bool is_reason_locked(std::uint32_t cref) const;
  /// True if a binary clause with exactly the literals {a, b} is attached.
  bool binary_exists(Lit a, Lit b) const;

  Solver& s_;
};

}  // namespace ril::sat
