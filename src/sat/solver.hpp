// CDCL SAT solver.
//
// Feature set (in the spirit of MiniSat/CaDiCaL-class solvers):
//  * two-watched-literal propagation with blocker literals
//  * first-UIP conflict analysis with recursive clause minimization
//  * VSIDS decision heuristic with phase saving
//  * Luby restarts
//  * LBD-guided learned-clause database reduction
//  * incremental use: clauses may be added between solve() calls, and
//    solve() accepts assumption literals
//  * resource limits: wall-clock time and conflict budget; when a limit
//    fires solve() returns Result::kUnknown
//
// The solver is deliberately self-contained (no third-party code) since the
// paper's SAT-hardness claims are about CDCL search behaviour, which this
// class reproduces.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "sat/clause_sink.hpp"
#include "sat/inprocess.hpp"
#include "sat/types.hpp"

namespace ril::sat {

class ProofTracer;

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t random_decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t removed_clauses = 0;
  std::uint64_t minimized_literals = 0;
};

struct SolverLimits {
  /// Wall-clock budget in seconds; <=0 means unlimited.
  double time_limit_seconds = 0.0;
  /// Conflict budget; 0 means unlimited.
  std::uint64_t conflict_limit = 0;
};

/// Diversification knobs for portfolio solving. The default-constructed
/// config is the deterministic baseline: it consumes no randomness and
/// reproduces the solver's historical behaviour bit-for-bit, which is what
/// keeps `--jobs 1` runs identical to the pre-portfolio serial code.
struct SolverConfig {
  /// Seed for the solver-local xorshift RNG (only consumed when one of the
  /// random frequencies below is non-zero).
  std::uint64_t seed = 0;
  /// Probability of branching on a uniformly random unassigned variable
  /// instead of the VSIDS maximum (MiniSat's random_var_freq).
  double random_branch_freq = 0.0;
  /// Probability of choosing a random phase instead of the saved one.
  double random_polarity_freq = 0.0;
  /// Luby restart unit in conflicts.
  std::uint64_t restart_base = 128;
  /// VSIDS activity decay factor (0 < decay < 1).
  double var_decay = 0.95;
  /// Initial learned-clause cap before the first DB reduction.
  std::uint64_t max_learned = 8192;
  /// Initial saved phase for fresh variables: true = branch true first.
  bool init_phase_true = false;
};

class Solver : public ClauseSink {
 public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var() override;
  /// Ensures variables [0, v] exist.
  void ensure_var(Var v) override;
  std::size_t num_vars() const { return assigns_.size(); }
  std::size_t num_clauses() const { return n_problem_clauses_; }

  /// Adds a problem clause. Returns false if the formula became trivially
  /// unsatisfiable at the root level (the solver is then dead).
  bool add_clause(Clause lits) override;
  using ClauseSink::add_clause;

  /// Solves under the given assumptions. Repeatable; clauses may be added
  /// between calls.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model access, valid after solve() returned kSat.
  LBool model_value(Var v) const { return model_[v]; }
  bool model_bool(Var v) const { return model_[v] == LBool::kTrue; }

  const SolverStats& stats() const { return stats_; }
  /// Clause-arena footprint in 32-bit words (diagnostics / GC tests).
  std::size_t arena_words() const { return arena_.size(); }
  void set_limits(const SolverLimits& limits) { limits_ = limits; }
  /// Installs diversification knobs. Call before the first new_var() so
  /// `init_phase_true` applies to every variable.
  void set_config(const SolverConfig& config);
  const SolverConfig& config() const { return config_; }
  /// Installs a cooperative cancellation token. While solving, the flag is
  /// polled on the same countdown path as the wall-clock check; when it
  /// reads true, solve() unwinds to the root level and returns kUnknown.
  /// Pass nullptr to detach. The pointee must outlive the solve.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }
  /// True if the last solve() stopped due to a resource limit.
  bool limit_fired() const { return limit_fired_; }
  /// True if the last solve() stopped because the cancel flag was raised.
  bool cancelled() const { return cancelled_; }
  bool okay() const { return ok_; }

  /// Installs a proof sink (see sat/proof.hpp). Every problem clause,
  /// learned clause, root-level unit, DB deletion, and the empty clause of
  /// a refutation is emitted into it, in order. Attach before the first
  /// add_clause so the trace carries the complete axiom stream. Pass
  /// nullptr (the default) to disable; a null sink costs nothing -- no
  /// emission site sits on the propagation hot path, and the search
  /// itself is bit-identical with tracing on or off.
  void set_proof(ProofTracer* proof) { proof_ = proof; }
  ProofTracer* proof() const { return proof_; }

  /// Cheap post-SAT self-check: replays the last model against every
  /// stored problem clause (and the given assumptions). A sound solver
  /// always returns true; call it after solve() == kSat.
  bool verify_model(const std::vector<Lit>& assumptions = {}) const;

  /// Installs inprocessing knobs (sat/inprocess.hpp). Off by default;
  /// with `config.enabled` the restart path runs bounded
  /// vivification / subsumption / probing passes at conflict-count
  /// intervals. May be called between solves; takes effect at the next
  /// eligible restart. Composes with set_proof(): every inprocessing
  /// derivation and deletion is emitted into the trace.
  void set_inprocess(const InprocessConfig& config);
  const InprocessConfig& inprocess_config() const { return ipc_; }
  const InprocessStats& inprocess_stats() const { return ipc_stats_; }
  /// Marks `v` as off-limits for failed-literal probing (inprocessing
  /// never eliminates variables, so this is the whole freeze contract).
  /// Attack code freezes its assumption/key variables so probing-derived
  /// root units never pin a variable the caller still drives.
  void freeze_inprocess(Var v);
  void freeze_inprocess(const std::vector<Var>& vars);

 private:
  friend class Inprocessor;
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause =
      std::numeric_limits<ClauseRef>::max();

  // --- clause arena -----------------------------------------------------
  // Layout per clause: [header][lbd][lit0 ... litN-1]
  //   header = size << 2 | learned << 1 | deleted
  struct ClauseView {
    std::uint32_t* raw;
    std::uint32_t size() const { return raw[0] >> 2; }
    bool learned() const { return raw[0] & 2; }
    bool deleted() const { return raw[0] & 1; }
    void mark_deleted() { raw[0] |= 1; }
    std::uint32_t lbd() const { return raw[1]; }
    void set_lbd(std::uint32_t v) { raw[1] = v; }
    Lit lit(std::uint32_t i) const {
      return lit_from_code(static_cast<std::int32_t>(raw[2 + i]));
    }
    void set_lit(std::uint32_t i, Lit l) {
      raw[2 + i] = static_cast<std::uint32_t>(l.code);
    }
  };

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  ClauseRef alloc_clause(const Clause& lits, bool learned);
  ClauseView view(ClauseRef cref) {
    return ClauseView{arena_.data() + cref};
  }
  void attach(ClauseRef cref);
  void detach(ClauseRef cref);

  // --- assignment / trail ------------------------------------------------
  LBool value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    return l.sign() ? negate(v) : v;
  }
  int level(Var v) const { return level_[v]; }
  int decision_level() const {
    return static_cast<int>(trail_limits_.size());
  }
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void new_decision_level() {
    trail_limits_.push_back(static_cast<std::uint32_t>(trail_.size()));
  }
  void cancel_until(int target_level);

  // --- conflict analysis ---------------------------------------------------
  void analyze(ClauseRef conflict, Clause& out_learned, int& out_level,
               std::uint32_t& out_lbd);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  /// MiniSat-style analyzeFinal for assumption-UNSAT exits: traces the
  /// conflict (`conflict`, or the already-false assumption `failed` when
  /// conflict == kNoClause) back through reasons to the responsible
  /// assumption pseudo-decisions and emits their negations as a derived
  /// clause, closing the certificate for this solve. The clause is RUP
  /// against the live database because the whole chain is one unit
  /// propagation from the assumptions. No-op without a proof sink.
  void emit_assumption_core(ClauseRef conflict, Lit failed);

  // --- heuristics -----------------------------------------------------------
  void var_bump(Var v);
  void var_decay();
  void clause_bump(ClauseView c);
  Lit pick_branch_literal();
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(std::size_t idx);
  void heap_down(std::size_t idx);
  bool heap_contains(Var v) const { return heap_index_[v] != -1; }

  void reduce_learned_db();
  /// Compacts the clause arena, dropping deleted clauses (called at
  /// restarts when more than half the arena is garbage). All ClauseRefs
  /// (problem/learned lists, reasons, watchers) are remapped.
  void garbage_collect();
  bool time_exhausted();
  /// Combined stop check: cancellation token, then wall clock.
  bool should_stop();
  /// Solver-local xorshift64* step; only invoked when a random frequency
  /// is enabled, so the deterministic baseline consumes no randomness.
  std::uint64_t next_random();
  bool random_chance(double freq);

  static std::uint64_t luby(std::uint64_t i);

  // --- state -----------------------------------------------------------------
  bool ok_ = true;
  std::vector<std::uint32_t> arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learned_clauses_;
  std::size_t n_problem_clauses_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
  std::vector<LBool> assigns_;                 // indexed by var
  std::vector<LBool> model_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_limits_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::int32_t> heap_index_;  // var -> heap slot or -1
  std::vector<Var> heap_;
  std::vector<bool> polarity_;  // saved phase; true = assign false first

  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_to_clear_;
  std::vector<std::uint32_t> lbd_stamp_;
  std::uint32_t lbd_stamp_counter_ = 0;

  std::size_t garbage_words_ = 0;
  SolverStats stats_;
  SolverLimits limits_;
  SolverConfig config_;
  bool limit_fired_ = false;
  bool cancelled_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::chrono::steady_clock::time_point solve_start_;
  std::uint64_t conflicts_at_solve_start_ = 0;
  std::uint64_t time_check_countdown_ = 0;

  std::uint64_t max_learned_ = 8192;
  ProofTracer* proof_ = nullptr;

  // --- inprocessing (sat/inprocess.hpp drives these through friendship) --
  bool ipc_is_frozen(Var v) const {
    return static_cast<std::size_t>(v) < ipc_frozen_.size() &&
           ipc_frozen_[v];
  }
  InprocessConfig ipc_;
  InprocessStats ipc_stats_;
  /// Cumulative-conflict threshold for the next pass (spans solve calls).
  std::uint64_t ipc_next_conflicts_ = 0;
  /// Stale-pass spacing multiplier (doubles on zero-yield passes up to
  /// InprocessConfig::stale_backoff_max, resets to 1 on any yield).
  std::uint64_t ipc_backoff_ = 1;
  /// Rotating vivification cursors into the clause lists.
  std::size_t ipc_viv_learned_cursor_ = 0;
  std::size_t ipc_viv_problem_cursor_ = 0;
  /// Rotating start offset for the subsumption window.
  std::size_t ipc_subsume_cursor_ = 0;
  std::vector<bool> ipc_frozen_;  // indexed by var, lazily sized
};

}  // namespace ril::sat
