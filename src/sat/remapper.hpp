// Outer <-> inner variable renumbering for preprocessed formulas.
//
// After bounded variable elimination the surviving variables can be packed
// into a dense range before the simplified formula is handed to the CDCL
// members. The Remapper records that bijection between *outer* variables
// (the numbering encoders and callers speak) and *inner* variables (the
// numbering the solvers see) and translates literals, clauses, assumptions
// and models across it. Two constructions exist:
//
//  * identity(n)   -- every outer var maps to itself. Used whenever DRAT
//                     proof logging is active: the trace's literal
//                     numbering must match the original formula so an
//                     independent checker (and `ril check-proof`) can
//                     replay it without a translation table.
//  * compacting(keep) -- outer vars with keep[v] == true are assigned
//                     dense inner ids in outer order; eliminated vars map
//                     to nothing and are reconstructed from the
//                     elimination stack (Preprocessor::extend_model).
//
// The map stays extendable: variables created after preprocessing are
// appended through append(), so incremental use (fresh DIP-constraint
// variables between solve() calls) keeps working.
#pragma once

#include <cstddef>
#include <vector>

#include "sat/types.hpp"

namespace ril::sat {

class Remapper {
 public:
  Remapper() = default;

  /// Identity map over outer vars [0, n).
  static Remapper identity(std::size_t n);
  /// Dense map keeping exactly the outer vars with keep[v] == true.
  static Remapper compacting(const std::vector<bool>& keep);

  std::size_t outer_count() const { return to_inner_.size(); }
  std::size_t inner_count() const { return to_outer_.size(); }

  /// True iff the outer var survived into the inner formula.
  bool maps(Var outer) const {
    return outer >= 0 && static_cast<std::size_t>(outer) < to_inner_.size() &&
           to_inner_[outer] != kNoVar;
  }
  /// Inner id of a surviving outer var (kNoVar for eliminated ones).
  Var to_inner(Var outer) const {
    if (outer < 0 || static_cast<std::size_t>(outer) >= to_inner_.size()) {
      return kNoVar;
    }
    return to_inner_[outer];
  }
  Var to_outer(Var inner) const {
    if (inner < 0 || static_cast<std::size_t>(inner) >= to_outer_.size()) {
      return kNoVar;
    }
    return to_outer_[inner];
  }

  /// Literal translation; the variable must map (checked by the caller).
  Lit lit_to_inner(Lit l) const {
    return Lit::make(to_inner_[l.var()], l.sign());
  }
  Lit lit_to_outer(Lit l) const {
    return Lit::make(to_outer_[l.var()], l.sign());
  }

  /// Translates a whole clause into inner numbering. Returns false (and
  /// leaves `out` unspecified) if any variable was eliminated.
  bool clause_to_inner(const Clause& outer, Clause& out) const;

  /// Registers a fresh outer/inner pair created after preprocessing.
  void append(Var outer, Var inner);

 private:
  std::vector<Var> to_inner_;  // outer -> inner or kNoVar
  std::vector<Var> to_outer_;  // inner -> outer
};

}  // namespace ril::sat
