#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "sat/proof.hpp"

namespace ril::sat {

namespace {
constexpr double kActivityRescale = 1e100;
}  // namespace

Solver::Solver() { arena_.reserve(1 << 16); }

void Solver::set_config(const SolverConfig& config) {
  config_ = config;
  max_learned_ = config.max_learned;
  // A zero xorshift state would be absorbing; mix the seed instead.
  rng_state_ = config.seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
}

void Solver::set_inprocess(const InprocessConfig& config) {
  ipc_ = config;
  ipc_next_conflicts_ = stats_.conflicts + config.interval_base;
}

void Solver::freeze_inprocess(Var v) {
  if (static_cast<std::size_t>(v) >= ipc_frozen_.size()) {
    ipc_frozen_.resize(static_cast<std::size_t>(v) + 1, false);
  }
  ipc_frozen_[v] = true;
}

void Solver::freeze_inprocess(const std::vector<Var>& vars) {
  for (Var v : vars) freeze_inprocess(v);
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  model_.push_back(LBool::kUndef);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  polarity_.push_back(config_.init_phase_true);
  seen_.push_back(false);
  lbd_stamp_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::ensure_var(Var v) {
  while (static_cast<Var>(assigns_.size()) <= v) new_var();
}

Solver::ClauseRef Solver::alloc_clause(const Clause& lits, bool learned) {
  const ClauseRef cref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                   (learned ? 2u : 0u));
  arena_.push_back(0);  // lbd
  for (Lit l : lits) {
    arena_.push_back(static_cast<std::uint32_t>(l.code));
  }
  return cref;
}

void Solver::attach(ClauseRef cref) {
  ClauseView c = view(cref);
  assert(c.size() >= 2);
  watches_[(~c.lit(0)).code].push_back({cref, c.lit(1)});
  watches_[(~c.lit(1)).code].push_back({cref, c.lit(0)});
}

void Solver::detach(ClauseRef cref) {
  ClauseView c = view(cref);
  for (int i = 0; i < 2; ++i) {
    auto& list = watches_[(~c.lit(i)).code];
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (list[j].cref == cref) {
        list[j] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(Clause lits) {
  if (!ok_) return false;
  assert(decision_level() == 0);
  // The as-given clause is an axiom of the trace; the checker replays the
  // same root simplification through its own unit propagation.
  if (proof_) proof_->original(lits);
  // Root-level simplification: sort, dedup, drop false literals, detect
  // tautologies and satisfied clauses.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  Clause simplified;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    ensure_var(l.var());
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) == LBool::kFalse || l == prev) continue;     // drop
    simplified.push_back(l);
    prev = l;
  }
  ++n_problem_clauses_;
  if (simplified.empty()) {
    ok_ = false;
    if (proof_) proof_->derive({});
    return false;
  }
  if (simplified.size() == 1) {
    enqueue(simplified[0], kNoClause);
    ok_ = (propagate() == kNoClause);
    if (!ok_ && proof_) proof_->derive({});
    return ok_;
  }
  const ClauseRef cref = alloc_clause(simplified, /*learned=*/false);
  problem_clauses_.push_back(cref);
  attach(cref);
  return true;
}

bool Solver::verify_model(const std::vector<Lit>& assumptions) const {
  // Replays the last model against the stored problem clauses. Clauses
  // dropped at add_clause time were satisfied by root-level assignments,
  // which the model snapshot includes, so checking the stored set plus
  // the assumptions covers the full formula.
  auto model_true = [this](Lit l) {
    if (l.var() >= static_cast<Var>(model_.size())) return false;
    const LBool v = model_[l.var()];
    return (l.sign() ? negate(v) : v) == LBool::kTrue;
  };
  for (Lit a : assumptions) {
    if (!model_true(a)) return false;
  }
  for (const ClauseRef cref : problem_clauses_) {
    const ClauseView c = ClauseView{
        const_cast<std::uint32_t*>(arena_.data()) + cref};
    if (c.deleted()) continue;
    bool satisfied = false;
    for (std::uint32_t i = 0; i < c.size() && !satisfied; ++i) {
      satisfied = model_true(c.lit(i));
    }
    if (!satisfied) return false;
  }
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == LBool::kUndef);
  const Var v = l.var();
  assigns_[v] = l.sign() ? LBool::kFalse : LBool::kTrue;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef conflict = kNoClause;
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& list = watches_[p.code];
    std::size_t keep = 0;
    std::size_t i = 0;
    for (; i < list.size(); ++i) {
      const Watcher w = list[i];
      if (value(w.blocker) == LBool::kTrue) {
        list[keep++] = w;
        continue;
      }
      ClauseView c = view(w.cref);
      // Normalize: the false literal (~p) to position 1.
      const Lit not_p = ~p;
      if (c.lit(0) == not_p) {
        c.set_lit(0, c.lit(1));
        c.set_lit(1, not_p);
      }
      assert(c.lit(1) == not_p);
      const Lit first = c.lit(0);
      if (first != w.blocker && value(first) == LBool::kTrue) {
        list[keep++] = {w.cref, first};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (value(c.lit(k)) != LBool::kFalse) {
          c.set_lit(1, c.lit(k));
          c.set_lit(k, not_p);
          watches_[(~c.lit(1)).code].push_back({w.cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      list[keep++] = {w.cref, first};
      if (value(first) == LBool::kFalse) {
        conflict = w.cref;
        propagate_head_ = trail_.size();
        // Keep the remaining watchers.
        for (++i; i < list.size(); ++i) list[keep++] = list[i];
        break;
      }
      enqueue(first, w.cref);
    }
    list.resize(keep);
    if (conflict != kNoClause) break;
  }
  return conflict;
}

void Solver::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const std::uint32_t bound = trail_limits_[target_level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    polarity_[v] = assigns_[v] == LBool::kTrue;
    assigns_[v] = LBool::kUndef;
    reason_[v] = kNoClause;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(bound);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

void Solver::analyze(ClauseRef conflict, Clause& out_learned, int& out_level,
                     std::uint32_t& out_lbd) {
  out_learned.clear();
  out_learned.push_back(kLitUndef);  // slot for the asserting literal
  int path_count = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();

  ClauseRef cref = conflict;
  do {
    assert(cref != kNoClause);
    ClauseView c = view(cref);
    if (c.learned()) clause_bump(c);
    for (std::uint32_t j = (p == kLitUndef) ? 0 : 1; j < c.size(); ++j) {
      const Lit q = c.lit(j);
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        var_bump(v);
        seen_[v] = true;
        analyze_to_clear_.push_back(q);
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          out_learned.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index - 1].var()]) --index;
    --index;
    p = trail_[index];
    cref = reason_[p.var()];
    seen_[p.var()] = false;
    --path_count;
  } while (path_count > 0);
  out_learned[0] = ~p;

  // Recursive minimization.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learned.size(); ++i) {
    abstract_levels |= 1u << (level_[out_learned[i].var()] & 31);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < out_learned.size(); ++i) {
    const Lit l = out_learned[i];
    if (reason_[l.var()] == kNoClause ||
        !literal_redundant(l, abstract_levels)) {
      out_learned[kept++] = l;
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learned.resize(kept);

  // Find backtrack level and move that literal to slot 1.
  if (out_learned.size() == 1) {
    out_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learned.size(); ++i) {
      if (level_[out_learned[i].var()] > level_[out_learned[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap(out_learned[1], out_learned[max_i]);
    out_level = level_[out_learned[1].var()];
  }

  // LBD = number of distinct decision levels in the learned clause.
  ++lbd_stamp_counter_;
  out_lbd = 0;
  for (Lit l : out_learned) {
    const int lvl = level_[l.var()];
    if (lvl > 0 &&
        lbd_stamp_[static_cast<std::size_t>(lvl) % lbd_stamp_.size()] !=
            lbd_stamp_counter_) {
      lbd_stamp_[static_cast<std::size_t>(lvl) % lbd_stamp_.size()] =
          lbd_stamp_counter_;
      ++out_lbd;
    }
  }

  for (Lit l : analyze_to_clear_) seen_[l.var()] = false;
  analyze_to_clear_.clear();
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_to_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit current = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[current.var()] != kNoClause);
    ClauseView c = view(reason_[current.var()]);
    for (std::uint32_t i = 1; i < c.size(); ++i) {
      const Lit p = c.lit(i);
      const Var v = p.var();
      if (!seen_[v] && level_[v] > 0) {
        if (reason_[v] != kNoClause &&
            ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
          seen_[v] = true;
          analyze_stack_.push_back(p);
          analyze_to_clear_.push_back(p);
        } else {
          for (std::size_t j = top; j < analyze_to_clear_.size(); ++j) {
            seen_[analyze_to_clear_[j].var()] = false;
          }
          analyze_to_clear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

void Solver::emit_assumption_core(ClauseRef conflict, Lit failed) {
  if (!proof_) return;
  Clause out;
  std::size_t pending = 0;
  const auto mark = [&](Lit l) {
    const Var v = l.var();
    if (level_[v] > 0 && !seen_[v]) {
      seen_[v] = true;
      ++pending;
    }
  };
  if (conflict != kNoClause) {
    ClauseView c = view(conflict);
    for (std::uint32_t i = 0; i < c.size(); ++i) mark(c.lit(i));
  } else {
    out.push_back(~failed);
    mark(failed);
  }
  // Every marked variable is assigned above level 0, so it sits on the
  // trail at or past the first decision mark; walk top-down, swapping
  // marks for either an assumption (pseudo-decisions are the only
  // decisions at these levels) or the antecedent's literals.
  const std::size_t bottom =
      trail_limits_.empty() ? trail_.size() : trail_limits_[0];
  for (std::size_t i = trail_.size(); pending > 0 && i-- > bottom;) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    seen_[v] = false;
    --pending;
    const ClauseRef r = reason_[v];
    if (r == kNoClause) {
      out.push_back(~trail_[i]);
    } else {
      ClauseView c = view(r);
      for (std::uint32_t k = 0; k < c.size(); ++k) {
        if (c.lit(k).var() != v) mark(c.lit(k));
      }
    }
  }
  // An empty core would read as a refutation of the formula itself;
  // structurally unreachable (the conflict involves some assumption),
  // but never emit it.
  if (!out.empty()) proof_->derive(out);
}

void Solver::var_bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kActivityRescale) {
    for (double& a : activity_) a *= 1.0 / kActivityRescale;
    var_inc_ *= 1.0 / kActivityRescale;
  }
  if (heap_contains(v)) heap_up(heap_index_[v]);
}

void Solver::var_decay() { var_inc_ *= 1.0 / config_.var_decay; }

void Solver::clause_bump(ClauseView c) {
  // LBD refresh: recompute is costly; we just age via a small decrement.
  if (c.lbd() > 2) c.set_lbd(c.lbd() - 1);
}

void Solver::heap_insert(Var v) {
  heap_index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_.size() - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_index_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_index_[heap_[0]] = 0;
    heap_.pop_back();
    heap_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heap_up(std::size_t idx) {
  const Var v = heap_[idx];
  while (idx > 0) {
    const std::size_t parent = (idx - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[idx] = heap_[parent];
    heap_index_[heap_[idx]] = static_cast<std::int32_t>(idx);
    idx = parent;
  }
  heap_[idx] = v;
  heap_index_[v] = static_cast<std::int32_t>(idx);
}

void Solver::heap_down(std::size_t idx) {
  const Var v = heap_[idx];
  while (true) {
    const std::size_t left = 2 * idx + 1;
    if (left >= heap_.size()) break;
    const std::size_t right = left + 1;
    const std::size_t best =
        (right < heap_.size() &&
         activity_[heap_[right]] > activity_[heap_[left]])
            ? right
            : left;
    if (activity_[heap_[best]] <= activity_[v]) break;
    heap_[idx] = heap_[best];
    heap_index_[heap_[idx]] = static_cast<std::int32_t>(idx);
    idx = best;
  }
  heap_[idx] = v;
  heap_index_[v] = static_cast<std::int32_t>(idx);
}

Lit Solver::pick_branch_literal() {
  Var v = kNoVar;
  // Diversification: occasionally branch on a random heap entry instead of
  // the VSIDS maximum. The entry stays in the heap; later pops skip it
  // while it is assigned, and backtracking re-inserts only if absent.
  if (config_.random_branch_freq > 0 && !heap_.empty() &&
      random_chance(config_.random_branch_freq)) {
    const Var candidate =
        heap_[next_random() % heap_.size()];
    if (assigns_[candidate] == LBool::kUndef) {
      v = candidate;
      ++stats_.random_decisions;
    }
  }
  while (v == kNoVar && !heap_.empty()) {
    const Var top = heap_pop();
    if (assigns_[top] == LBool::kUndef) v = top;
  }
  if (v == kNoVar) return kLitUndef;
  bool phase = polarity_[v];
  if (config_.random_polarity_freq > 0 &&
      random_chance(config_.random_polarity_freq)) {
    phase = next_random() & 1;
  }
  return Lit::make(v, !phase);
}

std::uint64_t Solver::next_random() {
  // xorshift64* (Marsaglia / Vigna).
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545f4914f6cdd1dull;
}

bool Solver::random_chance(double freq) {
  return static_cast<double>(next_random() >> 11) *
             (1.0 / 9007199254740992.0) <
         freq;
}

void Solver::reduce_learned_db() {
  // Keep the better half by (low LBD, then recency implied by order).
  std::vector<ClauseRef> sorted = learned_clauses_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [this](ClauseRef a, ClauseRef b) {
                     return view(a).lbd() < view(b).lbd();
                   });
  const std::size_t keep_target = sorted.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(sorted.size());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const ClauseRef cref = sorted[i];
    ClauseView c = view(cref);
    // Inprocessing deletes learned clauses without pruning this list;
    // re-erasing one here would double-delete it in the proof trace.
    if (c.deleted()) continue;
    bool is_reason = false;
    // A clause is locked if it is the reason of its first literal.
    const Var v0 = c.lit(0).var();
    if (reason_[v0] == cref && assigns_[v0] != LBool::kUndef) {
      is_reason = true;
    }
    if (i < keep_target || is_reason || c.lbd() <= 2 || c.size() <= 2) {
      kept.push_back(cref);
    } else {
      if (proof_) {
        Clause removed_lits;
        removed_lits.reserve(c.size());
        for (std::uint32_t j = 0; j < c.size(); ++j) {
          removed_lits.push_back(c.lit(j));
        }
        proof_->erase(removed_lits);
      }
      detach(cref);
      c.mark_deleted();
      garbage_words_ += c.size() + 2;
      ++removed;
    }
  }
  learned_clauses_ = std::move(kept);
  stats_.removed_clauses += removed;
}

void Solver::garbage_collect() {
  assert(decision_level() == 0);
  std::vector<std::uint32_t> fresh;
  fresh.reserve(arena_.size() - garbage_words_);
  auto move_clause = [&](ClauseRef cref) -> ClauseRef {
    const ClauseView c = ClauseView{arena_.data() + cref};
    const ClauseRef moved = static_cast<ClauseRef>(fresh.size());
    for (std::uint32_t i = 0; i < c.size() + 2; ++i) {
      fresh.push_back(arena_[cref + i]);
    }
    return moved;
  };
  // Remap while preserving watch positions (literal order is copied).
  std::unordered_map<ClauseRef, ClauseRef> remap;
  std::vector<ClauseRef> live_problem;
  live_problem.reserve(problem_clauses_.size());
  for (ClauseRef cref : problem_clauses_) {
    if (view(cref).deleted()) continue;
    const ClauseRef moved = move_clause(cref);
    remap.emplace(cref, moved);
    live_problem.push_back(moved);
  }
  problem_clauses_ = std::move(live_problem);
  std::vector<ClauseRef> live_learned;
  live_learned.reserve(learned_clauses_.size());
  for (ClauseRef cref : learned_clauses_) {
    if (view(cref).deleted()) continue;
    const ClauseRef moved = move_clause(cref);
    remap.emplace(cref, moved);
    live_learned.push_back(moved);
  }
  learned_clauses_ = std::move(live_learned);
  arena_ = std::move(fresh);
  garbage_words_ = 0;
  // Level-0 assignments may carry clause reasons.
  for (Lit l : trail_) {
    ClauseRef& reason = reason_[l.var()];
    if (reason == kNoClause) continue;
    const auto it = remap.find(reason);
    reason = it == remap.end() ? kNoClause : it->second;
  }
  // Rebuild the watch lists.
  for (auto& list : watches_) list.clear();
  for (ClauseRef cref : problem_clauses_) attach(cref);
  for (ClauseRef cref : learned_clauses_) attach(cref);
}

bool Solver::time_exhausted() {
  if (limits_.time_limit_seconds <= 0) return false;
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - solve_start_).count();
  return elapsed >= limits_.time_limit_seconds;
}

bool Solver::should_stop() {
  if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
    cancelled_ = true;
    return true;
  }
  return time_exhausted();
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Knuth's formulation of the Luby sequence (1-indexed).
  std::uint64_t k = 1;
  while ((std::uint64_t{1} << (k + 1)) <= i + 2) ++k;
  while (true) {
    if (i + 2 == (std::uint64_t{1} << k)) {
      return std::uint64_t{1} << (k - 1);
    }
    if (i + 2 < (std::uint64_t{1} << k)) {
      --k;
      continue;
    }
    i -= (std::uint64_t{1} << k) - 1;
    k = 1;
    while ((std::uint64_t{1} << (k + 1)) <= i + 2) ++k;
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  limit_fired_ = false;
  cancelled_ = false;
  if (!ok_) return Result::kUnsat;
  if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
    cancelled_ = true;
    limit_fired_ = true;
    return Result::kUnknown;
  }
  for (Lit a : assumptions) ensure_var(a.var());

  solve_start_ = std::chrono::steady_clock::now();
  conflicts_at_solve_start_ = stats_.conflicts;
  std::uint64_t restart_index = 0;
  std::uint64_t conflicts_until_restart = luby(0) * config_.restart_base;
  std::uint64_t conflicts_this_restart = 0;
  time_check_countdown_ = 1024;

  Clause learned;
  const auto assumption_count = static_cast<int>(assumptions.size());

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        ok_ = false;
        if (proof_) proof_->derive({});
        cancel_until(0);
        return Result::kUnsat;
      }
      if (decision_level() <= assumption_count) {
        // Conflict entirely under assumptions: UNSAT under assumptions.
        // The verdict is relative to the assumptions, not a refutation of
        // the formula, so instead of the empty clause we derive the
        // failed-assumption core -- the clause of negated assumptions this
        // conflict follows from -- which closes the certificate for this
        // solve while leaving the trace extendable.
        emit_assumption_core(conflict, kLitUndef);
        cancel_until(0);
        return Result::kUnsat;
      }
      int backtrack_level = 0;
      std::uint32_t lbd = 0;
      analyze(conflict, learned, backtrack_level, lbd);
      // The 1-UIP clause (after minimization) is RUP by construction.
      if (proof_) proof_->derive(learned);
      // Never undo assumption decisions on learning.
      cancel_until(std::max(backtrack_level, 0));
      if (learned.size() == 1) {
        if (decision_level() > 0 && value(learned[0]) == LBool::kUndef) {
          enqueue(learned[0], kNoClause);
        } else if (decision_level() == 0) {
          if (value(learned[0]) == LBool::kFalse) {
            ok_ = false;
            if (proof_) proof_->derive({});
            return Result::kUnsat;
          }
          if (value(learned[0]) == LBool::kUndef) {
            enqueue(learned[0], kNoClause);
          }
        }
      } else {
        const ClauseRef cref = alloc_clause(learned, /*learned=*/true);
        view(cref).set_lbd(lbd);
        learned_clauses_.push_back(cref);
        attach(cref);
        enqueue(learned[0], cref);
      }
      stats_.learned_clauses += 1;
      stats_.learned_literals += learned.size();
      var_decay();

      if (limits_.conflict_limit != 0 &&
          stats_.conflicts - conflicts_at_solve_start_ >=
              limits_.conflict_limit) {
        limit_fired_ = true;
        cancel_until(0);
        return Result::kUnknown;
      }
      if (--time_check_countdown_ == 0) {
        time_check_countdown_ = 1024;
        if (should_stop()) {
          limit_fired_ = true;
          cancel_until(0);
          return Result::kUnknown;
        }
      }
      continue;
    }

    // Restart?
    if (conflicts_this_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      ++restart_index;
      conflicts_until_restart = luby(restart_index) * config_.restart_base;
      conflicts_this_restart = 0;
      cancel_until(0);
      if (learned_clauses_.size() > max_learned_) {
        reduce_learned_db();
        max_learned_ = max_learned_ + max_learned_ / 10;
      }
      if (garbage_words_ > arena_.size() / 2 && garbage_words_ > (1u << 16)) {
        garbage_collect();
      }
      // Bounded inprocessing pass once enough conflicts accumulated. The
      // threshold spans solve() calls, but a pass additionally requires
      // the *current* solve to have contributed its share of conflicts --
      // without the gate, an attack issuing hundreds of cheap incremental
      // solves crosses every cumulative interval and eats perturbation it
      // can never amortize. Runs at level 0, before assumptions are
      // re-established, so every derivation is formula-implied.
      const std::uint64_t solve_gate =
          ipc_.solve_gate_divisor == 0
              ? 0
              : ipc_.interval_base / ipc_.solve_gate_divisor;
      if (ipc_.enabled && stats_.conflicts >= ipc_next_conflicts_ &&
          stats_.conflicts - conflicts_at_solve_start_ >= solve_gate) {
        const std::uint64_t yield_before =
            ipc_stats_.vivified_clauses + ipc_stats_.subsumed_clauses +
            ipc_stats_.strengthened_clauses + ipc_stats_.failed_literals +
            ipc_stats_.hyper_binaries;
        Inprocessor inprocessor(*this);
        if (!inprocessor.run()) {
          // The pass derived the empty clause; ok_ is already false.
          return Result::kUnsat;
        }
        const std::uint64_t yield_after =
            ipc_stats_.vivified_clauses + ipc_stats_.subsumed_clauses +
            ipc_stats_.strengthened_clauses + ipc_stats_.failed_literals +
            ipc_stats_.hyper_binaries;
        // A pass that derived nothing doubles the spacing (up to the cap);
        // any yield snaps the cadence back to the base schedule.
        ipc_backoff_ = yield_after == yield_before
                           ? std::min(ipc_backoff_ * 2,
                                      std::max<std::uint64_t>(
                                          ipc_.stale_backoff_max, 1))
                           : 1;
        ipc_next_conflicts_ =
            stats_.conflicts +
            (ipc_.interval_base + ipc_stats_.passes * ipc_.interval_growth) *
                ipc_backoff_;
      }
      continue;
    }

    // Periodic stop check on long conflict-free stretches.
    if (--time_check_countdown_ == 0) {
      time_check_countdown_ = 1024;
      if (should_stop()) {
        limit_fired_ = true;
        cancel_until(0);
        return Result::kUnknown;
      }
    }

    // Establish assumptions as pseudo-decisions.
    Lit next = kLitUndef;
    while (decision_level() < assumption_count) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == LBool::kTrue) {
        new_decision_level();  // dummy level keeps indices aligned
      } else if (value(a) == LBool::kFalse) {
        // The assumption is already falsified by propagation from the
        // ones established so far; derive the responsible core.
        emit_assumption_core(kNoClause, a);
        cancel_until(0);
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }

    if (next == kLitUndef) {
      next = pick_branch_literal();
      if (next == kLitUndef) {
        // All variables assigned: SAT.
        model_.assign(assigns_.begin(), assigns_.end());
        cancel_until(0);
        return Result::kSat;
      }
      ++stats_.decisions;
    }
    new_decision_level();
    enqueue(next, kNoClause);
  }
}

}  // namespace ril::sat
