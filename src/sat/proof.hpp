// DRAT-style proof logging for the CDCL solver.
//
// A ProofTracer is an optional sink the Solver writes clause events into:
//  * original(c)  -- a problem clause as handed to add_clause (an axiom);
//  * derive(c)    -- a clause the solver claims is implied by everything
//                    logged before it (learned clauses, root-simplified
//                    units, failed-assumption cores, and the final empty
//                    clause of a refutation);
//  * erase(c)     -- a clause removed from the database (DB reduction).
//
// Because the solver is incremental, one trace interleaves original and
// derived clauses chronologically; a checker replays the stream in order,
// so clauses added between solve() calls are in scope exactly from the
// point they appeared. Every derived clause is expected to be RUP
// (reverse-unit-propagation) with respect to the live clause set at its
// position in the stream -- the property drat_check.hpp verifies. A trace
// whose last derivation is the empty clause is a closed refutation: a
// machine-checkable certificate that the logged axioms are UNSAT.
//
// Two sinks are provided: DratTrace buffers the stream in memory (small
// formulas, tests), and FileProofTracer streams it to disk in a compact
// binary encoding with bounded buffering, so certified solves on
// million-gate miters never hold the proof in RAM. TraceReader replays
// either on-disk format (binary or text) step by step, which is what the
// streaming checker in drat_check.hpp consumes.
//
// The solver holds a plain `ProofTracer*` that is nullptr by default; all
// emission sites are off the propagation hot path, so disabled tracing
// costs nothing (see docs/ARCHITECTURE.md, "Certified verdicts").
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace ril::sat {

/// Abstract clause-event sink the Solver emits into.
class ProofTracer {
 public:
  virtual ~ProofTracer() = default;
  virtual void original(const Clause& lits) = 0;
  virtual void derive(const Clause& lits) = 0;
  virtual void erase(const Clause& lits) = 0;
};

enum class ProofStepKind : std::uint8_t {
  kOriginal,  ///< axiom ('o' line)
  kDerive,    ///< claimed-RUP addition ('a' line)
  kErase,     ///< deletion ('d' line)
};

struct ProofStep {
  ProofStepKind kind;
  Clause lits;
};

/// In-memory proof trace: records the event stream verbatim.
class DratTrace final : public ProofTracer {
 public:
  void original(const Clause& lits) override {
    steps_.push_back({ProofStepKind::kOriginal, lits});
  }
  void derive(const Clause& lits) override {
    closed_ = closed_ || lits.empty();
    steps_.push_back({ProofStepKind::kDerive, lits});
  }
  void erase(const Clause& lits) override {
    steps_.push_back({ProofStepKind::kErase, lits});
  }

  const std::vector<ProofStep>& steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  /// True once the empty clause has been derived: the trace is a complete
  /// refutation candidate (checkable end-to-end by drat_check).
  bool closed() const { return closed_; }
  void clear() {
    steps_.clear();
    closed_ = false;
  }

 private:
  std::vector<ProofStep> steps_;
  bool closed_ = false;
};

/// Disk-backed proof sink: appends steps to `path() + ".tmp"` in the
/// binary format below, flushing an internal buffer in bounded chunks so
/// memory stays O(buffer) no matter how long the refutation runs.
///
/// The final file only ever appears atomically: finalize() writes the end
/// marker, fsyncs, and renames the temp over `path()` (finalize_to()
/// renames elsewhere -- how a portfolio promotes its winning member's
/// trace). A tracer destroyed without finalize() unlinks its temp, so a
/// killed process never leaves a partial trace under the published name.
class FileProofTracer final : public ProofTracer {
 public:
  /// Opens `path + ".tmp"` for writing (truncating any stale temp).
  /// Throws std::runtime_error if the temp cannot be created.
  explicit FileProofTracer(std::string path,
                           std::size_t buffer_bytes = 1 << 20);
  ~FileProofTracer() override;

  FileProofTracer(const FileProofTracer&) = delete;
  FileProofTracer& operator=(const FileProofTracer&) = delete;

  void original(const Clause& lits) override;
  void derive(const Clause& lits) override;
  void erase(const Clause& lits) override;

  std::uint64_t steps() const { return steps_; }
  /// Bytes of encoded trace so far (header + steps, buffered included).
  std::uint64_t bytes_written() const { return bytes_; }
  /// True once the empty clause has been derived.
  bool closed() const { return closed_; }
  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }
  bool finalized() const { return fd_ < 0 && finalized_; }

  /// Seals the trace (end marker), flushes, fsyncs, and atomically
  /// renames the temp to path(). Idempotent; throws on I/O failure.
  void finalize() { finalize_to(path_); }
  /// Same, but publishes under `final_path` instead of path().
  void finalize_to(const std::string& final_path);
  /// Closes and deletes the temp without publishing anything. Idempotent.
  void abandon();

 private:
  void append_step(char tag, const Clause& lits);
  void flush_buffer();
  void write_raw(const char* data, std::size_t n);

  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  bool finalized_ = false;
  std::vector<char> buffer_;
  std::size_t buffer_limit_;
  std::uint64_t steps_ = 0;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

/// Streaming reader over an on-disk trace, binary or text (sniffed from
/// the leading magic byte). next() yields one step at a time in file
/// order with O(1) memory, throwing std::runtime_error -- line-numbered
/// for text, byte-offset for binary -- on malformed input. A non-empty
/// file must carry its end marker ('e' record in binary, "c end <n>"
/// comment in text); hitting EOF without one means the trace was
/// truncated and next() throws. A zero-byte file reads as a clean empty
/// trace (the caller decides whether "empty" is an error).
class TraceReader {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Fills `step` with the next step and returns true, or returns false
  /// at a well-terminated end of trace. Throws on malformed input.
  bool next(ProofStep& step);

  std::uint64_t steps_read() const { return steps_read_; }
  bool binary() const { return binary_; }

 private:
  bool next_binary(ProofStep& step);
  bool next_text(ProofStep& step);
  bool refill();
  [[noreturn]] void fail_at(const std::string& what) const;

  std::string path_;
  std::unique_ptr<std::ifstream> in_;
  bool binary_ = false;
  bool done_ = false;
  std::uint64_t steps_read_ = 0;
  std::uint64_t expected_steps_ = 0;
  bool end_marker_seen_ = false;
  // Binary-mode buffered input.
  std::vector<char> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::uint64_t byte_offset_ = 0;
  // Text-mode state.
  std::size_t line_no_ = 0;
};

// --- text serialization ----------------------------------------------------
// One step per line, DIMACS literal numbering (var 0 <-> 1, negation <-> -):
//   o <lits> 0     original clause
//   a <lits> 0     derived (claimed-RUP) clause
//   d <lits> 0     deletion
// Lines starting with 'c' are comments. This is standard DRAT extended
// with 'o' lines so an incremental trace carries its own axiom stream.
// Files written by write_trace_file additionally end with a
// "c end <step-count>" marker so readers can reject truncated traces.

void write_trace(std::ostream& out, const DratTrace& trace);
std::string write_trace_string(const DratTrace& trace);
/// Writes the text form plus end marker to `path + ".tmp"`, fsyncs, and
/// atomically renames into place -- a crash mid-write never leaves a
/// partial file under `path`.
void write_trace_file(const std::string& path, const DratTrace& trace);

/// Parses a trace; throws std::runtime_error with a line number on
/// malformed input. The stream readers accept traces without an end
/// marker (in-memory strings cannot be truncated by a crash) but still
/// validate one when present.
DratTrace read_trace(std::istream& in);
DratTrace read_trace_string(const std::string& text);
/// File reader: rejects truncated traces (missing or mismatched end
/// marker) and garbage with line-numbered errors. Reads both formats.
DratTrace read_trace_file(const std::string& path);

// --- binary serialization --------------------------------------------------
// Layout: 6-byte magic {0x8F,'D','R','A','T',0x01}, then records:
//   'o'|'a'|'d'  varint(lit.code+2)*  0x00        one step
//   'e'          varint(step-count)               end marker (required)
// Varints are LSB-first 7-bit groups with the high bit as continuation.
// Literal codes are offset by 2 so the 0x00 clause terminator can never
// collide with an encoded literal (mirroring the binary-DRAT convention
// of mapping DIMACS lit v to 2|v|+sign).

/// First byte of the binary format; lets readers sniff binary vs text.
inline constexpr unsigned char kBinaryTraceMagic0 = 0x8F;

}  // namespace ril::sat
