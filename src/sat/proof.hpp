// DRAT-style proof logging for the CDCL solver.
//
// A ProofTracer is an optional sink the Solver writes clause events into:
//  * original(c)  -- a problem clause as handed to add_clause (an axiom);
//  * derive(c)    -- a clause the solver claims is implied by everything
//                    logged before it (learned clauses, root-simplified
//                    units, and the final empty clause of a refutation);
//  * erase(c)     -- a clause removed from the database (DB reduction).
//
// Because the solver is incremental, one trace interleaves original and
// derived clauses chronologically; a checker replays the stream in order,
// so clauses added between solve() calls are in scope exactly from the
// point they appeared. Every derived clause is expected to be RUP
// (reverse-unit-propagation) with respect to the live clause set at its
// position in the stream -- the property drat_check.hpp verifies. A trace
// whose last derivation is the empty clause is a closed refutation: a
// machine-checkable certificate that the logged axioms are UNSAT.
//
// The solver holds a plain `ProofTracer*` that is nullptr by default; all
// emission sites are off the propagation hot path, so disabled tracing
// costs nothing (see docs/ARCHITECTURE.md, "Certified verdicts").
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace ril::sat {

/// Abstract clause-event sink the Solver emits into.
class ProofTracer {
 public:
  virtual ~ProofTracer() = default;
  virtual void original(const Clause& lits) = 0;
  virtual void derive(const Clause& lits) = 0;
  virtual void erase(const Clause& lits) = 0;
};

enum class ProofStepKind : std::uint8_t {
  kOriginal,  ///< axiom ('o' line)
  kDerive,    ///< claimed-RUP addition ('a' line)
  kErase,     ///< deletion ('d' line)
};

struct ProofStep {
  ProofStepKind kind;
  Clause lits;
};

/// In-memory proof trace: records the event stream verbatim.
class DratTrace final : public ProofTracer {
 public:
  void original(const Clause& lits) override {
    steps_.push_back({ProofStepKind::kOriginal, lits});
  }
  void derive(const Clause& lits) override {
    closed_ = closed_ || lits.empty();
    steps_.push_back({ProofStepKind::kDerive, lits});
  }
  void erase(const Clause& lits) override {
    steps_.push_back({ProofStepKind::kErase, lits});
  }

  const std::vector<ProofStep>& steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  /// True once the empty clause has been derived: the trace is a complete
  /// refutation candidate (checkable end-to-end by drat_check).
  bool closed() const { return closed_; }
  void clear() {
    steps_.clear();
    closed_ = false;
  }

 private:
  std::vector<ProofStep> steps_;
  bool closed_ = false;
};

// --- text serialization ----------------------------------------------------
// One step per line, DIMACS literal numbering (var 0 <-> 1, negation <-> -):
//   o <lits> 0     original clause
//   a <lits> 0     derived (claimed-RUP) clause
//   d <lits> 0     deletion
// Lines starting with 'c' are comments. This is standard DRAT extended
// with 'o' lines so an incremental trace carries its own axiom stream.

void write_trace(std::ostream& out, const DratTrace& trace);
std::string write_trace_string(const DratTrace& trace);
void write_trace_file(const std::string& path, const DratTrace& trace);

/// Parses a trace; throws std::runtime_error with a line number on
/// malformed input.
DratTrace read_trace(std::istream& in);
DratTrace read_trace_string(const std::string& text);
DratTrace read_trace_file(const std::string& path);

}  // namespace ril::sat
