#include "sat/inprocess.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "sat/preprocessor.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace ril::sat {

bool Inprocessor::run() {
  assert(s_.decision_level() == 0);
  ++s_.ipc_stats_.passes;
  if (!vivify_pass()) return false;
  if (!subsume_pass()) return false;
  return probe_pass();
}

bool Inprocessor::is_reason_locked(std::uint32_t cref) const {
  const auto c = s_.view(cref);
  const Var v0 = c.lit(0).var();
  return s_.reason_[v0] == cref && s_.assigns_[v0] != LBool::kUndef;
}

bool Inprocessor::binary_exists(Lit a, Lit b) const {
  // A live binary watching `a` sits in the list indexed by ~a's negation.
  const auto& list = s_.watches_[(~a).code];
  for (const auto& w : list) {
    const auto c = s_.view(w.cref);
    if (c.size() != 2) continue;
    const Lit l0 = c.lit(0);
    const Lit l1 = c.lit(1);
    if ((l0 == a && l1 == b) || (l0 == b && l1 == a)) return true;
  }
  return false;
}

void Inprocessor::delete_clause(std::uint32_t cref) {
  auto c = s_.view(cref);
  if (s_.proof_) {
    Clause removed;
    removed.reserve(c.size());
    for (std::uint32_t i = 0; i < c.size(); ++i) removed.push_back(c.lit(i));
    // The stored literal set can differ from any clause the checker holds:
    // add_clause logs the as-given clause but stores a root-simplified
    // version, and preprocessed formulas are fed silently. Deriving the
    // stored set first (RUP from its parent plus root units, all of which
    // the checker replays) guarantees the deletion line always matches.
    if (!c.learned()) s_.proof_->derive(removed);
    s_.proof_->erase(removed);
  }
  s_.detach(cref);
  c.mark_deleted();
  s_.garbage_words_ += c.size() + 2;
}

std::uint32_t Inprocessor::replace_clause(std::uint32_t cref,
                                          const Clause& kept,
                                          std::vector<std::uint32_t>& list,
                                          bool learned, bool& unsat) {
  const std::uint32_t old_lbd = s_.view(cref).lbd();
  delete_clause(cref);
  if (kept.empty()) {
    s_.ok_ = false;
    if (s_.proof_) s_.proof_->derive({});
    unsat = true;
    return Solver::kNoClause;
  }
  if (kept.size() == 1) {
    // Collapsed to a root unit; the derive step is already in the trace.
    const LBool v = s_.value(kept[0]);
    if (v == LBool::kTrue) return Solver::kNoClause;
    if (v == LBool::kFalse || [&] {
          s_.enqueue(kept[0], Solver::kNoClause);
          return s_.propagate() != Solver::kNoClause;
        }()) {
      s_.ok_ = false;
      if (s_.proof_) s_.proof_->derive({});
      unsat = true;
    }
    return Solver::kNoClause;
  }
  // Install exactly the derived literals (so a future erase matches the
  // checker's database), but order undefined literals first: root
  // propagation during this pass may have falsified some of them, and
  // watches want the live ones.
  Clause ordered = kept;
  std::stable_partition(ordered.begin(), ordered.end(), [this](Lit l) {
    return s_.value(l) != LBool::kFalse;
  });
  if (s_.value(ordered[0]) == LBool::kFalse) {
    // Every literal is already root-false: the formula is refuted.
    s_.ok_ = false;
    if (s_.proof_) s_.proof_->derive({});
    unsat = true;
    return Solver::kNoClause;
  }
  if (s_.value(ordered[1]) == LBool::kFalse) {
    // Effectively unit under the root assignment: propagate instead of
    // installing a clause whose second watch is already dead.
    if (s_.value(ordered[0]) == LBool::kUndef) {
      s_.enqueue(ordered[0], Solver::kNoClause);
      if (s_.propagate() != Solver::kNoClause) {
        s_.ok_ = false;
        if (s_.proof_) s_.proof_->derive({});
        unsat = true;
      }
    }
    return Solver::kNoClause;
  }
  const std::uint32_t replacement = s_.alloc_clause(ordered, learned);
  auto nc = s_.view(replacement);
  if (learned) {
    const std::uint32_t size = static_cast<std::uint32_t>(ordered.size());
    nc.set_lbd(old_lbd > 0 ? std::min(old_lbd, size) : size);
  }
  list.push_back(replacement);
  s_.attach(replacement);
  return replacement;
}

// ---------------------------------------------------------------------------
// Vivification
// ---------------------------------------------------------------------------

bool Inprocessor::vivify_pass() {
  bool unsat = false;
  // Split the budget between learned and long problem clauses so a large
  // learned DB cannot starve the originals.
  auto sweep = [&](std::vector<std::uint32_t>& list, std::size_t& cursor,
                   bool learned, std::uint32_t budget) -> std::uint32_t {
    if (list.empty()) return budget;
    std::size_t attempts = list.size();
    while (budget > 0 && attempts-- > 0 && !unsat) {
      if (cursor >= list.size()) cursor = 0;
      const std::uint32_t cref = list[cursor++];
      const auto c = s_.view(cref);
      if (c.deleted()) continue;
      if (c.size() < 3 || c.size() > s_.ipc_.vivify_max_size) continue;
      if (is_reason_locked(cref)) continue;
      --budget;
      ++s_.ipc_stats_.vivify_checked;
      vivify_clause(cref, learned, unsat);
    }
    return budget;
  };
  const std::uint32_t total = s_.ipc_.vivify_budget;
  std::uint32_t left = sweep(s_.learned_clauses_, s_.ipc_viv_learned_cursor_,
                             /*learned=*/true, total - total / 2);
  left = sweep(s_.problem_clauses_, s_.ipc_viv_problem_cursor_,
               /*learned=*/false, total / 2 + left);
  if (left > 0 && !unsat) {
    sweep(s_.learned_clauses_, s_.ipc_viv_learned_cursor_, /*learned=*/true,
          left);
  }
  return !unsat;
}

void Inprocessor::vivify_clause(std::uint32_t cref, bool learned,
                                bool& unsat) {
  auto c = s_.view(cref);
  // Root filter: a root-true literal satisfies the clause forever; drop
  // it outright. Root-false literals are dropped from the clause.
  Clause lits;
  lits.reserve(c.size());
  bool satisfied = false;
  for (std::uint32_t i = 0; i < c.size() && !satisfied; ++i) {
    const Lit l = c.lit(i);
    const LBool v = s_.value(l);
    if (v == LBool::kTrue) satisfied = true;
    if (v == LBool::kUndef) lits.push_back(l);
  }
  if (satisfied) {
    delete_clause(cref);
    return;
  }
  bool shrunk = lits.size() < c.size();
  // Assume the negation of each surviving literal in turn. An implied or
  // conflicting step proves the kept prefix and truncates the clause;
  // literals falsified by the prefix are dropped (they cannot help).
  // Detach first so propagation cannot use the clause under inspection.
  s_.detach(cref);
  Clause kept;
  kept.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    const LBool v = s_.value(l);
    if (v == LBool::kTrue) {
      // The negated prefix implies l: prefix + l replaces the clause.
      kept.push_back(l);
      if (i + 1 < lits.size()) shrunk = true;
      break;
    }
    if (v == LBool::kFalse) {
      shrunk = true;
      continue;
    }
    kept.push_back(l);
    s_.new_decision_level();
    s_.enqueue(~l, Solver::kNoClause);
    if (s_.propagate() != Solver::kNoClause) {
      // The negated prefix is contradictory: the prefix is implied.
      if (i + 1 < lits.size()) shrunk = true;
      break;
    }
  }
  s_.cancel_until(0);
  if (!shrunk) {
    s_.attach(cref);
    return;
  }
  ++s_.ipc_stats_.vivified_clauses;
  s_.ipc_stats_.vivified_literals += c.size() - kept.size();
  // Derive the shrunken clause while the parent still sits in the
  // checker's database (the parent anchors the RUP check), then retire
  // the parent.
  if (s_.proof_) s_.proof_->derive(kept);
  replace_clause(cref, kept,
                 learned ? s_.learned_clauses_ : s_.problem_clauses_,
                 learned, unsat);
}

// ---------------------------------------------------------------------------
// Window subsumption
// ---------------------------------------------------------------------------

namespace {

/// One clause snapshotted into the subsumption window.
struct WindowEntry {
  std::uint32_t cref = 0;
  Clause lits;  // sorted by literal code
  std::uint64_t sig = 0;
  bool learned = false;
  bool dead = false;
};

}  // namespace

bool Inprocessor::subsume_pass() {
  // Snapshot a rotating window of live clauses (learned and problem
  // alike, so learned clauses subsume and strengthen originals too).
  const auto& learned = s_.learned_clauses_;
  const auto& problem = s_.problem_clauses_;
  const std::size_t nl = learned.size();
  const std::size_t total = nl + problem.size();
  if (total < 2) return true;
  std::vector<WindowEntry> window;
  window.reserve(std::min<std::size_t>(s_.ipc_.subsume_budget, total));
  std::size_t scanned = 0;
  for (; scanned < total && window.size() < s_.ipc_.subsume_budget;
       ++scanned) {
    const std::size_t pos = (s_.ipc_subsume_cursor_ + scanned) % total;
    const std::uint32_t cref = pos < nl ? learned[pos] : problem[pos - nl];
    const auto c = s_.view(cref);
    if (c.deleted() || c.size() > 64) continue;
    WindowEntry e;
    e.cref = cref;
    e.learned = pos < nl;
    e.lits.reserve(c.size());
    bool clean = true;
    for (std::uint32_t i = 0; i < c.size() && clean; ++i) {
      const Lit l = c.lit(i);
      clean = s_.value(l) == LBool::kUndef;
      e.lits.push_back(l);
    }
    // Root-touched clauses are vivification's job; keep the window free
    // of assigned literals so subset semantics stay textbook.
    if (!clean) continue;
    std::sort(e.lits.begin(), e.lits.end(),
              [](Lit a, Lit b) { return a.code < b.code; });
    e.sig = Preprocessor::signature(e.lits);
    window.push_back(std::move(e));
  }
  s_.ipc_subsume_cursor_ = (s_.ipc_subsume_cursor_ + scanned) % total;
  if (window.size() < 2) return true;

  // Occurrence index: (literal code, window index), sorted for range
  // lookup. Entries go stale as clauses shrink or die; every candidate
  // is re-checked against its current literals, so staleness only costs
  // wasted scans.
  std::vector<std::pair<std::int32_t, std::uint32_t>> occ;
  std::size_t occ_size = 0;
  for (const auto& e : window) occ_size += e.lits.size();
  occ.reserve(occ_size);
  for (std::uint32_t i = 0; i < window.size(); ++i) {
    for (const Lit l : window[i].lits) occ.emplace_back(l.code, i);
  }
  std::sort(occ.begin(), occ.end());
  const auto occ_range = [&occ](Lit l) {
    return std::equal_range(
        occ.begin(), occ.end(), std::make_pair(l.code, std::uint32_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
  };

  bool unsat = false;
  std::uint32_t steps = s_.ipc_.subsume_steps;
  for (std::uint32_t idx = 0; idx < window.size() && steps > 0 && !unsat;
       ++idx) {
    WindowEntry& e = window[idx];
    bool again = true;
    while (again && steps > 0 && !unsat && !e.dead) {
      again = false;
      if (is_reason_locked(e.cref)) break;
      for (std::size_t li = 0; li < e.lits.size() && !e.dead && !again;
           ++li) {
        const Lit l = e.lits[li];
        // Subsumers contain only literals of e, so scanning the
        // occurrence lists of e's own literals finds them all.
        auto [lo, hi] = occ_range(l);
        for (auto it = lo; it != hi && steps > 0; ++it) {
          const std::uint32_t di = it->second;
          if (di == idx) continue;
          const WindowEntry& d = window[di];
          if (d.dead || d.lits.size() > e.lits.size()) continue;
          if ((d.sig & ~e.sig) != 0) continue;
          --steps;
          ++s_.ipc_stats_.subsume_checked;
          if (!Preprocessor::subset_except(d.lits, e.lits, kLitUndef)) {
            continue;
          }
          delete_clause(e.cref);
          e.dead = true;
          ++s_.ipc_stats_.subsumed_clauses;
          break;
        }
        if (e.dead) break;
        // Self-subsumption: d contains ~l and d \ {~l} is a subset of e,
        // so resolving on l's variable strengthens e to e \ {l}.
        auto [flo, fhi] = occ_range(~l);
        for (auto it = flo; it != fhi && steps > 0; ++it) {
          const std::uint32_t di = it->second;
          if (di == idx) continue;
          const WindowEntry& d = window[di];
          if (d.dead || d.lits.size() > e.lits.size() + 1) continue;
          if ((d.sig & ~(e.sig | (1ull << (l.var() & 63)))) != 0) continue;
          if (std::find(d.lits.begin(), d.lits.end(), ~l) == d.lits.end()) {
            continue;  // stale occurrence entry
          }
          --steps;
          ++s_.ipc_stats_.subsume_checked;
          if (!Preprocessor::subset_except(d.lits, e.lits, ~l)) continue;
          Clause kept;
          kept.reserve(e.lits.size() - 1);
          for (const Lit k : e.lits) {
            if (k != l) kept.push_back(k);
          }
          if (s_.proof_) s_.proof_->derive(kept);
          const std::uint32_t replacement = replace_clause(
              e.cref, kept,
              e.learned ? s_.learned_clauses_ : s_.problem_clauses_,
              e.learned, unsat);
          ++s_.ipc_stats_.strengthened_clauses;
          if (replacement == Solver::kNoClause) {
            e.dead = true;  // collapsed to a unit (or refuted)
          } else {
            e.cref = replacement;
            e.lits = std::move(kept);  // still sorted
            e.sig = Preprocessor::signature(e.lits);
            again = true;
          }
          break;
        }
      }
    }
  }
  return !unsat;
}

// ---------------------------------------------------------------------------
// Failed-literal probing with hyper-binary resolution
// ---------------------------------------------------------------------------

bool Inprocessor::probe_pass() {
  // Highest-activity unassigned variables; frozen vars (attack-driven
  // assumption/key vars) are never probed.
  std::vector<Var> cands;
  cands.reserve(s_.heap_.size());
  for (const Var v : s_.heap_) {
    if (s_.assigns_[v] == LBool::kUndef && !s_.ipc_is_frozen(v)) {
      cands.push_back(v);
    }
  }
  const std::size_t k =
      std::min<std::size_t>(s_.ipc_.probe_budget, cands.size());
  std::partial_sort(cands.begin(), cands.begin() + k, cands.end(),
                    [this](Var a, Var b) {
                      return s_.activity_[a] > s_.activity_[b];
                    });
  cands.resize(k);
  std::uint32_t hbr_left = s_.ipc_.hbr_limit;
  std::vector<Lit> implied;
  for (const Var v : cands) {
    for (int pol = 0; pol < 2; ++pol) {
      const Lit l = Lit::make(v, pol == 1);
      // An earlier probe's root unit may have fixed this variable.
      if (s_.value(l) != LBool::kUndef) break;
      ++s_.ipc_stats_.probed_literals;
      const std::size_t trail_start = s_.trail_.size();
      s_.new_decision_level();
      s_.enqueue(l, Solver::kNoClause);
      if (s_.propagate() != Solver::kNoClause) {
        // Failed literal: ~l is a root unit (RUP -- the checker replays
        // this very propagation against a superset of our clauses).
        ++s_.ipc_stats_.failed_literals;
        s_.cancel_until(0);
        if (s_.proof_) s_.proof_->derive({~l});
        s_.enqueue(~l, Solver::kNoClause);
        if (s_.propagate() != Solver::kNoClause) {
          s_.ok_ = false;
          if (s_.proof_) s_.proof_->derive({});
          return false;
        }
        continue;
      }
      // Hyper-binary resolution: a literal x propagated through a reason
      // of >= 3 literals gives the binary (~l \/ x) -- one hop instead of
      // the whole chain next time.
      implied.clear();
      if (hbr_left > 0) {
        for (std::size_t t = trail_start + 1;
             t < s_.trail_.size() && implied.size() < hbr_left; ++t) {
          const Lit x = s_.trail_[t];
          const std::uint32_t r = s_.reason_[x.var()];
          if (r == Solver::kNoClause) continue;
          if (s_.view(r).size() < 3) continue;
          implied.push_back(x);
        }
      }
      s_.cancel_until(0);
      for (const Lit x : implied) {
        if (hbr_left == 0) break;
        if (binary_exists(~l, x)) continue;
        const Clause bin{~l, x};
        if (s_.proof_) s_.proof_->derive(bin);
        const std::uint32_t cref = s_.alloc_clause(bin, /*learned=*/true);
        s_.view(cref).set_lbd(2);
        s_.learned_clauses_.push_back(cref);
        s_.attach(cref);
        ++s_.ipc_stats_.hyper_binaries;
        --hbr_left;
      }
    }
  }
  return true;
}

}  // namespace ril::sat
