// SatELite-style CNF preprocessor: subsumption, self-subsuming resolution,
// and bounded variable elimination (BVE), with model reconstruction and
// optional DRAT step recording.
//
// The preprocessor is a ClauseSink-shaped staging area: callers feed it the
// problem formula, mark the variables that must survive (assumption vars,
// key vars, any var referenced after solving -- see freeze()), then call
// run(). Afterwards the simplified clause set is read back via clauses(),
// and a model of the *simplified* formula is completed into a model of the
// *original* formula with extend_model(), which replays the elimination
// stack in reverse (the MiniSat SimpSolver invariant: each eliminated
// variable is set so every clause removed on its behalf is satisfied).
//
// Techniques, applied to a fixpoint over bounded rounds:
//  * subsumption          -- if C \subseteq D, delete D;
//  * self-subsumption     -- if C \ {l} \cup {~l} \subseteq D for some
//                            l in C, remove ~l from D (strengthening);
//  * variable elimination -- replace the occurrences of a non-frozen var v
//                            by all non-tautological resolvents on v,
//                            when that does not grow the clause count
//                            beyond the configured bound. A var with
//                            single-polarity occurrences (pure literal)
//                            eliminates for free: no resolvents exist.
//
// Proof compatibility (PR 4's certification must survive preprocessing):
// with enable_proof() on, every transformation is recorded as DRAT steps.
// All additions are RUP with respect to the live clause set at their
// position -- a resolvent of C \/ v and D \/ ~v follows by assuming its
// negation and propagating v through C; a strengthened clause follows the
// same way from its self-subsumption partner -- and deletions are emitted
// only after the additions that supersede them, so a forward checker
// (sat/drat_check.hpp) accepts the stream. The portfolio replays
// originals() then trace() into each member's DratTrace before feeding the
// simplified clauses with proof logging detached, keeping the trace's
// axiom ('o') set exactly the original formula.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace ril::sat {

struct PreprocessConfig {
  bool subsumption = true;           ///< clause subsumption
  bool self_subsumption = true;      ///< strengthening via self-subsumption
  bool variable_elimination = true;  ///< bounded variable elimination
  /// BVE may grow the clause count by at most this many clauses per
  /// eliminated variable (0 = never grow, the SatELite default).
  int bve_growth = 0;
  /// BVE may grow the *literal* count by at most this many literals per
  /// eliminated variable (0 = never grow). The clause-count rule alone
  /// lets narrow parents resolve into wide resolvents -- fewer clauses,
  /// more literals, a slower solve (the table5/xor regression).
  int bve_literal_growth = 0;
  /// Skip elimination of vars occurring in more than this many clauses.
  /// With `self_tuning` this is the starting point, not a constant.
  std::size_t bve_occurrence_limit = 32;
  /// Abort an elimination that would create a resolvent wider than this.
  std::size_t bve_resolvent_limit = 8;
  /// Maximum subsume/eliminate rounds before declaring a fixpoint.
  std::size_t max_rounds = 8;
  /// Per-formula autotuning of the elimination bounds: after each round
  /// the occurrence limit doubles (up to 8x the configured base) while
  /// the observed literal count keeps shrinking, and decays back toward
  /// the base when progress stalls. Deterministic -- driven only by the
  /// staged formula.
  bool self_tuning = true;
};

struct PreprocessStats {
  std::size_t vars_before = 0;
  std::size_t vars_after = 0;  ///< non-eliminated vars
  std::size_t clauses_before = 0;
  std::size_t clauses_after = 0;
  std::size_t literals_before = 0;
  std::size_t literals_after = 0;
  std::size_t eliminated_vars = 0;
  std::size_t subsumed_clauses = 0;
  std::size_t strengthened_literals = 0;  ///< literals removed by self-subs.
  std::size_t resolvents_added = 0;
  std::size_t rounds = 0;
  /// Final self-tuned occurrence limit (== the configured base when
  /// self_tuning is off or never adjusted).
  std::size_t tuned_occurrence_limit = 0;
};

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessConfig config = PreprocessConfig{});

  // --- staging (before run) ---------------------------------------------
  Var new_var();
  void ensure_var(Var v);
  std::size_t num_vars() const { return frozen_.size(); }
  /// Stages a problem clause. Returns false once the formula is trivially
  /// contradictory (empty clause staged, or derived later by run()).
  bool add_clause(Clause lits);
  /// Protects a variable from elimination. Assumption variables, key
  /// variables, and any variable mentioned by clauses or model queries
  /// after preprocessing must be frozen before run().
  void freeze(Var v);
  void freeze(const std::vector<Var>& vars);
  bool frozen(Var v) const {
    return v >= 0 && static_cast<std::size_t>(v) < frozen_.size() &&
           frozen_[v];
  }
  /// Starts recording DRAT steps for run(); call before run().
  void enable_proof() { proof_enabled_ = true; }

  // --- simplification ----------------------------------------------------
  /// Runs subsumption / strengthening / elimination to a bounded fixpoint.
  /// Idempotent; after the first call the staged formula is simplified.
  void run();

  // --- results (after run) -----------------------------------------------
  bool contradiction() const { return contradiction_; }
  bool is_eliminated(Var v) const {
    return v >= 0 && static_cast<std::size_t>(v) < eliminated_.size() &&
           eliminated_[v];
  }
  /// Simplified clause set (live clauses, in stable insertion order).
  std::vector<Clause> clauses() const;
  /// Original formula as staged (including clauses later simplified away).
  const std::vector<Clause>& originals() const { return originals_; }
  /// DRAT steps recorded by run() ('a' resolvents/strengthenings before
  /// the 'd' lines of the clauses they supersede). Empty unless
  /// enable_proof() was called before run().
  const DratTrace& trace() const { return trace_; }

  /// Completes a model of the simplified formula (indexed by the
  /// preprocessor's variable numbering, kUndef allowed for eliminated
  /// vars) into a model of the original formula by replaying the
  /// elimination stack in reverse. `model` must have num_vars() entries.
  void extend_model(std::vector<LBool>& model) const;
  /// Checks a (extended) model against every original clause.
  bool verify_model(const std::vector<LBool>& model) const;

  const PreprocessStats& stats() const { return stats_; }

  // --- shared subsumption machinery (also used by sat/inprocess.cpp) ----
  /// Bloom signature over the clause's variables: a 64-bit superset
  /// filter -- sig(C) & ~sig(D) != 0 proves C is not a subset of D.
  static std::uint64_t signature(const Clause& lits);
  /// True iff every literal of `small` except `skip` occurs in `big`.
  /// Both clauses must be sorted by literal code.
  static bool subset_except(const Clause& small, const Clause& big,
                            Lit skip);

 private:
  struct Entry {
    Clause lits;            // sorted by literal code
    std::uint64_t sig = 0;  // bloom signature over vars
    bool deleted = false;
  };
  /// One eliminated variable with the clauses removed on its behalf.
  struct ElimRecord {
    Var var;
    std::vector<Clause> clauses;
  };

  bool stage_entry(Clause lits);  // dedup/taut-check + insert
  void delete_entry(std::size_t idx);
  void occ_remove(Lit l, std::size_t idx);

  bool subsume_round();
  bool process_subsumption(std::size_t idx);
  bool eliminate_round();
  bool try_eliminate(Var v);
  void set_contradiction();
  std::size_t live_literals() const;

  PreprocessConfig config_;
  /// Effective BVE occurrence limit (self-tuned between rounds).
  std::size_t occ_limit_ = 0;
  PreprocessStats stats_;
  std::vector<Entry> entries_;
  std::vector<std::vector<std::size_t>> occ_;  // lit code -> entry indices
  std::vector<bool> frozen_;
  std::vector<bool> eliminated_;
  std::vector<ElimRecord> elim_stack_;
  std::vector<Clause> originals_;
  std::vector<std::size_t> queue_;  // entries pending subsumption checks
  std::vector<bool> queued_;
  DratTrace trace_;
  bool proof_enabled_ = false;
  bool contradiction_ = false;
  bool ran_ = false;
};

}  // namespace ril::sat
