// Literal / variable vocabulary for the CDCL solver.
#pragma once

#include <cstdint>
#include <vector>

namespace ril::sat {

/// Variables are dense non-negative integers handed out by Solver::new_var().
using Var = std::int32_t;

inline constexpr Var kNoVar = -1;

/// A literal packs (variable, polarity) as var*2 + sign, sign==1 -> negated.
struct Lit {
  std::int32_t code = -2;

  constexpr Lit() = default;
  static constexpr Lit make(Var v, bool negated = false) {
    return Lit{v * 2 + (negated ? 1 : 0)};
  }
  constexpr Var var() const { return code >> 1; }
  constexpr bool sign() const { return code & 1; }  // true = negated
  constexpr Lit operator~() const { return Lit{code ^ 1}; }
  constexpr bool operator==(const Lit&) const = default;

 private:
  explicit constexpr Lit(std::int32_t c) : code(c) {}
  friend constexpr Lit lit_from_code(std::int32_t);
};

constexpr Lit lit_from_code(std::int32_t code) { return Lit{code}; }

inline constexpr Lit kLitUndef = Lit{};

/// Three-valued logic for assignments and model queries.
enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }
inline LBool negate(LBool v) {
  switch (v) {
    case LBool::kFalse: return LBool::kTrue;
    case LBool::kTrue: return LBool::kFalse;
    default: return LBool::kUndef;
  }
}

/// Outcome of a solve() call.
enum class Result : std::uint8_t {
  kSat,
  kUnsat,
  kUnknown,  // a resource limit fired
};

using Clause = std::vector<Lit>;

}  // namespace ril::sat
