#include "sat/preprocessor.hpp"

#include <algorithm>
#include <stdexcept>

namespace ril::sat {

namespace {

bool lit_less(Lit a, Lit b) { return a.code < b.code; }

/// Resolution outcome for one (C \/ v, D \/ ~v) pair.
enum class ResolveStatus { kOk, kTautology, kTooWide };

/// Merges two sorted clauses, dropping both literals of `pivot`.
/// Duplicate literals collapse; opposite literals of any other variable
/// make the resolvent a tautology.
ResolveStatus resolve(const Clause& a, const Clause& b, Var pivot,
                      std::size_t width_limit, Clause& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    Lit next;
    if (j >= b.size() || (i < a.size() && a[i].code <= b[j].code)) {
      next = a[i++];
    } else {
      next = b[j++];
    }
    if (next.var() == pivot) continue;
    if (!out.empty()) {
      if (out.back() == next) continue;
      if (out.back().code == (next.code ^ 1)) return ResolveStatus::kTautology;
    }
    out.push_back(next);
    if (out.size() > width_limit) return ResolveStatus::kTooWide;
  }
  return ResolveStatus::kOk;
}

}  // namespace

Preprocessor::Preprocessor(PreprocessConfig config)
    : config_(config) {}

std::uint64_t Preprocessor::signature(const Clause& lits) {
  std::uint64_t sig = 0;
  for (const Lit l : lits) sig |= 1ull << (l.var() & 63);
  return sig;
}

Var Preprocessor::new_var() {
  const Var v = static_cast<Var>(frozen_.size());
  ensure_var(v);
  return v;
}

void Preprocessor::ensure_var(Var v) {
  if (v < 0) throw std::invalid_argument("Preprocessor: negative variable");
  if (static_cast<std::size_t>(v) < frozen_.size()) return;
  frozen_.resize(v + 1, false);
  eliminated_.resize(v + 1, false);
  occ_.resize(2 * static_cast<std::size_t>(v + 1));
}

void Preprocessor::freeze(Var v) {
  ensure_var(v);
  frozen_[v] = true;
}

void Preprocessor::freeze(const std::vector<Var>& vars) {
  for (const Var v : vars) freeze(v);
}

void Preprocessor::set_contradiction() {
  contradiction_ = true;
  if (proof_enabled_ && !trace_.closed()) trace_.derive({});
}

bool Preprocessor::add_clause(Clause lits) {
  if (ran_) {
    throw std::logic_error("Preprocessor::add_clause after run()");
  }
  for (const Lit l : lits) ensure_var(l.var());
  originals_.push_back(lits);
  if (contradiction_) return false;
  return stage_entry(std::move(lits));
}

bool Preprocessor::stage_entry(Clause lits) {
  std::sort(lits.begin(), lits.end(), lit_less);
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 1; i < lits.size(); ++i) {
    if (lits[i].code == (lits[i - 1].code ^ 1)) return true;  // tautology
  }
  if (lits.empty()) {
    set_contradiction();
    return false;
  }
  const std::size_t idx = entries_.size();
  Entry entry;
  entry.sig = signature(lits);
  entry.lits = std::move(lits);
  for (const Lit l : entry.lits) occ_[l.code].push_back(idx);
  entries_.push_back(std::move(entry));
  queued_.resize(entries_.size(), false);
  queued_[idx] = true;
  queue_.push_back(idx);
  return true;
}

void Preprocessor::occ_remove(Lit l, std::size_t idx) {
  auto& list = occ_[l.code];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == idx) {
      list[i] = list.back();
      list.pop_back();
      return;
    }
  }
}

void Preprocessor::delete_entry(std::size_t idx) {
  Entry& entry = entries_[idx];
  if (entry.deleted) return;
  entry.deleted = true;
  for (const Lit l : entry.lits) occ_remove(l, idx);
}

bool Preprocessor::subset_except(const Clause& small, const Clause& big,
                                 Lit skip) {
  std::size_t j = 0;
  for (const Lit l : small) {
    if (l == skip) continue;
    while (j < big.size() && big[j].code < l.code) ++j;
    if (j >= big.size() || big[j] != l) return false;
    ++j;
  }
  return true;
}

bool Preprocessor::subsume_round() {
  bool changed = false;
  while (!queue_.empty() && !contradiction_) {
    const std::size_t idx = queue_.back();
    queue_.pop_back();
    queued_[idx] = false;
    if (entries_[idx].deleted) continue;
    if (process_subsumption(idx)) changed = true;
  }
  return changed;
}

bool Preprocessor::process_subsumption(std::size_t idx) {
  bool changed = false;
  // By value: staging a strengthened clause below reallocates entries_.
  const Clause c = entries_[idx].lits;
  const std::uint64_t c_sig = entries_[idx].sig;

  if (config_.subsumption) {
    // Backward subsumption: delete every strict superset of c. Scanning
    // only the occurrence list of c's rarest literal keeps this near
    // linear; the signature test rejects most candidates without a merge.
    Lit best = c.front();
    for (const Lit l : c) {
      if (occ_[l.code].size() < occ_[best.code].size()) best = l;
    }
    const std::vector<std::size_t> candidates = occ_[best.code];
    for (const std::size_t d_idx : candidates) {
      if (d_idx == idx) continue;
      Entry& d = entries_[d_idx];
      if (d.deleted || d.lits.size() < c.size()) continue;
      if ((c_sig & ~d.sig) != 0) continue;
      if (!subset_except(c, d.lits, kLitUndef)) continue;
      if (proof_enabled_) trace_.erase(d.lits);
      delete_entry(d_idx);
      ++stats_.subsumed_clauses;
      changed = true;
    }
  }

  if (config_.self_subsumption) {
    // Self-subsuming resolution: for l in c, if c with l flipped is a
    // subset of d, the resolvent of c and d on l.var() subsumes d, so ~l
    // can be removed from d (strengthening).
    for (const Lit l : c) {
      const auto& flip_list = occ_[(~l).code];
      if (flip_list.size() > config_.bve_occurrence_limit * 16) continue;
      const std::vector<std::size_t> candidates = flip_list;
      for (const std::size_t d_idx : candidates) {
        Entry& d = entries_[d_idx];
        if (d.deleted || d.lits.size() < c.size()) continue;
        if ((c_sig & ~d.sig) != 0) continue;
        if (!subset_except(c, d.lits, l)) continue;
        // Strengthen d: drop ~l. Proof order: the strengthened clause is
        // RUP while both parents are live, so 'a' precedes the 'd'.
        Clause strengthened;
        strengthened.reserve(d.lits.size() - 1);
        for (const Lit dl : d.lits) {
          if (dl != ~l) strengthened.push_back(dl);
        }
        if (proof_enabled_) {
          trace_.derive(strengthened);
          trace_.erase(d.lits);
        }
        delete_entry(d_idx);
        ++stats_.strengthened_literals;
        changed = true;
        if (strengthened.empty()) {
          set_contradiction();
          return true;
        }
        stage_entry(std::move(strengthened));
      }
    }
  }
  return changed;
}

bool Preprocessor::eliminate_round() {
  // Cheapest variables first: elimination cost is the number of
  // resolvent candidates |P| * |N|.
  std::vector<std::pair<std::size_t, Var>> order;
  for (Var v = 0; static_cast<std::size_t>(v) < frozen_.size(); ++v) {
    if (frozen_[v] || eliminated_[v]) continue;
    const std::size_t pos = occ_[Lit::make(v, false).code].size();
    const std::size_t neg = occ_[Lit::make(v, true).code].size();
    if (pos + neg == 0 || pos + neg > occ_limit_) continue;
    order.emplace_back(pos * neg, v);
  }
  std::sort(order.begin(), order.end());
  bool changed = false;
  for (const auto& [cost, v] : order) {
    if (contradiction_) break;
    if (try_eliminate(v)) changed = true;
  }
  return changed;
}

bool Preprocessor::try_eliminate(Var v) {
  if (frozen_[v] || eliminated_[v]) return false;
  const std::vector<std::size_t> pos = occ_[Lit::make(v, false).code];
  const std::vector<std::size_t> neg = occ_[Lit::make(v, true).code];
  if (pos.empty() && neg.empty()) return false;
  if (pos.size() + neg.size() > occ_limit_) return false;

  // Dry run: collect all non-tautological resolvents, aborting if one is
  // too wide or the clause count would grow beyond the bound. The literal
  // count is bounded separately: narrow parents can resolve into wide
  // resolvents, shrinking the clause count while growing the formula --
  // exactly the pattern that slowed the xor workload down.
  const std::size_t budget =
      pos.size() + neg.size() +
      static_cast<std::size_t>(config_.bve_growth > 0 ? config_.bve_growth
                                                      : 0);
  std::size_t removed_literals = 0;
  for (const std::size_t p : pos) removed_literals += entries_[p].lits.size();
  for (const std::size_t n : neg) removed_literals += entries_[n].lits.size();
  const std::size_t literal_budget =
      removed_literals +
      static_cast<std::size_t>(
          config_.bve_literal_growth > 0 ? config_.bve_literal_growth : 0);
  std::size_t resolvent_literals = 0;
  std::vector<Clause> resolvents;
  Clause resolvent;
  for (const std::size_t p : pos) {
    for (const std::size_t n : neg) {
      const ResolveStatus status =
          resolve(entries_[p].lits, entries_[n].lits, v,
                  config_.bve_resolvent_limit, resolvent);
      if (status == ResolveStatus::kTooWide) return false;
      if (status == ResolveStatus::kTautology) continue;
      resolvent_literals += resolvent.size();
      resolvents.push_back(resolvent);
      if (resolvents.size() > budget || resolvent_literals > literal_budget) {
        return false;
      }
    }
  }

  // Commit. Additions go into the proof before the parent deletions so
  // each resolvent is RUP while both parents are still live.
  if (proof_enabled_) {
    for (const Clause& r : resolvents) trace_.derive(r);
  }
  ElimRecord record;
  record.var = v;
  record.clauses.reserve(pos.size() + neg.size());
  for (const std::size_t p : pos) record.clauses.push_back(entries_[p].lits);
  for (const std::size_t n : neg) record.clauses.push_back(entries_[n].lits);
  for (const std::size_t p : pos) {
    if (proof_enabled_) trace_.erase(entries_[p].lits);
    delete_entry(p);
  }
  for (const std::size_t n : neg) {
    if (proof_enabled_) trace_.erase(entries_[n].lits);
    delete_entry(n);
  }
  elim_stack_.push_back(std::move(record));
  eliminated_[v] = true;
  ++stats_.eliminated_vars;
  stats_.resolvents_added += resolvents.size();
  for (Clause& r : resolvents) {
    if (r.empty()) {
      set_contradiction();
      return true;
    }
    stage_entry(std::move(r));
  }
  return true;
}

std::size_t Preprocessor::live_literals() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.deleted) n += e.lits.size();
  }
  return n;
}

void Preprocessor::run() {
  if (ran_) return;
  ran_ = true;
  stats_.vars_before = frozen_.size();
  for (const Entry& e : entries_) {
    if (e.deleted) continue;
    ++stats_.clauses_before;
    stats_.literals_before += e.lits.size();
  }
  occ_limit_ = config_.bve_occurrence_limit;

  if (!contradiction_) {
    for (std::size_t round = 0; round < config_.max_rounds; ++round) {
      ++stats_.rounds;
      const std::size_t literals_at_start = live_literals();
      bool changed = false;
      if (config_.subsumption || config_.self_subsumption) {
        changed = subsume_round();
      }
      if (!contradiction_ && config_.variable_elimination) {
        if (eliminate_round()) changed = true;
      }
      if (contradiction_ || !changed) break;
      if (config_.self_tuning && config_.variable_elimination) {
        // Formula-driven bound tuning: while a round keeps shrinking the
        // literal count by >= ~1.5%, the formula responds well and the
        // occurrence limit doubles (deeper eliminations next round, up
        // to 8x the configured base); once progress stalls the limit
        // decays back toward the base. Purely a function of the staged
        // formula, so runs stay deterministic.
        const std::size_t literals_now = live_literals();
        if (literals_now + literals_at_start / 64 < literals_at_start) {
          occ_limit_ =
              std::min(occ_limit_ * 2, config_.bve_occurrence_limit * 8);
        } else if (occ_limit_ > config_.bve_occurrence_limit) {
          occ_limit_ =
              std::max(occ_limit_ / 2, config_.bve_occurrence_limit);
        }
      }
    }
    // Clean up resolvents queued by a final elimination round.
    if (!contradiction_ && !queue_.empty()) subsume_round();
  }
  stats_.tuned_occurrence_limit = occ_limit_;

  if (contradiction_ && proof_enabled_ && !trace_.closed()) trace_.derive({});
  stats_.vars_after = stats_.vars_before - stats_.eliminated_vars;
  for (const Entry& e : entries_) {
    if (e.deleted) continue;
    ++stats_.clauses_after;
    stats_.literals_after += e.lits.size();
  }
}

std::vector<Clause> Preprocessor::clauses() const {
  std::vector<Clause> out;
  out.reserve(stats_.clauses_after);
  for (const Entry& e : entries_) {
    if (!e.deleted) out.push_back(e.lits);
  }
  return out;
}

void Preprocessor::extend_model(std::vector<LBool>& model) const {
  const auto lit_true = [&model](Lit l) {
    const LBool v = model[l.var()];
    if (v == LBool::kUndef) return false;
    return (v == LBool::kTrue) != l.sign();
  };
  // Reverse order: each record's variable may feed clauses of records
  // eliminated earlier (already replayed later in this loop's view).
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    bool need_true = false;
    for (const Clause& c : it->clauses) {
      bool satisfied = false;
      bool positive = false;
      for (const Lit l : c) {
        if (l.var() == it->var) {
          positive = positive || !l.sign();
          continue;
        }
        if (lit_true(l)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && positive) {
        need_true = true;
        break;
      }
    }
    model[it->var] = need_true ? LBool::kTrue : LBool::kFalse;
  }
}

bool Preprocessor::verify_model(const std::vector<LBool>& model) const {
  const auto lit_true = [&model](Lit l) {
    if (static_cast<std::size_t>(l.var()) >= model.size()) return false;
    const LBool v = model[l.var()];
    if (v == LBool::kUndef) return false;
    return (v == LBool::kTrue) != l.sign();
  };
  for (const Clause& c : originals_) {
    bool satisfied = false;
    for (const Lit l : c) {
      if (lit_true(l)) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    // A tautological original is satisfied by any total assignment; it
    // can still read "unsatisfied" here if its variable never got a
    // value (it was dropped at staging, so nothing constrains it).
    bool tautology = false;
    for (std::size_t i = 0; i < c.size() && !tautology; ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        if (c[i].code == (c[j].code ^ 1)) {
          tautology = true;
          break;
        }
      }
    }
    if (!tautology) return false;
  }
  return true;
}

}  // namespace ril::sat
