// Independent forward RUP checker for DratTrace refutations.
//
// check_refutation replays a proof trace in order, maintaining its own
// clause database, two-watched-literal scheme, and unit propagation --
// sharing no code with the Solver, which is the point: a soundness bug in
// the solver's watch repair, GC remapping, or assumption handling cannot
// also hide here. Each 'a' step is verified to be RUP (assume the negation
// of the clause on top of the accumulated unit-propagation fixpoint; the
// result must be a conflict); 'o' steps extend the axiom set; 'd' steps
// remove one matching clause. The trace certifies UNSAT of the logged
// axiom stream iff the empty clause is derived with a successful RUP
// check. Deletions of clauses that currently anchor a persistent
// (top-level) unit are ignored, the standard guard that keeps forward
// checking sound in the presence of DRAT deletion lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sat/proof.hpp"

namespace ril::sat {

struct DratCheckStats {
  std::size_t originals = 0;    ///< 'o' steps ingested
  std::size_t derivations = 0;  ///< 'a' steps RUP-checked
  std::size_t deletions = 0;    ///< 'd' steps applied
  std::size_t ignored_deletions = 0;  ///< 'd' steps skipped (unit reasons)
  std::uint64_t propagations = 0;     ///< checker-side propagation count
};

struct DratCheckResult {
  /// True iff the trace is a complete, step-by-step verified refutation.
  bool valid = false;
  /// Empty when valid; otherwise names the first failing step.
  std::string error;
  DratCheckStats stats;
};

/// Verifies that `trace` is a refutation of its own 'o'-line axioms.
DratCheckResult check_refutation(const DratTrace& trace);

}  // namespace ril::sat
