// Independent forward RUP checker for DRAT proof traces.
//
// check_refutation replays a proof trace in order, maintaining its own
// clause database, two-watched-literal scheme, and unit propagation --
// sharing no code with the Solver, which is the point: a soundness bug in
// the solver's watch repair, GC remapping, or assumption handling cannot
// also hide here. Each 'a' step is verified to be RUP (assume the negation
// of the clause on top of the accumulated unit-propagation fixpoint; the
// result must be a conflict); 'o' steps extend the axiom set; 'd' steps
// remove one matching clause. The trace certifies UNSAT of the logged
// axiom stream iff the empty clause is derived with a successful RUP
// check. Deletions of clauses that currently anchor a persistent
// (top-level) unit are ignored, the standard guard that keeps forward
// checking sound in the presence of DRAT deletion lines.
//
// Three entry points share one checking core:
//  * check_refutation(trace)      -- in-memory trace, requires closure;
//  * check_refutation_file(path)  -- streaming single pass over an
//    on-disk trace (binary or text) via TraceReader, bounded memory for
//    the steps themselves (the live clause database still grows with the
//    formula, exactly like the in-memory path);
//  * check_derivations(trace)     -- verifies every step without
//    requiring the empty clause, which is what an assumption-UNSAT
//    certificate looks like: it closes with the failed-assumption core,
//    not with the empty clause.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sat/proof.hpp"

namespace ril::sat {

struct DratCheckStats {
  std::size_t originals = 0;    ///< 'o' steps ingested
  std::size_t derivations = 0;  ///< 'a' steps RUP-checked
  std::size_t deletions = 0;    ///< 'd' steps applied
  std::size_t ignored_deletions = 0;  ///< 'd' steps skipped (unit reasons)
  std::uint64_t propagations = 0;     ///< checker-side propagation count
};

struct DratCheckResult {
  /// True iff the trace is a complete, step-by-step verified refutation.
  bool valid = false;
  /// True when the trace could not even be parsed (unreadable file,
  /// truncation, garbage) as opposed to a well-formed but wrong proof.
  bool malformed = false;
  /// Empty when valid; otherwise names the first failing step.
  std::string error;
  DratCheckStats stats;
};

/// Verifies that `trace` is a refutation of its own 'o'-line axioms.
DratCheckResult check_refutation(const DratTrace& trace);

/// Streaming variant: reads the trace from disk one step at a time and
/// never materializes it. Parse failures (missing file, truncated or
/// garbage trace) come back with `malformed == true`.
DratCheckResult check_refutation_file(const std::string& path);

/// Verifies every derivation step of `trace` without requiring the empty
/// clause -- the acceptance test for open certificates such as the
/// failed-assumption cores emitted on assumption-UNSAT solves.
DratCheckResult check_derivations(const DratTrace& trace);

/// Streaming variant of check_derivations: single pass over an on-disk
/// trace, accepting open certificates (every step checks, no refutation
/// required). The streamed trace a SAT attack publishes when it stops
/// before miter-UNSAT (timeout, iteration cap) is validated with this.
DratCheckResult check_derivations_file(const std::string& path);

}  // namespace ril::sat
