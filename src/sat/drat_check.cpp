#include "sat/drat_check.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace ril::sat {

namespace {

bool lit_less(Lit a, Lit b) { return a.code < b.code; }

/// Self-contained clause database + unit propagation engine. Deliberately
/// independent of Solver: plain vectors, eager watch removal, no activity
/// or restart machinery -- just enough to decide RUP queries.
class Checker {
 public:
  /// Ingests one step; returns false (with error() set) when the step
  /// fails to check. Steps arriving after the empty clause has been
  /// derived are ignored -- the certificate is already complete.
  bool step(const ProofStep& s) {
    ++index_;
    if (refuted_) return true;
    switch (s.kind) {
      case ProofStepKind::kOriginal:
        ++stats_.originals;
        insert_clause(s.lits);
        return true;
      case ProofStepKind::kDerive: {
        ++stats_.derivations;
        if (!rup(s.lits)) {
          error_ = "step " + std::to_string(index_) +
                   ": derived clause is not RUP";
          return false;
        }
        if (s.lits.empty()) {
          refuted_ = true;
        } else {
          insert_clause(s.lits);
        }
        return true;
      }
      case ProofStepKind::kErase: {
        std::string error;
        if (!erase_clause(s.lits, &error)) {
          error_ = "step " + std::to_string(index_) + ": " + error;
          return false;
        }
        return true;
      }
    }
    error_ = "step " + std::to_string(index_) + ": unknown step kind";
    return false;
  }

  bool refuted() const { return refuted_; }
  const std::string& error() const { return error_; }

  /// Packages the verdict. `require_refutation` demands empty-clause
  /// closure (check_refutation); without it any fully-checked trace is
  /// valid (check_derivations).
  DratCheckResult finish(bool require_refutation) const {
    DratCheckResult out;
    out.stats = stats_;
    if (!error_.empty()) {
      out.error = error_;
      return out;
    }
    if (!require_refutation || refuted_) {
      out.valid = true;
      return out;
    }
    out.error = index_ == 0 ? "empty trace"
                            : "trace never derives the empty clause";
    return out;
  }

 private:
  struct DbClause {
    std::vector<Lit> lits;  ///< watch moves permute; compare via sorted copy
    bool live = false;
    bool watched = false;
  };

  static constexpr int kNoReason = -1;

  // --- assignment --------------------------------------------------------
  void ensure_var(Var v) {
    if (static_cast<std::size_t>(v) < assigns_.size()) return;
    assigns_.resize(v + 1, 0);
    reason_.resize(v + 1, kNoReason);
    watches_.resize(2 * static_cast<std::size_t>(v + 1));
  }

  int value(Lit l) const {
    const int v = assigns_[l.var()];
    return l.sign() ? -v : v;
  }

  void assign(Lit l, int reason) {
    assigns_[l.var()] = l.sign() ? -1 : 1;
    reason_[l.var()] = reason;
    trail_.push_back(l);
  }

  /// Propagates to fixpoint from the current head; true on conflict.
  /// Clauses watching literal w live in watches_[(~w).code], so assigning
  /// p true visits watches_[p.code] -- the clauses whose watch ~p just
  /// became false.
  bool propagate() {
    while (head_ < trail_.size()) {
      const Lit p = trail_[head_++];
      ++stats_.propagations;
      auto& list = watches_[p.code];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        const int cid = list[i];
        DbClause& c = clauses_[cid];
        if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
        if (value(c.lits[0]) > 0) {
          list[keep++] = cid;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.lits.size(); ++k) {
          if (value(c.lits[k]) >= 0) {
            std::swap(c.lits[1], c.lits[k]);
            watches_[(~c.lits[1]).code].push_back(cid);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        list[keep++] = cid;
        if (value(c.lits[0]) < 0) {
          for (++i; i < list.size(); ++i) list[keep++] = list[i];
          list.resize(keep);
          head_ = trail_.size();
          return true;
        }
        assign(c.lits[0], cid);
      }
      list.resize(keep);
    }
    return false;
  }

  // --- clause database ---------------------------------------------------
  static std::uint64_t key_of(const std::vector<Lit>& sorted) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over lit codes
    for (Lit l : sorted) {
      h ^= static_cast<std::uint32_t>(l.code);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Sorts + dedups; returns false for tautologies.
  static bool canonicalize(const Clause& in, std::vector<Lit>* out) {
    *out = in;
    std::sort(out->begin(), out->end(), lit_less);
    out->erase(std::unique(out->begin(), out->end()), out->end());
    for (std::size_t i = 1; i < out->size(); ++i) {
      if ((*out)[i] == ~(*out)[i - 1]) return false;
    }
    return true;
  }

  /// True iff `c` (in arbitrary order, deduplicated) matches the sorted
  /// deduplicated literal set `canonical`.
  static bool same_clause(const std::vector<Lit>& c,
                          const std::vector<Lit>& canonical) {
    if (c.size() != canonical.size()) return false;
    std::vector<Lit> sorted = c;
    std::sort(sorted.begin(), sorted.end(), lit_less);
    return std::equal(sorted.begin(), sorted.end(), canonical.begin());
  }

  void insert_clause(const Clause& lits) {
    std::vector<Lit> canonical;
    const bool proper = canonicalize(lits, &canonical);
    for (Lit l : canonical) ensure_var(l.var());
    const int cid = static_cast<int>(clauses_.size());
    by_key_[key_of(canonical)].push_back(cid);
    clauses_.push_back({std::move(canonical), /*live=*/true,
                        /*watched=*/false});
    // Tautologies are inert (but stay findable for deletion lines), and
    // once the database is refuted nothing further can matter.
    if (!proper || refuted_by_db_) return;
    DbClause& c = clauses_[cid];
    // Persistent assignments only ever grow, so a clause satisfied now is
    // satisfied forever and never needs watches.
    for (Lit l : c.lits) {
      if (value(l) > 0) return;
    }
    // Pull the (up to 2) unassigned literals into the watch slots.
    std::size_t free_count = 0;
    for (std::size_t i = 0; i < c.lits.size() && free_count < 2; ++i) {
      if (value(c.lits[i]) == 0) std::swap(c.lits[free_count++], c.lits[i]);
    }
    if (free_count == 0) {
      refuted_by_db_ = true;  // every literal false under the fixpoint
      return;
    }
    if (free_count == 1) {
      assign(c.lits[0], cid);
      if (propagate()) refuted_by_db_ = true;
      return;
    }
    c.watched = true;
    watches_[(~c.lits[0]).code].push_back(cid);
    watches_[(~c.lits[1]).code].push_back(cid);
  }

  /// RUP query: does asserting the negation of `lits` on top of the
  /// persistent fixpoint propagate to a conflict?
  bool rup(const Clause& lits) {
    if (refuted_by_db_) return true;
    const std::size_t mark = trail_.size();
    bool conflict = false;
    for (Lit l : lits) {
      ensure_var(l.var());
      const int v = value(l);
      if (v > 0) {
        conflict = true;  // negation contradicts the fixpoint outright
        break;
      }
      if (v == 0) assign(~l, kNoReason);
    }
    if (!conflict) conflict = propagate();
    for (std::size_t i = trail_.size(); i-- > mark;) {
      const Var v = trail_[i].var();
      assigns_[v] = 0;
      reason_[v] = kNoReason;
    }
    trail_.resize(mark);
    head_ = mark;
    return conflict;
  }

  bool erase_clause(const Clause& lits, std::string* error) {
    std::vector<Lit> canonical;
    canonicalize(lits, &canonical);
    const auto it = by_key_.find(key_of(canonical));
    int cid = -1;
    if (it != by_key_.end()) {
      for (const int candidate : it->second) {
        if (clauses_[candidate].live &&
            same_clause(clauses_[candidate].lits, canonical)) {
          cid = candidate;
          break;
        }
      }
    }
    if (cid < 0) {
      *error = "deletion of a clause not in the database";
      return false;
    }
    DbClause& c = clauses_[cid];
    // Keep clauses that anchor a persistent unit: removing them would let
    // later RUP checks lean on assignments with no surviving antecedent.
    for (Lit l : c.lits) {
      if (value(l) > 0 && reason_[l.var()] == cid) {
        ++stats_.ignored_deletions;
        return true;
      }
    }
    ++stats_.deletions;
    c.live = false;
    if (c.watched) {
      detach_watch(cid, c.lits[0]);
      detach_watch(cid, c.lits[1]);
      c.watched = false;
    }
    return true;
  }

  void detach_watch(int cid, Lit watched) {
    auto& list = watches_[(~watched).code];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == cid) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
  }

  std::vector<DbClause> clauses_;
  std::unordered_map<std::uint64_t, std::vector<int>> by_key_;
  std::vector<std::vector<int>> watches_;  // indexed by lit code
  std::vector<int> assigns_;               // indexed by var: -1 / 0 / +1
  std::vector<int> reason_;                // clause id or kNoReason
  std::vector<Lit> trail_;
  std::size_t head_ = 0;
  bool refuted_by_db_ = false;
  bool refuted_ = false;
  std::size_t index_ = 0;
  std::string error_;
  DratCheckStats stats_;
};

DratCheckResult run_in_memory(const DratTrace& trace,
                              bool require_refutation) {
  Checker checker;
  for (const ProofStep& step : trace.steps()) {
    if (checker.refuted()) break;
    if (!checker.step(step)) break;
  }
  return checker.finish(require_refutation);
}

}  // namespace

DratCheckResult check_refutation(const DratTrace& trace) {
  return run_in_memory(trace, /*require_refutation=*/true);
}

DratCheckResult check_derivations(const DratTrace& trace) {
  return run_in_memory(trace, /*require_refutation=*/false);
}

namespace {

DratCheckResult run_on_file(const std::string& path, bool require_refutation) {
  Checker checker;
  try {
    TraceReader reader(path);
    ProofStep step;
    // Once the empty clause checks, the certificate is complete and the
    // remaining steps need no semantic checking (matching the in-memory
    // checker) -- but the file must still frame correctly end to end, so
    // drain the reader: a torn tail, tampered end marker, or wrong
    // declared step count is rejected even when the refutation checked.
    bool steps_ok = true;
    while (!checker.refuted() && reader.next(step)) {
      if (!checker.step(step)) {
        steps_ok = false;
        break;
      }
    }
    if (steps_ok) {
      while (reader.next(step)) {
      }
    }
  } catch (const std::exception& e) {
    DratCheckResult out = checker.finish(require_refutation);
    out.valid = false;
    out.malformed = true;
    out.error = e.what();
    return out;
  }
  return checker.finish(require_refutation);
}

}  // namespace

DratCheckResult check_refutation_file(const std::string& path) {
  return run_on_file(path, /*require_refutation=*/true);
}

DratCheckResult check_derivations_file(const std::string& path) {
  return run_on_file(path, /*require_refutation=*/false);
}

}  // namespace ril::sat
