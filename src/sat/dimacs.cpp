#include "sat/dimacs.hpp"

#include <sstream>
#include <stdexcept>

#include "sat/solver.hpp"

namespace ril::sat {

CnfFormula read_dimacs(std::istream& in) {
  CnfFormula formula;
  std::string token;
  bool have_header = false;
  Clause current;
  while (in >> token) {
    if (token == "c") {
      std::string line;
      std::getline(in, line);
      continue;
    }
    if (token == "p") {
      std::string kind;
      std::size_t vars = 0;
      std::size_t clauses = 0;
      if (!(in >> kind >> vars >> clauses) || kind != "cnf") {
        throw std::runtime_error("dimacs: bad header");
      }
      formula.num_vars = vars;
      formula.clauses.reserve(clauses);
      have_header = true;
      continue;
    }
    long value = 0;
    try {
      value = std::stol(token);
    } catch (const std::exception&) {
      throw std::runtime_error("dimacs: bad token '" + token + "'");
    }
    if (!have_header) throw std::runtime_error("dimacs: literal before header");
    if (value == 0) {
      formula.clauses.push_back(current);
      current.clear();
    } else {
      const Var v = static_cast<Var>(std::labs(value) - 1);
      if (static_cast<std::size_t>(v) >= formula.num_vars) {
        throw std::runtime_error("dimacs: variable out of range");
      }
      current.push_back(Lit::make(v, value < 0));
    }
  }
  if (!current.empty()) throw std::runtime_error("dimacs: unterminated clause");
  return formula;
}

CnfFormula read_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const CnfFormula& formula) {
  out << "p cnf " << formula.num_vars << " " << formula.clauses.size() << "\n";
  for (const Clause& clause : formula.clauses) {
    for (Lit l : clause) {
      out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

std::string write_dimacs_string(const CnfFormula& formula) {
  std::ostringstream out;
  write_dimacs(out, formula);
  return out.str();
}

bool load_into_solver(const CnfFormula& formula, Solver& solver) {
  if (formula.num_vars > 0) {
    solver.ensure_var(static_cast<Var>(formula.num_vars - 1));
  }
  for (const Clause& clause : formula.clauses) {
    if (!solver.add_clause(clause)) return false;
  }
  return true;
}

}  // namespace ril::sat
