#include "sat/proof.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ril::sat {

namespace {

char step_tag(ProofStepKind kind) {
  switch (kind) {
    case ProofStepKind::kOriginal: return 'o';
    case ProofStepKind::kDerive: return 'a';
    case ProofStepKind::kErase: return 'd';
  }
  return '?';
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("proof trace line " + std::to_string(line_no) +
                           ": " + what);
}

}  // namespace

void write_trace(std::ostream& out, const DratTrace& trace) {
  for (const ProofStep& step : trace.steps()) {
    out << step_tag(step.kind);
    for (Lit l : step.lits) {
      const long long dimacs =
          (l.sign() ? -1ll : 1ll) * (static_cast<long long>(l.var()) + 1);
      out << ' ' << dimacs;
    }
    out << " 0\n";
  }
}

std::string write_trace_string(const DratTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

void write_trace_file(const std::string& path, const DratTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_trace(out, trace);
}

DratTrace read_trace(std::istream& in) {
  DratTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line
    if (tag == "c") continue;
    ProofStepKind kind;
    if (tag == "o") {
      kind = ProofStepKind::kOriginal;
    } else if (tag == "a") {
      kind = ProofStepKind::kDerive;
    } else if (tag == "d") {
      kind = ProofStepKind::kErase;
    } else {
      fail(line_no, "unknown step tag '" + tag + "'");
    }
    Clause lits;
    long long dimacs = 0;
    bool terminated = false;
    while (fields >> dimacs) {
      if (dimacs == 0) {
        terminated = true;
        break;
      }
      const long long magnitude = dimacs < 0 ? -dimacs : dimacs;
      if (magnitude > 0x3fffffff) fail(line_no, "literal out of range");
      lits.push_back(
          Lit::make(static_cast<Var>(magnitude - 1), dimacs < 0));
    }
    if (!terminated) fail(line_no, "missing 0 terminator");
    std::string trailing;
    if (fields >> trailing) fail(line_no, "junk after 0 terminator");
    switch (kind) {
      case ProofStepKind::kOriginal: trace.original(lits); break;
      case ProofStepKind::kDerive: trace.derive(lits); break;
      case ProofStepKind::kErase: trace.erase(lits); break;
    }
  }
  return trace;
}

DratTrace read_trace_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

DratTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_trace(in);
}

}  // namespace ril::sat
