#include "sat/proof.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ril::sat {

namespace {

constexpr unsigned char kBinaryMagic[6] = {kBinaryTraceMagic0, 'D', 'R',
                                           'A',               'T', 0x01};
constexpr char kEndTag = 'e';

char step_tag(ProofStepKind kind) {
  switch (kind) {
    case ProofStepKind::kOriginal: return 'o';
    case ProofStepKind::kDerive: return 'a';
    case ProofStepKind::kErase: return 'd';
  }
  return '?';
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("proof trace line " + std::to_string(line_no) +
                           ": " + what);
}

[[noreturn]] void sys_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno));
}

void append_varint(std::vector<char>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

// Shared by FileProofTracer and write_trace_file: all bytes go to
// `path + ".tmp"`; commit() fsyncs and renames so the final name only
// ever holds a complete trace.
class AtomicFile {
 public:
  explicit AtomicFile(const std::string& final_path)
      : temp_path_(final_path + ".tmp") {
    fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) sys_fail("cannot create", temp_path_);
  }
  ~AtomicFile() { abort_file(); }

  int fd() const { return fd_; }
  const std::string& temp_path() const { return temp_path_; }

  void write(const char* data, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        sys_fail("write failed on", temp_path_);
      }
      data += w;
      n -= static_cast<std::size_t>(w);
    }
  }

  void commit(const std::string& final_path) {
    if (fd_ < 0) return;
    if (::fsync(fd_) != 0) sys_fail("fsync failed on", temp_path_);
    if (::close(fd_) != 0) {
      fd_ = -1;
      sys_fail("close failed on", temp_path_);
    }
    fd_ = -1;
    if (::rename(temp_path_.c_str(), final_path.c_str()) != 0)
      sys_fail("rename failed for", final_path);
  }

  void abort_file() {
    if (fd_ < 0) return;
    ::close(fd_);
    fd_ = -1;
    ::unlink(temp_path_.c_str());
  }

 private:
  std::string temp_path_;
  int fd_ = -1;
};

}  // namespace

// --- FileProofTracer -------------------------------------------------------

FileProofTracer::FileProofTracer(std::string path, std::size_t buffer_bytes)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp"),
      buffer_limit_(buffer_bytes < 64 ? 64 : buffer_bytes) {
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) sys_fail("cannot create", temp_path_);
  buffer_.reserve(buffer_limit_ + 64);
  buffer_.insert(buffer_.end(), kBinaryMagic, kBinaryMagic + sizeof(kBinaryMagic));
  bytes_ = sizeof(kBinaryMagic);
}

FileProofTracer::~FileProofTracer() { abandon(); }

void FileProofTracer::original(const Clause& lits) {
  append_step('o', lits);
}

void FileProofTracer::derive(const Clause& lits) {
  closed_ = closed_ || lits.empty();
  append_step('a', lits);
}

void FileProofTracer::erase(const Clause& lits) {
  append_step('d', lits);
}

void FileProofTracer::append_step(char tag, const Clause& lits) {
  if (fd_ < 0)
    throw std::logic_error("proof step appended after finalize: " + path_);
  const std::size_t before = buffer_.size();
  buffer_.push_back(tag);
  for (Lit l : lits)
    append_varint(buffer_, static_cast<std::uint32_t>(l.code) + 2u);
  buffer_.push_back('\0');
  bytes_ += buffer_.size() - before;
  ++steps_;
  if (buffer_.size() >= buffer_limit_) flush_buffer();
}

void FileProofTracer::flush_buffer() {
  write_raw(buffer_.data(), buffer_.size());
  buffer_.clear();
}

void FileProofTracer::write_raw(const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd_, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_fail("write failed on", temp_path_);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void FileProofTracer::finalize_to(const std::string& final_path) {
  if (finalized_) return;
  if (fd_ < 0)
    throw std::runtime_error("finalize after abandon: " + path_);
  const std::size_t before = buffer_.size();
  buffer_.push_back(kEndTag);
  append_varint(buffer_, steps_);
  bytes_ += buffer_.size() - before;
  flush_buffer();
  if (::fsync(fd_) != 0) sys_fail("fsync failed on", temp_path_);
  if (::close(fd_) != 0) {
    fd_ = -1;
    sys_fail("close failed on", temp_path_);
  }
  fd_ = -1;
  if (::rename(temp_path_.c_str(), final_path.c_str()) != 0)
    sys_fail("rename failed for", final_path);
  finalized_ = true;
}

void FileProofTracer::abandon() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  ::unlink(temp_path_.c_str());
}

// --- text serialization ----------------------------------------------------

void write_trace(std::ostream& out, const DratTrace& trace) {
  for (const ProofStep& step : trace.steps()) {
    out << step_tag(step.kind);
    for (Lit l : step.lits) {
      const long long dimacs =
          (l.sign() ? -1ll : 1ll) * (static_cast<long long>(l.var()) + 1);
      out << ' ' << dimacs;
    }
    out << " 0\n";
  }
}

std::string write_trace_string(const DratTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

void write_trace_file(const std::string& path, const DratTrace& trace) {
  std::ostringstream body;
  write_trace(body, trace);
  body << "c end " << trace.size() << "\n";
  const std::string text = body.str();
  AtomicFile file(path);
  file.write(text.data(), text.size());
  file.commit(path);
}

namespace {

// One parsed text line. kEnd carries the declared step count.
enum class TextLine { kBlank, kComment, kEnd, kStep };

TextLine parse_text_line(const std::string& line, std::size_t line_no,
                         ProofStep& step, std::uint64_t& end_count) {
  std::istringstream fields(line);
  std::string tag;
  if (!(fields >> tag)) return TextLine::kBlank;
  if (tag == "c") {
    std::string word;
    if (fields >> word && word == "end") {
      if (!(fields >> end_count))
        fail(line_no, "malformed end marker (missing step count)");
      std::string trailing;
      if (fields >> trailing) fail(line_no, "junk after end marker");
      return TextLine::kEnd;
    }
    return TextLine::kComment;
  }
  if (tag == "o") {
    step.kind = ProofStepKind::kOriginal;
  } else if (tag == "a") {
    step.kind = ProofStepKind::kDerive;
  } else if (tag == "d") {
    step.kind = ProofStepKind::kErase;
  } else {
    fail(line_no, "unknown step tag '" + tag + "'");
  }
  step.lits.clear();
  long long dimacs = 0;
  bool terminated = false;
  while (fields >> dimacs) {
    if (dimacs == 0) {
      terminated = true;
      break;
    }
    const long long magnitude = dimacs < 0 ? -dimacs : dimacs;
    if (magnitude > 0x3fffffff) fail(line_no, "literal out of range");
    step.lits.push_back(
        Lit::make(static_cast<Var>(magnitude - 1), dimacs < 0));
  }
  if (!terminated) fail(line_no, "missing 0 terminator");
  std::string trailing;
  if (fields >> trailing) fail(line_no, "junk after 0 terminator");
  return TextLine::kStep;
}

}  // namespace

DratTrace read_trace(std::istream& in) {
  DratTrace trace;
  std::string line;
  std::size_t line_no = 0;
  bool end_seen = false;
  std::uint64_t end_count = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ProofStep step;
    switch (parse_text_line(line, line_no, step, end_count)) {
      case TextLine::kBlank:
      case TextLine::kComment:
        continue;
      case TextLine::kEnd:
        if (end_seen) fail(line_no, "duplicate end marker");
        end_seen = true;
        continue;
      case TextLine::kStep:
        if (end_seen) fail(line_no, "step after end marker");
        switch (step.kind) {
          case ProofStepKind::kOriginal: trace.original(step.lits); break;
          case ProofStepKind::kDerive: trace.derive(step.lits); break;
          case ProofStepKind::kErase: trace.erase(step.lits); break;
        }
        continue;
    }
  }
  if (end_seen && end_count != trace.size())
    fail(line_no, "end marker declares " + std::to_string(end_count) +
                      " steps but trace has " + std::to_string(trace.size()));
  return trace;
}

DratTrace read_trace_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

DratTrace read_trace_file(const std::string& path) {
  TraceReader reader(path);
  DratTrace trace;
  ProofStep step;
  while (reader.next(step)) {
    switch (step.kind) {
      case ProofStepKind::kOriginal: trace.original(step.lits); break;
      case ProofStepKind::kDerive: trace.derive(step.lits); break;
      case ProofStepKind::kErase: trace.erase(step.lits); break;
    }
  }
  return trace;
}

// --- TraceReader -----------------------------------------------------------

TraceReader::TraceReader(const std::string& path)
    : path_(path),
      in_(std::make_unique<std::ifstream>(path, std::ios::binary)) {
  if (!*in_) sys_fail("cannot open", path_);
  const int first = in_->peek();
  if (first == std::char_traits<char>::eof()) {
    done_ = true;  // zero-byte file: clean empty trace
    return;
  }
  binary_ = static_cast<unsigned char>(first) == kBinaryTraceMagic0;
  if (binary_) {
    buf_.resize(1 << 16);
    char magic[sizeof(kBinaryMagic)];
    in_->read(magic, sizeof(magic));
    if (in_->gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
      throw std::runtime_error("proof trace " + path_ +
                               ": bad binary magic header");
    byte_offset_ = sizeof(kBinaryMagic);
  }
}

TraceReader::~TraceReader() = default;

void TraceReader::fail_at(const std::string& what) const {
  if (binary_) {
    throw std::runtime_error("proof trace " + path_ + " byte " +
                             std::to_string(byte_offset_) + ": " + what);
  }
  throw std::runtime_error("proof trace " + path_ + " line " +
                           std::to_string(line_no_) + ": " + what);
}

bool TraceReader::refill() {
  if (buf_pos_ < buf_len_) return true;
  in_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_len_ = static_cast<std::size_t>(in_->gcount());
  buf_pos_ = 0;
  return buf_len_ > 0;
}

bool TraceReader::next(ProofStep& step) {
  if (done_) return false;
  return binary_ ? next_binary(step) : next_text(step);
}

bool TraceReader::next_binary(ProofStep& step) {
  const auto read_byte = [&](int& out) -> bool {
    if (!refill()) return false;
    out = static_cast<unsigned char>(buf_[buf_pos_++]);
    ++byte_offset_;
    return true;
  };
  const auto read_varint = [&](std::uint64_t& value) {
    value = 0;
    int shift = 0;
    for (;;) {
      int b = 0;
      if (!read_byte(b)) fail_at("truncated varint");
      value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return;
      shift += 7;
      if (shift > 63) fail_at("varint overflow");
    }
  };

  int tag = 0;
  if (!read_byte(tag))
    fail_at("truncated trace (missing end marker)");
  if (tag == kEndTag) {
    read_varint(expected_steps_);
    if (expected_steps_ != steps_read_)
      fail_at("end marker declares " + std::to_string(expected_steps_) +
              " steps but trace has " + std::to_string(steps_read_));
    int extra = 0;
    if (read_byte(extra)) fail_at("trailing bytes after end marker");
    end_marker_seen_ = true;
    done_ = true;
    return false;
  }
  switch (tag) {
    case 'o': step.kind = ProofStepKind::kOriginal; break;
    case 'a': step.kind = ProofStepKind::kDerive; break;
    case 'd': step.kind = ProofStepKind::kErase; break;
    default:
      fail_at("unknown step tag byte " + std::to_string(tag));
  }
  step.lits.clear();
  for (;;) {
    std::uint64_t value = 0;
    read_varint(value);
    if (value == 0) break;
    if (value < 2 || value - 2 > 0x7fffffffull)
      fail_at("literal code out of range");
    step.lits.push_back(
        lit_from_code(static_cast<std::int32_t>(value - 2)));
  }
  ++steps_read_;
  return true;
}

bool TraceReader::next_text(ProofStep& step) {
  const auto parse = [&](const std::string& line, ProofStep& out,
                         std::uint64_t& end_count) {
    try {
      return parse_text_line(line, line_no_, out, end_count);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(path_ + ": " + e.what());
    }
  };
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    std::uint64_t end_count = 0;
    switch (parse(line, step, end_count)) {
      case TextLine::kBlank:
      case TextLine::kComment:
        continue;
      case TextLine::kEnd: {
        if (end_count != steps_read_)
          fail_at("end marker declares " + std::to_string(end_count) +
                  " steps but trace has " + std::to_string(steps_read_));
        while (std::getline(*in_, line)) {
          ++line_no_;
          ProofStep extra;
          std::uint64_t extra_count = 0;
          if (parse(line, extra, extra_count) != TextLine::kBlank)
            fail_at("content after end marker");
        }
        end_marker_seen_ = true;
        done_ = true;
        return false;
      }
      case TextLine::kStep:
        ++steps_read_;
        return true;
    }
  }
  fail_at("truncated trace (missing end marker)");
}

}  // namespace ril::sat
