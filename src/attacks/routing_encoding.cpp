#include "attacks/routing_encoding.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "locking/locked.hpp"
#include "netlist/simplify.hpp"

namespace ril::attacks {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using sat::Lit;
using sat::Solver;
using sat::Var;

namespace {

struct SwitchBox {
  NodeId key = netlist::kNoNode;
  NodeId mux_lo = netlist::kNoNode;
  NodeId mux_hi = netlist::kNoNode;
  NodeId in_a = netlist::kNoNode;
  NodeId in_b = netlist::kNoNode;
};

/// Union-find.
struct Dsu {
  std::vector<std::size_t> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

std::vector<SwitchBox> detect_switches(const Netlist& locked) {
  // key input -> muxes selected by it.
  std::unordered_map<NodeId, std::vector<NodeId>> by_key;
  for (NodeId id = 0; id < locked.node_count(); ++id) {
    const auto& node = locked.node(id);
    if (node.type != GateType::kMux) continue;
    const NodeId sel = node.fanins[0];
    if (locked.is_key_input(sel)) by_key[sel].push_back(id);
  }
  std::vector<SwitchBox> switches;
  for (const auto& [key, muxes] : by_key) {
    if (muxes.size() != 2) continue;
    const auto& m0 = locked.node(muxes[0]);
    const auto& m1 = locked.node(muxes[1]);
    // Crossed pair: m0 = MUX(k, a, b), m1 = MUX(k, b, a).
    if (m0.fanins[1] == m1.fanins[2] && m0.fanins[2] == m1.fanins[1]) {
      switches.push_back(SwitchBox{key, muxes[0], muxes[1], m0.fanins[1],
                                   m0.fanins[2]});
    }
  }
  return switches;
}

}  // namespace

std::vector<RoutingComponent> find_routing_networks(const Netlist& locked) {
  const auto switches = detect_switches(locked);
  if (switches.empty()) return {};

  std::unordered_map<NodeId, std::size_t> switch_of_mux;
  for (std::size_t s = 0; s < switches.size(); ++s) {
    switch_of_mux[switches[s].mux_lo] = s;
    switch_of_mux[switches[s].mux_hi] = s;
  }
  Dsu dsu(switches.size());
  for (std::size_t s = 0; s < switches.size(); ++s) {
    for (NodeId in : {switches[s].in_a, switches[s].in_b}) {
      auto it = switch_of_mux.find(in);
      if (it != switch_of_mux.end()) dsu.unite(s, it->second);
    }
  }

  std::unordered_map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t s = 0; s < switches.size(); ++s) {
    groups[dsu.find(s)].push_back(s);
  }

  const auto fanouts = locked.fanouts();
  std::unordered_set<NodeId> output_set(locked.outputs().begin(),
                                        locked.outputs().end());

  std::vector<RoutingComponent> components;
  for (const auto& [root, members] : groups) {
    RoutingComponent component;
    std::unordered_set<NodeId> member_muxes;
    for (std::size_t s : members) {
      member_muxes.insert(switches[s].mux_lo);
      member_muxes.insert(switches[s].mux_hi);
      component.members.push_back(switches[s].mux_lo);
      component.members.push_back(switches[s].mux_hi);
      component.key_inputs.push_back(switches[s].key);
    }
    // External input *ports* (kept as positions, duplicates allowed: the
    // permutation side constraints speak about ports, not signals).
    std::vector<std::size_t> ordered_members = members;
    std::sort(ordered_members.begin(), ordered_members.end(),
              [&](std::size_t a, std::size_t b) {
                return switches[a].mux_lo < switches[b].mux_lo;
              });
    std::vector<NodeId> inputs;
    for (std::size_t s : ordered_members) {
      for (NodeId in : {switches[s].in_a, switches[s].in_b}) {
        if (!member_muxes.contains(in)) inputs.push_back(in);
      }
    }
    component.inputs = std::move(inputs);
    // Outputs: member muxes consumed outside the component (or POs).
    component.terminal = true;
    for (NodeId mux : component.members) {
      bool outside = output_set.contains(mux);
      bool inside = false;
      for (NodeId user : fanouts[mux]) {
        if (member_muxes.contains(user)) {
          inside = true;
        } else {
          outside = true;
        }
      }
      if (outside) {
        component.outputs.push_back(mux);
        if (inside) component.terminal = false;
      }
    }
    std::sort(component.outputs.begin(), component.outputs.end());
    std::sort(component.members.begin(), component.members.end());
    std::sort(component.key_inputs.begin(), component.key_inputs.end());
    // A routing key must not be used anywhere outside its switch MUXes,
    // otherwise dropping it from the key set would change the circuit.
    bool clean = true;
    for (NodeId key : component.key_inputs) {
      for (NodeId user : fanouts[key]) {
        if (!member_muxes.contains(user)) clean = false;
      }
    }
    if (clean && !component.outputs.empty() &&
        component.inputs.size() >= 2) {
      components.push_back(std::move(component));
    }
  }
  // Deterministic order.
  std::sort(components.begin(), components.end(),
            [](const RoutingComponent& a, const RoutingComponent& b) {
              return a.members.front() < b.members.front();
            });
  return components;
}

namespace {

/// Per-solver variable bundle playing the role of the key.
struct OnehotKeys {
  std::vector<Var> plain;  // aligned with plain_key_inputs
  /// selectors[c][o * inputs + i]
  std::vector<std::vector<Var>> selectors;
};

/// Sequential (ladder) at-most-one over `lits` -- the auxiliary-variable
/// compressed form BVA would produce from the pairwise encoding: linear
/// clause count and strong unit propagation.
void add_at_most_one(Solver& solver, const std::vector<Lit>& lits) {
  if (lits.size() <= 1) return;
  if (lits.size() == 2) {
    solver.add_clause({~lits[0], ~lits[1]});
    return;
  }
  Var prev = solver.new_var();  // s_0 <- x_0
  solver.add_clause({~lits[0], Lit::make(prev)});
  for (std::size_t i = 1; i < lits.size(); ++i) {
    if (i + 1 < lits.size()) {
      const Var next = solver.new_var();
      solver.add_clause({~lits[i], Lit::make(next)});
      solver.add_clause({Lit::make(prev, true), Lit::make(next)});
      solver.add_clause({~lits[i], Lit::make(prev, true)});
      prev = next;
    } else {
      solver.add_clause({~lits[i], Lit::make(prev, true)});
    }
  }
}

OnehotKeys make_onehot_keys(Solver& solver, std::size_t plain_count,
                            const std::vector<RoutingComponent>& components) {
  OnehotKeys keys;
  for (std::size_t i = 0; i < plain_count; ++i) {
    keys.plain.push_back(solver.new_var());
  }
  for (const RoutingComponent& component : components) {
    const std::size_t n_in = component.inputs.size();
    const std::size_t n_out = component.outputs.size();
    std::vector<Var> sel;
    sel.reserve(n_in * n_out);
    for (std::size_t i = 0; i < n_in * n_out; ++i) {
      sel.push_back(solver.new_var());
    }
    // Exactly-one selector per output row.
    for (std::size_t o = 0; o < n_out; ++o) {
      sat::Clause at_least;
      std::vector<Lit> row;
      for (std::size_t i = 0; i < n_in; ++i) {
        at_least.push_back(Lit::make(sel[o * n_in + i]));
        row.push_back(Lit::make(sel[o * n_in + i]));
      }
      solver.add_clause(at_least);
      add_at_most_one(solver, row);
    }
    // Permutation side constraint (at most one output per input port).
    // Only sound for terminal networks: in chained components an upstream
    // output and a downstream output can legitimately carry the same port.
    if (component.terminal && n_in == n_out) {
      for (std::size_t i = 0; i < n_in; ++i) {
        std::vector<Lit> column;
        for (std::size_t o = 0; o < n_out; ++o) {
          column.push_back(Lit::make(sel[o * n_in + i]));
        }
        add_at_most_one(solver, column);
      }
    }
    keys.selectors.push_back(std::move(sel));
  }
  return keys;
}

/// Encodes one circuit copy with the routing components replaced by the
/// one-hot layer. Returns node -> var.
std::vector<Var> encode_onehot_copy(
    Solver& solver, const Netlist& locked,
    const std::vector<RoutingComponent>& components,
    const std::vector<NodeId>& plain_key_inputs,
    const std::unordered_map<NodeId, Var>& bound, const OnehotKeys& keys) {
  // Classify nodes.
  enum class Role : std::uint8_t { kNormal, kInternal, kOutput };
  std::vector<Role> role(locked.node_count(), Role::kNormal);
  // For outputs: which component and row.
  std::vector<std::pair<std::size_t, std::size_t>> out_pos(
      locked.node_count(), {0, 0});
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (NodeId mux : components[c].members) role[mux] = Role::kInternal;
    for (std::size_t o = 0; o < components[c].outputs.size(); ++o) {
      role[components[c].outputs[o]] = Role::kOutput;
      out_pos[components[c].outputs[o]] = {c, o};
    }
  }

  std::vector<Var> node_var(locked.node_count(), sat::kNoVar);
  for (const auto& [node, var] : bound) node_var[node] = var;
  for (std::size_t i = 0; i < plain_key_inputs.size(); ++i) {
    node_var[plain_key_inputs[i]] = keys.plain[i];
  }

  for (NodeId id : locked.topological_order()) {
    if (role[id] == Role::kInternal) continue;  // replaced wholesale
    if (node_var[id] == sat::kNoVar) node_var[id] = solver.new_var();
    if (role[id] == Role::kNormal) {
      // Routing key inputs are plain inputs here but unconstrained/unused.
      cnf::encode_node(solver, locked, id, node_var);
      continue;
    }
    // One-hot output: y = in_i when sel[o][i].
    const auto [c, o] = out_pos[id];
    const RoutingComponent& component = components[c];
    const std::size_t n_in = component.inputs.size();
    const Var y = node_var[id];
    for (std::size_t i = 0; i < n_in; ++i) {
      const Var sel = keys.selectors[c][o * n_in + i];
      const Var in = node_var[component.inputs[i]];
      solver.add_clause(
          {Lit::make(sel, true), Lit::make(in, true), Lit::make(y)});
      solver.add_clause(
          {Lit::make(sel, true), Lit::make(in), Lit::make(y, true)});
    }
  }
  return node_var;
}

void add_io_constraint_onehot(
    Solver& solver, const Netlist& locked,
    const std::vector<RoutingComponent>& components,
    const std::vector<NodeId>& plain_key_inputs,
    const std::vector<NodeId>& data_inputs, const OnehotKeys& keys,
    const std::vector<bool>& dip, const std::vector<bool>& response) {
  const auto node_var =
      encode_onehot_copy(solver, locked, components, plain_key_inputs, {},
                         keys);
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    solver.add_clause({Lit::make(node_var[data_inputs[i]], !dip[i])});
  }
  const auto& outputs = locked.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    solver.add_clause({Lit::make(node_var[outputs[i]], !response[i])});
  }
}

}  // namespace

OnehotAttackResult run_sat_attack_onehot(const Netlist& locked,
                                         QueryOracle& oracle,
                                         const SatAttackOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  OnehotAttackResult result;
  const auto components = find_routing_networks(locked);
  result.components = components.size();
  std::unordered_set<NodeId> routing_keys;
  for (const auto& component : components) {
    routing_keys.insert(component.key_inputs.begin(),
                        component.key_inputs.end());
    result.selector_bits +=
        component.inputs.size() * component.outputs.size();
  }
  result.routing_key_bits_replaced = routing_keys.size();
  for (NodeId key : locked.key_inputs()) {
    if (!routing_keys.contains(key)) {
      result.plain_key_inputs.push_back(key);
    }
  }
  const auto data_inputs = locked.data_inputs();

  // Miter solver with two one-hot key bundles sharing X.
  Solver miter;
  std::vector<Var> x_vars;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(miter.new_var());
  }
  std::unordered_map<NodeId, Var> bound_x;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    bound_x.emplace(data_inputs[i], x_vars[i]);
  }
  const OnehotKeys keys1 =
      make_onehot_keys(miter, result.plain_key_inputs.size(), components);
  const OnehotKeys keys2 =
      make_onehot_keys(miter, result.plain_key_inputs.size(), components);
  const auto vars1 = encode_onehot_copy(miter, locked, components,
                                        result.plain_key_inputs, bound_x,
                                        keys1);
  const auto vars2 = encode_onehot_copy(miter, locked, components,
                                        result.plain_key_inputs, bound_x,
                                        keys2);
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(vars1[id]);
    out2.push_back(vars2[id]);
  }
  cnf::encode_miter(miter, out1, out2);

  Solver key_solver;
  const OnehotKeys key_keys = make_onehot_keys(
      key_solver, result.plain_key_inputs.size(), components);

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = SatAttackStatus::kIterationLimit;
      break;
    }
    if (options.time_limit_seconds > 0) {
      const double remaining = options.time_limit_seconds - elapsed();
      if (remaining <= 0) {
        result.status = SatAttackStatus::kTimeout;
        break;
      }
      miter.set_limits({.time_limit_seconds = remaining});
    }
    const sat::Result r = miter.solve();
    if (r == sat::Result::kUnknown) {
      result.status = SatAttackStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      if (options.time_limit_seconds > 0) {
        key_solver.set_limits(
            {.time_limit_seconds = options.time_limit_seconds - elapsed()});
      }
      const sat::Result kr = key_solver.solve();
      if (kr == sat::Result::kSat) {
        for (Var v : key_keys.plain) {
          result.plain_key.push_back(key_solver.model_bool(v));
        }
        for (std::size_t c = 0; c < components.size(); ++c) {
          const std::size_t n_in = components[c].inputs.size();
          std::vector<std::size_t> choice(components[c].outputs.size(), 0);
          for (std::size_t o = 0; o < choice.size(); ++o) {
            for (std::size_t i = 0; i < n_in; ++i) {
              if (key_solver.model_bool(key_keys.selectors[c][o * n_in + i])) {
                choice[o] = i;
              }
            }
          }
          result.routing_choice.push_back(std::move(choice));
        }
        result.status = SatAttackStatus::kKeyFound;
      } else if (kr == sat::Result::kUnsat) {
        result.status = SatAttackStatus::kInconsistent;
      } else {
        result.status = SatAttackStatus::kTimeout;
      }
      break;
    }

    std::vector<bool> dip;
    for (Var v : x_vars) dip.push_back(miter.model_bool(v));
    const auto response = oracle.query(dip);
    add_io_constraint_onehot(miter, locked, components,
                             result.plain_key_inputs, data_inputs, keys1,
                             dip, response);
    add_io_constraint_onehot(miter, locked, components,
                             result.plain_key_inputs, data_inputs, keys2,
                             dip, response);
    add_io_constraint_onehot(key_solver, locked, components,
                             result.plain_key_inputs, data_inputs, key_keys,
                             dip, response);
    ++result.iterations;
  }

  result.seconds = elapsed();
  result.conflicts = miter.stats().conflicts;

  if (result.status == SatAttackStatus::kKeyFound) {
    // Reconstruct: hardwire the recovered routing, fix the plain keys.
    Netlist rebuilt = locked;
    for (std::size_t c = 0; c < components.size(); ++c) {
      for (std::size_t o = 0; o < components[c].outputs.size(); ++o) {
        rebuilt.rewrite_as_buf(
            components[c].outputs[o],
            components[c].inputs[result.routing_choice[c][o]]);
      }
    }
    std::vector<bool> full_key(rebuilt.key_inputs().size(), false);
    std::unordered_map<NodeId, std::size_t> key_pos;
    for (std::size_t i = 0; i < rebuilt.key_inputs().size(); ++i) {
      key_pos[rebuilt.key_inputs()[i]] = i;
    }
    for (std::size_t i = 0; i < result.plain_key_inputs.size(); ++i) {
      full_key[key_pos.at(result.plain_key_inputs[i])] = result.plain_key[i];
    }
    result.reconstructed = locking::specialize_keys(rebuilt, full_key);
    netlist::simplify(result.reconstructed);
  }
  return result;
}

}  // namespace ril::attacks
