#include "attacks/oracle.hpp"

#include <stdexcept>

#include "core/morphing.hpp"

namespace ril::attacks {

using netlist::Netlist;
using netlist::NodeId;

Oracle::Oracle(const Netlist& locked, std::vector<bool> key)
    : netlist_(locked),
      key_(std::move(key)),
      data_inputs_(netlist_.data_inputs()),
      simulator_(netlist_) {
  if (key_.size() != netlist_.key_inputs().size()) {
    throw std::invalid_argument("Oracle: key width mismatch");
  }
  load_key();
}

void Oracle::load_key() {
  for (std::size_t i = 0; i < key_.size(); ++i) {
    simulator_.set_input_all(netlist_.key_inputs()[i], key_[i]);
  }
}

void Oracle::enable_morphing(std::size_t period,
                             std::vector<std::size_t> positions,
                             std::uint64_t seed) {
  if (period == 0) throw std::invalid_argument("Oracle: period must be > 0");
  for (std::size_t p : positions) {
    if (p >= key_.size()) {
      throw std::invalid_argument("Oracle: morph position out of range");
    }
  }
  morph_period_ = period;
  morph_positions_ = std::move(positions);
  morph_seed_ = seed;
  morph_epoch_ = 0;
}

std::vector<bool> Oracle::query(const std::vector<bool>& data) {
  if (data.size() != data_inputs_.size()) {
    throw std::invalid_argument("Oracle: data width mismatch");
  }
  if (morph_period_ != 0) {
    // Epoch e answers queries [e*period, (e+1)*period); epoch 0 keeps the
    // constructor key, later epochs use the canonical derivation shared
    // with core::MorphingScheduler (see enable_morphing).
    const std::uint64_t epoch = query_count_ / morph_period_;
    if (epoch != morph_epoch_) {
      for (std::size_t p : morph_positions_) {
        key_[p] = core::morph_key_bit(morph_seed_, epoch, p);
      }
      morph_epoch_ = epoch;
      load_key();
    }
  }
  ++query_count_;
  for (std::size_t i = 0; i < data.size(); ++i) {
    simulator_.set_input_all(data_inputs_[i], data[i]);
  }
  simulator_.evaluate();
  std::vector<bool> out;
  out.reserve(netlist_.outputs().size());
  for (NodeId id : netlist_.outputs()) {
    out.push_back(simulator_.value(id) & 1);
  }
  return out;
}

}  // namespace ril::attacks
