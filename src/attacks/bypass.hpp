// Bypass attack (Xu et al., CHES'17) against one-point-function locking.
//
// SARLock/Anti-SAT-style schemes guarantee that a wrong key corrupts the
// output on very few input patterns. The bypass attacker picks an arbitrary
// wrong key, uses SAT to enumerate the (few) distinguishing patterns
// between the wrongly-keyed circuit and the oracle, and stitches a bypass
// unit (pattern comparator + output flip) around the chip so it behaves
// correctly everywhere. RIL-Blocks resist because a wrong key corrupts an
// exponential number of patterns -- enumeration never terminates.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "attacks/oracle.hpp"
#include "netlist/netlist.hpp"

namespace ril::attacks {

struct BypassOptions {
  /// Give up once more than this many distinguishing patterns are found
  /// (bypass hardware would be larger than the IP itself).
  std::size_t max_patterns = 64;
  double time_limit_seconds = 30.0;
  std::uint64_t seed = 1;
  /// Portfolio width for the pattern-enumeration solves; 1 reproduces the
  /// historical single-solver behaviour bit-for-bit.
  unsigned jobs = 1;
  /// Base seed for portfolio diversification (irrelevant when jobs == 1).
  std::uint64_t portfolio_seed = 1;
  /// Optional caller-owned cancellation flag (reported as kTimeout).
  const std::atomic<bool>* cancel = nullptr;
};

enum class BypassStatus {
  kBypassed,       ///< bypass circuit built, functionally exact
  kTooManyPatterns,///< corruption too dense -- attack abandoned
  kTimeout,
};

struct BypassResult {
  BypassStatus status = BypassStatus::kTimeout;
  /// Distinguishing patterns found (inputs where wrong key != oracle).
  std::size_t patterns = 0;
  /// The attacker's build: locked circuit + chosen key + bypass unit,
  /// no key inputs. Valid iff status == kBypassed.
  netlist::Netlist pirated;
  double seconds = 0.0;
};

std::string to_string(BypassStatus status);

BypassResult run_bypass_attack(const netlist::Netlist& locked,
                               QueryOracle& oracle,
                               const BypassOptions& options = {});

}  // namespace ril::attacks
