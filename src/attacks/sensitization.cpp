#include "attacks/sensitization.hpp"

#include <chrono>

#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

using netlist::Netlist;
using netlist::NodeId;
using sat::Lit;
using sat::Solver;
using sat::Var;

namespace {

/// Encodes one circuit copy with data inputs bound to `x_vars`, key bit
/// `target` fixed to `target_value`, and the remaining key bits fixed to
/// the assignment `rest` (aligned with key_inputs(), target slot ignored).
sat::Var encode_copy_output(Solver& solver, const Netlist& locked,
                            const std::vector<Var>& x_vars,
                            std::size_t target, bool target_value,
                            const std::vector<bool>& rest,
                            std::size_t output_index) {
  const auto data_inputs = locked.data_inputs();
  std::unordered_map<NodeId, Var> bound;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    bound.emplace(data_inputs[i], x_vars[i]);
  }
  const auto enc = cnf::encode_circuit(locked, solver, bound);
  for (std::size_t i = 0; i < locked.key_inputs().size(); ++i) {
    const bool value = i == target ? target_value : rest[i];
    solver.add_clause(
        {Lit::make(enc.var_of(locked.key_inputs()[i]), !value)});
  }
  return enc.var_of(locked.outputs()[output_index]);
}

}  // namespace

SensitizationResult run_sensitization_attack(
    const Netlist& locked, QueryOracle& oracle,
    const SensitizationOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const std::size_t key_width = locked.key_inputs().size();
  const auto data_inputs = locked.data_inputs();
  SensitizationResult result;
  result.key.assign(key_width, false);
  result.resolved.assign(key_width, false);

  netlist::Simulator reference(locked);

  for (std::size_t bit = 0; bit < key_width; ++bit) {
    if (elapsed() >= options.time_limit_seconds) break;
    bool done = false;
    for (std::size_t out = 0; out < locked.outputs().size() && !done;
         ++out) {
      // CEGIS for a golden pattern on output `out`:
      //   exists x: f_out(x, bit=0, rest) constant c0 for all rest,
      //             f_out(x, bit=1, rest) constant c1 != c0.
      std::vector<std::vector<bool>> samples = {
          std::vector<bool>(key_width, false)};
      for (int round = 0; round < 6 && !done; ++round) {
        if (elapsed() >= options.time_limit_seconds) break;
        // Candidate: outputs under every sample must agree per polarity
        // and differ across polarities (w.r.t. sample 0).
        Solver cand;
        cand.set_limits({.time_limit_seconds =
                             options.time_limit_seconds - elapsed()});
        std::vector<Var> x_vars;
        for (std::size_t i = 0; i < data_inputs.size(); ++i) {
          x_vars.push_back(cand.new_var());
        }
        std::vector<Var> out0;
        std::vector<Var> out1;
        for (const auto& sample : samples) {
          out0.push_back(encode_copy_output(cand, locked, x_vars, bit,
                                            false, sample, out));
          out1.push_back(encode_copy_output(cand, locked, x_vars, bit,
                                            true, sample, out));
        }
        for (std::size_t s = 1; s < samples.size(); ++s) {
          // out0[s] == out0[0], out1[s] == out1[0]
          cand.add_clause({Lit::make(out0[s], true), Lit::make(out0[0])});
          cand.add_clause({Lit::make(out0[s]), Lit::make(out0[0], true)});
          cand.add_clause({Lit::make(out1[s], true), Lit::make(out1[0])});
          cand.add_clause({Lit::make(out1[s]), Lit::make(out1[0], true)});
        }
        // out0[0] != out1[0]
        cand.add_clause({Lit::make(out0[0]), Lit::make(out1[0])});
        cand.add_clause({Lit::make(out0[0], true),
                         Lit::make(out1[0], true)});
        if (cand.solve() != sat::Result::kSat) break;  // no golden pattern

        std::vector<bool> x;
        for (Var v : x_vars) x.push_back(cand.model_bool(v));
        const bool c0 = cand.model_bool(out0[0]);

        // Verify constancy over all rest-keys for both polarities.
        bool golden = true;
        for (int polarity = 0; polarity < 2 && golden; ++polarity) {
          Solver verify;
          verify.set_limits({.time_limit_seconds =
                                 options.time_limit_seconds - elapsed()});
          std::vector<Var> x_fixed;
          for (std::size_t i = 0; i < data_inputs.size(); ++i) {
            const Var v = verify.new_var();
            verify.add_clause({Lit::make(v, !x[i])});
            x_fixed.push_back(v);
          }
          // One copy with free rest keys.
          std::unordered_map<NodeId, Var> bound;
          for (std::size_t i = 0; i < data_inputs.size(); ++i) {
            bound.emplace(data_inputs[i], x_fixed[i]);
          }
          const auto enc = cnf::encode_circuit(locked, verify, bound);
          verify.add_clause({Lit::make(
              enc.var_of(locked.key_inputs()[bit]), polarity == 0)});
          // Ask for an assignment where the output deviates from the
          // candidate's constant.
          const bool expect = polarity == 0 ? c0 : !c0;
          verify.add_clause(
              {Lit::make(enc.var_of(locked.outputs()[out]), expect)});
          const sat::Result vr = verify.solve();
          if (vr == sat::Result::kSat) {
            // Counterexample rest-key; refine the candidate.
            std::vector<bool> sample(key_width);
            for (std::size_t i = 0; i < key_width; ++i) {
              sample[i] = verify.model_bool(
                  enc.var_of(locked.key_inputs()[i]));
            }
            samples.push_back(std::move(sample));
            golden = false;
          } else if (vr == sat::Result::kUnknown) {
            golden = false;
            round = 6;  // out of budget for this output
          }
        }
        if (!golden) continue;

        // Golden pattern: one oracle query resolves the bit.
        const auto y = oracle.query(x);
        ++result.oracle_queries;
        result.key[bit] = y[out] != c0;  // c0 was the bit=0 output value
        result.resolved[bit] = true;
        ++result.resolved_count;
        done = true;
      }
    }
  }
  result.seconds = elapsed();
  return result;
}

}  // namespace ril::attacks
