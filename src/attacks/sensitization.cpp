#include "attacks/sensitization.hpp"

#include "attacks/engine/attack_budget.hpp"
#include "attacks/engine/miter_context.hpp"
#include "sat/solver.hpp"

namespace ril::attacks {

using netlist::Netlist;
using sat::Lit;
using sat::Solver;
using sat::Var;

SensitizationResult run_sensitization_attack(
    const Netlist& locked, QueryOracle& oracle,
    const SensitizationOptions& options) {
  engine::AttackBudget budget(options.time_limit_seconds, options.cancel);

  const std::size_t key_width = locked.key_inputs().size();
  const auto data_inputs = locked.data_inputs();
  SensitizationResult result;
  result.key.assign(key_width, false);
  result.resolved.assign(key_width, false);

  // Encodes one circuit copy with data inputs bound to `x_vars`, key bit
  // `target` fixed to `target_value`, and the remaining key bits fixed to
  // the assignment `rest` (aligned with key_inputs(), target slot ignored).
  auto encode_copy_output = [&](Solver& solver, const std::vector<Var>& x_vars,
                                std::size_t target, bool target_value,
                                const std::vector<bool>& rest,
                                std::size_t output_index) -> Var {
    const engine::CircuitCopy copy = engine::encode_copy(locked, solver, x_vars);
    std::vector<bool> values(rest);
    values[target] = target_value;
    engine::fix_vars(solver, copy.key_vars, values);
    return copy.output_vars[output_index];
  };

  for (std::size_t bit = 0; bit < key_width; ++bit) {
    if (budget.expired()) break;
    bool done = false;
    for (std::size_t out = 0; out < locked.outputs().size() && !done;
         ++out) {
      // CEGIS for a golden pattern on output `out`:
      //   exists x: f_out(x, bit=0, rest) constant c0 for all rest,
      //             f_out(x, bit=1, rest) constant c1 != c0.
      std::vector<std::vector<bool>> samples = {
          std::vector<bool>(key_width, false)};
      for (int round = 0; round < 6 && !done; ++round) {
        if (budget.expired()) break;
        // Candidate: outputs under every sample must agree per polarity
        // and differ across polarities (w.r.t. sample 0).
        Solver cand;
        cand.set_limits(budget.limits());
        cand.set_cancel_flag(budget.stop_flag());
        const std::vector<Var> x_vars =
            engine::make_vars(cand, data_inputs.size());
        std::vector<Var> out0;
        std::vector<Var> out1;
        for (const auto& sample : samples) {
          out0.push_back(
              encode_copy_output(cand, x_vars, bit, false, sample, out));
          out1.push_back(
              encode_copy_output(cand, x_vars, bit, true, sample, out));
        }
        for (std::size_t s = 1; s < samples.size(); ++s) {
          // out0[s] == out0[0], out1[s] == out1[0]
          cand.add_clause({Lit::make(out0[s], true), Lit::make(out0[0])});
          cand.add_clause({Lit::make(out0[s]), Lit::make(out0[0], true)});
          cand.add_clause({Lit::make(out1[s], true), Lit::make(out1[0])});
          cand.add_clause({Lit::make(out1[s]), Lit::make(out1[0], true)});
        }
        // out0[0] != out1[0]
        cand.add_clause({Lit::make(out0[0]), Lit::make(out1[0])});
        cand.add_clause({Lit::make(out0[0], true),
                         Lit::make(out1[0], true)});
        if (cand.solve() != sat::Result::kSat) break;  // no golden pattern

        std::vector<bool> x;
        for (Var v : x_vars) x.push_back(cand.model_bool(v));
        const bool c0 = cand.model_bool(out0[0]);

        // Verify constancy over all rest-keys for both polarities.
        bool golden = true;
        for (int polarity = 0; polarity < 2 && golden; ++polarity) {
          Solver verify;
          verify.set_limits(budget.limits());
          verify.set_cancel_flag(budget.stop_flag());
          const std::vector<Var> x_fixed = engine::make_fixed_vars(verify, x);
          // One copy with free rest keys.
          const engine::CircuitCopy copy =
              engine::encode_copy(locked, verify, x_fixed);
          verify.add_clause(
              {Lit::make(copy.key_vars[bit], polarity == 0)});
          // Ask for an assignment where the output deviates from the
          // candidate's constant.
          const bool expect = polarity == 0 ? c0 : !c0;
          verify.add_clause({Lit::make(copy.output_vars[out], expect)});
          const sat::Result vr = verify.solve();
          if (vr == sat::Result::kSat) {
            // Counterexample rest-key; refine the candidate.
            std::vector<bool> sample(key_width);
            for (std::size_t i = 0; i < key_width; ++i) {
              sample[i] = verify.model_bool(copy.key_vars[i]);
            }
            samples.push_back(std::move(sample));
            golden = false;
          } else if (vr == sat::Result::kUnknown) {
            golden = false;
            round = 6;  // out of budget for this output
          }
        }
        if (!golden) continue;

        // Golden pattern: one oracle query resolves the bit.
        const auto y = oracle.query(x);
        ++result.oracle_queries;
        result.key[bit] = y[out] != c0;  // c0 was the bit=0 output value
        result.resolved[bit] = true;
        ++result.resolved_count;
        done = true;
      }
    }
  }
  result.seconds = budget.elapsed();
  return result;
}

}  // namespace ril::attacks
