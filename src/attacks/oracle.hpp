// Black-box oracle abstraction (the activated IC in the threat model).
//
// The attacker owns the reverse-engineered locked netlist and may query the
// oracle on input vectors. Three behaviours are modelled:
//  * plain oracle: answers with the functional (correct-key) circuit;
//  * scan oracle: answers through the scan interface, where Scan-Enable
//    obfuscation is active -> pass the RIL `oracle_scan_key`;
//  * morphing oracle: dynamically reprograms selected key bits every
//    `period` queries (the paper's run-time dynamic morphing), making the
//    collected I/O constraints mutually inconsistent.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

/// Abstract query interface shared by the black-box oracle models (plain,
/// scan-mode, morphing, scan-chain-backed).
class QueryOracle {
 public:
  virtual ~QueryOracle() = default;
  virtual std::vector<bool> query(const std::vector<bool>& data) = 0;
};

class Oracle : public QueryOracle {
 public:
  /// `locked` is copied; `key` (key_inputs() order) defines the responses.
  Oracle(const netlist::Netlist& locked, std::vector<bool> key);

  /// Enables dynamic morphing: queries [e*period, (e+1)*period) are
  /// answered with the epoch-e key, where epoch 0 is the constructor key
  /// and epoch e >= 1 re-derives the bits at `positions` via the canonical
  /// core::morph_key_bit(seed, e, position) sequence. The same
  /// (seed, positions) pair therefore yields exactly the key schedule of a
  /// core::MorphingScheduler built with that seed over the same base key —
  /// the designer and the silicon agree on every epoch.
  void enable_morphing(std::size_t period, std::vector<std::size_t> positions,
                       std::uint64_t seed);

  /// Evaluates the oracle on a data-input vector (data_inputs() order).
  std::vector<bool> query(const std::vector<bool>& data) override;

  std::size_t query_count() const { return query_count_; }
  std::size_t num_data_inputs() const { return data_inputs_.size(); }
  std::size_t num_outputs() const { return netlist_.outputs().size(); }
  const netlist::Netlist& netlist() const { return netlist_; }
  const std::vector<bool>& current_key() const { return key_; }

 private:
  void load_key();

  netlist::Netlist netlist_;
  std::vector<bool> key_;
  std::vector<netlist::NodeId> data_inputs_;
  netlist::Simulator simulator_;
  std::size_t query_count_ = 0;

  // Morphing state.
  std::size_t morph_period_ = 0;
  std::vector<std::size_t> morph_positions_;
  std::uint64_t morph_seed_ = 0;
  std::uint64_t morph_epoch_ = 0;
};

}  // namespace ril::attacks
