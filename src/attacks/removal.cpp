#include "attacks/removal.hpp"

#include <vector>

#include "locking/locked.hpp"

namespace ril::attacks {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// key_tainted[id] = true if any key input lies in the fanin cone of id.
std::vector<bool> key_taint(const Netlist& netlist) {
  std::vector<bool> taint(netlist.node_count(), false);
  for (NodeId id : netlist.key_inputs()) taint[id] = true;
  for (NodeId id : netlist.topological_order()) {
    if (taint[id]) continue;
    for (NodeId f : netlist.node(id).fanins) {
      if (taint[f]) {
        taint[id] = true;
        break;
      }
    }
  }
  return taint;
}

}  // namespace

RemovalResult run_removal_attack(const Netlist& locked) {
  RemovalResult result;
  Netlist work = locked;  // mutate a private copy

  const auto taint = key_taint(work);

  // Pass 1: cut separable corruption XORs. We look at every XOR/XNOR gate
  // with exactly one key-tainted operand and replace the gate by its clean
  // operand (for XNOR the removal attacker assumes the flip side idles at 1,
  // matching the deactivated one-point function, so the clean operand is
  // used directly as well).
  for (NodeId id = 0; id < work.node_count(); ++id) {
    const netlist::Node& node = work.node(id);
    if ((node.type != GateType::kXor && node.type != GateType::kXnor) ||
        node.fanins.size() != 2) {
      continue;
    }
    const bool taint0 = taint[node.fanins[0]];
    const bool taint1 = taint[node.fanins[1]];
    if (taint0 == taint1) continue;  // not separable
    const NodeId clean = node.fanins[taint0 ? 1 : 0];
    if (taint[clean]) continue;
    work.rewrite_as_buf(id, clean);
    ++result.cuts;
  }

  // Pass 2: any key input still feeding live logic is grounded (the
  // attacker has no better guess once separation failed).
  const auto fanouts = work.fanouts();
  std::vector<NodeId> grounded;
  for (NodeId key : work.key_inputs()) {
    if (!fanouts[key].empty()) grounded.push_back(key);
  }
  result.grounded_keys = grounded.size();
  std::vector<bool> zero_key(work.key_inputs().size(), false);
  result.recovered = locking::specialize_keys(work, zero_key);
  result.recovered.sweep_dead();
  return result;
}

}  // namespace ril::attacks
