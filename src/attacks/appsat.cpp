#include "attacks/appsat.hpp"

#include <random>

#include "attacks/engine/dip_encoder.hpp"
#include "attacks/engine/miter_context.hpp"
#include "attacks/metrics.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

using netlist::Netlist;
using runtime::SolverPortfolio;
using sat::Var;

std::string to_string(AppSatStatus status) {
  switch (status) {
    case AppSatStatus::kExact: return "exact";
    case AppSatStatus::kApproximate: return "approximate";
    case AppSatStatus::kTimeout: return "timeout";
    case AppSatStatus::kIterationLimit: return "iteration-limit";
    case AppSatStatus::kInconsistent: return "inconsistent";
  }
  return "?";
}

AppSatResult run_appsat(const Netlist& locked, QueryOracle& oracle,
                        const AppSatOptions& options) {
  engine::AttackBudget budget(options.time_limit_seconds, options.cancel);
  budget.enable_recording(options.record_solves);
  std::mt19937_64 rng(options.seed);

  AppSatResult result;

  SolverPortfolio miter(options.jobs, options.portfolio_seed);
  miter.set_external_stop(budget.stop_flag());
  if (options.preprocess) miter.enable_preprocessing();
  if (options.inprocess) miter.enable_inprocessing();
  const engine::MiterContext ctx(locked, miter);
  if (options.preprocess || options.inprocess) {
    miter.freeze(ctx.input_vars());
    miter.freeze(ctx.copy(0).key_vars);
    miter.freeze(ctx.copy(1).key_vars);
  }

  SolverPortfolio key_solver(options.jobs, options.portfolio_seed + 0x9e37);
  key_solver.set_external_stop(budget.stop_flag());
  if (options.preprocess) key_solver.enable_preprocessing();
  if (options.inprocess) key_solver.enable_inprocessing();
  const std::vector<Var> key_vars =
      engine::make_vars(key_solver, locked.key_inputs().size());
  if (options.preprocess || options.inprocess) key_solver.freeze(key_vars);

  engine::DipConstraintEncoder dips(locked, options.specialize_dips);
  netlist::Simulator sim(locked);  // reused across every settle step

  // Pins locked(x, K) == y in both miter copies and the key solver.
  auto reinforce = [&](const std::vector<bool>& x,
                       const std::vector<bool>& y) {
    engine::ConstraintStats stats =
        dips.add_constraint(miter, ctx.copy(0).key_vars, x, y);
    stats += dips.add_constraint(miter, ctx.copy(1).key_vars, x, y);
    stats += dips.add_constraint(key_solver, key_vars, x, y);
    budget.add_constraints(stats);
  };

  auto extract_candidate = [&](std::vector<bool>& key) -> sat::Result {
    if (budget.limited() || budget.cancelled()) {
      key_solver.set_limits(budget.limits());
    }
    const runtime::SolveOutcome outcome = key_solver.solve();
    budget.record(result.iterations, "key", outcome);
    if (outcome.result == sat::Result::kSat) {
      key.clear();
      for (Var v : key_vars) key.push_back(key_solver.model_bool(v));
    }
    return outcome.result;
  };

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = AppSatStatus::kIterationLimit;
      break;
    }
    if (budget.expired()) {
      result.status = AppSatStatus::kTimeout;
      break;
    }
    if (budget.limited() || budget.cancelled()) {
      miter.set_limits(budget.limits());
    }
    const runtime::SolveOutcome miter_outcome = miter.solve();
    budget.record(result.iterations, "miter", miter_outcome);
    const sat::Result r = miter_outcome.result;
    if (r == sat::Result::kUnknown) {
      result.status = AppSatStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      const sat::Result kr = extract_candidate(result.key);
      if (kr == sat::Result::kSat) {
        result.status = AppSatStatus::kExact;
        result.sampled_error = 0.0;
      } else if (kr == sat::Result::kUnsat) {
        result.status = AppSatStatus::kInconsistent;
      } else {
        result.status = AppSatStatus::kTimeout;
      }
      break;
    }

    const std::vector<bool> dip =
        ctx.extract_dip([&](Var v) { return miter.model_bool(v); });
    const std::vector<bool> response = oracle.query(dip);
    reinforce(dip, response);
    ++result.iterations;

    if (result.iterations % options.settle_interval == 0) {
      std::vector<bool> candidate;
      const sat::Result kr = extract_candidate(candidate);
      if (kr == sat::Result::kUnsat) {
        result.status = AppSatStatus::kInconsistent;
        break;
      }
      if (kr == sat::Result::kUnknown) {
        result.status = AppSatStatus::kTimeout;
        break;
      }
      // Reinforcement + error estimation over random queries.
      const auto mismatches = sample_key_mismatches(
          sim, candidate, oracle, options.random_queries, rng);
      for (const auto& [x, y] : mismatches) reinforce(x, y);
      const double error =
          options.random_queries == 0
              ? 1.0
              : static_cast<double>(mismatches.size()) /
                    options.random_queries;
      if (error <= options.error_threshold) {
        result.status = AppSatStatus::kApproximate;
        result.key = candidate;
        result.sampled_error = error;
        break;
      }
    }
  }

  result.seconds = budget.elapsed();
  result.conflicts = miter.total_conflicts();
  const engine::ConstraintStats totals = budget.constraint_totals();
  result.encoded_clauses = totals.encoded_clauses;
  result.saved_clauses = totals.saved_clauses;
  result.solve_log = budget.take_log();
  return result;
}

}  // namespace ril::attacks
