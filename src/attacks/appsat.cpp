#include "attacks/appsat.hpp"

#include <chrono>
#include <random>

#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

using cnf::CircuitEncoding;
using netlist::Netlist;
using netlist::NodeId;
using sat::Lit;
using sat::Solver;
using sat::Var;

std::string to_string(AppSatStatus status) {
  switch (status) {
    case AppSatStatus::kExact: return "exact";
    case AppSatStatus::kApproximate: return "approximate";
    case AppSatStatus::kTimeout: return "timeout";
    case AppSatStatus::kIterationLimit: return "iteration-limit";
    case AppSatStatus::kInconsistent: return "inconsistent";
  }
  return "?";
}

namespace {

void add_io_constraint(Solver& solver, const Netlist& locked,
                       const std::vector<NodeId>& data_inputs,
                       const std::vector<Var>& key_vars,
                       const std::vector<bool>& dip,
                       const std::vector<bool>& response) {
  std::unordered_map<NodeId, Var> bound;
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(locked.key_inputs()[i], key_vars[i]);
  }
  const CircuitEncoding enc = cnf::encode_circuit(locked, solver, bound);
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(data_inputs[i]), !dip[i])});
  }
  const auto& outputs = locked.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(outputs[i]), !response[i])});
  }
}

}  // namespace

AppSatResult run_appsat(const Netlist& locked, QueryOracle& oracle,
                        const AppSatOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  std::mt19937_64 rng(options.seed);

  AppSatResult result;
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();

  Solver miter;
  std::vector<Var> x_vars;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(miter.new_var());
  }
  std::vector<Var> k1;
  std::vector<Var> k2;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) k1.push_back(miter.new_var());
  for (std::size_t i = 0; i < key_inputs.size(); ++i) k2.push_back(miter.new_var());
  auto bind = [&](const std::vector<Var>& keys) {
    std::unordered_map<NodeId, Var> bound;
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      bound.emplace(data_inputs[i], x_vars[i]);
    }
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], keys[i]);
    }
    return bound;
  };
  const CircuitEncoding enc1 = cnf::encode_circuit(locked, miter, bind(k1));
  const CircuitEncoding enc2 = cnf::encode_circuit(locked, miter, bind(k2));
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(enc1.var_of(id));
    out2.push_back(enc2.var_of(id));
  }
  cnf::encode_miter(miter, out1, out2);

  Solver key_solver;
  std::vector<Var> key_vars;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    key_vars.push_back(key_solver.new_var());
  }

  auto extract_candidate = [&](std::vector<bool>& key) -> sat::Result {
    if (options.time_limit_seconds > 0) {
      key_solver.set_limits(
          {.time_limit_seconds = options.time_limit_seconds - elapsed()});
    }
    const sat::Result kr = key_solver.solve();
    if (kr == sat::Result::kSat) {
      key.clear();
      for (Var v : key_vars) key.push_back(key_solver.model_bool(v));
    }
    return kr;
  };

  auto random_vector = [&](std::size_t width) {
    std::vector<bool> v(width);
    for (std::size_t i = 0; i < width; ++i) v[i] = rng() & 1;
    return v;
  };

  // Reinforcement + error estimation over random queries.
  auto settle = [&](const std::vector<bool>& key) -> double {
    netlist::Simulator sim(locked);
    for (std::size_t i = 0; i < key.size(); ++i) {
      sim.set_input_all(key_inputs[i], key[i]);
    }
    std::size_t mismatches = 0;
    for (std::size_t q = 0; q < options.random_queries; ++q) {
      const auto x = random_vector(data_inputs.size());
      const auto y = oracle.query(x);
      for (std::size_t i = 0; i < data_inputs.size(); ++i) {
        sim.set_input_all(data_inputs[i], x[i]);
      }
      sim.evaluate();
      bool differs = false;
      for (std::size_t i = 0; i < locked.outputs().size(); ++i) {
        if (static_cast<bool>(sim.value(locked.outputs()[i]) & 1) != y[i]) {
          differs = true;
          break;
        }
      }
      if (differs) {
        ++mismatches;
        // Reinforce: pin this counterexample in both solvers.
        add_io_constraint(miter, locked, data_inputs, k1, x, y);
        add_io_constraint(miter, locked, data_inputs, k2, x, y);
        add_io_constraint(key_solver, locked, data_inputs, key_vars, x, y);
      }
    }
    return options.random_queries == 0
               ? 1.0
               : static_cast<double>(mismatches) / options.random_queries;
  };

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = AppSatStatus::kIterationLimit;
      break;
    }
    if (options.time_limit_seconds > 0 &&
        elapsed() >= options.time_limit_seconds) {
      result.status = AppSatStatus::kTimeout;
      break;
    }
    if (options.time_limit_seconds > 0) {
      miter.set_limits(
          {.time_limit_seconds = options.time_limit_seconds - elapsed()});
    }
    const sat::Result r = miter.solve();
    if (r == sat::Result::kUnknown) {
      result.status = AppSatStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      const sat::Result kr = extract_candidate(result.key);
      if (kr == sat::Result::kSat) {
        result.status = AppSatStatus::kExact;
        result.sampled_error = 0.0;
      } else if (kr == sat::Result::kUnsat) {
        result.status = AppSatStatus::kInconsistent;
      } else {
        result.status = AppSatStatus::kTimeout;
      }
      break;
    }

    std::vector<bool> dip;
    for (Var v : x_vars) dip.push_back(miter.model_bool(v));
    const auto response = oracle.query(dip);
    add_io_constraint(miter, locked, data_inputs, k1, dip, response);
    add_io_constraint(miter, locked, data_inputs, k2, dip, response);
    add_io_constraint(key_solver, locked, data_inputs, key_vars, dip,
                      response);
    ++result.iterations;

    if (result.iterations % options.settle_interval == 0) {
      std::vector<bool> candidate;
      const sat::Result kr = extract_candidate(candidate);
      if (kr == sat::Result::kUnsat) {
        result.status = AppSatStatus::kInconsistent;
        break;
      }
      if (kr == sat::Result::kUnknown) {
        result.status = AppSatStatus::kTimeout;
        break;
      }
      const double error = settle(candidate);
      if (error <= options.error_threshold) {
        result.status = AppSatStatus::kApproximate;
        result.key = candidate;
        result.sampled_error = error;
        break;
      }
    }
  }

  result.seconds = elapsed();
  return result;
}

}  // namespace ril::attacks
