#include "attacks/bypass.hpp"

#include <chrono>
#include <random>

#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "locking/locked.hpp"
#include "netlist/simplify.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using sat::Lit;
using sat::Solver;
using sat::Var;

std::string to_string(BypassStatus status) {
  switch (status) {
    case BypassStatus::kBypassed: return "bypassed";
    case BypassStatus::kTooManyPatterns: return "too-many-patterns";
    case BypassStatus::kTimeout: return "timeout";
  }
  return "?";
}

namespace {

/// Adds a comparator for `pattern` over the data inputs of `nl` and XOR
/// flips onto the outputs listed in `flip_bits`.
void stitch_bypass(Netlist& nl, const std::vector<bool>& pattern,
                   const std::vector<std::size_t>& flip_bits,
                   std::size_t tag) {
  const auto data = nl.data_inputs();
  std::vector<NodeId> terms;
  terms.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    terms.push_back(pattern[i]
                        ? data[i]
                        : nl.add_gate(GateType::kNot, {data[i]},
                                      "byp" + std::to_string(tag) + "_n" +
                                          std::to_string(i)));
  }
  std::size_t level = 0;
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(nl.add_gate(GateType::kAnd, {terms[i], terms[i + 1]},
                                 "byp" + std::to_string(tag) + "_a" +
                                     std::to_string(level) + "_" +
                                     std::to_string(i / 2)));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
    ++level;
  }
  const NodeId match = terms[0];
  auto outputs = nl.outputs();
  for (std::size_t bit : flip_bits) {
    outputs[bit] = nl.add_gate(
        GateType::kXor, {outputs[bit], match},
        "byp" + std::to_string(tag) + "_o" + std::to_string(bit));
  }
  nl.set_outputs(std::move(outputs));
}

}  // namespace

BypassResult run_bypass_attack(const Netlist& locked, QueryOracle& oracle,
                               const BypassOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  std::mt19937_64 rng(options.seed);
  BypassResult result;

  const std::size_t key_width = locked.key_inputs().size();
  std::vector<bool> k1(key_width);
  std::vector<bool> k2(key_width);
  for (std::size_t i = 0; i < key_width; ++i) k1[i] = rng() & 1;
  do {
    for (std::size_t i = 0; i < key_width; ++i) k2[i] = rng() & 1;
  } while (k2 == k1 && key_width > 0);

  // Miter between the two wrongly-keyed copies: every witness is an input
  // where at least one of them is corrupted.
  Solver solver;
  const auto data_inputs = locked.data_inputs();
  std::vector<Var> x_vars;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(solver.new_var());
  }
  auto bind_with_key = [&](const std::vector<bool>& key) {
    std::unordered_map<NodeId, Var> bound;
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      bound.emplace(data_inputs[i], x_vars[i]);
    }
    const auto enc = cnf::encode_circuit(locked, solver, bound);
    for (std::size_t i = 0; i < key_width; ++i) {
      solver.add_clause(
          {Lit::make(enc.var_of(locked.key_inputs()[i]), !key[i])});
    }
    return enc;
  };
  const auto enc1 = bind_with_key(k1);
  const auto enc2 = bind_with_key(k2);
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(enc1.var_of(id));
    out2.push_back(enc2.var_of(id));
  }
  cnf::encode_miter(solver, out1, out2);

  // Simulators for the two candidate keys.
  netlist::Simulator sim1(locked);
  netlist::Simulator sim2(locked);
  for (std::size_t i = 0; i < key_width; ++i) {
    sim1.set_input_all(locked.key_inputs()[i], k1[i]);
    sim2.set_input_all(locked.key_inputs()[i], k2[i]);
  }
  auto eval_with = [&](netlist::Simulator& sim, const std::vector<bool>& x) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      sim.set_input_all(data_inputs[i], x[i]);
    }
    sim.evaluate();
    std::vector<bool> y;
    y.reserve(locked.outputs().size());
    for (NodeId id : locked.outputs()) y.push_back(sim.value(id) & 1);
    return y;
  };

  // Patterns where copy 1 must be patched.
  std::vector<std::pair<std::vector<bool>, std::vector<bool>>> fixes;
  while (true) {
    if (options.time_limit_seconds > 0) {
      const double remaining = options.time_limit_seconds - elapsed();
      if (remaining <= 0) {
        result.status = BypassStatus::kTimeout;
        result.seconds = elapsed();
        return result;
      }
      solver.set_limits({.time_limit_seconds = remaining});
    }
    const sat::Result r = solver.solve();
    if (r == sat::Result::kUnknown) {
      result.status = BypassStatus::kTimeout;
      result.seconds = elapsed();
      return result;
    }
    if (r == sat::Result::kUnsat) break;  // copies agree everywhere else
    std::vector<bool> x;
    for (Var v : x_vars) x.push_back(solver.model_bool(v));
    const auto y_true = oracle.query(x);
    const auto y1 = eval_with(sim1, x);
    if (y1 != y_true) {
      fixes.emplace_back(x, y_true);
    }
    ++result.patterns;
    if (result.patterns > options.max_patterns) {
      result.status = BypassStatus::kTooManyPatterns;
      result.seconds = elapsed();
      return result;
    }
    // Block this input pattern and continue enumerating.
    sat::Clause block;
    for (std::size_t i = 0; i < x_vars.size(); ++i) {
      block.push_back(Lit::make(x_vars[i], x[i]));
    }
    solver.add_clause(block);
  }

  // Build the pirated chip: copy 1 specialized + bypass comparators.
  result.pirated = locking::specialize_keys(locked, k1);
  netlist::simplify(result.pirated);
  std::size_t tag = 0;
  for (const auto& [x, y_true] : fixes) {
    const auto y1 = netlist::evaluate_once(result.pirated, x);
    std::vector<std::size_t> flip_bits;
    for (std::size_t i = 0; i < y1.size(); ++i) {
      if (y1[i] != y_true[i]) flip_bits.push_back(i);
    }
    stitch_bypass(result.pirated, x, flip_bits, tag++);
  }
  result.status = BypassStatus::kBypassed;
  result.seconds = elapsed();
  return result;
}

}  // namespace ril::attacks
