#include "attacks/bypass.hpp"

#include <random>

#include "attacks/engine/attack_budget.hpp"
#include "attacks/engine/miter_context.hpp"
#include "locking/locked.hpp"
#include "netlist/simplify.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using runtime::SolverPortfolio;
using sat::Lit;
using sat::Var;

std::string to_string(BypassStatus status) {
  switch (status) {
    case BypassStatus::kBypassed: return "bypassed";
    case BypassStatus::kTooManyPatterns: return "too-many-patterns";
    case BypassStatus::kTimeout: return "timeout";
  }
  return "?";
}

namespace {

/// Adds a comparator for `pattern` over the data inputs of `nl` and XOR
/// flips onto the outputs listed in `flip_bits`.
void stitch_bypass(Netlist& nl, const std::vector<bool>& pattern,
                   const std::vector<std::size_t>& flip_bits,
                   std::size_t tag) {
  const auto data = nl.data_inputs();
  std::vector<NodeId> terms;
  terms.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    terms.push_back(pattern[i]
                        ? data[i]
                        : nl.add_gate(GateType::kNot, {data[i]},
                                      "byp" + std::to_string(tag) + "_n" +
                                          std::to_string(i)));
  }
  std::size_t level = 0;
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(nl.add_gate(GateType::kAnd, {terms[i], terms[i + 1]},
                                 "byp" + std::to_string(tag) + "_a" +
                                     std::to_string(level) + "_" +
                                     std::to_string(i / 2)));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
    ++level;
  }
  const NodeId match = terms[0];
  auto outputs = nl.outputs();
  for (std::size_t bit : flip_bits) {
    outputs[bit] = nl.add_gate(
        GateType::kXor, {outputs[bit], match},
        "byp" + std::to_string(tag) + "_o" + std::to_string(bit));
  }
  nl.set_outputs(std::move(outputs));
}

}  // namespace

BypassResult run_bypass_attack(const Netlist& locked, QueryOracle& oracle,
                               const BypassOptions& options) {
  engine::AttackBudget budget(options.time_limit_seconds, options.cancel);
  std::mt19937_64 rng(options.seed);
  BypassResult result;

  const std::size_t key_width = locked.key_inputs().size();
  std::vector<bool> k1(key_width);
  std::vector<bool> k2(key_width);
  for (std::size_t i = 0; i < key_width; ++i) k1[i] = rng() & 1;
  do {
    for (std::size_t i = 0; i < key_width; ++i) k2[i] = rng() & 1;
  } while (k2 == k1 && key_width > 0);

  // Miter between the two wrongly-keyed copies: every witness is an input
  // where at least one of them is corrupted.
  SolverPortfolio solver(options.jobs, options.portfolio_seed);
  solver.set_external_stop(budget.stop_flag());
  const engine::MiterContext ctx(locked, solver, k1, k2);
  const std::vector<Var>& x_vars = ctx.input_vars();

  // Simulator for the copy-1 candidate key, reused across every witness.
  netlist::Simulator sim(locked);

  // Patterns where copy 1 must be patched.
  std::vector<std::pair<std::vector<bool>, std::vector<bool>>> fixes;
  while (true) {
    if (budget.limited() || budget.cancelled()) {
      if (budget.expired()) {
        result.status = BypassStatus::kTimeout;
        result.seconds = budget.elapsed();
        return result;
      }
      solver.set_limits(budget.limits());
    }
    const sat::Result r = solver.solve().result;
    if (r == sat::Result::kUnknown) {
      result.status = BypassStatus::kTimeout;
      result.seconds = budget.elapsed();
      return result;
    }
    if (r == sat::Result::kUnsat) break;  // copies agree everywhere else
    const std::vector<bool> x =
        ctx.extract_dip([&](Var v) { return solver.model_bool(v); });
    const auto y_true = oracle.query(x);
    if (netlist::evaluate_with_key(sim, x, k1) != y_true) {
      fixes.emplace_back(x, y_true);
    }
    ++result.patterns;
    if (result.patterns > options.max_patterns) {
      result.status = BypassStatus::kTooManyPatterns;
      result.seconds = budget.elapsed();
      return result;
    }
    // Block this input pattern and continue enumerating.
    sat::Clause block;
    for (std::size_t i = 0; i < x_vars.size(); ++i) {
      block.push_back(Lit::make(x_vars[i], x[i]));
    }
    solver.add_clause(block);
  }

  // Build the pirated chip: copy 1 specialized + bypass comparators.
  result.pirated = locking::specialize_keys(locked, k1);
  netlist::simplify(result.pirated);
  std::size_t tag = 0;
  for (const auto& [x, y_true] : fixes) {
    // Fresh evaluation each round: the pirated netlist mutates as bypass
    // units are stitched in, so a reused Simulator would go stale.
    const auto y1 = netlist::evaluate_once(result.pirated, x);
    std::vector<std::size_t> flip_bits;
    for (std::size_t i = 0; i < y1.size(); ++i) {
      if (y1[i] != y_true[i]) flip_bits.push_back(i);
    }
    stitch_bypass(result.pirated, x, flip_bits, tag++);
  }
  result.status = BypassStatus::kBypassed;
  result.seconds = budget.elapsed();
  return result;
}

}  // namespace ril::attacks
