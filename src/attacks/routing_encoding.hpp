// One-layer (one-hot) re-encoding of routing obfuscation -- the attack
// preprocessing of Section IV-B.
//
// A multistage network of key-controlled 2-MUX switch boxes only ever
// *routes*: every internal wire carries some network input. The attacker
// can therefore replace the network's sub-CNF with a single layer of
// N-to-1 MUXes per output, controlled by one-hot selector variables with
// permutation side constraints (each output picks exactly one input, each
// input feeds at most one output). This is the "one-layer linear encoding"
// the paper applies before attacking routing-obfuscated circuits (the BVA
// step in [11] compresses the same structure; our encoder emits the
// compact form directly). The relaxation admits all N! permutations --
// a superset of what the banyan realizes -- which is sound: the DIP loop
// still converges to the oracle's function.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attacks/oracle.hpp"
#include "attacks/sat_attack.hpp"
#include "netlist/netlist.hpp"

namespace ril::attacks {

/// A detected key-routed switch network.
struct RoutingComponent {
  /// External input ports in deterministic order; duplicates allowed (two
  /// ports may carry the same signal).
  std::vector<netlist::NodeId> inputs;
  std::vector<netlist::NodeId> outputs;      ///< member MUXes seen outside
  std::vector<netlist::NodeId> members;      ///< all member MUX nodes
  std::vector<netlist::NodeId> key_inputs;   ///< switch keys consumed
  /// True when no output feeds another member MUX; permutation (injective
  /// port) side constraints are only sound for terminal networks.
  bool terminal = false;
};

/// Structurally detects switch-box networks: pairs of MUXes sharing a
/// key-input select with crossed data operands, grouped by connectivity.
/// Components that are not clean N-in/N-out permutation networks (or whose
/// internal wires escape) are dropped.
std::vector<RoutingComponent> find_routing_networks(
    const netlist::Netlist& locked);

struct OnehotAttackResult {
  SatAttackStatus status = SatAttackStatus::kTimeout;
  std::size_t iterations = 0;
  double seconds = 0.0;
  std::uint64_t conflicts = 0;
  std::size_t components = 0;
  std::size_t routing_key_bits_replaced = 0;
  std::size_t selector_bits = 0;
  /// Key bits recovered for the non-routing key inputs, aligned with
  /// `plain_key_inputs`.
  std::vector<bool> plain_key;
  std::vector<netlist::NodeId> plain_key_inputs;
  /// Per component: selected input index for each output.
  std::vector<std::vector<std::size_t>> routing_choice;
  /// Attacker's reconstruction: routing hardwired per routing_choice,
  /// remaining keys fixed to plain_key (no key inputs left). Valid iff
  /// status == kKeyFound.
  netlist::Netlist reconstructed;
};

/// SAT attack with the routing networks re-encoded one-hot.
OnehotAttackResult run_sat_attack_onehot(const netlist::Netlist& locked,
                                         QueryOracle& oracle,
                                         const SatAttackOptions& options = {});

}  // namespace ril::attacks
