// Key-sensitization attack (Rajendran et al., DAC'12) -- the pre-SAT-era
// oracle attack on XOR/XNOR key gates.
//
// For each key bit the attacker searches (with SAT) for an input pattern
// that *sensitizes* the key wire to a primary output while every other key
// bit's influence is blocked: under such a pattern the output leaks the key
// bit directly, so one oracle query recovers it. Random XOR insertion is
// often fully sensitizable ("runs of isolated key gates"); interference
// between key gates -- and, in the RIL case, keys buried behind
// key-controlled routing -- defeats the per-bit search.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "attacks/oracle.hpp"
#include "netlist/netlist.hpp"

namespace ril::attacks {

struct SensitizationOptions {
  /// Whole-attack wall-clock budget in seconds; <= 0 means unlimited.
  double time_limit_seconds = 30.0;
  /// Optional caller-owned cancellation flag: raising it stops the per-bit
  /// search, leaving the remaining bits unresolved.
  const std::atomic<bool>* cancel = nullptr;
};

struct SensitizationResult {
  /// Per key bit: recovered value (only meaningful where resolved[i]).
  std::vector<bool> key;
  std::vector<bool> resolved;
  std::size_t resolved_count = 0;
  std::size_t oracle_queries = 0;
  double seconds = 0.0;
};

/// Tries to recover every key bit by individual sensitization; bits whose
/// sensitizing pattern search is UNSAT (or times out) stay unresolved.
SensitizationResult run_sensitization_attack(
    const netlist::Netlist& locked, QueryOracle& oracle,
    const SensitizationOptions& options = {});

}  // namespace ril::attacks
