#include "attacks/metrics.hpp"

#include <bit>
#include <random>
#include <stdexcept>
#include <utility>

#include "netlist/simulator.hpp"

namespace ril::attacks {

using netlist::Netlist;
using netlist::NodeId;
using netlist::Simulator;

namespace {

/// Runs `trials` random-vector comparisons 64 patterns at a time.
/// `set_keys` configures key inputs on the two simulators.
struct PairHarness {
  Simulator sim_a;
  Simulator sim_b;
  const std::vector<NodeId> inputs_a;
  const std::vector<NodeId> inputs_b;
  const std::vector<NodeId>& outputs_a;
  const std::vector<NodeId>& outputs_b;

  PairHarness(const Netlist& a, const Netlist& b)
      : sim_a(a),
        sim_b(b),
        inputs_a(a.data_inputs()),
        inputs_b(b.data_inputs()),
        outputs_a(a.outputs()),
        outputs_b(b.outputs()) {
    if (inputs_a.size() != inputs_b.size() ||
        outputs_a.size() != outputs_b.size()) {
      throw std::invalid_argument("metrics: interface mismatch");
    }
  }

  /// Returns {vector mismatches, bit mismatches} over `patterns` (<=64)
  /// random input vectors.
  std::pair<std::size_t, std::size_t> run_batch(std::mt19937_64& rng,
                                                std::size_t patterns) {
    for (std::size_t i = 0; i < inputs_a.size(); ++i) {
      const std::uint64_t word = rng();
      sim_a.set_input(inputs_a[i], word);
      sim_b.set_input(inputs_b[i], word);
    }
    sim_a.evaluate();
    sim_b.evaluate();
    std::uint64_t any_diff = 0;
    std::size_t bit_diffs = 0;
    const std::uint64_t live =
        patterns >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << patterns) - 1);
    for (std::size_t i = 0; i < outputs_a.size(); ++i) {
      const std::uint64_t diff =
          (sim_a.value(outputs_a[i]) ^ sim_b.value(outputs_b[i])) & live;
      any_diff |= diff;
      bit_diffs += std::popcount(diff);
    }
    return {static_cast<std::size_t>(std::popcount(any_diff)), bit_diffs};
  }
};

void load_key(Simulator& sim, const Netlist& netlist,
              const std::vector<bool>& key) {
  if (key.size() != netlist.key_inputs().size()) {
    throw std::invalid_argument("metrics: key width mismatch");
  }
  for (std::size_t i = 0; i < key.size(); ++i) {
    sim.set_input_all(netlist.key_inputs()[i], key[i]);
  }
}

}  // namespace

double output_corruptibility(const Netlist& locked,
                             const std::vector<bool>& correct_key,
                             std::size_t trials, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PairHarness harness(locked, locked);
  load_key(harness.sim_a, locked, correct_key);
  std::size_t mismatched = 0;
  std::size_t total = 0;
  while (total < trials) {
    // Fresh random wrong key per batch.
    std::vector<bool> wrong(correct_key.size());
    bool differs = false;
    for (std::size_t i = 0; i < wrong.size(); ++i) {
      wrong[i] = rng() & 1;
      differs |= wrong[i] != correct_key[i];
    }
    if (!differs && !wrong.empty()) {
      wrong[0] = !wrong[0];
    }
    load_key(harness.sim_b, locked, wrong);
    const std::size_t batch = std::min<std::size_t>(64, trials - total);
    mismatched += harness.run_batch(rng, batch).first;
    total += batch;
  }
  return trials == 0 ? 0.0 : static_cast<double>(mismatched) / trials;
}

double functional_error_rate(const Netlist& locked,
                             const std::vector<bool>& key,
                             const std::vector<bool>& reference_key,
                             std::size_t trials, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PairHarness harness(locked, locked);
  load_key(harness.sim_a, locked, reference_key);
  load_key(harness.sim_b, locked, key);
  std::size_t mismatched = 0;
  std::size_t total = 0;
  while (total < trials) {
    const std::size_t batch = std::min<std::size_t>(64, trials - total);
    mismatched += harness.run_batch(rng, batch).first;
    total += batch;
  }
  return trials == 0 ? 0.0 : static_cast<double>(mismatched) / trials;
}

double circuit_error_rate(const Netlist& a, const Netlist& b,
                          std::size_t trials, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PairHarness harness(a, b);
  if (!a.key_inputs().empty() || !b.key_inputs().empty()) {
    throw std::invalid_argument("circuit_error_rate: keyed circuit");
  }
  std::size_t mismatched = 0;
  std::size_t total = 0;
  while (total < trials) {
    const std::size_t batch = std::min<std::size_t>(64, trials - total);
    mismatched += harness.run_batch(rng, batch).first;
    total += batch;
  }
  return trials == 0 ? 0.0 : static_cast<double>(mismatched) / trials;
}

double bit_error_rate(const Netlist& locked, const std::vector<bool>& key,
                      const std::vector<bool>& reference_key,
                      std::size_t trials, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PairHarness harness(locked, locked);
  load_key(harness.sim_a, locked, reference_key);
  load_key(harness.sim_b, locked, key);
  std::size_t bit_diffs = 0;
  std::size_t total = 0;
  while (total < trials) {
    const std::size_t batch = std::min<std::size_t>(64, trials - total);
    bit_diffs += harness.run_batch(rng, batch).second;
    total += batch;
  }
  const std::size_t denom = trials * locked.outputs().size();
  return denom == 0 ? 0.0 : static_cast<double>(bit_diffs) / denom;
}

std::vector<std::pair<std::vector<bool>, std::vector<bool>>>
sample_key_mismatches(Simulator& sim, const std::vector<bool>& key,
                      QueryOracle& oracle, std::size_t queries,
                      std::mt19937_64& rng) {
  const auto data_inputs = sim.netlist().data_inputs();
  std::vector<std::pair<std::vector<bool>, std::vector<bool>>> mismatches;
  for (std::size_t q = 0; q < queries; ++q) {
    std::vector<bool> x(data_inputs.size());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng() & 1;
    const std::vector<bool> y = oracle.query(x);
    if (netlist::evaluate_with_key(sim, x, key) != y) {
      mismatches.emplace_back(std::move(x), y);
    }
  }
  return mismatches;
}

}  // namespace ril::attacks
