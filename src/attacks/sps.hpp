// Signal Probability Skew (SPS) attack (Yasin et al.) against Anti-SAT-
// family blocks.
//
// The Anti-SAT flip signal Y = g(X^Ka) AND !g(X^Kb) is almost always 0 --
// its signal probability under random inputs *and random keys* is ~2^-n.
// The attacker estimates signal probabilities by simulation, looks for an
// output-side XOR whose one operand is extremely skewed, and cuts that
// operand away. RIL-Block LUT outputs and SE XOR operands sit near
// probability 1/2, so nothing qualifies for cutting.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::attacks {

/// Monte-Carlo signal probability of every node under uniform random data
/// AND key inputs; `patterns` is rounded up to a multiple of 64.
std::vector<double> signal_probabilities(const netlist::Netlist& netlist,
                                         std::size_t patterns,
                                         std::uint64_t seed);

struct SpsResult {
  /// Attacker's reconstruction (keys eliminated).
  netlist::Netlist recovered;
  /// XOR/XNOR corruption points cut because one operand was skewed.
  std::size_t cuts = 0;
  /// Largest skew |p - 0.5| observed on any key-tainted XOR operand.
  double max_observed_skew = 0.0;
};

/// `skew_threshold`: cut when |p - 0.5| of the keyed XOR operand exceeds
/// this (the paper-s of the SPS literature use values near 0.5).
SpsResult run_sps_attack(const netlist::Netlist& locked,
                         std::size_t patterns = 1 << 14,
                         double skew_threshold = 0.45,
                         std::uint64_t seed = 1);

}  // namespace ril::attacks
