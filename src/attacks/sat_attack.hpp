// Oracle-guided SAT attack (Subramanyan et al., HOST'15) on CDCL.
//
// Maintains a miter over two copies of the locked circuit sharing the input
// vector X but carrying independent keys K1/K2. Each SAT witness yields a
// distinguishing input pattern (DIP); the oracle's response is added as an
// I/O constraint on both key copies. When the miter becomes UNSAT no DIP
// remains, and any key consistent with the collected I/O pairs (extracted
// from a parallel key-determination solver) unlocks the circuit -- provided
// the oracle answered with the true function. Scan-Enable obfuscation and
// dynamic morphing break exactly that premise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/oracle.hpp"
#include "netlist/netlist.hpp"

namespace ril::attacks {

struct SatAttackOptions {
  /// Whole-attack wall-clock budget in seconds; <= 0 means unlimited.
  double time_limit_seconds = 0.0;
  /// DIP iteration cap; 0 means unlimited.
  std::size_t max_iterations = 0;
};

enum class SatAttackStatus {
  kKeyFound,       ///< miter UNSAT, consistent key extracted
  kTimeout,        ///< budget exhausted (the paper's "infinity" rows)
  kIterationLimit,
  kInconsistent,   ///< no key matches the collected I/O pairs (morphing)
};

struct SatAttackResult {
  SatAttackStatus status = SatAttackStatus::kTimeout;
  std::vector<bool> key;          ///< valid iff status == kKeyFound
  std::size_t iterations = 0;     ///< DIPs used
  double seconds = 0.0;
  std::uint64_t conflicts = 0;    ///< CDCL conflicts in the miter solver
};

std::string to_string(SatAttackStatus status);

/// Runs the attack. `locked` must be the attacker's view (combinational,
/// with key inputs); `oracle` answers input queries.
SatAttackResult run_sat_attack(const netlist::Netlist& locked, QueryOracle& oracle,
                               const SatAttackOptions& options = {});

}  // namespace ril::attacks
