// Oracle-guided SAT attack (Subramanyan et al., HOST'15) on CDCL.
//
// Maintains a miter over two copies of the locked circuit sharing the input
// vector X but carrying independent keys K1/K2. Each SAT witness yields a
// distinguishing input pattern (DIP); the oracle's response is added as an
// I/O constraint on both key copies. When the miter becomes UNSAT no DIP
// remains, and any key consistent with the collected I/O pairs (extracted
// from a parallel key-determination solver) unlocks the circuit -- provided
// the oracle answered with the true function. Scan-Enable obfuscation and
// dynamic morphing break exactly that premise.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/engine/attack_budget.hpp"
#include "attacks/engine/miter_context.hpp"
#include "attacks/oracle.hpp"
#include "netlist/netlist.hpp"
#include "runtime/portfolio.hpp"
#include "sat/proof.hpp"

namespace ril::attacks {

struct SatAttackOptions {
  /// Whole-attack wall-clock budget in seconds; <= 0 means unlimited.
  double time_limit_seconds = 0.0;
  /// DIP iteration cap; 0 means unlimited.
  std::size_t max_iterations = 0;
  /// Portfolio width for every miter / key-determination solve. 1 runs the
  /// historical serial path bit-for-bit; N > 1 races N diversified solvers
  /// per solve with first-to-finish-wins (see runtime::SolverPortfolio).
  unsigned jobs = 1;
  /// Base seed for portfolio diversification (irrelevant when jobs == 1).
  std::uint64_t portfolio_seed = 1;
  /// When true, every portfolio solve is appended to
  /// SatAttackResult::solve_log (per-solve JSON stats in the CLI/bench).
  bool record_solves = false;
  /// Canonicalize the extracted key to the lexicographically smallest
  /// consistent one. At miter-UNSAT the consistent-key set equals the set
  /// of functionally correct keys regardless of which DIPs were sampled,
  /// so the canonical key is identical across jobs counts and portfolio
  /// races. Costs one cheap assumption-solve per key bit.
  bool canonical_key = true;
  /// Encode each I/O constraint over the DIP-specialized key cone instead
  /// of re-encoding the whole circuit (engine::DipConstraintEncoder).
  /// Same verdict and canonical key, typically an order of magnitude fewer
  /// clauses per DIP; false reproduces the historical encoding bit-for-bit.
  bool specialize_dips = true;
  /// Optional caller-owned cancellation flag: raise it from any thread to
  /// unwind the attack cooperatively (reported as kTimeout).
  const std::atomic<bool>* cancel = nullptr;
  /// Certify the verdict: log a DRAT trace in every miter-portfolio
  /// member, self-check each SAT model, and on miter-UNSAT validate the
  /// winner's trace with the independent RUP checker. The certificate is
  /// returned in SatAttackResult::proof_trace (or streamed to disk when
  /// proof_file is set). Off by default; the search itself is
  /// bit-identical either way.
  bool certify = false;
  /// With certify: stream every member's trace to disk instead of
  /// buffering it (sat::FileProofTracer under `proof_file + ".m<i>"`
  /// temps). On miter-UNSAT the winner's trace is atomically published as
  /// `proof_file`, validated with the streaming checker, and
  /// SatAttackResult::{proof_path, proof_bytes} are filled;
  /// proof_trace stays null. If the attack stops before miter-UNSAT
  /// (timeout, iteration cap), the winner's trace is still published as
  /// an *open* certificate -- every step RUP-checks against the axioms
  /// but no empty clause lands -- validated with
  /// sat::check_derivations_file and reported as ProofStatus::kOpen.
  /// This is what keeps certified attacks on 100k+-gate hosts inside the
  /// encoder's memory envelope -- the proof never lives in RAM. Empty
  /// (the default) keeps the in-memory path.
  std::string proof_file;
  /// SatELite-style preprocessing (subsumption, self-subsuming resolution,
  /// bounded variable elimination) of the miter and key-determination
  /// formulas before their first solve. Input and key variables are frozen
  /// so DIP extraction, I/O constraints, and key canonicalization keep
  /// working; composes with certify (elimination steps are replayed into
  /// the DRAT trace). On by default since the Table-5 bench medians
  /// confirmed a net win at every scale (see BENCH_solver.json); set
  /// false (CLI --no-preprocess) to recover the historical bit-identical
  /// --jobs 1 search trajectory.
  bool preprocess = true;
  /// Auto-enable preprocessing at scale: when `preprocess` is false but
  /// the locked netlist has at least `preprocess_auto_min_gates` gates,
  /// the miter and key formulas are preprocessed anyway -- large-host
  /// miters are where BVE/subsumption pay for themselves (see
  /// docs/SCALING.md). Set false together with `preprocess` (CLI
  /// --no-preprocess clears both) to force preprocessing off.
  bool preprocess_auto = true;
  std::size_t preprocess_auto_min_gates = 100000;
  /// Restart-time inprocessing (sat/inprocess.hpp: clause vivification,
  /// learned-clause subsumption, failed-literal probing with hyper-binary
  /// resolution) inside every miter / key portfolio member. Scheduled off
  /// conflict counts, so cheap solves pay nothing; input and key
  /// variables are frozen against probing; composes with certify (every
  /// derivation reaches the DRAT stream). Orthogonal to `preprocess`
  /// (CLI --no-inprocess turns only this off).
  bool inprocess = true;
  /// CNF-skeleton cache hooks (the `ril serve` daemon's level-2 cache).
  /// When `miter_skeleton` is set, the miter formula is replayed from the
  /// capture instead of re-encoding `locked` -- bit-identical variables and
  /// clauses, so the verdict, key, iteration count, and conflicts are
  /// unchanged; the skeleton must come from a capture over a netlist with
  /// identical content (the caller keys captures by content hash).
  /// When `capture_skeleton` is set (and no replay source is given), this
  /// run's miter encoding is recorded into it for later replay. Both null
  /// by default; nothing in the attack path changes then.
  const engine::MiterSkeleton* miter_skeleton = nullptr;
  engine::MiterSkeleton* capture_skeleton = nullptr;
};

/// Certification verdict for a whole attack run.
enum class ProofStatus {
  kNotRequested,  ///< options.certify was false
  kValid,         ///< UNSAT trace validated by sat::check_refutation
  kOpen,          ///< streamed open certificate: every step checks, but the
                  ///< attack stopped before miter-UNSAT so there is no
                  ///< refutation (validated by sat::check_derivations_file)
  kInvalid,       ///< trace rejected (solver unsoundness!)
  kMissing,       ///< certify requested but no closed UNSAT trace exists
};

std::string to_string(ProofStatus status);

/// Per-solve log entry (shared across the attack engine).
using SolveRecord = engine::SolveRecord;
using engine::solve_record_json;

enum class SatAttackStatus {
  kKeyFound,       ///< miter UNSAT, consistent key extracted
  kTimeout,        ///< budget exhausted (the paper's "infinity" rows)
  kIterationLimit,
  kInconsistent,   ///< no key matches the collected I/O pairs (morphing)
};

struct SatAttackResult {
  SatAttackStatus status = SatAttackStatus::kTimeout;
  std::vector<bool> key;          ///< valid iff status == kKeyFound
  std::size_t iterations = 0;     ///< DIPs used
  double seconds = 0.0;
  /// CDCL conflicts across all miter-portfolio members (equals the single
  /// miter solver's conflicts when jobs == 1).
  std::uint64_t conflicts = 0;
  /// Total I/O-constraint clauses added across the run, and the clauses a
  /// full re-encoding would have added on top (0 unless specialize_dips).
  std::size_t encoded_clauses = 0;
  std::size_t saved_clauses = 0;
  /// Per-solve portfolio stats; filled when options.record_solves is set.
  std::vector<SolveRecord> solve_log;
  /// --- certification (options.certify) ---------------------------------
  ProofStatus proof_status = ProofStatus::kNotRequested;
  /// Steps in the final miter certificate (originals + derivations +
  /// deletions), 0 unless a certificate was produced.
  std::uint64_t proof_steps = 0;
  /// The winning miter member's DRAT trace; ends with the empty clause
  /// when the miter went UNSAT. Null unless options.certify, and null in
  /// streaming mode (options.proof_file), where the certificate lives on
  /// disk at proof_path instead.
  std::shared_ptr<const sat::DratTrace> proof_trace;
  /// Published on-disk certificate (streaming mode only): final path and
  /// size in bytes. Empty/0 when no certificate was published.
  std::string proof_path;
  std::uint64_t proof_bytes = 0;
  /// False iff some SAT model failed the replay self-check (unsound SAT).
  bool models_verified = true;
  /// --- preprocessing (options.preprocess) ------------------------------
  /// True when the miter formula went through the preprocessor; `preprocess`
  /// then holds the miter-side simplification statistics.
  bool preprocessed = false;
  sat::PreprocessStats preprocess;
  /// --- inprocessing (options.inprocess) --------------------------------
  /// True when restart-time inprocessing was enabled on the portfolios;
  /// `inprocess` then aggregates the miter members' counters.
  bool inprocessed = false;
  sat::InprocessStats inprocess;
};

std::string to_string(SatAttackStatus status);

/// Runs the attack. `locked` must be the attacker's view (combinational,
/// with key inputs); `oracle` answers input queries.
SatAttackResult run_sat_attack(const netlist::Netlist& locked, QueryOracle& oracle,
                               const SatAttackOptions& options = {});

}  // namespace ril::attacks
