#include "attacks/sps.hpp"

#include <bit>
#include <cmath>
#include <random>

#include "locking/locked.hpp"
#include "netlist/simplify.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

std::vector<double> signal_probabilities(const Netlist& netlist,
                                         std::size_t patterns,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  netlist::Simulator sim(netlist);
  std::vector<std::size_t> ones(netlist.node_count(), 0);
  std::size_t total = 0;
  while (total < patterns) {
    for (NodeId id : netlist.inputs()) {
      sim.set_input(id, rng());
    }
    sim.evaluate();
    for (NodeId id = 0; id < netlist.node_count(); ++id) {
      ones[id] += std::popcount(sim.value(id));
    }
    total += 64;
  }
  std::vector<double> probabilities(netlist.node_count());
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    probabilities[id] = static_cast<double>(ones[id]) / total;
  }
  return probabilities;
}

SpsResult run_sps_attack(const Netlist& locked, std::size_t patterns,
                         double skew_threshold, std::uint64_t seed) {
  SpsResult result;
  Netlist work = locked;
  const auto probabilities = signal_probabilities(work, patterns, seed);

  // Key taint (only keyed operands are candidates for cutting).
  std::vector<bool> taint(work.node_count(), false);
  for (NodeId id : work.key_inputs()) taint[id] = true;
  for (NodeId id : work.topological_order()) {
    if (taint[id]) continue;
    for (NodeId f : work.node(id).fanins) {
      if (taint[f]) {
        taint[id] = true;
        break;
      }
    }
  }

  for (NodeId id = 0; id < work.node_count(); ++id) {
    const auto& node = work.node(id);
    if ((node.type != GateType::kXor && node.type != GateType::kXnor) ||
        node.fanins.size() != 2) {
      continue;
    }
    for (int side = 0; side < 2; ++side) {
      const NodeId keyed = node.fanins[side];
      const NodeId clean = node.fanins[1 - side];
      if (!taint[keyed] || taint[clean]) continue;
      const double skew = std::abs(probabilities[keyed] - 0.5);
      result.max_observed_skew = std::max(result.max_observed_skew, skew);
      if (skew >= skew_threshold) {
        // The flip input idles at its dominant value; absorb it.
        const bool idle = probabilities[keyed] >= 0.5;
        const bool inverts = (node.type == GateType::kXor) == idle;
        if (inverts) {
          work.rewrite_as_not(id, clean);
        } else {
          work.rewrite_as_buf(id, clean);
        }
        ++result.cuts;
        break;
      }
    }
  }

  std::vector<bool> zero_key(work.key_inputs().size(), false);
  result.recovered = locking::specialize_keys(work, zero_key);
  netlist::simplify(result.recovered);
  return result;
}

}  // namespace ril::attacks
