// AppSAT (Shamsi et al.): approximate SAT attack.
//
// Interleaves the exact DIP loop with periodic random-query reinforcement
// and an empirical error estimate of the current candidate key; terminates
// early once the estimated error drops below a threshold, returning an
// approximate key. Against high-corruptibility schemes (RIL-Blocks) the
// error never settles, and against a Scan-Enable-obfuscated oracle the
// returned key is wrong for the functional circuit -- the "AppSAT fails"
// column of Table III.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "attacks/engine/attack_budget.hpp"
#include "attacks/oracle.hpp"
#include "netlist/netlist.hpp"

namespace ril::attacks {

struct AppSatOptions {
  double time_limit_seconds = 0.0;
  std::size_t max_iterations = 0;
  /// Run the reinforcement/estimation step every `settle_interval` DIPs.
  std::size_t settle_interval = 4;
  /// Random queries per reinforcement step.
  std::size_t random_queries = 32;
  /// Terminate when the sampled error rate is below this threshold.
  double error_threshold = 0.01;
  /// Seed for the random-query generator.
  std::uint64_t seed = 1;
  /// Portfolio width for the miter / candidate-key solves; 1 reproduces
  /// the historical single-solver behaviour bit-for-bit.
  unsigned jobs = 1;
  /// Base seed for portfolio diversification (irrelevant when jobs == 1).
  std::uint64_t portfolio_seed = 1;
  /// Append every portfolio solve to AppSatResult::solve_log.
  bool record_solves = false;
  /// Cone-specialized I/O-constraint encoding (see SatAttackOptions).
  bool specialize_dips = true;
  /// SatELite-style preprocessing of the miter / key formulas before their
  /// first solve (see SatAttackOptions::preprocess). On by default, like
  /// the exact attack; --no-preprocess restores the historical path.
  bool preprocess = true;
  /// Restart-time inprocessing inside the portfolio members (see
  /// SatAttackOptions::inprocess). Orthogonal to `preprocess`.
  bool inprocess = true;
  /// Optional caller-owned cancellation flag (reported as kTimeout).
  const std::atomic<bool>* cancel = nullptr;
};

enum class AppSatStatus {
  kExact,        ///< DIP loop converged (same as the full SAT attack)
  kApproximate,  ///< early exit with sampled error <= threshold
  kTimeout,
  kIterationLimit,
  kInconsistent,  ///< candidate-key extraction became UNSAT
};

struct AppSatResult {
  AppSatStatus status = AppSatStatus::kTimeout;
  std::vector<bool> key;
  /// Sampled error rate of `key` against the oracle at termination.
  double sampled_error = 1.0;
  std::size_t iterations = 0;
  double seconds = 0.0;
  /// CDCL conflicts across all miter-portfolio members.
  std::uint64_t conflicts = 0;
  /// Constraint-clause totals (see SatAttackResult).
  std::size_t encoded_clauses = 0;
  std::size_t saved_clauses = 0;
  /// Per-solve portfolio stats; filled when options.record_solves is set.
  std::vector<engine::SolveRecord> solve_log;
};

std::string to_string(AppSatStatus status);

AppSatResult run_appsat(const netlist::Netlist& locked, QueryOracle& oracle,
                        const AppSatOptions& options = {});

}  // namespace ril::attacks
