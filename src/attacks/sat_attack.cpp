#include "attacks/sat_attack.hpp"

#include <chrono>

#include "cnf/tseitin.hpp"

namespace ril::attacks {

using cnf::CircuitEncoding;
using netlist::Netlist;
using netlist::NodeId;
using sat::Lit;
using sat::Solver;
using sat::Var;

std::string to_string(SatAttackStatus status) {
  switch (status) {
    case SatAttackStatus::kKeyFound: return "key-found";
    case SatAttackStatus::kTimeout: return "timeout";
    case SatAttackStatus::kIterationLimit: return "iteration-limit";
    case SatAttackStatus::kInconsistent: return "inconsistent";
  }
  return "?";
}

namespace {

/// Encodes one circuit copy with every data input fixed to `dip`, keys
/// bound to `key_vars`, and outputs forced to `response`.
void add_io_constraint(Solver& solver, const Netlist& locked,
                       const std::vector<NodeId>& data_inputs,
                       const std::vector<Var>& key_vars,
                       const std::vector<bool>& dip,
                       const std::vector<bool>& response) {
  std::unordered_map<NodeId, Var> bound;
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(locked.key_inputs()[i], key_vars[i]);
  }
  const CircuitEncoding enc = cnf::encode_circuit(locked, solver, bound);
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(data_inputs[i]), !dip[i])});
  }
  const auto& outputs = locked.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(outputs[i]), !response[i])});
  }
}

}  // namespace

SatAttackResult run_sat_attack(const Netlist& locked, QueryOracle& oracle,
                               const SatAttackOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  SatAttackResult result;
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();

  // Miter solver: shared X, independent K1 / K2.
  Solver miter;
  std::vector<Var> x_vars;
  x_vars.reserve(data_inputs.size());
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(miter.new_var());
  }
  std::vector<Var> k1;
  std::vector<Var> k2;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    k1.push_back(miter.new_var());
  }
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    k2.push_back(miter.new_var());
  }
  auto bind = [&](const std::vector<Var>& keys) {
    std::unordered_map<NodeId, Var> bound;
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      bound.emplace(data_inputs[i], x_vars[i]);
    }
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], keys[i]);
    }
    return bound;
  };
  const CircuitEncoding enc1 = cnf::encode_circuit(locked, miter, bind(k1));
  const CircuitEncoding enc2 = cnf::encode_circuit(locked, miter, bind(k2));
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(enc1.var_of(id));
    out2.push_back(enc2.var_of(id));
  }
  cnf::encode_miter(miter, out1, out2);

  // Key-determination solver: single key vector constrained by all DIPs.
  Solver key_solver;
  std::vector<Var> key_vars;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    key_vars.push_back(key_solver.new_var());
  }

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = SatAttackStatus::kIterationLimit;
      break;
    }
    if (options.time_limit_seconds > 0) {
      const double remaining = options.time_limit_seconds - elapsed();
      if (remaining <= 0) {
        result.status = SatAttackStatus::kTimeout;
        break;
      }
      miter.set_limits({.time_limit_seconds = remaining});
    }
    const sat::Result r = miter.solve();
    if (r == sat::Result::kUnknown) {
      result.status = SatAttackStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      // No DIP remains: extract any consistent key.
      if (options.time_limit_seconds > 0) {
        const double remaining = options.time_limit_seconds - elapsed();
        if (remaining <= 0) {
          result.status = SatAttackStatus::kTimeout;
          break;
        }
        key_solver.set_limits({.time_limit_seconds = remaining});
      }
      const sat::Result kr = key_solver.solve();
      if (kr == sat::Result::kSat) {
        result.key.reserve(key_vars.size());
        for (Var v : key_vars) result.key.push_back(key_solver.model_bool(v));
        result.status = SatAttackStatus::kKeyFound;
      } else if (kr == sat::Result::kUnsat) {
        result.status = SatAttackStatus::kInconsistent;
      } else {
        result.status = SatAttackStatus::kTimeout;
      }
      break;
    }

    // SAT: extract a DIP, query the oracle, constrain both copies.
    std::vector<bool> dip;
    dip.reserve(x_vars.size());
    for (Var v : x_vars) dip.push_back(miter.model_bool(v));
    const std::vector<bool> response = oracle.query(dip);
    add_io_constraint(miter, locked, data_inputs,
                      std::vector<Var>(k1.begin(), k1.end()), dip, response);
    add_io_constraint(miter, locked, data_inputs,
                      std::vector<Var>(k2.begin(), k2.end()), dip, response);
    add_io_constraint(key_solver, locked, data_inputs, key_vars, dip,
                      response);
    ++result.iterations;
  }

  result.seconds = elapsed();
  result.conflicts = miter.stats().conflicts;
  return result;
}

}  // namespace ril::attacks
