#include "attacks/sat_attack.hpp"

#include <chrono>
#include <cstdio>

#include "cnf/tseitin.hpp"

namespace ril::attacks {

using cnf::CircuitEncoding;
using netlist::Netlist;
using netlist::NodeId;
using runtime::SolverPortfolio;
using sat::ClauseSink;
using sat::Lit;
using sat::Var;

std::string to_string(SatAttackStatus status) {
  switch (status) {
    case SatAttackStatus::kKeyFound: return "key-found";
    case SatAttackStatus::kTimeout: return "timeout";
    case SatAttackStatus::kIterationLimit: return "iteration-limit";
    case SatAttackStatus::kInconsistent: return "inconsistent";
  }
  return "?";
}

namespace {

/// Encodes one circuit copy with every data input fixed to `dip`, keys
/// bound to `key_vars`, and outputs forced to `response`.
void add_io_constraint(ClauseSink& solver, const Netlist& locked,
                       const std::vector<NodeId>& data_inputs,
                       const std::vector<Var>& key_vars,
                       const std::vector<bool>& dip,
                       const std::vector<bool>& response) {
  std::unordered_map<NodeId, Var> bound;
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(locked.key_inputs()[i], key_vars[i]);
  }
  const CircuitEncoding enc = cnf::encode_circuit(locked, solver, bound);
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(data_inputs[i]), !dip[i])});
  }
  const auto& outputs = locked.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(outputs[i]), !response[i])});
  }
}

}  // namespace

SatAttackResult run_sat_attack(const Netlist& locked, QueryOracle& oracle,
                               const SatAttackOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  SatAttackResult result;
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();

  auto record = [&](const char* phase, const runtime::SolveOutcome& outcome) {
    if (!options.record_solves) return;
    result.solve_log.push_back({result.iterations, phase, outcome});
  };

  // Miter portfolio: shared X, independent K1 / K2 in every member.
  SolverPortfolio miter(options.jobs, options.portfolio_seed);
  std::vector<Var> x_vars;
  x_vars.reserve(data_inputs.size());
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(miter.new_var());
  }
  std::vector<Var> k1;
  std::vector<Var> k2;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    k1.push_back(miter.new_var());
  }
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    k2.push_back(miter.new_var());
  }
  auto bind = [&](const std::vector<Var>& keys) {
    std::unordered_map<NodeId, Var> bound;
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      bound.emplace(data_inputs[i], x_vars[i]);
    }
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], keys[i]);
    }
    return bound;
  };
  const CircuitEncoding enc1 = cnf::encode_circuit(locked, miter, bind(k1));
  const CircuitEncoding enc2 = cnf::encode_circuit(locked, miter, bind(k2));
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(enc1.var_of(id));
    out2.push_back(enc2.var_of(id));
  }
  cnf::encode_miter(miter, out1, out2);

  // Key-determination portfolio: one key vector constrained by all DIPs.
  SolverPortfolio key_solver(options.jobs, options.portfolio_seed + 0x9e37);
  std::vector<Var> key_vars;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    key_vars.push_back(key_solver.new_var());
  }

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = SatAttackStatus::kIterationLimit;
      break;
    }
    if (options.time_limit_seconds > 0) {
      const double remaining = options.time_limit_seconds - elapsed();
      if (remaining <= 0) {
        result.status = SatAttackStatus::kTimeout;
        break;
      }
      miter.set_limits({.time_limit_seconds = remaining});
    }
    const runtime::SolveOutcome miter_outcome = miter.solve();
    record("miter", miter_outcome);
    const sat::Result r = miter_outcome.result;
    if (r == sat::Result::kUnknown) {
      result.status = SatAttackStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      // No DIP remains: extract any consistent key.
      if (options.time_limit_seconds > 0) {
        const double remaining = options.time_limit_seconds - elapsed();
        if (remaining <= 0) {
          result.status = SatAttackStatus::kTimeout;
          break;
        }
        key_solver.set_limits({.time_limit_seconds = remaining});
      }
      const runtime::SolveOutcome key_outcome = key_solver.solve();
      record("key", key_outcome);
      const sat::Result kr = key_outcome.result;
      if (kr == sat::Result::kSat) {
        result.key.reserve(key_vars.size());
        for (Var v : key_vars) result.key.push_back(key_solver.model_bool(v));
        result.status = SatAttackStatus::kKeyFound;
        if (options.canonical_key) {
          // Lexicographic minimization: fix each key bit to 0 when some
          // consistent key allows it. Every consistent key is functionally
          // correct here, so the minimum is a valid unlock key and does
          // not depend on the DIP order (hence not on the jobs count).
          std::vector<Lit> fixed;
          fixed.reserve(key_vars.size());
          bool complete = true;
          for (std::size_t i = 0; i < key_vars.size(); ++i) {
            if (options.time_limit_seconds > 0) {
              const double remaining =
                  options.time_limit_seconds - elapsed();
              if (remaining <= 0) {
                complete = false;
                break;
              }
              key_solver.set_limits({.time_limit_seconds = remaining});
            }
            fixed.push_back(Lit::make(key_vars[i], true));  // try bit = 0
            const runtime::SolveOutcome probe = key_solver.solve(fixed);
            if (probe.result == sat::Result::kUnsat) {
              fixed.back() = Lit::make(key_vars[i]);  // forced to 1
            } else if (probe.result != sat::Result::kSat) {
              complete = false;  // budget expired; keep the model key
              break;
            }
          }
          if (complete) {
            for (std::size_t i = 0; i < key_vars.size(); ++i) {
              result.key[i] = !fixed[i].sign();
            }
          }
        }
      } else if (kr == sat::Result::kUnsat) {
        result.status = SatAttackStatus::kInconsistent;
      } else {
        result.status = SatAttackStatus::kTimeout;
      }
      break;
    }

    // SAT: extract a DIP, query the oracle, constrain both copies.
    std::vector<bool> dip;
    dip.reserve(x_vars.size());
    for (Var v : x_vars) dip.push_back(miter.model_bool(v));
    const std::vector<bool> response = oracle.query(dip);
    add_io_constraint(miter, locked, data_inputs,
                      std::vector<Var>(k1.begin(), k1.end()), dip, response);
    add_io_constraint(miter, locked, data_inputs,
                      std::vector<Var>(k2.begin(), k2.end()), dip, response);
    add_io_constraint(key_solver, locked, data_inputs, key_vars, dip,
                      response);
    ++result.iterations;
  }

  result.seconds = elapsed();
  result.conflicts = miter.total_conflicts();
  return result;
}

std::string solve_record_json(const SolveRecord& record) {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix),
                "{\"iteration\":%zu,\"phase\":\"%s\",\"solve\":",
                record.iteration, record.phase.c_str());
  return std::string(prefix) + runtime::to_json(record.outcome) + "}";
}

}  // namespace ril::attacks
