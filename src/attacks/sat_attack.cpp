#include "attacks/sat_attack.hpp"

#include "attacks/engine/dip_encoder.hpp"
#include "attacks/engine/miter_context.hpp"
#include "sat/drat_check.hpp"

namespace ril::attacks {

using netlist::Netlist;
using runtime::SolverPortfolio;
using sat::Lit;
using sat::Var;

std::string to_string(ProofStatus status) {
  switch (status) {
    case ProofStatus::kNotRequested: return "not-requested";
    case ProofStatus::kValid: return "valid";
    case ProofStatus::kOpen: return "open";
    case ProofStatus::kInvalid: return "invalid";
    case ProofStatus::kMissing: return "missing";
  }
  return "?";
}

std::string to_string(SatAttackStatus status) {
  switch (status) {
    case SatAttackStatus::kKeyFound: return "key-found";
    case SatAttackStatus::kTimeout: return "timeout";
    case SatAttackStatus::kIterationLimit: return "iteration-limit";
    case SatAttackStatus::kInconsistent: return "inconsistent";
  }
  return "?";
}

SatAttackResult run_sat_attack(const Netlist& locked, QueryOracle& oracle,
                               const SatAttackOptions& options) {
  engine::AttackBudget budget(options.time_limit_seconds, options.cancel);
  budget.enable_recording(options.record_solves);

  SatAttackResult result;

  // Preprocessing is explicit opt-in on small hosts (keeps --jobs 1 runs
  // bit-identical to the historical path) and automatic at scale, where
  // the miter is large enough for BVE/subsumption to pay off.
  const bool preprocess =
      options.preprocess ||
      (options.preprocess_auto &&
       locked.gate_count() >= options.preprocess_auto_min_gates);
  const bool stream_proof = options.certify && !options.proof_file.empty();

  // Miter portfolio: shared X, independent K1 / K2 in every member.
  SolverPortfolio miter(options.jobs, options.portfolio_seed);
  miter.set_external_stop(budget.stop_flag());
  // Certification: proof logging must precede the miter encoding so every
  // member's trace carries the full axiom stream. Only the miter verdict
  // is certified -- the UNSAT that terminates the DIP loop is the claim
  // the paper's iteration counts rest on.
  if (options.certify) {
    if (stream_proof) {
      miter.enable_proof_files(options.proof_file);
    } else {
      miter.enable_proof();
    }
  }
  if (preprocess) miter.enable_preprocessing();
  if (options.inprocess) miter.enable_inprocessing();
  const engine::MiterContext ctx = [&]() -> engine::MiterContext {
    if (options.miter_skeleton != nullptr) {
      return engine::MiterContext(locked, *options.miter_skeleton, miter);
    }
    return engine::MiterContext(locked, miter, options.capture_skeleton);
  }();
  if (preprocess || options.inprocess) {
    // The DIP loop reads X from each model and adds constraints over both
    // key vectors, so those variables must survive elimination (and stay
    // exempt from failed-literal probing).
    miter.freeze(ctx.input_vars());
    miter.freeze(ctx.copy(0).key_vars);
    miter.freeze(ctx.copy(1).key_vars);
  }

  // Key-determination portfolio: one key vector constrained by all DIPs.
  SolverPortfolio key_solver(options.jobs, options.portfolio_seed + 0x9e37);
  key_solver.set_external_stop(budget.stop_flag());
  if (preprocess) key_solver.enable_preprocessing();
  if (options.inprocess) key_solver.enable_inprocessing();
  const std::vector<Var> key_vars =
      engine::make_vars(key_solver, locked.key_inputs().size());
  if (preprocess || options.inprocess) key_solver.freeze(key_vars);

  engine::DipConstraintEncoder dips(locked, options.specialize_dips);

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = SatAttackStatus::kIterationLimit;
      break;
    }
    if (budget.limited() || budget.cancelled()) {
      if (budget.expired()) {
        result.status = SatAttackStatus::kTimeout;
        break;
      }
      miter.set_limits(budget.limits());
    }
    const runtime::SolveOutcome miter_outcome = miter.solve();
    budget.record(result.iterations, "miter", miter_outcome);
    if (miter_outcome.model_verified == 0) result.models_verified = false;
    const sat::Result r = miter_outcome.result;
    if (r == sat::Result::kUnknown) {
      result.status = SatAttackStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      if (options.certify) {
        // The winner's trace is the certificate; validate it with the
        // independent checker before trusting the verdict.
        if (stream_proof) {
          const sat::FileProofTracer* trace = miter.winner_file_trace();
          if (trace != nullptr && trace->closed()) {
            result.proof_steps = trace->steps();
            result.proof_bytes =
                miter.promote_winner_trace(options.proof_file);
            result.proof_path = options.proof_file;
            // Single streaming pass over the published file -- the
            // certificate is re-read from disk, never rebuilt in memory.
            result.proof_status =
                sat::check_refutation_file(options.proof_file).valid
                    ? ProofStatus::kValid
                    : ProofStatus::kInvalid;
          } else {
            result.proof_status = ProofStatus::kMissing;
          }
        } else {
          const sat::DratTrace* trace = miter.winner_trace();
          if (trace != nullptr && trace->closed()) {
            auto certificate = std::make_shared<sat::DratTrace>(*trace);
            result.proof_steps = certificate->size();
            result.proof_status = sat::check_refutation(*certificate).valid
                                      ? ProofStatus::kValid
                                      : ProofStatus::kInvalid;
            result.proof_trace = std::move(certificate);
          } else {
            result.proof_status = ProofStatus::kMissing;
          }
        }
      }
      // No DIP remains: extract any consistent key.
      if (budget.limited() || budget.cancelled()) {
        if (budget.expired()) {
          result.status = SatAttackStatus::kTimeout;
          break;
        }
        key_solver.set_limits(budget.limits());
      }
      const runtime::SolveOutcome key_outcome = key_solver.solve();
      budget.record(result.iterations, "key", key_outcome);
      const sat::Result kr = key_outcome.result;
      if (kr == sat::Result::kSat) {
        result.key.reserve(key_vars.size());
        for (Var v : key_vars) result.key.push_back(key_solver.model_bool(v));
        result.status = SatAttackStatus::kKeyFound;
        if (options.canonical_key) {
          // Lexicographic minimization: fix each key bit to 0 when some
          // consistent key allows it. Every consistent key is functionally
          // correct here, so the minimum is a valid unlock key and does
          // not depend on the DIP order (hence not on the jobs count).
          std::vector<Lit> fixed;
          fixed.reserve(key_vars.size());
          bool complete = true;
          for (std::size_t i = 0; i < key_vars.size(); ++i) {
            if (budget.limited() || budget.cancelled()) {
              if (budget.expired()) {
                complete = false;
                break;
              }
              key_solver.set_limits(budget.limits());
            }
            fixed.push_back(Lit::make(key_vars[i], true));  // try bit = 0
            const runtime::SolveOutcome probe = key_solver.solve(fixed);
            if (probe.result == sat::Result::kUnsat) {
              fixed.back() = Lit::make(key_vars[i]);  // forced to 1
            } else if (probe.result != sat::Result::kSat) {
              complete = false;  // budget expired; keep the model key
              break;
            }
          }
          if (complete) {
            for (std::size_t i = 0; i < key_vars.size(); ++i) {
              result.key[i] = !fixed[i].sign();
            }
          }
        }
      } else if (kr == sat::Result::kUnsat) {
        result.status = SatAttackStatus::kInconsistent;
      } else {
        result.status = SatAttackStatus::kTimeout;
      }
      break;
    }

    // SAT: extract a DIP, query the oracle, constrain both copies.
    const std::vector<bool> dip =
        ctx.extract_dip([&](Var v) { return miter.model_bool(v); });
    const std::vector<bool> response = oracle.query(dip);
    engine::ConstraintStats stats =
        dips.add_constraint(miter, ctx.copy(0).key_vars, dip, response);
    stats += dips.add_constraint(miter, ctx.copy(1).key_vars, dip, response);
    stats += dips.add_constraint(key_solver, key_vars, dip, response);
    budget.add_constraints(stats);
    ++result.iterations;
  }

  if (options.certify &&
      result.proof_status == ProofStatus::kNotRequested) {
    // The attack stopped before miter-UNSAT (timeout, iteration cap). In
    // streaming mode the winner's partial trace is still worth publishing:
    // every derivation in it RUP-checks against the logged axioms, so it
    // is an *open* certificate of the work done so far -- exactly what
    // `ril check-proof --open` accepts. On 200k+-gate hosts the final
    // whole-miter refutation is beyond the CDCL core, so this is the
    // certificate such runs actually produce (see docs/SCALING.md).
    const sat::FileProofTracer* trace =
        stream_proof ? miter.winner_file_trace() : nullptr;
    if (trace != nullptr) {
      result.proof_steps = trace->steps();
      result.proof_bytes = miter.promote_winner_trace(options.proof_file);
      result.proof_path = options.proof_file;
      result.proof_status =
          sat::check_derivations_file(options.proof_file).valid
              ? ProofStatus::kOpen
              : ProofStatus::kInvalid;
    } else {
      result.proof_status = ProofStatus::kMissing;  // no trace to publish
    }
  }
  result.seconds = budget.elapsed();
  result.conflicts = miter.total_conflicts();
  if (const sat::PreprocessStats* prep = miter.preprocess_stats()) {
    result.preprocessed = true;
    result.preprocess = *prep;
  }
  if (miter.inprocessing_enabled()) {
    result.inprocessed = true;
    result.inprocess = miter.inprocess_stats_total();
  }
  const engine::ConstraintStats totals = budget.constraint_totals();
  result.encoded_clauses = totals.encoded_clauses;
  result.saved_clauses = totals.saved_clauses;
  result.solve_log = budget.take_log();
  return result;
}

}  // namespace ril::attacks
