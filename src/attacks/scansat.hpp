// ScanSAT-style sequential attack plumbing.
//
// For sequential designs the SAT attack works on the combinational core
// (DFFs cut into pseudo-PI/PO) while the physical oracle is reached through
// the scan chain: shift a state image in, pulse one functional capture,
// shift the next state out. ScanOracle adapts a scan-inserted activated
// chip to the combinational Oracle interface the attack expects, so
// run_sat_attack() can be pointed at real scan hardware semantics.
#pragma once

#include <vector>

#include "attacks/oracle.hpp"
#include "attacks/sat_attack.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scan_chain.hpp"

namespace ril::attacks {

class ScanOracle : public QueryOracle {
 public:
  /// `activated` is the sequential netlist of the unlocked chip (or the
  /// locked one specialized with the programmed key). The oracle owns a
  /// scan-inserted copy.
  explicit ScanOracle(const netlist::Netlist& activated);

  /// Input order matches activated.combinational_core().data_inputs():
  /// original primary inputs first, then pseudo-inputs (DFF states) in DFF
  /// order. Output order: original primary outputs, then pseudo-outputs.
  std::vector<bool> query(const std::vector<bool>& inputs) override;

  std::size_t num_inputs() const;
  std::size_t num_outputs() const;
  std::size_t query_count() const { return query_count_; }

 private:
  netlist::ScanInsertion design_;
  netlist::ScanTester tester_;
  std::size_t primary_inputs_ = 0;
  std::size_t primary_outputs_ = 0;
  std::size_t query_count_ = 0;
};

/// Runs the SAT attack on a combinational core against a scan oracle,
/// validating that the core's pseudo-PI/PO interface matches the oracle's
/// scan-chain view before handing off to run_sat_attack(). `locked_core`
/// is typically locked.combinational_core().
SatAttackResult run_scansat_attack(const netlist::Netlist& locked_core,
                                   ScanOracle& oracle,
                                   const SatAttackOptions& options = {});

}  // namespace ril::attacks
