#include "attacks/scansat.hpp"

#include <stdexcept>

namespace ril::attacks {

using netlist::Netlist;

ScanOracle::ScanOracle(const Netlist& activated)
    : design_(netlist::insert_scan_chain(activated)), tester_(design_) {
  primary_inputs_ = activated.data_inputs().size();
  primary_outputs_ = activated.outputs().size();
}

std::size_t ScanOracle::num_inputs() const {
  return primary_inputs_ + design_.chain.size();
}

std::size_t ScanOracle::num_outputs() const {
  return primary_outputs_ + design_.chain.size();
}

std::vector<bool> ScanOracle::query(const std::vector<bool>& inputs) {
  if (inputs.size() != num_inputs()) {
    throw std::invalid_argument("ScanOracle: input width mismatch");
  }
  ++query_count_;
  const std::vector<bool> primary(inputs.begin(),
                                  inputs.begin() + primary_inputs_);
  const std::vector<bool> state(inputs.begin() + primary_inputs_,
                                inputs.end());
  tester_.shift_in(state);
  tester_.capture(primary);
  std::vector<bool> response = tester_.last_outputs();
  const std::vector<bool> next_state = tester_.shift_out();
  response.insert(response.end(), next_state.begin(), next_state.end());
  return response;
}

SatAttackResult run_scansat_attack(const Netlist& locked_core,
                                   ScanOracle& oracle,
                                   const SatAttackOptions& options) {
  if (locked_core.data_inputs().size() != oracle.num_inputs()) {
    throw std::invalid_argument(
        "run_scansat_attack: core input width does not match scan oracle");
  }
  if (locked_core.outputs().size() != oracle.num_outputs()) {
    throw std::invalid_argument(
        "run_scansat_attack: core output width does not match scan oracle");
  }
  return run_sat_attack(locked_core, oracle, options);
}

}  // namespace ril::attacks
