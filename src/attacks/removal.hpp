// Removal attack: excise separable key-dependent logic.
//
// One-point-function schemes (SARLock, Anti-SAT, SFLL's restore unit) bolt a
// key-dependent flip signal onto an otherwise intact design:
//     out' = out XOR flip(x, k).
// The removal attack pattern-matches exactly that structure -- an output-side
// XOR/XNOR whose one operand cone contains key inputs while the other does
// not -- and cuts the keyed side away. For RIL-Blocks (and LUT locking) the
// keys are entangled with the replaced gates, so nothing separable exists
// and removal cannot recover the function.
#pragma once

#include "netlist/netlist.hpp"

namespace ril::attacks {

struct RemovalResult {
  /// The attacker's reconstruction: key inputs eliminated.
  netlist::Netlist recovered;
  /// Number of XOR/XNOR corruption points that were cut away.
  std::size_t cuts = 0;
  /// Number of key bits whose logic could not be separated and was instead
  /// arbitrarily grounded (a forced guess -- usually functionally wrong).
  std::size_t grounded_keys = 0;
};

RemovalResult run_removal_attack(const netlist::Netlist& locked);

}  // namespace ril::attacks
