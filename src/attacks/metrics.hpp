// Security metrics: output corruptibility and key/functional error rates.
#pragma once

#include <cstdint>
#include <random>
#include <utility>

#include "attacks/oracle.hpp"
#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"

namespace ril::attacks {

/// Fraction of (random input, random wrong key) trials where the locked
/// circuit's output vector differs from the correct-key output vector.
/// High corruptibility is the paper's argument against one-point functions.
double output_corruptibility(const netlist::Netlist& locked,
                             const std::vector<bool>& correct_key,
                             std::size_t trials, std::uint64_t seed);

/// Fraction of random input vectors where locked(key) differs from
/// locked(reference_key) on at least one output.
double functional_error_rate(const netlist::Netlist& locked,
                             const std::vector<bool>& key,
                             const std::vector<bool>& reference_key,
                             std::size_t trials, std::uint64_t seed);

/// Fraction of random input vectors where `a` and `b` differ on at least
/// one output (both circuits without key inputs; positional input match).
double circuit_error_rate(const netlist::Netlist& a, const netlist::Netlist& b,
                          std::size_t trials, std::uint64_t seed);

/// Average per-output bit error rate between locked(key) and
/// locked(reference_key) over random inputs.
double bit_error_rate(const netlist::Netlist& locked,
                      const std::vector<bool>& key,
                      const std::vector<bool>& reference_key,
                      std::size_t trials, std::uint64_t seed);

/// Draws `queries` random input vectors (one rng() & 1 per data bit, in
/// query order) and compares the candidate `key` on the caller-owned
/// simulator against the oracle. Returns the (input, oracle response)
/// pairs where they disagree, in query order -- AppSAT's reinforcement
/// counterexamples and its sampled-error numerator.
std::vector<std::pair<std::vector<bool>, std::vector<bool>>>
sample_key_mismatches(netlist::Simulator& sim, const std::vector<bool>& key,
                      QueryOracle& oracle, std::size_t queries,
                      std::mt19937_64& rng);

}  // namespace ril::attacks
