#include "attacks/engine/attack_budget.hpp"

#include <cstdio>

namespace ril::attacks::engine {

AttackBudget::AttackBudget(double time_limit_seconds,
                           const std::atomic<bool>* cancel)
    : start_(std::chrono::steady_clock::now()),
      limit_(time_limit_seconds),
      cancel_(cancel) {}

double AttackBudget::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

bool AttackBudget::cancelled() const {
  return cancel_ && cancel_->load(std::memory_order_relaxed);
}

bool AttackBudget::expired() const {
  return cancelled() || (limited() && remaining() <= 0);
}

sat::SolverLimits AttackBudget::limits() const {
  sat::SolverLimits limits;
  if (limited()) limits.time_limit_seconds = remaining();
  return limits;
}

void AttackBudget::record(std::size_t iteration, const char* phase,
                          const runtime::SolveOutcome& outcome) {
  if (!recording_) return;
  log_.push_back({iteration, phase, outcome, 0, 0});
}

void AttackBudget::add_constraints(const ConstraintStats& stats) {
  totals_ += stats;
  if (recording_ && !log_.empty()) {
    log_.back().encoded_clauses += stats.encoded_clauses;
    log_.back().saved_clauses += stats.saved_clauses;
  }
}

std::string solve_record_json(const SolveRecord& record) {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix),
                "{\"iteration\":%zu,\"phase\":\"%s\",\"solve\":",
                record.iteration, record.phase.c_str());
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix),
                ",\"encoded_clauses\":%zu,\"saved_clauses\":%zu}",
                record.encoded_clauses, record.saved_clauses);
  return std::string(prefix) + runtime::to_json(record.outcome) + suffix;
}

}  // namespace ril::attacks::engine
