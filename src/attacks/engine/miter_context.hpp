// Shared miter construction for the SAT-family attacks.
//
// Every oracle-guided attack builds the same object: two copies of the
// locked circuit sharing the input vector X, each with its own key binding,
// and a miter constraint forcing at least one output pair to differ.
// MiterContext owns that construction over any sat::ClauseSink (a plain
// Solver or a runtime::SolverPortfolio), with the exact variable/clause
// order of the historical per-attack implementations so that a jobs == 1
// run stays bit-identical to the pre-engine code. The lower-level
// primitives (encode_copy, make_vars, fix_vars) serve attacks whose copies
// are not a miter pair, e.g. the sensitization attack's CEGIS copies.
#pragma once

#include <functional>
#include <vector>

#include "cnf/tseitin.hpp"
#include "netlist/netlist.hpp"
#include "sat/clause_sink.hpp"

namespace ril::attacks::engine {

/// Allocates `count` fresh variables from the sink.
std::vector<sat::Var> make_vars(sat::ClauseSink& sink, std::size_t count);

/// Allocates one fresh variable per value and immediately unit-fixes it
/// (variable and clause interleaved, matching the historical encoders).
std::vector<sat::Var> make_fixed_vars(sat::ClauseSink& sink,
                                      const std::vector<bool>& values);

/// Unit-fixes existing variables to the given values, in order.
void fix_vars(sat::ClauseSink& sink, const std::vector<sat::Var>& vars,
              const std::vector<bool>& values);

/// One encoded copy of a locked circuit.
struct CircuitCopy {
  cnf::CircuitEncoding enc;
  std::vector<sat::Var> key_vars;     ///< aligned with locked.key_inputs()
  std::vector<sat::Var> output_vars;  ///< aligned with locked.outputs()
};

/// Encodes one copy of `locked` into `sink` with its data inputs bound to
/// `input_vars` (positional over data_inputs()). Key inputs are bound to
/// *key_vars when given, otherwise they receive fresh variables in
/// topological order (exposed via CircuitCopy::key_vars either way).
CircuitCopy encode_copy(const netlist::Netlist& locked, sat::ClauseSink& sink,
                        const std::vector<sat::Var>& input_vars,
                        const std::vector<sat::Var>* key_vars = nullptr);

/// A captured free-key miter encoding: the exact variable block and clause
/// stream the free-key MiterContext constructor emitted, plus the variable
/// roles the DIP loop needs (X, K1/K2, outputs, miter diffs). Replaying a
/// skeleton into a *fresh* sink reproduces the identical formula -- same
/// variable numbering, same clause order -- without touching the netlist or
/// the Tseitin encoder, which is what lets the `ril serve` daemon memoize
/// the encode stage across requests that attack the same host.
struct MiterSkeleton {
  std::size_t num_vars = 0;  ///< variables the capture allocated (dense, 0-based)
  sat::ClauseBatch clauses;  ///< every clause, in emission order
  std::vector<sat::Var> x_vars;
  std::vector<sat::Var> key_vars[2];
  std::vector<sat::Var> output_vars[2];
  std::vector<sat::Var> diff_vars;
  /// Shape of the netlist the capture ran on; replay re-validates it so a
  /// stale cache entry fails loudly instead of attacking the wrong host.
  std::size_t data_input_count = 0;
  std::size_t key_input_count = 0;
  std::size_t output_count = 0;

  bool empty() const { return num_vars == 0 && clauses.empty(); }
  /// Shape compatibility only -- content identity is the caller's job
  /// (the service keys skeletons by netlist content hash).
  bool matches(const netlist::Netlist& locked) const;
  /// Approximate heap footprint, for cache accounting.
  std::size_t memory_bytes() const;
};

class MiterContext {
 public:
  /// Free-key miter (SAT attack, AppSAT): shared X, independent key vectors
  /// K1/K2. Variable layout is X, K1, K2, copy 1, copy 2, miter. When
  /// `capture` is non-null the emitted encoding is additionally recorded
  /// into it for later replay; capture requires `sink` to be fresh (no
  /// variables allocated yet) so the skeleton's numbering starts at 0.
  MiterContext(const netlist::Netlist& locked, sat::ClauseSink& sink,
               MiterSkeleton* capture = nullptr);

  /// Replays a captured free-key miter into a fresh sink: bulk-allocates
  /// the variable block and streams the recorded clauses, bit-identical to
  /// re-encoding `locked`. Throws std::invalid_argument if the skeleton's
  /// shape does not match `locked` or the sink is not fresh.
  MiterContext(const netlist::Netlist& locked, const MiterSkeleton& skeleton,
               sat::ClauseSink& sink);

  /// Fixed-key miter (bypass attack): each copy carries fresh key variables
  /// unit-fixed to key_a / key_b; a witness is an input where the two
  /// wrongly-keyed copies disagree.
  MiterContext(const netlist::Netlist& locked, sat::ClauseSink& sink,
               const std::vector<bool>& key_a, const std::vector<bool>& key_b);

  const netlist::Netlist& locked() const { return *locked_; }
  const std::vector<sat::Var>& input_vars() const { return x_vars_; }
  /// The two encoded copies; index 0 / 1.
  const CircuitCopy& copy(std::size_t index) const { return copies_[index]; }
  /// Per-output-pair difference variables from the miter encoding.
  const std::vector<sat::Var>& diff_vars() const { return diff_vars_; }

  /// Reads the witness input assignment out of a satisfying model;
  /// `model` maps a variable to its model value.
  std::vector<bool> extract_dip(
      const std::function<bool(sat::Var)>& model) const;

 private:
  void build_free_key(const netlist::Netlist& locked, sat::ClauseSink& sink);

  const netlist::Netlist* locked_ = nullptr;
  std::vector<sat::Var> x_vars_;
  CircuitCopy copies_[2];
  std::vector<sat::Var> diff_vars_;
};

}  // namespace ril::attacks::engine
