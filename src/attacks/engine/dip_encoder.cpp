#include "attacks/engine/dip_encoder.hpp"

#include <stdexcept>
#include <unordered_map>

#include "cnf/tseitin.hpp"
#include "netlist/simplify.hpp"
#include "netlist/specialize.hpp"

namespace ril::attacks::engine {

using netlist::Netlist;
using netlist::NodeId;
using sat::ClauseSink;
using sat::CountingSink;
using sat::Lit;
using sat::Var;

DipConstraintEncoder::DipConstraintEncoder(const Netlist& locked,
                                           bool specialize)
    : locked_(&locked),
      data_inputs_(locked.data_inputs()),
      specialize_(specialize) {}

ConstraintStats DipConstraintEncoder::add_constraint(
    ClauseSink& sink, const std::vector<Var>& key_vars,
    const std::vector<bool>& dip, const std::vector<bool>& response) {
  if (key_vars.size() != locked_->key_inputs().size() ||
      dip.size() != data_inputs_.size() ||
      response.size() != locked_->outputs().size()) {
    throw std::invalid_argument("add_constraint: width mismatch");
  }
  return specialize_ ? add_specialized(sink, key_vars, dip, response)
                     : add_full(sink, key_vars, dip, response);
}

ConstraintStats DipConstraintEncoder::add_full(
    ClauseSink& sink, const std::vector<Var>& key_vars,
    const std::vector<bool>& dip, const std::vector<bool>& response) {
  // Historical encoding, preserved bit-for-bit: bind the keys, encode the
  // whole circuit, then unit-fix the data inputs and outputs.
  CountingSink counting(&sink);
  std::unordered_map<NodeId, Var> bound;
  bound.reserve(key_vars.size());
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(locked_->key_inputs()[i], key_vars[i]);
  }
  const cnf::CircuitEncoding enc =
      cnf::encode_circuit(*locked_, counting, bound);
  for (std::size_t i = 0; i < data_inputs_.size(); ++i) {
    counting.add_clause({Lit::make(enc.var_of(data_inputs_[i]), !dip[i])});
  }
  const auto& outputs = locked_->outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    counting.add_clause({Lit::make(enc.var_of(outputs[i]), !response[i])});
  }
  return {counting.clauses(), 0};
}

ConstraintStats DipConstraintEncoder::add_specialized(
    ClauseSink& sink, const std::vector<Var>& key_vars,
    const std::vector<bool>& dip, const std::vector<bool>& response) {
  if (!cone_ || cone_dip_ != dip) {
    cone_ = netlist::specialize_inputs(*locked_, data_inputs_, dip);
    netlist::simplify(*cone_);
    cone_dip_ = dip;
  }
  CountingSink counting(&sink);
  const cnf::SpecializedEncoding spec =
      cnf::encode_specialized(*cone_, counting, key_vars);
  for (std::size_t i = 0; i < spec.outputs.size(); ++i) {
    counting.add_clause({Lit::make(spec.outputs[i], !response[i])});
  }
  ConstraintStats stats;
  stats.encoded_clauses = counting.clauses();
  const std::size_t full = full_constraint_clauses();
  stats.saved_clauses =
      full > stats.encoded_clauses ? full - stats.encoded_clauses : 0;
  return stats;
}

std::size_t DipConstraintEncoder::full_constraint_clauses() const {
  if (!baseline_known_) {
    // Dry-run the full encoding once to price the baseline.
    CountingSink counting;
    std::unordered_map<NodeId, Var> bound;
    for (NodeId id : locked_->key_inputs()) {
      bound.emplace(id, counting.new_var());
    }
    cnf::encode_circuit(*locked_, counting, bound);
    baseline_clauses_ =
        counting.clauses() + data_inputs_.size() + locked_->outputs().size();
    baseline_known_ = true;
  }
  return baseline_clauses_;
}

}  // namespace ril::attacks::engine
