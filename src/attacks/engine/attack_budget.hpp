// Shared attack-run budget: wall-clock deadline, cooperative cancellation,
// and the per-solve stats log.
//
// Every SAT-family attack used to carry its own `elapsed()` lambda and its
// own (or no) solve log. AttackBudget centralizes all of it: the attack
// loop asks expired() between solves, hands limits() to the solver or
// portfolio before each solve so an in-flight search respects the same
// deadline, and wires stop_flag() into SolverPortfolio::set_external_stop
// so a caller on another thread can cancel a long-running attack (the
// attack then reports its timeout status). When recording is enabled, each
// portfolio solve and the clause cost of each encoded I/O constraint land
// in the SolveRecord log that surfaces as per-solve JSON in the CLI and
// bench stats files.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "runtime/portfolio.hpp"
#include "sat/solver.hpp"

namespace ril::attacks::engine {

/// Clause accounting for one encoded I/O constraint (or a sum of them).
/// saved_clauses is how many clauses a full circuit re-encoding would have
/// added on top of what the cone-specialized encoding actually added.
struct ConstraintStats {
  std::size_t encoded_clauses = 0;
  std::size_t saved_clauses = 0;

  ConstraintStats& operator+=(const ConstraintStats& other) {
    encoded_clauses += other.encoded_clauses;
    saved_clauses += other.saved_clauses;
    return *this;
  }
};

/// One entry of the per-solve log: which solve of the attack loop it was,
/// how the portfolio decided it, and what the iteration's I/O constraints
/// cost in clauses.
struct SolveRecord {
  std::size_t iteration = 0;  ///< attack-loop iteration the solve belongs to
  std::string phase;          ///< "miter" or "key"
  runtime::SolveOutcome outcome;
  std::size_t encoded_clauses = 0;  ///< constraint clauses added after it
  std::size_t saved_clauses = 0;    ///< clauses avoided by specialization
};

/// Serializes one record as a JSON object (one line, stable key order).
std::string solve_record_json(const SolveRecord& record);

class AttackBudget {
 public:
  /// `time_limit_seconds` <= 0 means unlimited. `cancel` is an optional
  /// caller-owned flag; raising it makes expired() true and (when wired
  /// into the solver/portfolio via stop_flag()) unwinds in-flight solves.
  explicit AttackBudget(double time_limit_seconds,
                        const std::atomic<bool>* cancel = nullptr);

  double elapsed() const;
  bool limited() const { return limit_ > 0; }
  /// Seconds left of the deadline; meaningful only when limited().
  double remaining() const { return limit_ - elapsed(); }
  bool cancelled() const;
  /// Deadline passed or cancellation raised.
  bool expired() const;
  /// Per-solve limits carrying the remaining deadline (no limit otherwise).
  sat::SolverLimits limits() const;
  /// The cancellation flag to hand to SolverPortfolio::set_external_stop /
  /// Solver::set_cancel_flag; may be null when the caller provided none.
  const std::atomic<bool>* stop_flag() const { return cancel_; }

  // ----- per-solve stats ----------------------------------------------
  void enable_recording(bool on) { recording_ = on; }
  bool recording() const { return recording_; }
  void record(std::size_t iteration, const char* phase,
              const runtime::SolveOutcome& outcome);
  /// Accounts constraint clauses toward the run totals and attaches them
  /// to the most recent record (the solve that produced the witness).
  void add_constraints(const ConstraintStats& stats);
  const ConstraintStats& constraint_totals() const { return totals_; }
  std::vector<SolveRecord> take_log() { return std::move(log_); }

 private:
  std::chrono::steady_clock::time_point start_;
  double limit_ = 0.0;
  const std::atomic<bool>* cancel_ = nullptr;
  bool recording_ = false;
  std::vector<SolveRecord> log_;
  ConstraintStats totals_;
};

}  // namespace ril::attacks::engine
