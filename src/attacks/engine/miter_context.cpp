#include "attacks/engine/miter_context.hpp"

#include <stdexcept>
#include <unordered_map>

namespace ril::attacks::engine {

using netlist::Netlist;
using netlist::NodeId;
using sat::Clause;
using sat::ClauseBatch;
using sat::ClauseSink;
using sat::Lit;
using sat::Var;

std::vector<Var> make_vars(ClauseSink& sink, std::size_t count) {
  std::vector<Var> vars;
  vars.reserve(count);
  for (std::size_t i = 0; i < count; ++i) vars.push_back(sink.new_var());
  return vars;
}

std::vector<Var> make_fixed_vars(ClauseSink& sink,
                                 const std::vector<bool>& values) {
  std::vector<Var> vars;
  vars.reserve(values.size());
  for (bool value : values) {
    const Var v = sink.new_var();
    sink.add_clause({Lit::make(v, !value)});
    vars.push_back(v);
  }
  return vars;
}

void fix_vars(ClauseSink& sink, const std::vector<Var>& vars,
              const std::vector<bool>& values) {
  if (vars.size() != values.size()) {
    throw std::invalid_argument("fix_vars: size mismatch");
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    sink.add_clause({Lit::make(vars[i], !values[i])});
  }
}

CircuitCopy encode_copy(const Netlist& locked, ClauseSink& sink,
                        const std::vector<Var>& input_vars,
                        const std::vector<Var>* key_vars) {
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();
  if (input_vars.size() != data_inputs.size()) {
    throw std::invalid_argument("encode_copy: input width mismatch");
  }
  if (key_vars && key_vars->size() != key_inputs.size()) {
    throw std::invalid_argument("encode_copy: key width mismatch");
  }
  std::unordered_map<NodeId, Var> bound;
  bound.reserve(data_inputs.size() + key_inputs.size());
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    bound.emplace(data_inputs[i], input_vars[i]);
  }
  if (key_vars) {
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], (*key_vars)[i]);
    }
  }
  CircuitCopy copy;
  copy.enc = cnf::encode_circuit(locked, sink, bound);
  copy.key_vars.reserve(key_inputs.size());
  for (NodeId id : key_inputs) copy.key_vars.push_back(copy.enc.var_of(id));
  copy.output_vars.reserve(locked.outputs().size());
  for (NodeId id : locked.outputs()) {
    copy.output_vars.push_back(copy.enc.var_of(id));
  }
  return copy;
}

namespace {

/// Forwarding sink that mirrors every variable allocation and clause into a
/// MiterSkeleton while the real encoding proceeds underneath. Assumes the
/// inner sink is fresh (checked by the caller via first_var()).
class RecordingSink final : public ClauseSink {
 public:
  RecordingSink(ClauseSink& inner, MiterSkeleton& out)
      : inner_(inner), out_(out) {}

  Var new_var() override {
    const Var v = inner_.new_var();
    note_first(v);
    ++out_.num_vars;
    return v;
  }
  void ensure_var(Var v) override {
    inner_.ensure_var(v);
    if (static_cast<std::size_t>(v) + 1 > out_.num_vars) {
      out_.num_vars = static_cast<std::size_t>(v) + 1;
    }
  }
  bool add_clause(Clause lits) override {
    for (Lit l : lits) out_.clauses.push(l);
    out_.clauses.seal();
    return inner_.add_clause(std::move(lits));
  }
  Var new_vars(std::size_t n) override {
    const Var first = inner_.new_vars(n);
    if (n > 0) note_first(first);
    out_.num_vars += n;
    return first;
  }
  bool add_clauses(const ClauseBatch& batch) override {
    const auto base = static_cast<std::uint32_t>(out_.clauses.lits.size());
    out_.clauses.lits.insert(out_.clauses.lits.end(), batch.lits.begin(),
                             batch.lits.end());
    out_.clauses.ends.reserve(out_.clauses.ends.size() + batch.ends.size());
    for (std::uint32_t end : batch.ends) out_.clauses.ends.push_back(base + end);
    return inner_.add_clauses(batch);
  }
  using ClauseSink::add_clause;

  Var first_var() const { return first_var_; }

 private:
  void note_first(Var v) {
    if (first_var_ == sat::kNoVar) first_var_ = v;
  }

  ClauseSink& inner_;
  MiterSkeleton& out_;
  Var first_var_ = sat::kNoVar;
};

}  // namespace

bool MiterSkeleton::matches(const netlist::Netlist& locked) const {
  return data_input_count == locked.data_inputs().size() &&
         key_input_count == locked.key_inputs().size() &&
         output_count == locked.outputs().size();
}

std::size_t MiterSkeleton::memory_bytes() const {
  std::size_t bytes = clauses.lits.capacity() * sizeof(Lit) +
                      clauses.ends.capacity() * sizeof(std::uint32_t);
  bytes += (x_vars.capacity() + diff_vars.capacity()) * sizeof(Var);
  for (int i = 0; i < 2; ++i) {
    bytes += (key_vars[i].capacity() + output_vars[i].capacity()) * sizeof(Var);
  }
  return bytes;
}

MiterContext::MiterContext(const Netlist& locked, ClauseSink& sink,
                           MiterSkeleton* capture)
    : locked_(&locked) {
  if (capture == nullptr) {
    build_free_key(locked, sink);
    return;
  }
  *capture = MiterSkeleton{};
  RecordingSink recording(sink, *capture);
  build_free_key(locked, recording);
  if (capture->num_vars > 0 && recording.first_var() != 0) {
    throw std::invalid_argument(
        "MiterContext: skeleton capture requires a fresh sink");
  }
  capture->x_vars = x_vars_;
  for (int i = 0; i < 2; ++i) {
    capture->key_vars[i] = copies_[i].key_vars;
    capture->output_vars[i] = copies_[i].output_vars;
  }
  capture->diff_vars = diff_vars_;
  capture->data_input_count = locked.data_inputs().size();
  capture->key_input_count = locked.key_inputs().size();
  capture->output_count = locked.outputs().size();
}

MiterContext::MiterContext(const Netlist& locked, const MiterSkeleton& skeleton,
                           ClauseSink& sink)
    : locked_(&locked) {
  if (!skeleton.matches(locked)) {
    throw std::invalid_argument(
        "MiterContext: skeleton shape does not match the locked netlist");
  }
  if (skeleton.num_vars > 0) {
    const Var first = sink.new_vars(skeleton.num_vars);
    if (first != 0) {
      throw std::invalid_argument(
          "MiterContext: skeleton replay requires a fresh sink");
    }
  }
  // A root-level conflict here is legal (the solver just reports UNSAT),
  // so the return value is intentionally not an error.
  sink.add_clauses(skeleton.clauses);
  x_vars_ = skeleton.x_vars;
  for (int i = 0; i < 2; ++i) {
    copies_[i].key_vars = skeleton.key_vars[i];
    copies_[i].output_vars = skeleton.output_vars[i];
  }
  diff_vars_ = skeleton.diff_vars;
}

void MiterContext::build_free_key(const Netlist& locked, ClauseSink& sink) {
  // Historical layout: X first, then both key vectors, then the copies.
  x_vars_ = make_vars(sink, locked.data_inputs().size());
  const std::vector<Var> k1 = make_vars(sink, locked.key_inputs().size());
  const std::vector<Var> k2 = make_vars(sink, locked.key_inputs().size());
  copies_[0] = encode_copy(locked, sink, x_vars_, &k1);
  copies_[1] = encode_copy(locked, sink, x_vars_, &k2);
  diff_vars_ =
      cnf::encode_miter(sink, copies_[0].output_vars, copies_[1].output_vars);
}

MiterContext::MiterContext(const Netlist& locked, ClauseSink& sink,
                           const std::vector<bool>& key_a,
                           const std::vector<bool>& key_b)
    : locked_(&locked) {
  x_vars_ = make_vars(sink, locked.data_inputs().size());
  copies_[0] = encode_copy(locked, sink, x_vars_);
  fix_vars(sink, copies_[0].key_vars, key_a);
  copies_[1] = encode_copy(locked, sink, x_vars_);
  fix_vars(sink, copies_[1].key_vars, key_b);
  diff_vars_ =
      cnf::encode_miter(sink, copies_[0].output_vars, copies_[1].output_vars);
}

std::vector<bool> MiterContext::extract_dip(
    const std::function<bool(Var)>& model) const {
  std::vector<bool> dip;
  dip.reserve(x_vars_.size());
  for (Var v : x_vars_) dip.push_back(model(v));
  return dip;
}

}  // namespace ril::attacks::engine
