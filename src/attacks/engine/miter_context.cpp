#include "attacks/engine/miter_context.hpp"

#include <stdexcept>
#include <unordered_map>

namespace ril::attacks::engine {

using netlist::Netlist;
using netlist::NodeId;
using sat::ClauseSink;
using sat::Lit;
using sat::Var;

std::vector<Var> make_vars(ClauseSink& sink, std::size_t count) {
  std::vector<Var> vars;
  vars.reserve(count);
  for (std::size_t i = 0; i < count; ++i) vars.push_back(sink.new_var());
  return vars;
}

std::vector<Var> make_fixed_vars(ClauseSink& sink,
                                 const std::vector<bool>& values) {
  std::vector<Var> vars;
  vars.reserve(values.size());
  for (bool value : values) {
    const Var v = sink.new_var();
    sink.add_clause({Lit::make(v, !value)});
    vars.push_back(v);
  }
  return vars;
}

void fix_vars(ClauseSink& sink, const std::vector<Var>& vars,
              const std::vector<bool>& values) {
  if (vars.size() != values.size()) {
    throw std::invalid_argument("fix_vars: size mismatch");
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    sink.add_clause({Lit::make(vars[i], !values[i])});
  }
}

CircuitCopy encode_copy(const Netlist& locked, ClauseSink& sink,
                        const std::vector<Var>& input_vars,
                        const std::vector<Var>* key_vars) {
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();
  if (input_vars.size() != data_inputs.size()) {
    throw std::invalid_argument("encode_copy: input width mismatch");
  }
  if (key_vars && key_vars->size() != key_inputs.size()) {
    throw std::invalid_argument("encode_copy: key width mismatch");
  }
  std::unordered_map<NodeId, Var> bound;
  bound.reserve(data_inputs.size() + key_inputs.size());
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    bound.emplace(data_inputs[i], input_vars[i]);
  }
  if (key_vars) {
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], (*key_vars)[i]);
    }
  }
  CircuitCopy copy;
  copy.enc = cnf::encode_circuit(locked, sink, bound);
  copy.key_vars.reserve(key_inputs.size());
  for (NodeId id : key_inputs) copy.key_vars.push_back(copy.enc.var_of(id));
  copy.output_vars.reserve(locked.outputs().size());
  for (NodeId id : locked.outputs()) {
    copy.output_vars.push_back(copy.enc.var_of(id));
  }
  return copy;
}

MiterContext::MiterContext(const Netlist& locked, ClauseSink& sink)
    : locked_(&locked) {
  // Historical layout: X first, then both key vectors, then the copies.
  x_vars_ = make_vars(sink, locked.data_inputs().size());
  const std::vector<Var> k1 = make_vars(sink, locked.key_inputs().size());
  const std::vector<Var> k2 = make_vars(sink, locked.key_inputs().size());
  copies_[0] = encode_copy(locked, sink, x_vars_, &k1);
  copies_[1] = encode_copy(locked, sink, x_vars_, &k2);
  diff_vars_ =
      cnf::encode_miter(sink, copies_[0].output_vars, copies_[1].output_vars);
}

MiterContext::MiterContext(const Netlist& locked, ClauseSink& sink,
                           const std::vector<bool>& key_a,
                           const std::vector<bool>& key_b)
    : locked_(&locked) {
  x_vars_ = make_vars(sink, locked.data_inputs().size());
  copies_[0] = encode_copy(locked, sink, x_vars_);
  fix_vars(sink, copies_[0].key_vars, key_a);
  copies_[1] = encode_copy(locked, sink, x_vars_);
  fix_vars(sink, copies_[1].key_vars, key_b);
  diff_vars_ =
      cnf::encode_miter(sink, copies_[0].output_vars, copies_[1].output_vars);
}

std::vector<bool> MiterContext::extract_dip(
    const std::function<bool(Var)>& model) const {
  std::vector<bool> dip;
  dip.reserve(x_vars_.size());
  for (Var v : x_vars_) dip.push_back(model(v));
  return dip;
}

}  // namespace ril::attacks::engine
