// Cone-specialized DIP-constraint encoder.
//
// An I/O constraint pins the circuit to one fixed input pattern, so most of
// the circuit is constant under it. The historical encoders still Tseitin-
// encoded the entire netlist per constraint (O(|circuit|) clauses per DIP
// per copy). DipConstraintEncoder instead cofactors the netlist on the DIP
// (netlist::specialize_inputs) and constant-propagates it down to the
// key-dependent cone (netlist::simplify) before encoding, typically an
// order of magnitude fewer clauses per constraint; the cofactor is cached
// across the three per-DIP call sites (miter copy 1 / copy 2 / key
// solver). With specialization off it reproduces the historical encoding
// bit-for-bit -- the regression baseline.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "attacks/engine/attack_budget.hpp"
#include "netlist/netlist.hpp"
#include "sat/clause_sink.hpp"

namespace ril::attacks::engine {

class DipConstraintEncoder {
 public:
  /// `locked` must outlive the encoder. `specialize` selects the
  /// cone-specialized encoding; false reproduces the historical full
  /// re-encoding (identical variable/clause stream).
  DipConstraintEncoder(const netlist::Netlist& locked, bool specialize);

  /// Adds clauses asserting locked(dip, K) == response to `sink`, with the
  /// key inputs bound positionally to `key_vars`. Returns the clause cost
  /// (and, under specialization, the clauses saved vs. a full encoding).
  ConstraintStats add_constraint(sat::ClauseSink& sink,
                                 const std::vector<sat::Var>& key_vars,
                                 const std::vector<bool>& dip,
                                 const std::vector<bool>& response);

  bool specialize() const { return specialize_; }

  /// Clause cost of one full (non-specialized) constraint encoding; the
  /// baseline the saved_clauses figures are measured against.
  std::size_t full_constraint_clauses() const;

 private:
  ConstraintStats add_full(sat::ClauseSink& sink,
                           const std::vector<sat::Var>& key_vars,
                           const std::vector<bool>& dip,
                           const std::vector<bool>& response);
  ConstraintStats add_specialized(sat::ClauseSink& sink,
                                  const std::vector<sat::Var>& key_vars,
                                  const std::vector<bool>& dip,
                                  const std::vector<bool>& response);

  const netlist::Netlist* locked_ = nullptr;
  std::vector<netlist::NodeId> data_inputs_;
  bool specialize_ = false;
  mutable bool baseline_known_ = false;
  mutable std::size_t baseline_clauses_ = 0;
  // Cofactor cache: constraints arrive in same-DIP bursts (both miter
  // copies plus the key solver), so the last cone is almost always a hit.
  std::optional<netlist::Netlist> cone_;
  std::vector<bool> cone_dip_;
};

}  // namespace ril::attacks::engine
