// SAT-based combinational equivalence checking.
#pragma once

#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace ril::cnf {

struct EquivalenceResult {
  /// kSat   -> circuits differ (counterexample available)
  /// kUnsat -> equivalent
  /// kUnknown -> resource limit fired
  sat::Result status = sat::Result::kUnknown;
  /// Input assignment (in data_inputs() order of circuit a) on which the
  /// circuits differ; present iff status == kSat.
  std::vector<bool> counterexample;

  bool equivalent() const { return status == sat::Result::kUnsat; }
};

/// Checks functional equivalence of two combinational netlists.
/// Inputs are matched positionally across a.data_inputs()/b.data_inputs();
/// key inputs of each circuit are fixed with `key_a` / `key_b` (pass empty
/// vectors for circuits without key inputs). Outputs matched positionally.
EquivalenceResult check_equivalence(const netlist::Netlist& a,
                                    const netlist::Netlist& b,
                                    const std::vector<bool>& key_a = {},
                                    const std::vector<bool>& key_b = {},
                                    const sat::SolverLimits& limits = {});

}  // namespace ril::cnf
