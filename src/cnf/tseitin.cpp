#include "cnf/tseitin.hpp"

#include <stdexcept>

namespace ril::cnf {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using sat::ClauseBatch;
using sat::ClauseSink;
using sat::Lit;
using sat::Var;

namespace {

/// Literal budget per streamed chunk. At ~3 literals per clause this is a
/// few thousand clauses per flush -- big enough to amortize the virtual
/// add_clauses call and the portfolio's per-chunk thread fan-out, small
/// enough that the batch buffer stays cache-resident and peak memory is
/// independent of circuit size.
constexpr std::size_t kChunkLits = std::size_t{1} << 15;

void emit_and_like(ClauseBatch& out, Var y, const std::vector<Var>& inputs,
                   bool negate_output) {
  // y' = AND(inputs), y = negate_output ? !y' : y'
  const Lit ly_true = Lit::make(y, negate_output);
  const Lit ly_false = ~ly_true;
  for (Var a : inputs) out.add({ly_false, Lit::make(a)});
  out.push(ly_true);
  for (Var a : inputs) out.push(Lit::make(a, true));
  out.seal();
}

void emit_or_like(ClauseBatch& out, Var y, const std::vector<Var>& inputs,
                  bool negate_output) {
  const Lit ly_true = Lit::make(y, negate_output);
  const Lit ly_false = ~ly_true;
  for (Var a : inputs) out.add({ly_true, Lit::make(a, true)});
  out.push(ly_false);
  for (Var a : inputs) out.push(Lit::make(a));
  out.seal();
}

void emit_xor2(ClauseBatch& out, Var y, Var a, Var b, bool negate_output) {
  const Lit ly = Lit::make(y, negate_output);
  const Lit la = Lit::make(a);
  const Lit lb = Lit::make(b);
  out.add({~ly, la, lb});
  out.add({~ly, ~la, ~lb});
  out.add({ly, ~la, lb});
  out.add({ly, la, ~lb});
}

void emit_mux(ClauseBatch& out, Var y, Var s, Var d0, Var d1) {
  const Lit ly = Lit::make(y);
  const Lit ls = Lit::make(s);
  const Lit l0 = Lit::make(d0);
  const Lit l1 = Lit::make(d1);
  out.add({~ls, ~l1, ly});
  out.add({~ls, l1, ~ly});
  out.add({ls, ~l0, ly});
  out.add({ls, l0, ~ly});
  // Redundant but propagation-strengthening clauses.
  out.add({~l0, ~l1, ly});
  out.add({l0, l1, ~ly});
}

void emit_lut(ClauseBatch& out, Var y, const std::vector<Var>& inputs,
              std::uint64_t mask) {
  const std::size_t k = inputs.size();
  const std::uint64_t rows = std::uint64_t{1} << k;
  for (std::uint64_t row = 0; row < rows; ++row) {
    const bool set = (mask >> row) & 1;
    for (std::size_t j = 0; j < k; ++j) {
      // Literal true when input j differs from row bit j.
      out.push(Lit::make(inputs[j], (row >> j) & 1));
    }
    out.push(Lit::make(y, !set));
    out.seal();
  }
}

bool needs_xor_chain(const Netlist& circuit, NodeId id) {
  const GateType type = circuit.type(id);
  return (type == GateType::kXor || type == GateType::kXnor) &&
         circuit.fanin_count(id) > 2;
}

/// Emits the clauses for one node into `out`. `chain_base` is the first of
/// the fanin_count-2 consecutive helper variables for a wide XOR/XNOR
/// chain (kNoVar when the node needs none). `fanin_scratch` is caller
/// scratch so the per-node fanin-variable gather allocates nothing.
void emit_node(ClauseBatch& out, const Netlist& circuit, NodeId id,
               const std::vector<Var>& node_var, Var chain_base,
               std::vector<Var>& fanin_scratch) {
  const Var y = node_var[id];
  fanin_scratch.clear();
  for (NodeId f : circuit.fanins(id)) fanin_scratch.push_back(node_var[f]);

  switch (circuit.type(id)) {
    case GateType::kInput:
      break;
    case GateType::kConst0:
      out.add({Lit::make(y, true)});
      break;
    case GateType::kConst1:
      out.add({Lit::make(y)});
      break;
    case GateType::kBuf:
      out.add({Lit::make(y, true), Lit::make(fanin_scratch[0])});
      out.add({Lit::make(y), Lit::make(fanin_scratch[0], true)});
      break;
    case GateType::kNot:
      out.add({Lit::make(y, true), Lit::make(fanin_scratch[0], true)});
      out.add({Lit::make(y), Lit::make(fanin_scratch[0])});
      break;
    case GateType::kAnd:
      emit_and_like(out, y, fanin_scratch, false);
      break;
    case GateType::kNand:
      emit_and_like(out, y, fanin_scratch, true);
      break;
    case GateType::kOr:
      emit_or_like(out, y, fanin_scratch, false);
      break;
    case GateType::kNor:
      emit_or_like(out, y, fanin_scratch, true);
      break;
    case GateType::kXor:
    case GateType::kXnor: {
      // Chain through pre-numbered helper variables for arity > 2.
      Var acc = fanin_scratch[0];
      Var next = chain_base;
      for (std::size_t i = 1; i + 1 < fanin_scratch.size(); ++i) {
        const Var t = next++;
        emit_xor2(out, t, acc, fanin_scratch[i], false);
        acc = t;
      }
      emit_xor2(out, y, acc, fanin_scratch.back(),
                circuit.type(id) == GateType::kXnor);
      break;
    }
    case GateType::kMux:
      emit_mux(out, y, fanin_scratch[0], fanin_scratch[1], fanin_scratch[2]);
      break;
    case GateType::kLut:
      emit_lut(out, y, fanin_scratch, circuit.lut_mask(id));
      break;
    case GateType::kDff:
      throw std::invalid_argument("encode_node: DFF not encodable");
  }
}

}  // namespace

CircuitEncoding encode_circuit(
    const Netlist& circuit, ClauseSink& solver,
    const std::unordered_map<NodeId, Var>& bound) {
  CircuitEncoding encoding;
  encoding.node_var.assign(circuit.node_count(), sat::kNoVar);
  for (const auto& [node, var] : bound) {
    encoding.node_var.at(node) = var;
  }
  const std::vector<NodeId> topo = circuit.topological_order();

  // Pass 1: deterministic numbering. Walking the topological order and
  // handing each unbound node its variable first, then the helper
  // variables of a wide XOR/XNOR chain, reproduces exactly the sequence
  // the historical encoder produced with interleaved new_var() calls --
  // downstream CNF baselines are bit-for-bit against that numbering. One
  // bulk new_vars() reserve replaces O(nodes) virtual calls.
  std::size_t fresh = 0;
  for (NodeId id : topo) {
    if (circuit.type(id) == GateType::kDff) {
      throw std::invalid_argument(
          "encode_circuit: sequential netlist; call combinational_core() "
          "first");
    }
    if (encoding.node_var[id] == sat::kNoVar) ++fresh;
    if (needs_xor_chain(circuit, id)) fresh += circuit.fanin_count(id) - 2;
  }
  std::vector<Var> chain_base(circuit.node_count(), sat::kNoVar);
  if (fresh > 0) {
    Var next = solver.new_vars(fresh);
    for (NodeId id : topo) {
      if (encoding.node_var[id] == sat::kNoVar) encoding.node_var[id] = next++;
      if (needs_xor_chain(circuit, id)) {
        chain_base[id] = next;
        next += static_cast<Var>(circuit.fanin_count(id) - 2);
      }
    }
  }

  // Pass 2: stream the clauses in topological chunks. The per-node clause
  // order is unchanged, so the concatenated stream is identical to the
  // historical per-clause emission.
  ClauseBatch batch;
  std::vector<Var> fanin_scratch;
  for (NodeId id : topo) {
    emit_node(batch, circuit, id, encoding.node_var, chain_base[id],
              fanin_scratch);
    if (batch.lit_count() >= kChunkLits) {
      solver.add_clauses(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) solver.add_clauses(batch);
  return encoding;
}

void encode_node(ClauseSink& solver, const Netlist& circuit, NodeId id,
                 const std::vector<Var>& node_var) {
  // Helper variables for a wide XOR chain are allocated up front; they get
  // the same numbers the historical interleaved new_var() calls produced.
  Var chain_base = sat::kNoVar;
  if (needs_xor_chain(circuit, id)) {
    chain_base = solver.new_vars(circuit.fanin_count(id) - 2);
  }
  ClauseBatch batch;
  std::vector<Var> fanin_scratch;
  emit_node(batch, circuit, id, node_var, chain_base, fanin_scratch);
  if (!batch.empty()) solver.add_clauses(batch);
}

SpecializedEncoding encode_specialized(const Netlist& cone,
                                       ClauseSink& solver,
                                       const std::vector<Var>& key_vars) {
  if (key_vars.size() != cone.key_inputs().size()) {
    throw std::invalid_argument("encode_specialized: key width mismatch");
  }
  SpecializedEncoding out;
  sat::CountingSink counting(&solver);
  std::unordered_map<NodeId, Var> bound;
  bound.reserve(key_vars.size());
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(cone.key_inputs()[i], key_vars[i]);
  }
  out.enc = encode_circuit(cone, counting, bound);
  out.outputs.reserve(cone.outputs().size());
  for (NodeId id : cone.outputs()) out.outputs.push_back(out.enc.var_of(id));
  out.clauses = counting.clauses();
  return out;
}

Var encode_xor(ClauseSink& solver, Var a, Var b) {
  const Var y = solver.new_var();
  ClauseBatch batch;
  emit_xor2(batch, y, a, b, false);
  solver.add_clauses(batch);
  return y;
}

std::vector<Var> encode_miter(ClauseSink& solver,
                              const std::vector<Var>& outputs_a,
                              const std::vector<Var>& outputs_b) {
  if (outputs_a.size() != outputs_b.size()) {
    throw std::invalid_argument("encode_miter: output count mismatch");
  }
  std::vector<Var> diffs;
  diffs.reserve(outputs_a.size());
  sat::Clause any;
  any.reserve(outputs_a.size());
  for (std::size_t i = 0; i < outputs_a.size(); ++i) {
    const Var d = encode_xor(solver, outputs_a[i], outputs_b[i]);
    diffs.push_back(d);
    any.push_back(Lit::make(d));
  }
  solver.add_clause(any);
  return diffs;
}

}  // namespace ril::cnf
