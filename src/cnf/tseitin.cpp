#include "cnf/tseitin.hpp"

#include <stdexcept>

namespace ril::cnf {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using sat::Lit;
using sat::ClauseSink;
using sat::Var;

namespace {

void encode_and_like(ClauseSink& solver, Var y, const std::vector<Var>& inputs,
                     bool negate_output) {
  // y' = AND(inputs), y = negate_output ? !y' : y'
  const Lit ly_true = Lit::make(y, negate_output);
  const Lit ly_false = ~ly_true;
  sat::Clause big;
  big.reserve(inputs.size() + 1);
  big.push_back(ly_true);
  for (Var a : inputs) {
    solver.add_clause({ly_false, Lit::make(a)});
    big.push_back(Lit::make(a, true));
  }
  solver.add_clause(big);
}

void encode_or_like(ClauseSink& solver, Var y, const std::vector<Var>& inputs,
                    bool negate_output) {
  const Lit ly_true = Lit::make(y, negate_output);
  const Lit ly_false = ~ly_true;
  sat::Clause big;
  big.reserve(inputs.size() + 1);
  big.push_back(ly_false);
  for (Var a : inputs) {
    solver.add_clause({ly_true, Lit::make(a, true)});
    big.push_back(Lit::make(a));
  }
  solver.add_clause(big);
}

void encode_xor2(ClauseSink& solver, Var y, Var a, Var b, bool negate_output) {
  const Lit ly = Lit::make(y, negate_output);
  const Lit la = Lit::make(a);
  const Lit lb = Lit::make(b);
  solver.add_clause({~ly, la, lb});
  solver.add_clause({~ly, ~la, ~lb});
  solver.add_clause({ly, ~la, lb});
  solver.add_clause({ly, la, ~lb});
}

void encode_mux(ClauseSink& solver, Var y, Var s, Var d0, Var d1) {
  const Lit ly = Lit::make(y);
  const Lit ls = Lit::make(s);
  const Lit l0 = Lit::make(d0);
  const Lit l1 = Lit::make(d1);
  solver.add_clause({~ls, ~l1, ly});
  solver.add_clause({~ls, l1, ~ly});
  solver.add_clause({ls, ~l0, ly});
  solver.add_clause({ls, l0, ~ly});
  // Redundant but propagation-strengthening clauses.
  solver.add_clause({~l0, ~l1, ly});
  solver.add_clause({l0, l1, ~ly});
}

void encode_lut(ClauseSink& solver, Var y, const std::vector<Var>& inputs,
                std::uint64_t mask) {
  const std::size_t k = inputs.size();
  const std::uint64_t rows = std::uint64_t{1} << k;
  for (std::uint64_t row = 0; row < rows; ++row) {
    const bool out = (mask >> row) & 1;
    sat::Clause clause;
    clause.reserve(k + 1);
    for (std::size_t j = 0; j < k; ++j) {
      // Literal true when input j differs from row bit j.
      clause.push_back(Lit::make(inputs[j], (row >> j) & 1));
    }
    clause.push_back(Lit::make(y, !out));
    solver.add_clause(clause);
  }
}

}  // namespace

CircuitEncoding encode_circuit(
    const Netlist& circuit, ClauseSink& solver,
    const std::unordered_map<NodeId, Var>& bound) {
  CircuitEncoding encoding;
  encoding.node_var.assign(circuit.node_count(), sat::kNoVar);
  for (const auto& [node, var] : bound) {
    encoding.node_var.at(node) = var;
  }
  for (NodeId id : circuit.topological_order()) {
    if (circuit.node(id).type == GateType::kDff) {
      throw std::invalid_argument(
          "encode_circuit: sequential netlist; call combinational_core() "
          "first");
    }
    if (encoding.node_var[id] == sat::kNoVar) {
      encoding.node_var[id] = solver.new_var();
    }
    encode_node(solver, circuit, id, encoding.node_var);
  }
  return encoding;
}

void encode_node(ClauseSink& solver, const Netlist& circuit, NodeId id,
                 const std::vector<Var>& node_var) {
  const Node& node = circuit.node(id);
  {
    const Var y = node_var[id];
    std::vector<Var> fanin_vars;
    fanin_vars.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanin_vars.push_back(node_var[f]);

    switch (node.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        solver.add_clause({Lit::make(y, true)});
        break;
      case GateType::kConst1:
        solver.add_clause({Lit::make(y)});
        break;
      case GateType::kBuf:
        solver.add_clause({Lit::make(y, true), Lit::make(fanin_vars[0])});
        solver.add_clause({Lit::make(y), Lit::make(fanin_vars[0], true)});
        break;
      case GateType::kNot:
        solver.add_clause({Lit::make(y, true),
                           Lit::make(fanin_vars[0], true)});
        solver.add_clause({Lit::make(y), Lit::make(fanin_vars[0])});
        break;
      case GateType::kAnd:
        encode_and_like(solver, y, fanin_vars, false);
        break;
      case GateType::kNand:
        encode_and_like(solver, y, fanin_vars, true);
        break;
      case GateType::kOr:
        encode_or_like(solver, y, fanin_vars, false);
        break;
      case GateType::kNor:
        encode_or_like(solver, y, fanin_vars, true);
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        // Chain through intermediates for arity > 2.
        Var acc = fanin_vars[0];
        for (std::size_t i = 1; i + 1 < fanin_vars.size(); ++i) {
          const Var t = solver.new_var();
          encode_xor2(solver, t, acc, fanin_vars[i], false);
          acc = t;
        }
        encode_xor2(solver, y, acc, fanin_vars.back(),
                    node.type == GateType::kXnor);
        break;
      }
      case GateType::kMux:
        encode_mux(solver, y, fanin_vars[0], fanin_vars[1], fanin_vars[2]);
        break;
      case GateType::kLut:
        encode_lut(solver, y, fanin_vars, node.lut_mask);
        break;
      case GateType::kDff:
        throw std::invalid_argument("encode_node: DFF not encodable");
    }
  }
}

SpecializedEncoding encode_specialized(const Netlist& cone,
                                       ClauseSink& solver,
                                       const std::vector<Var>& key_vars) {
  if (key_vars.size() != cone.key_inputs().size()) {
    throw std::invalid_argument("encode_specialized: key width mismatch");
  }
  SpecializedEncoding out;
  sat::CountingSink counting(&solver);
  std::unordered_map<NodeId, Var> bound;
  bound.reserve(key_vars.size());
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(cone.key_inputs()[i], key_vars[i]);
  }
  out.enc = encode_circuit(cone, counting, bound);
  out.outputs.reserve(cone.outputs().size());
  for (NodeId id : cone.outputs()) out.outputs.push_back(out.enc.var_of(id));
  out.clauses = counting.clauses();
  return out;
}

Var encode_xor(ClauseSink& solver, Var a, Var b) {
  const Var y = solver.new_var();
  encode_xor2(solver, y, a, b, false);
  return y;
}

std::vector<Var> encode_miter(ClauseSink& solver,
                              const std::vector<Var>& outputs_a,
                              const std::vector<Var>& outputs_b) {
  if (outputs_a.size() != outputs_b.size()) {
    throw std::invalid_argument("encode_miter: output count mismatch");
  }
  std::vector<Var> diffs;
  diffs.reserve(outputs_a.size());
  sat::Clause any;
  any.reserve(outputs_a.size());
  for (std::size_t i = 0; i < outputs_a.size(); ++i) {
    const Var d = encode_xor(solver, outputs_a[i], outputs_b[i]);
    diffs.push_back(d);
    any.push_back(Lit::make(d));
  }
  solver.add_clause(any);
  return diffs;
}

}  // namespace ril::cnf
