#include "cnf/equivalence.hpp"

#include <stdexcept>

#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"

namespace ril::cnf {

using netlist::Netlist;
using netlist::NodeId;
using sat::Lit;
using sat::Solver;
using sat::Var;

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const std::vector<bool>& key_a,
                                    const std::vector<bool>& key_b,
                                    const sat::SolverLimits& limits) {
  const auto data_a = a.data_inputs();
  const auto data_b = b.data_inputs();
  if (data_a.size() != data_b.size()) {
    throw std::invalid_argument("check_equivalence: data input mismatch");
  }
  if (a.outputs().size() != b.outputs().size()) {
    throw std::invalid_argument("check_equivalence: output mismatch");
  }
  if (key_a.size() != a.key_inputs().size() ||
      key_b.size() != b.key_inputs().size()) {
    throw std::invalid_argument("check_equivalence: key width mismatch");
  }

  Solver solver;
  solver.set_limits(limits);

  // Shared input variables.
  std::vector<Var> x_vars;
  x_vars.reserve(data_a.size());
  for (std::size_t i = 0; i < data_a.size(); ++i) {
    x_vars.push_back(solver.new_var());
  }
  std::unordered_map<NodeId, Var> bound_a;
  std::unordered_map<NodeId, Var> bound_b;
  for (std::size_t i = 0; i < data_a.size(); ++i) {
    bound_a.emplace(data_a[i], x_vars[i]);
    bound_b.emplace(data_b[i], x_vars[i]);
  }

  const CircuitEncoding enc_a = encode_circuit(a, solver, bound_a);
  const CircuitEncoding enc_b = encode_circuit(b, solver, bound_b);

  // Fix key inputs.
  for (std::size_t i = 0; i < key_a.size(); ++i) {
    solver.add_clause({Lit::make(enc_a.var_of(a.key_inputs()[i]), !key_a[i])});
  }
  for (std::size_t i = 0; i < key_b.size(); ++i) {
    solver.add_clause({Lit::make(enc_b.var_of(b.key_inputs()[i]), !key_b[i])});
  }

  std::vector<Var> out_a;
  std::vector<Var> out_b;
  for (NodeId id : a.outputs()) out_a.push_back(enc_a.var_of(id));
  for (NodeId id : b.outputs()) out_b.push_back(enc_b.var_of(id));
  encode_miter(solver, out_a, out_b);

  EquivalenceResult result;
  result.status = solver.solve();
  if (result.status == sat::Result::kSat) {
    result.counterexample.reserve(x_vars.size());
    for (Var v : x_vars) {
      result.counterexample.push_back(solver.model_bool(v));
    }
  }
  return result;
}

}  // namespace ril::cnf
