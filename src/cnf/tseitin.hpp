// Tseitin encoding of combinational netlists into CNF.
//
// encode_circuit() instantiates one copy of a netlist inside any ClauseSink
// (a single Solver, or a runtime::SolverPortfolio that mirrors the CNF into
// N diversified solvers). The caller may pre-bind nodes (typically primary
// inputs) to existing solver variables, which is how the SAT attack shares
// the input vector X between two circuit copies while giving each its own
// key variables.
//
// The encoder streams: a numbering pre-pass reserves every variable with
// one bulk new_vars() call, then clauses flow to the sink in topological
// ClauseBatch chunks (ClauseSink::add_clauses), which the portfolio fans
// out to its members on one thread each. Variable numbers and the clause
// stream are bit-identical to the historical per-clause emission, so DRAT
// certificates and recorded CNF baselines are unaffected.
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/clause_sink.hpp"

namespace ril::cnf {

struct CircuitEncoding {
  /// node_var[node] = solver variable carrying that node's value.
  std::vector<sat::Var> node_var;

  sat::Var var_of(netlist::NodeId id) const { return node_var.at(id); }
  sat::Lit lit_of(netlist::NodeId id, bool negated = false) const {
    return sat::Lit::make(node_var.at(id), negated);
  }
};

/// Encodes `circuit` (must be combinational: no DFFs) into `solver`.
/// `bound` maps NodeIds to pre-existing solver variables; every other node
/// receives a fresh variable. Throws on DFF nodes.
CircuitEncoding encode_circuit(
    const netlist::Netlist& circuit, sat::ClauseSink& solver,
    const std::unordered_map<netlist::NodeId, sat::Var>& bound = {});

/// Low-level: emits the CNF clauses for one node whose own variable and
/// fanin variables are already present in `node_var`. Primary inputs get
/// no clauses. Used by custom encoders (e.g. the one-hot routing
/// re-encoding) that substitute their own treatment for some nodes.
void encode_node(sat::ClauseSink& solver, const netlist::Netlist& circuit,
                 netlist::NodeId id, const std::vector<sat::Var>& node_var);

/// Result of encoding a DIP-specialized cone (see encode_specialized).
struct SpecializedEncoding {
  /// Node -> variable map over the *cone* netlist's ids.
  CircuitEncoding enc;
  /// Cone output variables, in the original output order.
  std::vector<sat::Var> outputs;
  /// Clauses submitted to the sink by this encoding.
  std::size_t clauses = 0;
};

/// Encodes a cone produced by netlist::specialize_inputs + simplify into
/// `solver`, binding the cone's surviving key inputs positionally to
/// `key_vars`. Both passes preserve key-input and output order, so index i
/// of the cone's key_inputs()/outputs() corresponds to index i of the
/// original circuit's -- which is what makes the per-DIP cone encoding a
/// drop-in replacement for a full circuit re-encoding in I/O constraints.
SpecializedEncoding encode_specialized(const netlist::Netlist& cone,
                                       sat::ClauseSink& solver,
                                       const std::vector<sat::Var>& key_vars);

/// Adds clauses for y <-> (a XOR b) and returns y.
sat::Var encode_xor(sat::ClauseSink& solver, sat::Var a, sat::Var b);

/// Adds a constraint that at least one of the given output pairs differs
/// (the classic miter OR). Returns the per-pair difference variables.
std::vector<sat::Var> encode_miter(sat::ClauseSink& solver,
                                   const std::vector<sat::Var>& outputs_a,
                                   const std::vector<sat::Var>& outputs_b);

}  // namespace ril::cnf
