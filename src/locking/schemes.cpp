#include "locking/schemes.hpp"

#include <algorithm>
#include <array>
#include <random>
#include <stdexcept>
#include <unordered_set>

#include "core/banyan.hpp"
#include "core/lut2.hpp"
#include "core/polymorphic.hpp"

namespace ril::locking {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// All non-input, non-const nodes (wires an attacker could see).
std::vector<NodeId> wire_candidates(const Netlist& netlist) {
  std::vector<NodeId> wires;
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    switch (netlist.node(id).type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kDff:
        break;
      default:
        wires.push_back(id);
    }
  }
  return wires;
}

/// Transitive fanin cone (including `root`).
std::vector<bool> fanin_cone(const Netlist& netlist, NodeId root) {
  std::vector<bool> cone(netlist.node_count(), false);
  std::vector<NodeId> stack = {root};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (cone[id]) continue;
    cone[id] = true;
    for (NodeId f : netlist.node(id).fanins) {
      if (!cone[f]) stack.push_back(f);
    }
  }
  return cone;
}

/// Equality comparator between a data slice and either key inputs or a
/// constant pattern; returns the AND-tree output node.
NodeId build_equality(Netlist& netlist, const std::vector<NodeId>& xs,
                      const std::vector<NodeId>& ys,
                      const std::string& prefix) {
  std::vector<NodeId> terms;
  terms.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    terms.push_back(netlist.add_gate(GateType::kXnor, {xs[i], ys[i]},
                                     prefix + "_eq" + std::to_string(i)));
  }
  // Balanced AND tree.
  std::size_t level = 0;
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(netlist.add_gate(
          GateType::kAnd, {terms[i], terms[i + 1]},
          prefix + "_and" + std::to_string(level) + "_" +
              std::to_string(i / 2)));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = next;
    ++level;
  }
  return terms[0];
}

/// XORs `flip` into output `index` of the netlist.
void corrupt_output(Netlist& netlist, std::size_t index, NodeId flip,
                    const std::string& name) {
  const NodeId out = netlist.outputs().at(index);
  const NodeId fixed = netlist.add_gate(GateType::kXor, {out, flip}, name);
  auto outputs = netlist.outputs();
  outputs[index] = fixed;
  netlist.set_outputs(std::move(outputs));
}

std::vector<NodeId> constant_pattern(Netlist& netlist,
                                     const std::vector<bool>& bits,
                                     const std::string& prefix) {
  std::vector<NodeId> nodes;
  nodes.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const NodeId c = netlist.add_const(bits[i]);
    netlist.rename(c, prefix + std::to_string(i));
    nodes.push_back(c);
  }
  return nodes;
}

}  // namespace

LockedCircuit lock_xor(const Netlist& host, std::size_t key_bits,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  LockedCircuit result{host, {}, "xor"};
  Netlist& nl = result.netlist;
  nl.set_structural_hashing(true);
  auto wires = wire_candidates(nl);
  if (wires.size() < key_bits) {
    throw std::invalid_argument("lock_xor: not enough wires");
  }
  std::shuffle(wires.begin(), wires.end(), rng);
  std::size_t key_counter = nl.key_inputs().size();
  for (std::size_t i = 0; i < key_bits; ++i) {
    const NodeId wire = wires[i];
    const bool use_xnor = rng() & 1;
    const NodeId key = nl.add_key_input(
        "keyinput" + std::to_string(key_counter++));
    const NodeId gate = nl.add_gate(
        use_xnor ? GateType::kXnor : GateType::kXor, {wire, key},
        "xorlock_" + std::to_string(i));
    const std::array<NodeId, 1> except = {gate};
    nl.replace_uses_except(wire, gate, except);
    // XOR passes with key 0, XNOR passes with key 1.
    result.key.push_back(use_xnor);
  }
  return result;
}

LockedCircuit lock_sarlock(const Netlist& host, std::size_t key_width,
                           std::uint64_t seed) {
  LockedCircuit result{host, {}, "sarlock"};
  Netlist& nl = result.netlist;
  nl.set_structural_hashing(true);
  const auto data = nl.data_inputs();
  if (key_width == 0 || key_width > data.size() || nl.outputs().empty()) {
    throw std::invalid_argument("lock_sarlock: bad key width");
  }
  std::vector<NodeId> xs(data.begin(), data.begin() + key_width);
  std::size_t key_counter = nl.key_inputs().size();
  std::vector<NodeId> keys;
  for (std::size_t i = 0; i < key_width; ++i) {
    keys.push_back(nl.add_key_input("keyinput" +
                                    std::to_string(key_counter++)));
  }
  result.key = random_key(key_width, seed ^ 0x5a5a5a5a);
  const auto secret_nodes = constant_pattern(nl, result.key, "sar_secret");

  const NodeId x_eq_k = build_equality(nl, xs, keys, "sar_xk");
  const NodeId k_eq_secret = build_equality(nl, keys, secret_nodes, "sar_ks");
  const NodeId k_wrong =
      nl.add_gate(GateType::kNot, {k_eq_secret}, "sar_kwrong");
  const NodeId flip =
      nl.add_gate(GateType::kAnd, {x_eq_k, k_wrong}, "sar_flip");
  corrupt_output(nl, 0, flip, "sar_out0");
  return result;
}

LockedCircuit lock_antisat(const Netlist& host, std::size_t n,
                           std::uint64_t seed) {
  LockedCircuit result{host, {}, "antisat"};
  Netlist& nl = result.netlist;
  nl.set_structural_hashing(true);
  const auto data = nl.data_inputs();
  if (n == 0 || n > data.size() || nl.outputs().empty()) {
    throw std::invalid_argument("lock_antisat: bad block width");
  }
  std::vector<NodeId> xs(data.begin(), data.begin() + n);
  std::size_t key_counter = nl.key_inputs().size();
  std::vector<NodeId> ka;
  std::vector<NodeId> kb;
  for (std::size_t i = 0; i < n; ++i) {
    ka.push_back(nl.add_key_input("keyinput" +
                                  std::to_string(key_counter++)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    kb.push_back(nl.add_key_input("keyinput" +
                                  std::to_string(key_counter++)));
  }
  // Correct key: ka == kb == r (any r). Pick a random r.
  const auto r = random_key(n, seed ^ 0xa5a5a5a5);
  result.key = r;
  result.key.insert(result.key.end(), r.begin(), r.end());

  auto xor_layer = [&](const std::vector<NodeId>& keys,
                       const std::string& prefix) {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(nl.add_gate(GateType::kXor, {xs[i], keys[i]},
                                prefix + std::to_string(i)));
    }
    return out;
  };
  const auto la = xor_layer(ka, "as_a");
  const auto lb = xor_layer(kb, "as_b");
  const NodeId g = la.size() == 1
                       ? la[0]
                       : nl.add_gate(GateType::kAnd,
                                     std::vector<NodeId>(la.begin(), la.end()),
                                     "as_g");
  const NodeId gn = lb.size() == 1
                        ? nl.add_gate(GateType::kNot, {lb[0]}, "as_gn")
                        : nl.add_gate(GateType::kNand,
                                      std::vector<NodeId>(lb.begin(),
                                                          lb.end()),
                                      "as_gn");
  const NodeId y = nl.add_gate(GateType::kAnd, {g, gn}, "as_y");
  corrupt_output(nl, 0, y, "as_out0");
  return result;
}

LockedCircuit lock_sfll_hd0(const Netlist& host, std::size_t cube_width,
                            std::uint64_t seed) {
  LockedCircuit result{host, {}, "sfll-hd0"};
  Netlist& nl = result.netlist;
  nl.set_structural_hashing(true);
  const auto data = nl.data_inputs();
  if (cube_width == 0 || cube_width > data.size() || nl.outputs().empty()) {
    throw std::invalid_argument("lock_sfll_hd0: bad cube width");
  }
  std::vector<NodeId> xs(data.begin(), data.begin() + cube_width);
  result.key = random_key(cube_width, seed ^ 0x0f0f0f0f);
  // Strip: flip output 0 on the protected cube (hardwired comparator, the
  // part visible to removal attacks).
  const auto cube_nodes = constant_pattern(nl, result.key, "sfll_cube");
  const NodeId strip = build_equality(nl, xs, cube_nodes, "sfll_strip");
  corrupt_output(nl, 0, strip, "sfll_stripped0");
  // Restore: key comparator re-flips when x matches the key.
  std::size_t key_counter = nl.key_inputs().size();
  std::vector<NodeId> keys;
  for (std::size_t i = 0; i < cube_width; ++i) {
    keys.push_back(nl.add_key_input("keyinput" +
                                    std::to_string(key_counter++)));
  }
  const NodeId restore = build_equality(nl, xs, keys, "sfll_restore");
  corrupt_output(nl, 0, restore, "sfll_out0");
  return result;
}

LockedCircuit lock_lut(const Netlist& host, std::size_t num_luts,
                       std::uint64_t seed) {
  LockedCircuit result{host, {}, "lut"};
  const auto lock = core::insert_polymorphic_gates(
      result.netlist, num_luts, core::PolymorphicEncoding::kLut2Style, seed);
  result.key = lock.key;
  return result;
}

namespace {

/// Shared wire-routing lock: selects pairwise-incomparable wires, scrambles
/// them through a banyan (plain 2-MUX or FullLock-style switch boxes), and
/// redirects the original consumers to the network outputs.
LockedCircuit lock_routing_impl(const Netlist& host,
                                std::size_t network_size, std::uint64_t seed,
                                bool fulllock_style, const char* scheme) {
  std::mt19937_64 rng(seed);
  LockedCircuit result{host, {}, scheme};
  Netlist& nl = result.netlist;
  nl.set_structural_hashing(true);
  auto wires = wire_candidates(nl);
  if (wires.size() < network_size) {
    throw std::invalid_argument("lock_routing: not enough wires");
  }
  // Pairwise topologically incomparable wires (see DESIGN.md): reject a
  // candidate inside any chosen cone or whose cone contains a chosen wire.
  // The greedy pass is order-dependent, so retry a few shuffles.
  std::vector<NodeId> chosen;
  for (int attempt = 0; attempt < 20 && chosen.size() < network_size;
       ++attempt) {
    std::shuffle(wires.begin(), wires.end(), rng);
    chosen.clear();
    std::vector<bool> union_cone(nl.node_count(), false);
    for (NodeId w : wires) {
      if (chosen.size() == network_size) break;
      if (union_cone[w]) continue;
      const auto cone = fanin_cone(nl, w);
      bool clash = false;
      for (NodeId c : chosen) {
        if (cone[c]) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      chosen.push_back(w);
      for (std::size_t i = 0; i < cone.size(); ++i) {
        if (cone[i]) union_cone[i] = true;
      }
    }
  }
  if (chosen.size() < network_size) {
    throw std::invalid_argument(
        "lock_routing: could not find incomparable wires");
  }

  const std::size_t switches = core::banyan_switch_count(network_size);
  std::vector<bool> swap_keys(switches);
  for (auto&& k : swap_keys) k = static_cast<bool>(rng() & 1);
  const auto perm = core::banyan_permutation(swap_keys, network_size);
  std::vector<NodeId> net_inputs(network_size);
  for (std::size_t p = 0; p < network_size; ++p) {
    net_inputs[p] = chosen[perm[p]];
  }
  std::size_t key_counter = nl.key_inputs().size();
  const auto net =
      fulllock_style
          ? core::build_banyan_fulllock(nl, net_inputs, key_counter, "fl")
          : core::build_banyan(nl, net_inputs, key_counter, "rt");
  result.key = fulllock_style ? core::fulllock_keys_from_banyan(swap_keys)
                              : swap_keys;
  // Redirect consumers of each chosen wire to network output i, leaving the
  // network's own input references untouched.
  std::unordered_set<NodeId> block_nodes;
  for (NodeId id = host.node_count(); id < nl.node_count(); ++id) {
    block_nodes.insert(id);
  }
  std::vector<NodeId> except(block_nodes.begin(), block_nodes.end());
  for (std::size_t i = 0; i < network_size; ++i) {
    nl.replace_uses_except(chosen[i], net.outputs[i], except);
  }
  return result;
}

}  // namespace

LockedCircuit lock_fulllock(const Netlist& host, std::size_t network_size,
                            std::uint64_t seed) {
  return lock_routing_impl(host, network_size, seed, /*fulllock_style=*/true,
                           "fulllock");
}

LockedCircuit lock_banyan_routing(const Netlist& host,
                                  std::size_t network_size,
                                  std::uint64_t seed) {
  return lock_routing_impl(host, network_size, seed,
                           /*fulllock_style=*/false, "banyan-routing");
}

RilLocked lock_ril(const Netlist& host, std::size_t num_blocks,
                   const core::RilBlockConfig& config, std::uint64_t seed) {
  RilLocked result;
  result.locked.netlist = host;
  result.locked.scheme = "ril-" + config.label();
  result.info = core::insert_ril_blocks(result.locked.netlist, num_blocks,
                                        config, seed);
  result.locked.key = result.info.functional_key;
  return result;
}

}  // namespace ril::locking
