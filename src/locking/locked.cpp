#include "locking/locked.hpp"

#include <random>
#include <stdexcept>

namespace ril::locking {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist specialize_keys(const Netlist& locked, const std::vector<bool>& key) {
  if (key.size() != locked.key_inputs().size()) {
    throw std::invalid_argument("specialize_keys: key width mismatch");
  }
  Netlist out(locked.name() + "_keyed");
  std::vector<NodeId> remap(locked.node_count(), netlist::kNoNode);
  // Key value per node id, for key inputs only.
  std::vector<int> key_value(locked.node_count(), -1);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key_value[locked.key_inputs()[i]] = key[i] ? 1 : 0;
  }
  // Preserve the primary-input order (positional equivalence checks and
  // oracles depend on it); key inputs become constants.
  for (NodeId id : locked.inputs()) {
    if (key_value[id] >= 0) {
      remap[id] = out.add_const(key_value[id] == 1);
      out.rename(remap[id], locked.name_of(id) + "_fixed");
    } else {
      remap[id] = out.add_input(locked.name_of(id));
    }
  }
  // DFFs next (they are topological sources); fanins patched at the end.
  NodeId placeholder = netlist::kNoNode;
  for (NodeId id = 0; id < locked.node_count(); ++id) {
    if (locked.node(id).type != GateType::kDff) continue;
    if (placeholder == netlist::kNoNode) placeholder = out.add_const(false);
    remap[id] =
        out.add_gate(GateType::kDff, {placeholder}, locked.name_of(id));
  }
  for (NodeId id : locked.topological_order()) {
    const netlist::Node& node = locked.node(id);
    if (remap[id] != netlist::kNoNode) continue;
    switch (node.type) {
      case GateType::kInput:
        break;  // handled above
      case GateType::kConst0:
      case GateType::kConst1:
        remap[id] = out.add_const(node.type == GateType::kConst1);
        out.rename(remap[id], node.name());
        break;
      default: {
        std::vector<NodeId> fanins;
        fanins.reserve(node.fanins.size());
        for (NodeId f : node.fanins) fanins.push_back(remap[f]);
        if (node.type == GateType::kLut) {
          remap[id] = out.add_lut(std::move(fanins), node.lut_mask, node.name());
        } else {
          remap[id] = out.add_gate(node.type, std::move(fanins), node.name());
        }
      }
    }
  }
  for (NodeId id = 0; id < locked.node_count(); ++id) {
    if (locked.node(id).type == GateType::kDff) {
      out.set_fanin(remap[id], 0, remap[locked.fanin(id, 0)]);
    }
  }
  for (NodeId id : locked.outputs()) out.mark_output(remap[id]);
  return out;
}

std::vector<bool> random_key(std::size_t width, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> key(width);
  for (std::size_t i = 0; i < width; ++i) key[i] = rng() & 1;
  return key;
}

std::size_t key_hamming_distance(const std::vector<bool>& a,
                                 const std::vector<bool>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("key_hamming_distance: width mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a[i] != b[i];
  return d;
}

}  // namespace ril::locking
