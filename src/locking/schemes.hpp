// Logic-locking schemes: the paper's baselines (Table V) plus a convenience
// wrapper around RIL-Block insertion.
//
// Every scheme copies the host netlist, adds key inputs named
// "keyinput<i>", and returns a LockedCircuit whose `key` unlocks the
// original function.
#pragma once

#include <cstdint>

#include "core/ril_block.hpp"
#include "locking/locked.hpp"

namespace ril::locking {

/// Random XOR/XNOR key-gate insertion (RLL / EPIC-style).
LockedCircuit lock_xor(const netlist::Netlist& host, std::size_t key_bits,
                       std::uint64_t seed);

/// SARLock: one-point comparator flip, key width <= #data inputs.
/// flip(x, k) = (x[0..w) == k) AND (k != secret); output 0 is XORed with
/// flip; correct key = secret.
LockedCircuit lock_sarlock(const netlist::Netlist& host,
                           std::size_t key_width, std::uint64_t seed);

/// Anti-SAT: Y = g(x ^ ka) AND NOT g(x ^ kb) with g = AND-tree; correct key
/// has ka == kb. Key width = 2 * n.
LockedCircuit lock_antisat(const netlist::Netlist& host, std::size_t n,
                           std::uint64_t seed);

/// SFLL-HD0 (TTLock): functionality stripped on one protected cube, restored
/// by a key comparator; correct key = the stripped cube.
LockedCircuit lock_sfll_hd0(const netlist::Netlist& host,
                            std::size_t cube_width, std::uint64_t seed);

/// LUT-based obfuscation [Kolhe et al., ICCAD'19-style]: random 2-input
/// gates replaced by key-programmable LUTs (4 key bits each).
LockedCircuit lock_lut(const netlist::Netlist& host, std::size_t num_luts,
                       std::uint64_t seed);

/// FullLock-style routing obfuscation: `network_size` wires routed through a
/// banyan of 4-MUX+inversion switch boxes (3 key bits per switch).
LockedCircuit lock_fulllock(const netlist::Netlist& host,
                            std::size_t network_size, std::uint64_t seed);

/// Pure routing obfuscation with the paper's 2-MUX switch boxes (no logic
/// layer): `network_size` wires scrambled through one banyan network. Used
/// by the one-hot re-encoding ablation -- routing alone falls to the
/// one-layer attack formulation, which is why RIL-Blocks interleave LUTs.
LockedCircuit lock_banyan_routing(const netlist::Netlist& host,
                                  std::size_t network_size,
                                  std::uint64_t seed);

/// RIL-Block locking (the paper's scheme).
struct RilLocked {
  LockedCircuit locked;
  core::RilLockResult info;
};
RilLocked lock_ril(const netlist::Netlist& host, std::size_t num_blocks,
                   const core::RilBlockConfig& config, std::uint64_t seed);

}  // namespace ril::locking
