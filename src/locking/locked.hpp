// Common representation of a locked circuit + key utilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::locking {

struct LockedCircuit {
  netlist::Netlist netlist;     ///< locked netlist with key inputs
  std::vector<bool> key;        ///< a correct key (key_inputs() order)
  std::string scheme;           ///< e.g. "xor", "sarlock", "ril-8x8x8"
};

/// Returns a copy of `locked` with every key input replaced by the constant
/// from `key` (key_inputs() order). The result has no key inputs and is
/// functionally the unlocked circuit when `key` is correct.
netlist::Netlist specialize_keys(const netlist::Netlist& locked,
                                 const std::vector<bool>& key);

/// Uniformly random key of the given width.
std::vector<bool> random_key(std::size_t width, std::uint64_t seed);

/// Number of positions where two keys differ.
std::size_t key_hamming_distance(const std::vector<bool>& a,
                                 const std::vector<bool>& b);

}  // namespace ril::locking
