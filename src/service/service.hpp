// `ril serve` -- the attack-as-a-service daemon.
//
// AttackService turns the batch tool suite into a long-lived process: a
// client posts lock / attack / verify / check-proof jobs as JSON over the
// minimal HTTP layer (src/service/http.hpp), the jobs run on the same
// runtime::JobQueue worker pool the campaign runner uses (per-job
// deadlines, cooperative cancellation, exception isolation), and results
// are retrieved by job id -- including the streamed DRAT certificate of a
// certified attack. Three caches persist across requests (src/service/
// caches.hpp): parsed netlists, miter CNF skeletons, and warm verifier
// portfolios, all keyed by content hash. Every terminal job is appended to
// a kill-safe JSONL journal (runtime::JsonlWriter); on restart the journal
// is replayed so finished jobs stay queryable and jobs that were queued
// when the process died surface as status "lost" instead of vanishing.
//
// Endpoints (all JSON unless noted):
//   GET  /v1/health                liveness + version info
//   GET  /v1/stats                 cache hit/miss counters, queue state
//   POST /v1/jobs[?wait=1]        submit a job; wait=1 blocks for the result
//   GET  /v1/jobs/<id>             job status / result
//   GET  /v1/jobs/<id>/proof       the job's DRAT certificate (octet-stream)
//   POST /v1/shutdown              graceful stop (drains nothing: running
//                                  jobs are cancelled cooperatively)
//
// Job request body (flat JSON object):
//   {"type":"attack"|"verify"|"lock"|"check-proof", ...}
//   Netlists arrive inline ("locked":"<bench text>") or by path
//   ("locked_path":"f.bench"); `*_path` keeps CI scripts free of JSON
//   escaping. Inline text is bench unless it contains "module " (Verilog).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/campaign.hpp"
#include "service/caches.hpp"
#include "service/http.hpp"

namespace ril::service {

struct ServiceOptions {
  /// Concurrent jobs (JobQueue width).
  unsigned workers = 2;
  /// Portfolio width inside each attack / verify solve.
  unsigned solver_jobs = 1;
  /// Kill-safe JSONL journal; empty disables journaling.
  std::string journal_path;
  /// Directory for streamed DRAT certificates (default: cwd).
  std::string proof_dir = ".";
  /// Default per-job wall-clock deadline in seconds (0 = none); a job's
  /// own "timeout" field overrides it.
  double default_timeout_seconds = 0;
};

class AttackService {
 public:
  explicit AttackService(ServiceOptions options);
  ~AttackService();

  /// Routes one request. Exposed directly (not only through HttpServer) so
  /// tests can drive the service in-process.
  HttpResponse handle(const HttpRequest& request);

  /// True once POST /v1/shutdown was accepted.
  bool shutdown_requested() const;
  /// Blocks until shutdown is requested.
  void wait_shutdown();

  /// Cache/queue counters as a JSON object body (the /v1/stats payload).
  std::string stats_json() const;

 private:
  struct Job {
    std::string id;
    std::string type;
    std::string status;  ///< queued|running|ok|error|lost
    std::string error;
    std::string payload;  ///< JSON fields of the result ("data" object)
    double queue_seconds = 0;
    double run_seconds = 0;
    std::string proof_path;  ///< on-disk DRAT certificate, when produced
    bool replayed = false;   ///< restored from the journal, not run now
  };

  HttpResponse submit_job(const HttpRequest& request);
  HttpResponse job_status(const std::string& id);
  HttpResponse job_proof(const std::string& id);

  /// Runs one job body on a worker; returns the payload JSON fields.
  std::string run_lock(const std::string& body, runtime::JobContext& ctx,
                       std::string* proof_path);
  std::string run_attack(const std::string& body, const std::string& id,
                         runtime::JobContext& ctx, std::string* proof_path);
  std::string run_verify(const std::string& body, runtime::JobContext& ctx);
  std::string run_check_proof(const std::string& body);

  /// Resolves a netlist argument: `<field>` inline or `<field>_path` on
  /// disk; parses through the netlist cache. Appends per-request cache and
  /// latency telemetry to `*telemetry` (JSON fields, comma-prefixed).
  std::shared_ptr<const netlist::Netlist> resolve_netlist(
      const std::string& body, const std::string& field,
      std::string* hex_out, std::string* telemetry);

  void replay_journal();
  std::string job_json(const Job& job) const;
  void journal_write(const Job& job);

  ServiceOptions options_;
  runtime::JobQueue queue_;
  runtime::JsonlWriter journal_;

  NetlistCache netlists_;
  SkeletonCache skeletons_;
  VerifierCache verifiers_;

  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::map<std::string, Job> jobs_;
  std::uint64_t next_job_ = 1;

  mutable std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;
};

}  // namespace ril::service
