#include "service/service.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "attacks/oracle.hpp"
#include "attacks/sat_attack.hpp"
#include "core/ril_block.hpp"
#include "locking/schemes.hpp"
#include "netlist/bench_io.hpp"
#include "sat/drat_check.hpp"

namespace ril::service {

using runtime::json_escape;
using runtime::json_number_field;
using runtime::json_string_field;

namespace {

/// `"field":true|false` from a flat JSON object; `fallback` when absent.
bool json_bool_field(const std::string& body, const std::string& field,
                     bool fallback = false) {
  const std::string needle = "\"" + field + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return fallback;
  std::size_t v = pos + needle.size();
  while (v < body.size() && (body[v] == ' ' || body[v] == '\t')) ++v;
  if (body.compare(v, 4, "true") == 0) return true;
  if (body.compare(v, 5, "false") == 0) return false;
  return fallback;
}

std::string key_to_string(const std::vector<bool>& key) {
  std::string out;
  out.reserve(key.size());
  for (bool b : key) out += b ? '1' : '0';
  return out;
}

std::vector<bool> key_from_string(const std::string& text) {
  std::vector<bool> key;
  for (char c : text) {
    if (c == '0') key.push_back(false);
    else if (c == '1') key.push_back(true);
  }
  return key;
}

std::string fmt_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", seconds);
  return buffer;
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse error_response(int status, const std::string& message) {
  return json_response(status,
                       "{\"error\":\"" + json_escape(message) + "\"}");
}

}  // namespace

AttackService::AttackService(ServiceOptions options)
    : options_(options), queue_(options.workers == 0 ? 1 : options.workers) {
  if (!options_.journal_path.empty()) {
    replay_journal();
    journal_.open(options_.journal_path);
  }
}

AttackService::~AttackService() {
  // Cancel cooperatively, then wait for workers to finish winding down.
  // The wait is load-bearing: queue_ is destroyed *last* among the members
  // a job callback touches (it is declared first), so without it a still-
  // running job's run/done callbacks could fire against already-destroyed
  // jobs_/journal_/caches.
  queue_.cancel_all();
  queue_.wait_idle();
}

bool AttackService::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  return shutdown_;
}

void AttackService::wait_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_; });
}

std::string AttackService::stats_json() const {
  std::ostringstream out;
  out << "{\"jobs_in_flight\":" << queue_.in_flight()
      << ",\"workers\":" << queue_.workers()
      << ",\"netlist_cache\":{\"hits\":" << netlists_.hits()
      << ",\"misses\":" << netlists_.misses()
      << ",\"entries\":" << netlists_.size() << "}"
      << ",\"skeleton_cache\":{\"hits\":" << skeletons_.hits()
      << ",\"misses\":" << skeletons_.misses()
      << ",\"entries\":" << skeletons_.size()
      << ",\"bytes\":" << skeletons_.memory_bytes() << "}"
      << ",\"verifier_cache\":{\"hits\":" << verifiers_.hits()
      << ",\"misses\":" << verifiers_.misses()
      << ",\"entries\":" << verifiers_.size() << "}"
      << ",\"journal_failures\":" << journal_.failures() << "}";
  return out.str();
}

std::string AttackService::job_json(const Job& job) const {
  std::string out = "{\"id\":\"" + json_escape(job.id) + "\",\"type\":\"" +
                    json_escape(job.type) + "\",\"status\":\"" +
                    json_escape(job.status) + "\"";
  if (!job.error.empty()) {
    out += ",\"error\":\"" + json_escape(job.error) + "\"";
  }
  out += ",\"queue_seconds\":" + fmt_seconds(job.queue_seconds);
  out += ",\"run_seconds\":" + fmt_seconds(job.run_seconds);
  if (!job.proof_path.empty()) {
    out += ",\"proof_path\":\"" + json_escape(job.proof_path) + "\"";
  }
  if (!job.payload.empty()) out += ",\"data\":{" + job.payload + "}";
  out += "}";
  return out;
}

void AttackService::journal_write(const Job& job) {
  if (journal_.is_open()) journal_.write_line(job_json(job));
}

void AttackService::replay_journal() {
  std::ifstream in(options_.journal_path);
  if (!in) return;  // first boot: nothing to replay
  std::string line;
  std::uint64_t max_id = 0;
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  while (std::getline(in, line)) {
    const std::string id = json_string_field(line, "id");
    if (id.empty()) continue;
    Job& job = jobs_[id];
    job.id = id;
    job.type = json_string_field(line, "type");
    job.status = json_string_field(line, "status");
    job.error = json_string_field(line, "error");
    job.queue_seconds = json_number_field(line, "queue_seconds");
    job.run_seconds = json_number_field(line, "run_seconds");
    job.proof_path = json_string_field(line, "proof_path");
    job.payload = runtime::json_object_field(line, "data");
    job.replayed = true;
    // "job-<n>" -> n, to keep ids unique across restarts.
    const std::size_t dash = id.rfind('-');
    if (dash != std::string::npos) {
      const std::uint64_t n =
          std::strtoull(id.c_str() + dash + 1, nullptr, 10);
      if (n > max_id) max_id = n;
    }
  }
  // A job that reached the journal as "queued"/"running" but never got a
  // terminal line died with the process: surface it, don't silently drop.
  for (auto& [id, job] : jobs_) {
    if (job.status == "queued" || job.status == "running") {
      job.status = "lost";
      job.error = "process exited before the job finished";
    }
  }
  next_job_ = max_id + 1;
}

HttpResponse AttackService::handle(const HttpRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  HttpResponse response;
  if (request.target == "/v1/health" && request.method == "GET") {
    response = json_response(
        200, "{\"ok\":true,\"service\":\"ril\",\"api\":\"v1\"}");
  } else if (request.target == "/v1/stats" && request.method == "GET") {
    response = json_response(200, stats_json());
  } else if (request.target == "/v1/jobs" && request.method == "POST") {
    response = submit_job(request);
  } else if (request.target == "/v1/shutdown" && request.method == "POST") {
    {
      std::lock_guard<std::mutex> lock(shutdown_mutex_);
      shutdown_ = true;
    }
    shutdown_cv_.notify_all();
    queue_.cancel_all();
    response = json_response(200, "{\"ok\":true,\"stopping\":true}");
  } else if (request.target.rfind("/v1/jobs/", 0) == 0) {
    std::string id = request.target.substr(9);
    const bool want_proof = id.size() > 6 &&
                            id.compare(id.size() - 6, 6, "/proof") == 0;
    if (want_proof) id.resize(id.size() - 6);
    if (request.method != "GET") {
      response = error_response(405, "use GET for job retrieval");
    } else {
      response = want_proof ? job_proof(id) : job_status(id);
    }
  } else {
    response = error_response(404, "no such endpoint: " + request.target);
  }
  // Per-request latency, appended to every JSON body (the closing '}' is
  // guaranteed by construction above).
  if (response.content_type == "application/json" &&
      !response.body.empty() && response.body.back() == '}') {
    response.body.back() = ',';
    response.body +=
        "\"request_seconds\":" + fmt_seconds(now_minus(t0)) + "}";
  }
  return response;
}

HttpResponse AttackService::submit_job(const HttpRequest& request) {
  const std::string& body = request.body;
  const std::string type = json_string_field(body, "type");
  if (type != "attack" && type != "verify" && type != "lock" &&
      type != "check-proof") {
    return error_response(
        400, "job type must be attack|verify|lock|check-proof");
  }
  double timeout = json_number_field(body, "timeout",
                                     options_.default_timeout_seconds);
  if (timeout < 0) timeout = 0;

  std::string id;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = "job-" + std::to_string(next_job_++);
    Job& job = jobs_[id];
    job.id = id;
    job.type = type;
    job.status = "queued";
    journal_write(job);
  }

  // The worker body: dispatch on type, return the payload JSON fields.
  auto run = [this, type, body, id](runtime::JobContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_[id].status = "running";
    }
    std::string proof_path;
    std::string payload;
    if (type == "attack") payload = run_attack(body, id, ctx, &proof_path);
    else if (type == "verify") payload = run_verify(body, ctx);
    else if (type == "lock") payload = run_lock(body, ctx, &proof_path);
    else payload = run_check_proof(body);
    if (!proof_path.empty()) {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_[id].proof_path = proof_path;
    }
    return payload;
  };
  auto done = [this, id](runtime::JobRecord&& record) {
    Job snapshot;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      Job& job = jobs_[id];
      job.status = record.status == "ok" ? "ok" : "error";
      job.error = record.error;
      job.payload = std::move(record.payload);
      job.queue_seconds = record.queue_seconds;
      job.run_seconds = record.run_seconds;
      snapshot = job;
    }
    journal_write(snapshot);
    jobs_cv_.notify_all();
  };
  queue_.submit(id, timeout, std::move(run), std::move(done));

  if (request.query_param("wait") == "1") {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait(lock, [&] {
      const auto it = jobs_.find(id);
      return it != jobs_.end() && it->second.status != "queued" &&
             it->second.status != "running";
    });
    return json_response(200, job_json(jobs_.at(id)));
  }
  return json_response(202, "{\"id\":\"" + id + "\",\"status\":\"queued\"}");
}

HttpResponse AttackService::job_status(const std::string& id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return error_response(404, "no such job: " + id);
  }
  return json_response(200, job_json(it->second));
}

HttpResponse AttackService::job_proof(const std::string& id) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return error_response(404, "no such job: " + id);
    path = it->second.proof_path;
  }
  if (path.empty()) {
    return error_response(404, "job " + id + " has no certificate");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return error_response(404, "certificate file missing: " + path);
  HttpResponse response;
  response.content_type = "application/octet-stream";
  response.body.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  return response;
}

std::shared_ptr<const netlist::Netlist> AttackService::resolve_netlist(
    const std::string& body, const std::string& field, std::string* hex_out,
    std::string* telemetry) {
  std::string text = json_string_field(body, field);
  bool verilog = false;
  if (text.empty()) {
    const std::string path = json_string_field(body, field + "_path");
    if (path.empty()) {
      throw std::runtime_error("missing \"" + field + "\" or \"" + field +
                               "_path\"");
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    verilog = path.size() > 2 && path.compare(path.size() - 2, 2, ".v") == 0;
  } else {
    verilog = text.find("module ") != std::string::npos;
  }
  const auto t0 = std::chrono::steady_clock::now();
  bool hit = false;
  std::string hex;
  auto parsed = netlists_.get(text, verilog, &hex, &hit);
  if (parsed->node_count() == 0 || parsed->outputs().empty()) {
    throw std::runtime_error(field +
                             ": no usable netlist parsed (corrupt input?)");
  }
  if (hex_out) *hex_out = hex;
  if (telemetry) {
    *telemetry += ",\"" + field + "_cache\":\"" +
                  (hit ? "hit" : "miss") + "\",\"" + field + "_hash\":\"" +
                  hex + "\",\"" + field +
                  "_parse_seconds\":" + fmt_seconds(now_minus(t0));
  }
  return parsed;
}

std::string AttackService::run_attack(const std::string& body,
                                      const std::string& id,
                                      runtime::JobContext& ctx,
                                      std::string* proof_path) {
  std::string telemetry;
  std::string locked_hex;
  const auto locked = resolve_netlist(body, "locked", &locked_hex,
                                      &telemetry);
  const auto activated =
      resolve_netlist(body, "activated", nullptr, &telemetry);
  if (!activated->key_inputs().empty()) {
    throw std::runtime_error(
        "activated netlist must not have key inputs (unlock it first)");
  }
  attacks::Oracle oracle(*activated, {});

  attacks::SatAttackOptions options;
  options.time_limit_seconds = ctx.timeout_seconds();
  options.max_iterations = static_cast<std::size_t>(
      json_number_field(body, "max_iterations", 0));
  options.jobs = static_cast<unsigned>(
      json_number_field(body, "jobs", options_.solver_jobs));
  if (options.jobs == 0) options.jobs = 1;
  options.cancel = &ctx.cancel_flag();
  options.certify = json_bool_field(body, "certify");
  if (options.certify) {
    // One certificate file per job id, streamed while the attack runs.
    const std::string name = json_string_field(body, "proof_name");
    *proof_path =
        options_.proof_dir + "/" + (name.empty() ? id : name) + ".drat";
    options.proof_file = *proof_path;
  }

  // Level-2 cache: replay a captured miter skeleton for this locked
  // content, or capture one on the first encounter.
  attacks::engine::MiterSkeleton captured;
  const auto skeleton = skeletons_.find(locked_hex);
  if (skeleton) {
    options.miter_skeleton = skeleton.get();
    telemetry += ",\"skeleton_cache\":\"hit\"";
  } else {
    options.capture_skeleton = &captured;
    telemetry += ",\"skeleton_cache\":\"miss\"";
  }

  const auto result = attacks::run_sat_attack(*locked, oracle, options);
  if (!skeleton && !captured.empty()) {
    skeletons_.put(locked_hex,
                   std::make_shared<attacks::engine::MiterSkeleton>(
                       std::move(captured)));
  }
  if (result.proof_path.empty()) *proof_path = "";  // nothing published

  std::string payload = "\"attack\":\"sat\",\"status\":\"" +
                        to_string(result.status) + "\"";
  if (result.status == attacks::SatAttackStatus::kKeyFound) {
    payload += ",\"key\":\"" + key_to_string(result.key) + "\"";
  }
  payload += ",\"iterations\":" + std::to_string(result.iterations);
  payload += ",\"conflicts\":" + std::to_string(result.conflicts);
  payload += ",\"attack_seconds\":" + fmt_seconds(result.seconds);
  if (result.proof_status != attacks::ProofStatus::kNotRequested) {
    payload += ",\"proof\":\"" + to_string(result.proof_status) + "\"";
    payload += ",\"proof_steps\":" + std::to_string(result.proof_steps);
    payload += ",\"proof_bytes\":" + std::to_string(result.proof_bytes);
  }
  payload += telemetry;
  return payload;
}

std::string AttackService::run_verify(const std::string& body,
                                      runtime::JobContext& ctx) {
  std::string telemetry;
  std::string locked_hex;
  std::string activated_hex;
  const auto locked = resolve_netlist(body, "locked", &locked_hex,
                                      &telemetry);
  const auto activated =
      resolve_netlist(body, "activated", &activated_hex, &telemetry);
  const std::vector<bool> key =
      key_from_string(json_string_field(body, "key"));

  bool warm = false;
  const auto verifier = verifiers_.get(
      locked_hex, locked, activated_hex, activated, options_.solver_jobs,
      content_hash(locked_hex), &warm);
  const auto outcome =
      verifier->verify(key, ctx.timeout_seconds(), &ctx.cancel_flag());

  std::string payload = "\"verifier_cache\":\"";
  payload += warm ? "hit" : "miss";
  payload += "\",\"status\":\"";
  payload += outcome.status == sat::Result::kUnknown ? "unknown"
             : outcome.equivalent                    ? "equivalent"
                                                     : "different";
  payload += "\",\"equivalent\":";
  payload += outcome.equivalent ? "true" : "false";
  payload += ",\"conflicts\":" + std::to_string(outcome.conflicts);
  payload += ",\"solve_seconds\":" + fmt_seconds(outcome.seconds);
  payload += ",\"verifier_uses\":" + std::to_string(outcome.uses);
  payload += telemetry;
  return payload;
}

std::string AttackService::run_lock(const std::string& body,
                                    runtime::JobContext&,
                                    std::string* /*proof_path*/) {
  std::string telemetry;
  const auto host = resolve_netlist(body, "host", nullptr, &telemetry);
  const std::string scheme = json_string_field(body, "scheme");
  const auto bits =
      static_cast<std::size_t>(json_number_field(body, "bits", 32));
  const auto size =
      static_cast<std::size_t>(json_number_field(body, "size", 8));
  const auto seed =
      static_cast<std::uint64_t>(json_number_field(body, "seed", 1));

  netlist::Netlist locked;
  std::vector<bool> key;
  if (scheme == "ril") {
    core::RilBlockConfig config;
    config.size = size;
    auto ril = locking::lock_ril(
        *host, static_cast<std::size_t>(json_number_field(body, "blocks", 1)),
        config, seed);
    locked = std::move(ril.locked.netlist);
    key = ril.info.functional_key;
  } else {
    locking::LockedCircuit result;
    if (scheme == "xor") result = locking::lock_xor(*host, bits, seed);
    else if (scheme == "sarlock") result = locking::lock_sarlock(*host, bits, seed);
    else if (scheme == "antisat") result = locking::lock_antisat(*host, bits, seed);
    else if (scheme == "sfll") result = locking::lock_sfll_hd0(*host, bits, seed);
    else if (scheme == "lut") result = locking::lock_lut(*host, bits, seed);
    else if (scheme == "fulllock") result = locking::lock_fulllock(*host, size, seed);
    else if (scheme == "routing") result = locking::lock_banyan_routing(*host, size, seed);
    else throw std::runtime_error("unknown lock scheme: " + scheme);
    locked = std::move(result.netlist);
    key = std::move(result.key);
  }
  std::string payload = "\"scheme\":\"" + json_escape(scheme) + "\"";
  payload += ",\"key\":\"" + key_to_string(key) + "\"";
  payload += ",\"key_bits\":" + std::to_string(key.size());
  payload +=
      ",\"locked\":\"" + json_escape(netlist::write_bench_string(locked)) +
      "\"";
  payload += telemetry;
  return payload;
}

std::string AttackService::run_check_proof(const std::string& body) {
  std::string path = json_string_field(body, "proof_path");
  if (path.empty()) {
    // "job":"job-3" checks that job's published certificate.
    const std::string job_id = json_string_field(body, "job");
    if (!job_id.empty()) {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      const auto it = jobs_.find(job_id);
      if (it != jobs_.end()) path = it->second.proof_path;
    }
  }
  if (path.empty()) {
    throw std::runtime_error("check-proof needs \"proof_path\" or \"job\"");
  }
  const bool open = json_bool_field(body, "open");
  const sat::DratCheckResult result =
      open ? sat::check_derivations_file(path)
           : sat::check_refutation_file(path);
  std::string payload = "\"proof_path\":\"" + json_escape(path) + "\"";
  payload += ",\"open\":";
  payload += open ? "true" : "false";
  payload += ",\"valid\":";
  payload += result.valid ? "true" : "false";
  payload += ",\"malformed\":";
  payload += result.malformed ? "true" : "false";
  if (!result.error.empty()) {
    payload += ",\"proof_error\":\"" + json_escape(result.error) + "\"";
  }
  payload += ",\"derivations\":" + std::to_string(result.stats.derivations);
  payload += ",\"originals\":" + std::to_string(result.stats.originals);
  return payload;
}

}  // namespace ril::service
