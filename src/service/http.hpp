// Minimal HTTP/1.1 server (and test client) for the `ril serve` daemon.
//
// Hand-rolled over POSIX sockets on purpose: the container bakes in no HTTP
// library and the daemon's needs are tiny -- parse a request line, a few
// headers (only Content-Length matters), an optional body; write back a
// status line, Content-Length, and a body. Every connection is one request
// (`Connection: close`); N acceptor threads all block in accept() on the
// same listening socket, so up to N requests are parsed and handled
// concurrently -- which is what lets concurrent jobs share the caches.
// On non-POSIX builds the server compiles but start() throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace ril::service {

struct HttpRequest {
  std::string method;  ///< "GET" | "POST" | ...
  std::string target;  ///< path without the query string
  std::string query;   ///< raw query string (no leading '?')
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;

  /// Value of `name` in the query string, or `fallback` when absent.
  std::string query_param(const std::string& name,
                          const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts
  /// `threads` acceptor workers. Throws std::runtime_error on bind failure.
  void start(std::uint16_t port, unsigned threads = 4);
  /// Stops accepting, wakes the workers, joins them. Idempotent.
  void stop();
  bool running() const { return listen_fd_.load() >= 0; }
  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  Handler handler_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::vector<std::thread> workers_;
};

/// Blocking one-shot HTTP client for tests and the CLI smoke path: sends
/// `method target` with `body` to 127.0.0.1:`port`, returns the response
/// body and stores the status code in `*status_out` (0 on transport
/// failure). Throws nothing; transport failures return "".
std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& target, const std::string& body,
                         int* status_out = nullptr);

}  // namespace ril::service
