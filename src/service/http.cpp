#include "service/http.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "runtime/campaign.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RIL_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace ril::service {

namespace {

std::string lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

#if RIL_HAVE_SOCKETS

/// Reads until the header terminator, then Content-Length body bytes.
/// Returns false on malformed input or transport error.
bool read_request(int fd, HttpRequest& request) {
  std::string buffer;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > (1u << 20) && header_end == std::string::npos) {
      return false;  // runaway header block
    }
  }
  const std::string head = buffer.substr(0, header_end);
  std::string rest = buffer.substr(header_end + 4);

  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  request.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request.target = target;

  // Headers.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = lower(line.substr(0, colon));
      std::size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      request.headers[name] = line.substr(vstart);
    }
    pos = eol + 2;
  }

  std::size_t content_length = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    content_length = static_cast<std::size_t>(
        std::strtoull(it->second.c_str(), nullptr, 10));
    if (content_length > (1u << 28)) return false;  // 256 MiB sanity cap
  }
  while (rest.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    rest.append(chunk, static_cast<std::size_t>(n));
  }
  request.body = rest.substr(0, content_length);
  return true;
}

bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

#endif  // RIL_HAVE_SOCKETS

}  // namespace

std::string HttpRequest::query_param(const std::string& name,
                                     const std::string& fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    const std::string key = eq == std::string::npos ? pair : pair.substr(0, eq);
    if (key == name) {
      return eq == std::string::npos ? std::string("1") : pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

#if RIL_HAVE_SOCKETS

void HttpServer::start(std::uint16_t port, unsigned threads) {
  if (listen_fd_ >= 0) throw std::runtime_error("server already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { accept_loop(); });
  }
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  const int fd = listen_fd_;
  listen_fd_ = -1;
  // shutdown() wakes every worker blocked in accept() with an error.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void HttpServer::accept_loop() {
  while (true) {
    const int fd = listen_fd_;
    if (fd < 0) return;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (listen_fd_ < 0) return;  // stop() in progress
      continue;                    // transient accept error
    }
    handle_connection(conn);
    ::close(conn);
  }
}

void HttpServer::handle_connection(int fd) {
  HttpRequest request;
  HttpResponse response;
  if (!read_request(fd, request)) {
    response.status = 400;
    response.body = "{\"error\":\"malformed request\"}";
  } else {
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = HttpResponse{};
      response.status = 500;
      response.body = "{\"error\":\"" + runtime::json_escape(e.what()) + "\"}";
    }
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason_phrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  write_all(fd, out);
}

std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& target, const std::string& body,
                         int* status_out) {
  if (status_out) *status_out = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!write_all(fd, request)) {
    ::close(fd);
    return {};
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return {};
  if (status_out) {
    const std::size_t sp = response.find(' ');
    if (sp != std::string::npos) {
      *status_out = std::atoi(response.c_str() + sp + 1);
    }
  }
  return response.substr(header_end + 4);
}

#else  // !RIL_HAVE_SOCKETS

void HttpServer::start(std::uint16_t, unsigned) {
  throw std::runtime_error("HTTP server requires a POSIX socket layer");
}
void HttpServer::stop() {}
void HttpServer::accept_loop() {}
void HttpServer::handle_connection(int) {}

std::string http_request(std::uint16_t, const std::string&,
                         const std::string&, const std::string&,
                         int* status_out) {
  if (status_out) *status_out = 0;
  return {};
}

#endif  // RIL_HAVE_SOCKETS

}  // namespace ril::service
