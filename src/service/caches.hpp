// Cross-request caches for the `ril serve` daemon.
//
// The daemon's whole point is that requests repeat: the same locked host is
// attacked under many keys, the same (locked, activated) pair is verified
// against many candidate keys, the same netlist text arrives over and over.
// Three levels of state survive across requests, all keyed by *content
// hash* so a changed input can never alias a stale entry:
//
//  1. NetlistCache — parsed netlist::Netlist objects, shared read-only
//     (names are materialized eagerly at insert, because lazy auto-naming
//     is the one non-const-thread-safe part of Netlist);
//  2. SkeletonCache — captured free-key miter encodings
//     (attacks::engine::MiterSkeleton): replaying one skips the Tseitin
//     walk entirely and is bit-identical to a cold encode;
//  3. VerifierCache — warm WarmVerifier instances whose SolverPortfolio
//     has the locked-vs-activated miter already encoded; each verify is an
//     incremental assumption solve over the key variables, so repeated
//     key checks reuse the formula and the learned clauses.
//
// Every cache counts hits and misses; the service surfaces the counters in
// each response so a client (and the CI smoke test) can see the cache work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "attacks/engine/miter_context.hpp"
#include "netlist/netlist.hpp"
#include "runtime/portfolio.hpp"

namespace ril::service {

/// FNV-1a 64-bit over the raw bytes; the cache key for all three levels.
std::uint64_t content_hash(const std::string& text);
/// The hash as a fixed-width lowercase hex string (what the API exposes).
std::string content_hash_hex(const std::string& text);

/// Level 1: content hash -> parsed, name-materialized, shared netlist.
class NetlistCache {
 public:
  /// Parses `text` (Verilog when `verilog`, bench otherwise) or returns the
  /// cached object for identical content *in the same format*. `hex_out`
  /// (optional) receives the format-qualified cache key ("v:<hash>" /
  /// "b:<hash>") — the format is part of the identity, since the same
  /// bytes parse to different netlists under the two readers. `hit_out`
  /// (optional) receives whether this was a hit. Thread-safe; the returned
  /// netlist is immutable and safe to share.
  std::shared_ptr<const netlist::Netlist> get(const std::string& text,
                                              bool verilog,
                                              std::string* hex_out = nullptr,
                                              bool* hit_out = nullptr);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const netlist::Netlist>>
      map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Level 2: locked-netlist content hash -> captured miter skeleton. The
/// skeleton is a pure function of the locked netlist's content, so the
/// netlist hash is a sound key. find() counts a hit, a failed find counts
/// a miss (the caller is then expected to capture and put()).
class SkeletonCache {
 public:
  std::shared_ptr<const attacks::engine::MiterSkeleton> find(
      const std::string& hex);
  void put(const std::string& hex,
           std::shared_ptr<const attacks::engine::MiterSkeleton> skeleton);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  /// Total approximate heap bytes held by the cached skeletons.
  std::size_t memory_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string,
                     std::shared_ptr<const attacks::engine::MiterSkeleton>>
      map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Level 3: a warm equivalence checker for one (locked, activated) pair.
/// The portfolio encodes X, a locked copy with *free* key variables, an
/// activated copy, and a miter forcing some output pair to differ -- once.
/// verify(key) then solves under assumptions fixing the key variables:
/// UNSAT means no distinguishing input exists, i.e. the key is correct.
/// Each call is incremental, so the portfolio keeps its learned clauses
/// between keys. One verify runs at a time per verifier (internal mutex).
class WarmVerifier {
 public:
  /// Throws std::invalid_argument when the data-input or output widths of
  /// the two netlists disagree, or `activated` still has key inputs.
  WarmVerifier(std::shared_ptr<const netlist::Netlist> locked,
               std::shared_ptr<const netlist::Netlist> activated,
               unsigned jobs, std::uint64_t seed);

  struct Outcome {
    sat::Result status = sat::Result::kUnknown;
    bool equivalent = false;  ///< valid iff status != kUnknown
    std::uint64_t conflicts = 0;
    double seconds = 0;
    std::size_t uses = 0;  ///< verifies served by this warm instance so far
  };

  /// `key` must match the locked netlist's key width (throws otherwise).
  Outcome verify(const std::vector<bool>& key, double timeout_seconds = 0,
                 const std::atomic<bool>* cancel = nullptr);

 private:
  std::mutex mutex_;
  // Keep the encoded netlists alive as long as the portfolio references
  // their structure (the oracle-side shared_ptr also pins the cache entry).
  std::shared_ptr<const netlist::Netlist> locked_;
  std::shared_ptr<const netlist::Netlist> activated_;
  runtime::SolverPortfolio portfolio_;
  std::vector<sat::Var> key_vars_;
  std::size_t uses_ = 0;
};

/// Keyed by "locked-hex:activated-hex". get() returns an existing warm
/// verifier (hit) or builds one (miss).
class VerifierCache {
 public:
  std::shared_ptr<WarmVerifier> get(
      const std::string& locked_hex,
      std::shared_ptr<const netlist::Netlist> locked,
      const std::string& activated_hex,
      std::shared_ptr<const netlist::Netlist> activated, unsigned jobs,
      std::uint64_t seed, bool* hit_out = nullptr);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<WarmVerifier>> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ril::service
