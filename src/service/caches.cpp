#include "service/caches.hpp"

#include <chrono>
#include <stdexcept>

#include "attacks/engine/miter_context.hpp"
#include "cnf/tseitin.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"

namespace ril::service {

using attacks::engine::MiterSkeleton;
using netlist::Netlist;
using netlist::NodeId;

std::uint64_t content_hash(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string content_hash_hex(const std::string& text) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t h = content_hash(text);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::shared_ptr<const Netlist> NetlistCache::get(const std::string& text,
                                                 bool verilog,
                                                 std::string* hex_out,
                                                 bool* hit_out) {
  // The parse format is part of the identity: identical bytes read as
  // bench vs Verilog yield different netlists, so the key (and the hash
  // the API exposes, which seeds the skeleton/verifier cache keys too)
  // carries a format prefix.
  const std::string hex =
      (verilog ? "v:" : "b:") + content_hash_hex(text);
  if (hex_out) *hex_out = hex;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(hex);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit_out) *hit_out = true;
      return it->second;
    }
  }
  // Parse outside the lock -- a slow parse must not serialize unrelated
  // requests. A racing duplicate parse is resolved at insert (first wins).
  auto parsed = std::make_shared<Netlist>(
      verilog ? netlist::read_verilog_string(text)
              : netlist::read_bench_string(text));
  // Materialize every lazy auto-name now: name_of() mutates the shared
  // name table, which is the one operation on a const Netlist that is not
  // thread-safe. After this walk the object is genuinely immutable.
  for (std::size_t id = 0; id < parsed->node_count(); ++id) {
    parsed->name_of(static_cast<NodeId>(id));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = map_.emplace(hex, std::move(parsed));
  if (!inserted) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_out) *hit_out = true;
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (hit_out) *hit_out = false;
  }
  return it->second;
}

std::size_t NetlistCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::shared_ptr<const MiterSkeleton> SkeletonCache::find(
    const std::string& hex) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(hex);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SkeletonCache::put(const std::string& hex,
                        std::shared_ptr<const MiterSkeleton> skeleton) {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(hex, std::move(skeleton));  // first capture wins
}

std::size_t SkeletonCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t SkeletonCache::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [hex, skeleton] : map_) bytes += skeleton->memory_bytes();
  return bytes;
}

WarmVerifier::WarmVerifier(std::shared_ptr<const Netlist> locked,
                           std::shared_ptr<const Netlist> activated,
                           unsigned jobs, std::uint64_t seed)
    : locked_(std::move(locked)),
      activated_(std::move(activated)),
      portfolio_(jobs, seed) {
  if (locked_->data_inputs().size() != activated_->data_inputs().size()) {
    throw std::invalid_argument("verify: data input widths differ");
  }
  if (locked_->outputs().size() != activated_->outputs().size()) {
    throw std::invalid_argument("verify: output widths differ");
  }
  if (!activated_->key_inputs().empty()) {
    throw std::invalid_argument("verify: activated netlist has key inputs");
  }
  const std::vector<sat::Var> x =
      attacks::engine::make_vars(portfolio_, locked_->data_inputs().size());
  // Locked copy with free key variables: the key arrives per-verify as
  // assumptions, which is what keeps this instance reusable across keys.
  const auto locked_copy =
      attacks::engine::encode_copy(*locked_, portfolio_, x);
  key_vars_ = locked_copy.key_vars;
  const auto activated_copy =
      attacks::engine::encode_copy(*activated_, portfolio_, x);
  cnf::encode_miter(portfolio_, locked_copy.output_vars,
                    activated_copy.output_vars);
}

WarmVerifier::Outcome WarmVerifier::verify(const std::vector<bool>& key,
                                           double timeout_seconds,
                                           const std::atomic<bool>* cancel) {
  if (key.size() != key_vars_.size()) {
    throw std::invalid_argument("verify: key width mismatch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  portfolio_.set_external_stop(cancel);
  sat::SolverLimits limits;
  limits.time_limit_seconds = timeout_seconds;
  portfolio_.set_limits(limits);
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    assumptions.push_back(sat::Lit::make(key_vars_[i], !key[i]));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const runtime::SolveOutcome outcome = portfolio_.solve(assumptions);
  Outcome result;
  result.status = outcome.result;
  // SAT = a distinguishing input exists = the key is wrong.
  result.equivalent = outcome.result == sat::Result::kUnsat;
  result.conflicts = outcome.conflicts;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.uses = ++uses_;
  return result;
}

std::shared_ptr<WarmVerifier> VerifierCache::get(
    const std::string& locked_hex, std::shared_ptr<const Netlist> locked,
    const std::string& activated_hex,
    std::shared_ptr<const Netlist> activated, unsigned jobs,
    std::uint64_t seed, bool* hit_out) {
  const std::string key = locked_hex + ":" + activated_hex;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_out) *hit_out = true;
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (hit_out) *hit_out = false;
  auto verifier = std::make_shared<WarmVerifier>(std::move(locked),
                                                 std::move(activated), jobs,
                                                 seed);
  map_.emplace(key, verifier);
  return verifier;
}

std::size_t VerifierCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace ril::service
