#include "device/transient.hpp"

namespace ril::device {

namespace {

constexpr std::uint8_t kAndMask = 0b1000;
constexpr std::uint8_t kNorMask = 0b0001;

}  // namespace

TransientResult simulate_and_to_nor(const TransientOptions& options) {
  std::mt19937_64 rng(options.seed);
  MramLut2 lut(options.mtj, options.cmos, options.variation, rng);
  TransientResult result;
  double t = 0;
  const double t_write_ns = options.cmos.t_write * 1e9;
  const double t_read_ns = options.cmos.t_read * 1e9;

  auto emit = [&](TransientPoint p) {
    p.time_ns = t;
    result.waveform.push_back(std::move(p));
  };

  auto configure = [&](std::uint8_t mask, bool se_value,
                       const std::string& phase) {
    for (std::size_t m = 0; m < 4; ++m) {
      const bool bit = (mask >> m) & 1;
      const WriteSample w = lut.write_cell(m, bit);
      result.all_writes_ok &= w.success;
      result.total_config_energy += w.energy;
      TransientPoint p;
      p.we = 1;
      p.a = m & 1;
      p.b = (m >> 1) & 1;
      p.bl = bit;
      p.phase = phase;
      emit(p);
      t += t_write_ns;
    }
    const WriteSample se = lut.write_se(se_value);
    result.all_writes_ok &= se.success;
    result.total_config_energy += se.energy;
    TransientPoint p;
    p.kwe = 1;
    p.bl = se_value;
    p.phase = phase + "-se";
    emit(p);
    t += t_write_ns;
  };

  auto read_sweep = [&](std::array<int, 4>& outs, const std::string& phase) {
    for (std::size_t m = 0; m < 4; ++m) {
      const bool a = m & 1;
      const bool b = (m >> 1) & 1;
      const ReadSample r =
          lut.read_output(a, b, options.scan_enable_reads);
      outs[m] = r.value ? 1 : 0;
      TransientPoint p;
      p.re = 1;
      p.se = options.scan_enable_reads ? 1 : 0;
      p.a = a;
      p.b = b;
      p.v_sense = r.sense_voltage;
      p.out = outs[m];
      p.phase = phase;
      emit(p);
      t += t_read_ns;
    }
  };

  configure(kAndMask, options.se_value_and, "cfg-and");
  read_sweep(result.and_outputs, "read-and");
  configure(kNorMask, options.se_value_nor, "cfg-nor");
  read_sweep(result.nor_outputs, "read-nor");
  return result;
}

}  // namespace ril::device
