#include "device/mram_lut.hpp"

#include <cmath>
#include <stdexcept>

namespace ril::device {

MramLut2::MramLut2(const MtjParams& mtj, const CmosParams& cmos,
                   const VariationSpec& variation, std::mt19937_64& rng)
    : mtj_params_(mtj), cmos_(cmos) {
  // One shared Vth/W-L corner for the peripheral, per-MTJ local variation.
  const ProcessVariation shared = sample_variation(variation, cmos, rng);
  r_on_eff_ = cmos.r_on * (1.0 + 1.5 * shared.vth_delta) *
              (1.0 - shared.wl_delta);
  sense_offset_ = shared.sense_offset;
  cells_.reserve(5);
  for (int i = 0; i < 5; ++i) {
    const ProcessVariation v_main = sample_variation(variation, cmos, rng);
    const ProcessVariation v_comp = sample_variation(variation, cmos, rng);
    cells_.push_back(CellPair{Mtj(mtj, v_main, /*initially_ap=*/true),
                              Mtj(mtj, v_comp, /*initially_ap=*/false),
                              false});
  }
}

WriteSample MramLut2::write_pair(CellPair& pair, bool value) {
  WriteSample sample;
  sample.current = cmos_.i_write;
  // Series write path: access transistor, main MTJ, complement MTJ, access
  // transistor. Complementary states mean the path always contains one P
  // and one AP device.
  const double r_path = 2.0 * r_on_eff_ + pair.main.resistance() +
                        pair.complement.resistance();
  // Storing 1 <=> main in P (low R), complement in AP.
  const bool main_ok =
      pair.main.apply_pulse(value ? -cmos_.i_write : cmos_.i_write,
                            cmos_.t_write);
  const bool comp_ok =
      pair.complement.apply_pulse(value ? cmos_.i_write : -cmos_.i_write,
                                  cmos_.t_write);
  sample.success = main_ok && comp_ok;
  if (sample.success) pair.stored = value;
  // Joule heating in the path plus a small driver asymmetry (pull-up vs
  // pull-down network) that makes writing '1' marginally costlier.
  sample.energy = cmos_.i_write * cmos_.i_write * r_path * cmos_.t_write;
  sample.energy *= value ? 1.007 : 0.993;
  return sample;
}

ReadSample MramLut2::read_pair(CellPair& pair) {
  ReadSample sample;
  const double r_main = pair.main.resistance();
  const double r_comp = pair.complement.resistance();
  const double r_total = r_main + r_comp + 2.0 * r_on_eff_;
  sample.current = cmos_.v_read / r_total;
  // Divider midpoint between main (top) and complement (bottom): storing 1
  // puts main in P -> midpoint pulled toward V+.
  sample.sense_voltage =
      cmos_.v_read * (r_comp + r_on_eff_) / r_total;
  const double threshold = cmos_.v_read / 2.0 + sense_offset_;
  sample.value = sample.sense_voltage > threshold;
  sample.margin = std::abs(sample.sense_voltage - cmos_.v_read / 2.0);
  sample.error = sample.value != pair.stored;
  sample.power = cmos_.v_read * sample.current;
  // Select-tree + output-stage dynamic energy; charging OUT high costs a
  // whisker more than discharging it.
  const double tree_energy = 0.08e-15 + (sample.value ? 0.015e-15
                                                      : -0.015e-15);
  sample.energy = sample.power * cmos_.t_read + tree_energy;
  // Read-disturb check: the pulse is shorter than the switching time, so
  // the state must survive. apply_pulse returns false when no switching
  // happened and the state differs from the pulse target.
  const bool before = pair.main.is_ap();
  (void)pair.main.apply_pulse(sample.current, cmos_.t_read);
  sample.disturbed = pair.main.is_ap() != before;
  if (sample.disturbed) pair.main.force_state(before);  // flag, keep data
  return sample;
}

WriteSample MramLut2::write_cell(std::size_t minterm, bool value) {
  if (minterm >= 4) throw std::invalid_argument("write_cell: bad minterm");
  return write_pair(cells_[minterm], value);
}

double MramLut2::configure(std::uint8_t mask) {
  double energy = 0;
  for (std::size_t m = 0; m < 4; ++m) {
    energy += write_cell(m, (mask >> m) & 1).energy;
  }
  return energy;
}

WriteSample MramLut2::write_se(bool value) {
  return write_pair(cells_[4], value);
}

ReadSample MramLut2::read_cell(bool a, bool b) {
  const std::size_t minterm = (a ? 1 : 0) + (b ? 2 : 0);
  return read_pair(cells_[minterm]);
}

ReadSample MramLut2::read_output(bool a, bool b, bool scan_enable) {
  ReadSample sample = read_cell(a, b);
  if (scan_enable) {
    // The SE stage steers OUT <- O or notO based on MTJ_SE; the extra MUX
    // costs one more node charge.
    const ReadSample se = read_pair(cells_[4]);
    sample.energy += 0.02e-15;
    if (se.value) sample.value = !sample.value;
  }
  return sample;
}

double MramLut2::standby_power() const {
  return cmos_.i_leak * cmos_.vdd;
}

double MramLut2::standby_energy(double window_seconds) const {
  return standby_power() * window_seconds;
}

std::uint8_t MramLut2::stored_mask() const {
  std::uint8_t mask = 0;
  for (std::size_t m = 0; m < 4; ++m) {
    if (cells_[m].stored) mask |= (1u << m);
  }
  return mask;
}

bool MramLut2::stored_se() const { return cells_[4].stored; }

double MramLut2::cell_r_p(std::size_t minterm) const {
  return cells_.at(minterm).main.r_p_effective();
}

double MramLut2::cell_r_ap(std::size_t minterm) const {
  return cells_.at(minterm).main.r_ap_effective();
}

}  // namespace ril::device
