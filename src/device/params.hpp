// Device parameters and process-variation sampling for the MRAM-LUT model.
//
// Replaces the paper's HSPICE + 45nm CMOS + STT-MRAM SPICE model [20] flow
// with an analytic compact model (see DESIGN.md substitution table).
// Nominal values are calibrated so the nominal instance reproduces the
// Table IV operating point (read ~12.48 fJ, write ~34.69 fJ, standby
// ~36.9 aJ) while keeping the mechanisms (complementary divider sensing,
// STT switching asymmetry, leakage floor) physical.
#pragma once

#include <cstdint>
#include <random>

namespace ril::device {

struct MtjParams {
  double r_p = 3.0e3;        ///< parallel-state resistance [ohm]
  double tmr = 1.0;          ///< R_ap = r_p * (1 + tmr)
  double length = 60e-9;     ///< free-layer length [m]
  double width = 30e-9;      ///< free-layer width [m]
  double tox = 1.1e-9;       ///< MgO barrier thickness [m]
  double i_c = 26e-6;        ///< critical switching current [A]
  /// STT asymmetry: P->AP switching needs ~20% more current than AP->P.
  double asymmetry = 0.20;
  double t_switch = 2e-9;    ///< switching time at I = i_c [s]
};

struct CmosParams {
  double vdd = 1.0;          ///< 45nm supply [V]
  double v_read = 0.4;       ///< read-path bias (disturb-safe) [V]
  double vth = 0.45;         ///< nominal threshold voltage [V]
  double r_on = 1.95e3;      ///< access-transistor on-resistance [ohm]
  double i_leak = 36.9e-9;   ///< standby leakage of the cell stack [A]
  double c_node = 0.2e-15;   ///< select-tree node capacitance [F]
  double t_read = 1e-9;      ///< read pulse [s]
  double t_write = 2e-9;     ///< write pulse [s]
  double i_write = 36.7e-6;    ///< programmed write current [A]
  /// Comparator/sense offset sigma [V]; read fails if margin below offset.
  double sense_offset_sigma = 8e-3;
};

/// One sampled process corner. The paper's Monte Carlo setup: 1% on MTJ
/// dimensions, 10% on Vth, 1% on transistor dimensions (all 3-sigma-ish
/// relative Gaussians).
struct ProcessVariation {
  double mtj_dim_delta = 0.0;   ///< relative area/tox perturbation
  double vth_delta = 0.0;       ///< relative Vth perturbation
  double wl_delta = 0.0;        ///< relative W/L perturbation
  double sense_offset = 0.0;    ///< sampled comparator offset [V]
};

struct VariationSpec {
  double mtj_dim_sigma = 0.01;
  double vth_sigma = 0.10;
  double wl_sigma = 0.01;
};

ProcessVariation sample_variation(const VariationSpec& spec,
                                  const CmosParams& cmos,
                                  std::mt19937_64& rng);

}  // namespace ril::device
