// Transient waveform simulation of the MRAM LUT (Fig. 5).
//
// Replays the paper's demonstration: configure the LUT as a 2-input AND
// (including the MTJ_SE cell), sweep the four input combinations in read
// mode, then reconfigure the same LUT as a NOR and sweep again -- verifying
// correct outputs in both configurations and the SE-driven inversion when
// the scan interface is active.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "device/mram_lut.hpp"

namespace ril::device {

struct TransientPoint {
  double time_ns = 0;
  int we = 0;         ///< write-enable
  int kwe = 0;        ///< key (SE-cell) write-enable
  int re = 0;         ///< read-enable
  int se = 0;         ///< scan-enable
  int a = 0;
  int b = 0;
  int bl = 0;         ///< bit-line data during writes
  double v_sense = 0; ///< divider midpoint [V]
  int out = 0;        ///< OUT (after the SE stage)
  std::string phase;  ///< "cfg-and", "read-and", "cfg-nor", ...
};

struct TransientOptions {
  MtjParams mtj;
  CmosParams cmos;
  VariationSpec variation;   ///< zero-out for the nominal waveform
  bool se_value_and = false; ///< MTJ_SE contents in the AND phase
  bool se_value_nor = true;  ///< MTJ_SE contents in the NOR phase
  bool scan_enable_reads = false;  ///< assert SE during the read sweeps
  std::uint64_t seed = 1;
};

struct TransientResult {
  std::vector<TransientPoint> waveform;
  /// Read sweep results: out[i] for minterm i (after the SE stage).
  std::array<int, 4> and_outputs{};
  std::array<int, 4> nor_outputs{};
  bool all_writes_ok = true;
  double total_config_energy = 0;
};

TransientResult simulate_and_to_nor(const TransientOptions& options);

}  // namespace ril::device
