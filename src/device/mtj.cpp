#include "device/mtj.hpp"

#include <cmath>

namespace ril::device {

Mtj::Mtj(const MtjParams& params, const ProcessVariation& variation,
         bool initially_ap)
    : params_(params), ap_(initially_ap) {
  // Resistance scales with barrier thickness (exponentially, linearized for
  // small deltas) and inversely with junction area.
  const double r_scale = 1.0 + 3.0 * variation.mtj_dim_delta;
  r_p_eff_ = params.r_p * r_scale;
  r_ap_eff_ = params.r_p * (1.0 + params.tmr) * r_scale;
  // Critical current scales with area; switching time with thermal
  // stability (weak dependence, linearized).
  i_c_eff_ = params.i_c * (1.0 - 2.0 * variation.mtj_dim_delta);
  t_switch_eff_ = params.t_switch * (1.0 + variation.mtj_dim_delta);
}

double Mtj::critical_current(bool to_ap) const {
  // P->AP is the hard direction.
  return to_ap ? i_c_eff_ * (1.0 + params_.asymmetry)
               : i_c_eff_ * (1.0 - params_.asymmetry * 0.25);
}

bool Mtj::apply_pulse(double current, double duration) {
  const bool to_ap = current > 0;
  const double magnitude = std::abs(current);
  if (ap_ == to_ap) return true;  // already in target state
  const double ic = critical_current(to_ap);
  if (magnitude < ic) return false;  // sub-critical: no switching
  // Overdrive shortens the switching time ~ 1 / (I/Ic - small offset).
  const double t_needed = t_switch_eff_ / (magnitude / ic);
  if (duration < t_needed) return false;
  ap_ = to_ap;
  return true;
}

}  // namespace ril::device
