// Circuit-level model of the proposed 2-input MRAM-based LUT (Fig. 4).
//
// Four complementary STT-MTJ cell pairs hold the truth table (addressed by
// inputs A, B); a fifth pair (MTJ_SE) holds the Scan-Enable obfuscation
// key. Reads bias a voltage divider across the complementary pair and sense
// the midpoint against VDD/2 -- the complementary arrangement gives a wide
// read margin and, crucially for P-SCA, a read path whose series resistance
// (R_P + R_AP) is identical whether the stored bit is 0 or 1.
//
// Write: one bidirectional pulse through the series pair programs main and
// complement to opposite states. Read pulses are shorter than the STT
// switching time, so they cannot disturb the cell even though the read
// current is near I_c.
#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "device/mtj.hpp"

namespace ril::device {

struct ReadSample {
  bool value = false;        ///< sensed output
  bool error = false;        ///< sensed != stored
  double sense_voltage = 0;  ///< divider midpoint [V]
  double margin = 0;         ///< |midpoint - v_read/2| [V]
  double current = 0;        ///< divider current [A]
  double power = 0;          ///< read power [W]
  double energy = 0;         ///< read energy [J]
  bool disturbed = false;    ///< read pulse flipped the cell (should never)
};

struct WriteSample {
  bool success = false;
  double current = 0;
  double energy = 0;
};

class MramLut2 {
 public:
  /// Samples per-MTJ process variation from `rng`.
  MramLut2(const MtjParams& mtj, const CmosParams& cmos,
           const VariationSpec& variation, std::mt19937_64& rng);

  /// Writes truth-table cell `minterm` (A + 2B) to `value`.
  WriteSample write_cell(std::size_t minterm, bool value);
  /// Programs the whole 4-bit function mask; returns total write energy.
  double configure(std::uint8_t mask);
  /// Writes the Scan-Enable key cell (via KWE).
  WriteSample write_se(bool value);

  /// Raw cell read (select tree picks the pair addressed by A, B).
  ReadSample read_cell(bool a, bool b);
  /// Full LUT read including the SE output stage: when `scan_enable` is
  /// asserted and MTJ_SE holds 1, OUT is the inverted cell value.
  ReadSample read_output(bool a, bool b, bool scan_enable);

  /// Standby power of the (non-volatile) LUT [W].
  double standby_power() const;
  /// Standby energy over a window [J].
  double standby_energy(double window_seconds) const;

  std::uint8_t stored_mask() const;
  bool stored_se() const;

  /// Sampled effective resistances of a cell's main MTJ (for PV reporting).
  double cell_r_p(std::size_t minterm) const;
  double cell_r_ap(std::size_t minterm) const;

 private:
  struct CellPair {
    Mtj main;
    Mtj complement;
    bool stored = false;
  };

  WriteSample write_pair(CellPair& pair, bool value);
  ReadSample read_pair(CellPair& pair);

  MtjParams mtj_params_;
  CmosParams cmos_;
  double r_on_eff_;
  double sense_offset_;
  /// cells_[0..3] = truth-table minterms, cells_[4] = MTJ_SE.
  std::vector<CellPair> cells_;
};

}  // namespace ril::device
