// Reference model of a conventional SRAM-based 2-input LUT.
//
// Used for the paper's comparisons: volatile storage (standby leakage orders
// of magnitude above the MRAM LUT) and an asymmetric read path -- a 6T cell
// read discharges the precharged bitline only when the stored value is 0,
// so read energy depends on the data. That data-dependence is exactly what
// the power side-channel attack exploits (and what the complementary MRAM
// divider removes).
#pragma once

#include <cstdint>
#include <random>

#include "device/params.hpp"

namespace ril::device {

struct SramReadSample {
  bool value = false;
  double energy = 0;
  double power = 0;
};

class SramLut2 {
 public:
  SramLut2(const CmosParams& cmos, const VariationSpec& variation,
           std::mt19937_64& rng);

  void configure(std::uint8_t mask) { mask_ = mask & 0xF; }
  std::uint8_t stored_mask() const { return mask_; }

  SramReadSample read_output(bool a, bool b);
  double write_energy() const { return write_energy_; }
  double standby_power() const { return standby_power_; }
  double standby_energy(double window_seconds) const {
    return standby_power_ * window_seconds;
  }

 private:
  std::uint8_t mask_ = 0;
  double read_energy_one_;   ///< bitline stays precharged
  double read_energy_zero_;  ///< bitline discharge (costlier)
  double write_energy_;
  double standby_power_;
  double t_read_;
};

}  // namespace ril::device
