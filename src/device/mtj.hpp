// STT-MTJ compact device model.
//
// Two ferromagnetic layers separated by an MgO barrier; the free layer's
// orientation encodes the bit: Parallel (P, low resistance) vs Anti-Parallel
// (AP, high resistance). Spin-transfer-torque switching happens when the
// applied charge current exceeds the (direction-dependent) critical current
// for at least the switching time.
#pragma once

#include "device/params.hpp"

namespace ril::device {

class Mtj {
 public:
  Mtj(const MtjParams& params, const ProcessVariation& variation,
      bool initially_ap = false);

  bool is_ap() const { return ap_; }
  /// Instantaneous resistance [ohm] for the current state.
  double resistance() const { return ap_ ? r_ap_eff_ : r_p_eff_; }
  double r_p_effective() const { return r_p_eff_; }
  double r_ap_effective() const { return r_ap_eff_; }
  /// Direction-dependent effective critical current [A].
  double critical_current(bool to_ap) const;

  /// Applies a write pulse: positive current drives toward AP, negative
  /// toward P. Returns true if the final state equals `to_ap`-implied
  /// target (i.e. the write succeeded or was already in target state).
  bool apply_pulse(double current, double duration);

  /// Forces a state (test/bring-up helper, not a physical operation).
  void force_state(bool ap) { ap_ = ap; }

 private:
  MtjParams params_;
  double r_p_eff_;
  double r_ap_eff_;
  double i_c_eff_;
  double t_switch_eff_;
  bool ap_;
};

}  // namespace ril::device
