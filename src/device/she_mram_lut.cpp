#include "device/she_mram_lut.hpp"

namespace ril::device {

SheMramLut2::SheMramLut2(const MtjParams& mtj, const CmosParams& cmos,
                         const SheParams& she,
                         const VariationSpec& variation,
                         std::mt19937_64& rng)
    : base_([&] {
        // The underlying storage/read fabric is identical; give the base
        // cell the SHE write drive so its success checks use it.
        MtjParams she_mtj = mtj;
        // SHE switching current threshold (the charge current through the
        // strip needed for the spin current to flip the free layer).
        she_mtj.i_c = she.i_write * 0.7;
        she_mtj.t_switch = she.t_write;
        CmosParams she_cmos = cmos;
        she_cmos.i_write = she.i_write;
        she_cmos.t_write = she.t_write;
        return MramLut2(she_mtj, she_cmos, variation, rng);
      }()),
      she_(she),
      cmos_(cmos) {}

SheWriteSample SheMramLut2::write_cell(std::size_t minterm, bool value) {
  const WriteSample inner = base_.write_cell(minterm, value);
  SheWriteSample sample;
  sample.success = inner.success;
  // Energy through the heavy-metal strip (plus one access transistor),
  // not through the MTJ stack: I^2 * (R_she + R_on) * t.
  sample.energy = she_.i_write * she_.i_write *
                  (she_.r_she + cmos_.r_on) * she_.t_write;
  return sample;
}

double SheMramLut2::configure(std::uint8_t mask) {
  double energy = 0;
  for (std::size_t m = 0; m < 4; ++m) {
    energy += write_cell(m, (mask >> m) & 1).energy;
  }
  return energy;
}

}  // namespace ril::device
