#include "device/params.hpp"

namespace ril::device {

ProcessVariation sample_variation(const VariationSpec& spec,
                                  const CmosParams& cmos,
                                  std::mt19937_64& rng) {
  std::normal_distribution<double> mtj(0.0, spec.mtj_dim_sigma);
  std::normal_distribution<double> vth(0.0, spec.vth_sigma);
  std::normal_distribution<double> wl(0.0, spec.wl_sigma);
  std::normal_distribution<double> offset(0.0, cmos.sense_offset_sigma);
  ProcessVariation v;
  v.mtj_dim_delta = mtj(rng);
  v.vth_delta = vth(rng);
  v.wl_delta = wl(rng);
  v.sense_offset = offset(rng);
  return v;
}

}  // namespace ril::device
