#include "device/sram_lut.hpp"

namespace ril::device {

SramLut2::SramLut2(const CmosParams& cmos, const VariationSpec& variation,
                   std::mt19937_64& rng) {
  const ProcessVariation v = sample_variation(variation, cmos, rng);
  // 45nm-class numbers: the 6T array + select tree reads cheaper than the
  // resistive divider, but the value-dependent bitline discharge creates a
  // ~35% read-energy asymmetry; leakage dominates standby.
  const double corner = 1.0 + 0.8 * v.vth_delta;
  read_energy_one_ = 6.2e-15 * corner;
  read_energy_zero_ = 9.6e-15 * corner;
  write_energy_ = 2.6e-15 * corner;
  // Four 6T cells + periphery leak ~1.2 uW at this corner (volatile cells
  // cannot be power-gated without losing the key).
  standby_power_ = 1.2e-6 * (1.0 - 2.0 * v.vth_delta);
  t_read_ = cmos.t_read;
}

SramReadSample SramLut2::read_output(bool a, bool b) {
  const std::size_t minterm = (a ? 1 : 0) + (b ? 2 : 0);
  SramReadSample sample;
  sample.value = (mask_ >> minterm) & 1;
  sample.energy = sample.value ? read_energy_one_ : read_energy_zero_;
  sample.power = sample.energy / t_read_;
  return sample;
}

}  // namespace ril::device
