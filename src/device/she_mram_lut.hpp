// SHE-MRAM LUT variant (Section IV-E: "SHE-MRAM cells have attracted
// considerable attention as an alternative for the conventional
// STT-MRAMs").
//
// A Spin-Hall-Effect cell is a three-terminal device: write current flows
// through a low-resistance heavy-metal strip *under* the MTJ instead of
// through the tunnel barrier. Consequences modelled here:
//   * write path resistance ~ the SHE strip (hundreds of ohms), so write
//     energy drops well below the STT cell's at the same pulse;
//   * the read path is unchanged (same complementary divider), so the
//     P-SCA symmetry and wide margin carry over;
//   * decoupled read/write paths remove read disturb by construction;
//   * cost: one extra access transistor per cell (write word line).
#pragma once

#include "device/mram_lut.hpp"

namespace ril::device {

struct SheParams {
  double r_she = 450.0;     ///< heavy-metal strip resistance [ohm]
  double i_write = 30e-6;   ///< SHE switching current [A] (lower than STT)
  double t_write = 1.2e-9;  ///< faster switching [s]
};

struct SheWriteSample {
  bool success = false;
  double energy = 0;
};

/// Thin wrapper: same read behaviour as MramLut2, cheaper writes.
class SheMramLut2 {
 public:
  SheMramLut2(const MtjParams& mtj, const CmosParams& cmos,
              const SheParams& she, const VariationSpec& variation,
              std::mt19937_64& rng);

  SheWriteSample write_cell(std::size_t minterm, bool value);
  double configure(std::uint8_t mask);
  ReadSample read_cell(bool a, bool b) { return base_.read_cell(a, b); }
  double standby_power() const { return base_.standby_power(); }
  std::uint8_t stored_mask() const { return base_.stored_mask(); }

  /// Transistor count per cell: STT pair needs 8, SHE pair needs 10 (two
  /// extra write-word-line devices), still fabricated above the CMOS.
  static constexpr int kTransistorsPerCellPair = 10;

 private:
  MramLut2 base_;
  SheParams she_;
  CmosParams cmos_;
};

}  // namespace ril::device
