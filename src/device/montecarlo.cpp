#include "device/montecarlo.hpp"

#include <algorithm>
#include <cmath>

namespace ril::device {

McSummary run_monte_carlo(const McOptions& options) {
  std::mt19937_64 rng(options.seed);
  McSummary summary;
  summary.instances = options.instances;
  summary.samples.reserve(options.instances);

  for (std::size_t i = 0; i < options.instances; ++i) {
    MramLut2 lut(options.mtj, options.cmos, options.variation, rng);
    McInstanceSample sample;
    sample.min_margin = 1e9;

    // Configure the function (write phase).
    for (std::size_t m = 0; m < 4; ++m) {
      const WriteSample w = lut.write_cell(m, (options.mask >> m) & 1);
      if (!w.success) sample.write_error = true;
    }

    // Read all 4 minterms; classify by stored value.
    std::size_t n0 = 0;
    std::size_t n1 = 0;
    for (std::size_t m = 0; m < 4; ++m) {
      const bool a = m & 1;
      const bool b = (m >> 1) & 1;
      const ReadSample r = lut.read_cell(a, b);
      const bool stored = (options.mask >> m) & 1;
      if (r.error) sample.read_error = true;
      if (r.disturbed) sample.disturb = true;
      sample.min_margin = std::min(sample.min_margin, r.margin);
      if (stored) {
        sample.read_current_1 += r.current;
        sample.read_power_1 += r.power;
        ++n1;
      } else {
        sample.read_current_0 += r.current;
        sample.read_power_0 += r.power;
        ++n0;
      }
    }
    if (n0) {
      sample.read_current_0 /= n0;
      sample.read_power_0 /= n0;
    }
    if (n1) {
      sample.read_current_1 /= n1;
      sample.read_power_1 /= n1;
    }

    // Sampled device resistances (cell 0's main MTJ is representative; every
    // cell pair holds one P and one AP device).
    sample.r_p = lut.cell_r_p(0);
    sample.r_ap = lut.cell_r_ap(0);

    summary.samples.push_back(sample);
    summary.read_errors += sample.read_error;
    summary.write_errors += sample.write_error;
    summary.disturbs += sample.disturb;
    summary.mean_read_power_0 += sample.read_power_0;
    summary.mean_read_power_1 += sample.read_power_1;
    summary.mean_read_current +=
        (sample.read_current_0 + sample.read_current_1) / 2.0;
    summary.mean_r_p += sample.r_p;
    summary.mean_r_ap += sample.r_ap;
  }
  const double n = static_cast<double>(options.instances);
  summary.mean_read_power_0 /= n;
  summary.mean_read_power_1 /= n;
  summary.mean_read_current /= n;
  summary.mean_r_p /= n;
  summary.mean_r_ap /= n;
  const double mean_power =
      (summary.mean_read_power_0 + summary.mean_read_power_1) / 2.0;
  summary.power_asymmetry =
      mean_power == 0
          ? 0
          : std::abs(summary.mean_read_power_1 - summary.mean_read_power_0) /
                mean_power;
  return summary;
}

Histogram histogram(const std::vector<double>& values, std::size_t bins) {
  Histogram h;
  h.bins.assign(bins, 0);
  if (values.empty() || bins == 0) return h;
  h.lo = *std::min_element(values.begin(), values.end());
  h.hi = *std::max_element(values.begin(), values.end());
  const double span = h.hi - h.lo;
  for (double v : values) {
    std::size_t bin =
        span <= 0 ? 0
                  : static_cast<std::size_t>((v - h.lo) / span * bins);
    if (bin >= bins) bin = bins - 1;
    h.bins[bin] += 1;
  }
  return h;
}

}  // namespace ril::device
