// Monte Carlo process-variation analysis of the MRAM LUT (Fig. 6 / Sec IV-D).
#pragma once

#include <cstdint>
#include <vector>

#include "device/mram_lut.hpp"

namespace ril::device {

struct McInstanceSample {
  double read_current_0 = 0;  ///< reading a stored 0 [A]
  double read_current_1 = 0;  ///< reading a stored 1 [A]
  double read_power_0 = 0;    ///< [W]
  double read_power_1 = 0;    ///< [W]
  double r_p = 0;             ///< sampled parallel resistance [ohm]
  double r_ap = 0;            ///< sampled anti-parallel resistance [ohm]
  double min_margin = 0;      ///< worst-case sense margin [V]
  bool read_error = false;
  bool write_error = false;
  bool disturb = false;
};

struct McSummary {
  std::vector<McInstanceSample> samples;
  std::size_t instances = 0;
  std::size_t read_errors = 0;
  std::size_t write_errors = 0;
  std::size_t disturbs = 0;
  double mean_read_power_0 = 0;
  double mean_read_power_1 = 0;
  double mean_read_current = 0;
  double mean_r_p = 0;
  double mean_r_ap = 0;
  /// Relative read-power gap |P1 - P0| / mean -- the P-SCA observable.
  double power_asymmetry = 0;
};

struct McOptions {
  std::size_t instances = 100;
  std::uint8_t mask = 0b1000;  ///< AND gate, as in the paper's Fig. 6
  VariationSpec variation;
  MtjParams mtj;
  CmosParams cmos;
  std::uint64_t seed = 7;
};

McSummary run_monte_carlo(const McOptions& options);

/// Equal-width histogram helper for the Fig. 6 distributions.
struct Histogram {
  double lo = 0;
  double hi = 0;
  std::vector<std::size_t> bins;
};
Histogram histogram(const std::vector<double>& values, std::size_t bins);

}  // namespace ril::device
