// Gate-level cryptographic cores standing in for the CEP benchmark IPs.
//
// Each generator builds the real function (verified against software models
// in the test suite), producing netlists with the structure class of the
// corresponding CEP core: wide S-box logic (AES), adder/rotate chains
// (SHA-256, MD5), and LFSR unrollings (GPS C/A code).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"

namespace ril::benchgen {

/// The AES forward S-box.
const std::array<std::uint8_t, 256>& aes_sbox();

/// One full AES-128 round (SubBytes, ShiftRows, MixColumns, AddRoundKey)
/// over a 128-bit state input "st_*" and round key "rk_*"; outputs "out_*".
/// Bit i of byte j is st_{8*j+i}; bytes are column-major as in FIPS-197.
netlist::Netlist make_aes_round();

/// `rounds` chained AES-128 rounds over one 128-bit state ("st_*"), with an
/// independent 128-bit round-key input per round ("rk{r}_{byte}_{bit}").
/// This is the million-gate-class datapath host: ~7k gates per round after
/// structural hashing, so rounds≈140 crosses 1M gates. rounds <= 512.
netlist::Netlist make_aes_deep(std::size_t rounds);

/// One AES column slice (4 S-boxes + MixColumn + AddRoundKey over 32 bits):
/// the scaled-down AES host used when a full round is too large for short
/// bench timeouts. Inputs "st0".."st3", "rk0".."rk3"; outputs "out0..3".
netlist::Netlist make_aes_column();

/// `rounds` rounds of the SHA-256 compression function over state "h0".."h7"
/// (32-bit words, inputs h{i}_{bit}) and message words "w0".."w{rounds-1}".
/// Outputs the updated working variables "a".."h". rounds <= 16.
netlist::Netlist make_sha256_rounds(std::size_t rounds);

/// `steps` steps of MD5 round 1 (F function) over state "a","b","c","d" and
/// message words "m0".."m{steps-1}". steps <= 16.
netlist::Netlist make_md5_steps(std::size_t steps);

/// GPS C/A coarse-acquisition code generator, unrolled for `chips` chips.
/// Inputs: initial LFSR states "g1_0..9", "g2_0..9". Outputs: "chip_*".
/// Tap selection fixed to PRN-1 (taps 2 and 6).
netlist::Netlist make_gps_ca(std::size_t chips);

// ---- software reference models (used by tests) ---------------------------

/// One AES-128 round on a 16-byte column-major state.
std::array<std::uint8_t, 16> aes_round_reference(
    const std::array<std::uint8_t, 16>& state,
    const std::array<std::uint8_t, 16>& round_key);

/// SHA-256 compression rounds on (a..h) with the real K constants.
std::array<std::uint32_t, 8> sha256_rounds_reference(
    const std::array<std::uint32_t, 8>& state,
    const std::uint32_t* w, std::size_t rounds);

/// MD5 round-1 steps.
std::array<std::uint32_t, 4> md5_steps_reference(
    const std::array<std::uint32_t, 4>& state, const std::uint32_t* m,
    std::size_t steps);

/// GPS C/A chips from initial LFSR states (10 bits each, bit0 = stage 1).
std::vector<bool> gps_ca_reference(std::uint16_t g1, std::uint16_t g2,
                                   std::size_t chips);

}  // namespace ril::benchgen
