#include "benchgen/random_dag.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace ril::benchgen {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist generate_random_dag(const RandomDagParams& params) {
  if (params.num_inputs < 2 || params.num_gates < params.num_outputs) {
    throw std::invalid_argument("generate_random_dag: degenerate parameters");
  }
  std::mt19937_64 rng(params.seed);
  Netlist netlist(params.name);
  // Every gate below carries an explicit name, so hashing never merges
  // nodes here (profile gate counts stay exact); it only primes the table
  // so later unnamed additions (locking helpers, fabric growth) dedupe.
  netlist.set_structural_hashing(true);

  std::vector<NodeId> pool;
  pool.reserve(params.num_inputs + params.num_gates);
  for (std::size_t i = 0; i < params.num_inputs; ++i) {
    pool.push_back(netlist.add_input("G" + std::to_string(i)));
  }

  const GateType binary_types[] = {GateType::kAnd,  GateType::kNand,
                                   GateType::kOr,   GateType::kNor,
                                   GateType::kXor,  GateType::kXnor};
  // Weighted towards NAND/NOR like technology-mapped ISCAS netlists.
  const double binary_weights[] = {0.18, 0.30, 0.14, 0.22, 0.08, 0.08};
  std::discrete_distribution<int> type_dist(std::begin(binary_weights),
                                            std::end(binary_weights));
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  auto pick_fanin = [&](std::size_t except_of = SIZE_MAX) -> NodeId {
    const std::size_t n = pool.size();
    std::size_t idx;
    if (unit(rng) < params.global_fanin_prob) {
      idx = static_cast<std::size_t>(rng() % n);
    } else {
      const std::size_t window = std::max<std::size_t>(
          4, static_cast<std::size_t>(params.window_fraction * n));
      const std::size_t lo = n > window ? n - window : 0;
      idx = lo + static_cast<std::size_t>(rng() % (n - lo));
    }
    if (idx == except_of) idx = (idx + 1) % n;
    return pool[idx];
  };

  // Guarantee every input is consumed: first layer pairs inputs up.
  for (std::size_t i = 0; i + 1 < params.num_inputs && pool.size() <
       params.num_inputs + params.num_gates; i += 2) {
    const GateType type = binary_types[type_dist(rng)];
    pool.push_back(netlist.add_gate(
        type, {pool[i], pool[i + 1]},
        "L0_" + std::to_string(i / 2)));
  }
  if (params.num_inputs % 2 == 1) {
    pool.push_back(netlist.add_gate(
        GateType::kNot, {pool[params.num_inputs - 1]}, "L0_last"));
  }

  std::size_t gate_index = pool.size() - params.num_inputs;
  while (gate_index < params.num_gates) {
    const bool unary = unit(rng) < params.unary_fraction;
    NodeId id;
    if (unary) {
      id = netlist.add_gate(GateType::kNot, {pick_fanin()},
                            "N" + std::to_string(gate_index));
    } else {
      const GateType type = binary_types[type_dist(rng)];
      const NodeId a = pick_fanin();
      NodeId b = pick_fanin();
      if (a == b) b = pool[(gate_index * 7) % pool.size()];
      if (a == b) b = pool[0];
      id = netlist.add_gate(type, {a, b}, "N" + std::to_string(gate_index));
    }
    pool.push_back(id);
    ++gate_index;
  }

  // Outputs: spread across the last half of the netlist so cones overlap.
  const std::size_t first_gate = params.num_inputs;
  const std::size_t span = pool.size() - first_gate;
  std::vector<NodeId> candidates(pool.begin() + first_gate, pool.end());
  std::shuffle(candidates.begin(), candidates.end(), rng);
  std::vector<NodeId> outs(candidates.begin(),
                           candidates.begin() +
                               std::min(params.num_outputs, span));
  // Always expose the very last gate so the deepest cone is observable.
  if (std::find(outs.begin(), outs.end(), pool.back()) == outs.end() &&
      !outs.empty()) {
    outs.back() = pool.back();
  }
  // Fold dangling sinks into the outputs so the whole netlist is live
  // (like real ISCAS hosts, which have no dead logic). Each uncovered sink
  // is XOR-folded into one of the declared outputs.
  {
    std::vector<bool> live(netlist.node_count(), false);
    std::vector<NodeId> stack(outs.begin(), outs.end());
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (live[id]) continue;
      live[id] = true;
      for (NodeId f : netlist.node(id).fanins) stack.push_back(f);
    }
    const auto fanouts = netlist.fanouts();
    std::size_t fold = 0;
    const NodeId original_count = static_cast<NodeId>(netlist.node_count());
    for (NodeId id = first_gate; id < original_count; ++id) {
      if (live[id] || !fanouts[id].empty()) continue;
      const std::size_t slot = fold++ % outs.size();
      outs[slot] = netlist.add_gate(GateType::kXor, {outs[slot], id},
                                    "fold_" + std::to_string(fold));
      // Mark the newly covered cone live.
      std::vector<NodeId> work = {id};
      while (!work.empty()) {
        const NodeId w = work.back();
        work.pop_back();
        if (live[w]) continue;
        live[w] = true;
        for (NodeId f : netlist.node(w).fanins) work.push_back(f);
      }
    }
  }
  for (NodeId id : outs) netlist.mark_output(id);
  return netlist;
}

Netlist generate_random_sequential(const RandomSequentialParams& params) {
  if (params.num_dffs == 0) {
    throw std::invalid_argument("generate_random_sequential: need DFFs");
  }
  // Build the combinational cloud with extra primary inputs standing in
  // for the DFF outputs, then rewrite those inputs into real DFFs.
  RandomDagParams cloud_params = params.combinational;
  cloud_params.num_inputs += params.num_dffs;
  Netlist nl = generate_random_dag(cloud_params);
  nl.set_name(params.combinational.name + "_seq");

  std::mt19937_64 rng(params.combinational.seed ^ 0x5e91u);
  // The last num_dffs primary inputs become state.
  const auto inputs = nl.inputs();
  std::vector<NodeId> state_inputs(
      inputs.end() - static_cast<std::ptrdiff_t>(params.num_dffs),
      inputs.end());

  // Candidate next-state wires: any gate output.
  std::vector<NodeId> wires;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (netlist::is_logic_op(nl.node(id).type)) wires.push_back(id);
  }
  for (std::size_t i = 0; i < params.num_dffs; ++i) {
    const NodeId next = wires[rng() % wires.size()];
    const NodeId dff =
        nl.add_gate(GateType::kDff, {next}, "state_" + std::to_string(i));
    // Swing all consumers of the pseudo-input over to the DFF output.
    nl.replace_uses(state_inputs[i], dff);
  }
  // The pseudo-inputs are now unused; drop them from the interface.
  nl.sweep_dead(/*keep_all_inputs=*/false);
  return nl;
}

}  // namespace ril::benchgen
