#include "benchgen/suite.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "benchgen/crypto.hpp"
#include "benchgen/fabric.hpp"
#include "benchgen/random_dag.hpp"

namespace ril::benchgen {

using netlist::Netlist;

namespace {

struct Profile {
  std::size_t inputs;
  std::size_t outputs;
  std::size_t gates;
  std::uint64_t seed;
};

Netlist from_profile(const std::string& name, const Profile& profile,
                     double scale) {
  RandomDagParams params;
  params.name = name;
  const auto scaled = [&](std::size_t v) {
    return std::max<std::size_t>(8, static_cast<std::size_t>(
                                        std::llround(v * scale)));
  };
  params.num_inputs = std::max<std::size_t>(8, profile.inputs);
  params.num_outputs =
      std::min(scaled(profile.outputs), scaled(profile.gates) / 2);
  params.num_gates = scaled(profile.gates);
  params.seed = profile.seed;
  return generate_random_dag(params);
}

std::size_t scaled_rounds(std::size_t nominal, double scale) {
  return std::clamp<std::size_t>(
      static_cast<std::size_t>(std::llround(nominal * scale)), 1, 16);
}

}  // namespace

std::vector<SuiteEntry> suite_entries() {
  return {
      {"c7552", "ISCAS-85"},   {"b15", "ISCAS-89/ITC-99"},
      {"s35932", "ISCAS-89/ITC-99"}, {"s38584", "ISCAS-89/ITC-99"},
      {"b20", "ISCAS-89/ITC-99"},    {"aes", "CEP"},
      {"sha256", "CEP"},       {"md5", "CEP"},
      {"gps", "CEP"},
  };
}

Netlist make_benchmark(const std::string& name, double scale) {
  if (scale <= 0.0 || scale > 16.0) {
    throw std::invalid_argument("make_benchmark: scale out of range");
  }
  // Published profiles: PI (incl. pseudo-PI from cut DFFs), PO, gate count.
  if (name == "c7552") {
    return from_profile(name, {207, 108, 3512, 0xc7552}, scale);
  }
  if (name == "b15") {
    return from_profile(name, {36 + 449, 70 + 449, 8922, 0xb15}, scale);
  }
  if (name == "s35932") {
    return from_profile(name, {35 + 1728, 320 + 1728, 16065, 0x35932}, scale);
  }
  if (name == "s38584") {
    return from_profile(name, {38 + 1426, 304 + 1426, 19253, 0x38584}, scale);
  }
  if (name == "b20") {
    return from_profile(name, {32 + 490, 22 + 490, 20226, 0xb20}, scale);
  }
  if (name == "aes") {
    // Below half scale, use the 32-bit column slice (4 real S-boxes);
    // a full 16-S-box round is ~30k gates.
    return scale < 0.5 ? make_aes_column() : make_aes_round();
  }
  if (name == "sha256") {
    return make_sha256_rounds(scaled_rounds(8, scale));
  }
  if (name == "md5") {
    return make_md5_steps(scaled_rounds(8, scale));
  }
  if (name == "gps") {
    const std::size_t chips = std::max<std::size_t>(
        16, static_cast<std::size_t>(std::llround(256 * scale)));
    return make_gps_ca(chips);
  }
  // Million-gate-class hosts (not part of the paper's tables; used by the
  // scaling benchmarks and the large-host CI smoke). scale 1.0 targets
  // ~1M gates for both.
  if (name == "aes-deep") {
    return make_aes_deep(std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(140 * scale)), 1, 512));
  }
  if (name == "lut-fabric") {
    LutFabricParams params;
    params.name = "lut_fabric";
    // Cells = width * depth; scale the area, keep a 4:1 aspect ratio.
    const double cells = 1048576.0 * scale;
    params.width = std::max<std::size_t>(
        16, static_cast<std::size_t>(std::llround(std::sqrt(cells * 4.0))));
    params.depth = std::max<std::size_t>(
        4, static_cast<std::size_t>(std::llround(cells / params.width)));
    params.inputs = 64;
    params.outputs = std::min<std::size_t>(64, params.width);
    params.seed = 0xfab41c;
    return make_lut_fabric(params);
  }
  throw std::invalid_argument("make_benchmark: unknown benchmark '" + name +
                              "'");
}

}  // namespace ril::benchgen
