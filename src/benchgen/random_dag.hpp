// Seeded random combinational DAG generator with ISCAS-like topology.
//
// The generator produces reconvergent, multi-level netlists: each new gate
// draws fanins mostly from a sliding recency window (giving depth) and with
// some probability from anywhere earlier (giving reconvergent fan-out),
// matching the qualitative structure of the ISCAS/ITC hosts the paper locks.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace ril::benchgen {

struct RandomDagParams {
  std::string name = "random";
  std::size_t num_inputs = 32;
  std::size_t num_outputs = 16;
  std::size_t num_gates = 500;
  /// Probability a fanin is drawn globally instead of from the recency
  /// window (reconvergence knob).
  double global_fanin_prob = 0.25;
  /// Recency window size as a fraction of current node count.
  double window_fraction = 0.1;
  /// Fraction of gates that are inverters/buffers.
  double unary_fraction = 0.10;
  std::uint64_t seed = 1;
};

/// Generates a combinational netlist. Every primary input feeds at least one
/// gate and every declared output is driven.
netlist::Netlist generate_random_dag(const RandomDagParams& params);

struct RandomSequentialParams {
  RandomDagParams combinational;
  /// Number of DFFs; state feeds back into the combinational cloud and the
  /// next-state functions tap random internal wires.
  std::size_t num_dffs = 16;
};

/// Generates a sequential netlist (Moore-ish): a random combinational cloud
/// whose inputs include the DFF outputs, with next-state functions tapped
/// from random cloud wires. Suitable for scan-chain insertion and
/// combinational_core() extraction.
netlist::Netlist generate_random_sequential(
    const RandomSequentialParams& params);

}  // namespace ril::benchgen
