#include "benchgen/arithmetic.hpp"

#include <stdexcept>

#include "netlist/builder.hpp"

namespace ril::benchgen {

using netlist::Builder;
using netlist::Netlist;

Netlist make_ripple_adder(std::size_t width) {
  if (width == 0) throw std::invalid_argument("width must be > 0");
  Builder b("rca" + std::to_string(width));
  const auto a = b.input_word("a", width);
  const auto bb = b.input_word("b", width);
  Builder::Bit carry = b.input("cin");
  Builder::Word sum;
  for (std::size_t i = 0; i < width; ++i) {
    const auto axb = b.xor_(a[i], bb[i]);
    sum.push_back(b.xor_(axb, carry));
    carry = b.or_(b.and_(a[i], bb[i]), b.and_(axb, carry));
  }
  b.output_word(sum, "sum");
  b.output(carry, "cout");
  return b.take();
}

Netlist make_cla_adder(std::size_t width) {
  if (width == 0) throw std::invalid_argument("width must be > 0");
  Builder b("cla" + std::to_string(width));
  const auto a = b.input_word("a", width);
  const auto bb = b.input_word("b", width);
  Builder::Bit cin = b.input("cin");

  Builder::Word sum(width);
  Builder::Bit carry = cin;
  for (std::size_t block = 0; block < width; block += 4) {
    const std::size_t hi = std::min(block + 4, width);
    // Generate/propagate within the block, carries computed lookahead-style.
    std::vector<Builder::Bit> g, p;
    for (std::size_t i = block; i < hi; ++i) {
      g.push_back(b.and_(a[i], bb[i]));
      p.push_back(b.xor_(a[i], bb[i]));
    }
    std::vector<Builder::Bit> c;  // carry into bit (i - block)
    c.push_back(carry);
    for (std::size_t i = 0; i + block < hi; ++i) {
      // c[i+1] = g[i] | p[i] & c[i]
      c.push_back(b.or_(g[i], b.and_(p[i], c[i])));
    }
    for (std::size_t i = block; i < hi; ++i) {
      sum[i] = b.xor_(p[i - block], c[i - block]);
    }
    carry = c.back();
  }
  b.output_word(sum, "sum");
  b.output(carry, "cout");
  return b.take();
}

Netlist make_array_multiplier(std::size_t width) {
  if (width == 0) throw std::invalid_argument("width must be > 0");
  Builder b("mul" + std::to_string(width));
  const auto a = b.input_word("a", width);
  const auto bb = b.input_word("b", width);

  // Partial products, summed row by row with ripple adders.
  Builder::Word acc(2 * width, b.zero());
  for (std::size_t i = 0; i < width; ++i) {
    Builder::Word row(2 * width, b.zero());
    for (std::size_t j = 0; j < width; ++j) {
      row[i + j] = b.and_(a[j], bb[i]);
    }
    acc = b.add_w(acc, row);
  }
  b.output_word(acc, "p");
  return b.take();
}

Netlist make_alu(std::size_t width) {
  if (width == 0) throw std::invalid_argument("width must be > 0");
  Builder b("alu" + std::to_string(width));
  const auto a = b.input_word("a", width);
  const auto bb = b.input_word("b", width);
  const auto op0 = b.input("op_0");
  const auto op1 = b.input("op_1");

  const auto add = b.add_w(a, bb);
  const auto andw = b.and_w(a, bb);
  const auto orw = b.or_w(a, bb);
  const auto xorw = b.xor_w(a, bb);
  // op1 op0: 00 add, 01 and, 10 or, 11 xor
  const auto lo = b.mux_w(op0, add, andw);
  const auto hi = b.mux_w(op0, orw, xorw);
  const auto y = b.mux_w(op1, lo, hi);
  b.output_word(y, "y");
  return b.take();
}

Netlist make_comparator(std::size_t width) {
  if (width == 0) throw std::invalid_argument("width must be > 0");
  Builder b("cmp" + std::to_string(width));
  const auto a = b.input_word("a", width);
  const auto bb = b.input_word("b", width);
  // MSB-first priority chain.
  Builder::Bit lt = b.zero();
  Builder::Bit gt = b.zero();
  for (std::size_t i = width; i-- > 0;) {
    const auto eq_above = b.nor_(lt, gt);
    const auto ai_gt = b.and_(a[i], b.not_(bb[i]));
    const auto ai_lt = b.and_(b.not_(a[i]), bb[i]);
    gt = b.or_(gt, b.and_(eq_above, ai_gt));
    lt = b.or_(lt, b.and_(eq_above, ai_lt));
  }
  b.output(lt, "lt");
  b.output(b.nor_(lt, gt), "eq");
  b.output(gt, "gt");
  return b.take();
}

Netlist make_parity_tree(std::size_t width) {
  if (width < 2) throw std::invalid_argument("width must be >= 2");
  Builder b("parity" + std::to_string(width));
  auto bits = b.input_word("x", width);
  while (bits.size() > 1) {
    Builder::Word next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(b.xor_(bits[i], bits[i + 1]));
    }
    if (bits.size() % 2 == 1) next.push_back(bits.back());
    bits = next;
  }
  b.output(bits[0], "parity");
  return b.take();
}

}  // namespace ril::benchgen
