// Named benchmark suite: the hosts used in the paper's tables.
//
// ISCAS/ITC circuits (c7552, b15, s35932, s38584, b20) are produced by the
// seeded random-DAG generator with the published PI/PO/gate profiles (see
// DESIGN.md, substitution table); sequential profiles are generated directly
// as their combinational cores (DFF boundaries become pseudo-PI/PO, exactly
// what the SAT attack operates on). CEP-class circuits are real gate-level
// crypto cores. `scale` shrinks the gate budget of the synthetic profiles
// (and the round/chip counts of crypto cores) so the full experiment matrix
// can run under small timeouts; 1.0 reproduces paper-scale hosts.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::benchgen {

struct SuiteEntry {
  std::string name;
  std::string suite;  // "ISCAS-85", "ISCAS-89/ITC-99", "CEP"
};

/// All circuits used in Tables I and III.
std::vector<SuiteEntry> suite_entries();

/// Builds a named benchmark circuit (combinational). Throws on unknown name.
/// Valid names: c7552, b15, s35932, s38584, b20, aes, sha256, md5, gps,
/// plus the million-gate-class scaling hosts aes-deep and lut-fabric
/// (~1M gates at scale 1.0).
netlist::Netlist make_benchmark(const std::string& name, double scale = 1.0);

}  // namespace ril::benchgen
