#include "benchgen/fabric.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

namespace ril::benchgen {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist make_lut_fabric(const LutFabricParams& params) {
  if (params.width == 0 || params.depth == 0 || params.inputs < 2 ||
      params.outputs == 0) {
    throw std::invalid_argument("make_lut_fabric: degenerate parameters");
  }
  if (params.k < 2 || params.k > 6) {
    throw std::invalid_argument("make_lut_fabric: k must be 2..6");
  }
  if (params.outputs > params.width) {
    throw std::invalid_argument("make_lut_fabric: outputs > width");
  }
  if (params.inputs > params.width * params.k) {
    throw std::invalid_argument(
        "make_lut_fabric: layer 0 cannot consume every input (inputs > "
        "width * k)");
  }
  std::mt19937_64 rng(params.seed);
  Netlist nl(params.name);
  nl.set_structural_hashing(true);
  nl.reserve(params.inputs + params.width * params.depth + 1,
             params.width * params.depth * params.k);

  std::vector<NodeId> previous;
  previous.reserve(std::max(params.inputs, params.width));
  for (std::size_t i = 0; i < params.inputs; ++i) {
    previous.push_back(nl.add_input("in" + std::to_string(i)));
  }
  // All signals ever produced, for long-range feedthrough taps.
  std::vector<NodeId> all = previous;
  all.reserve(params.inputs + params.width * params.depth);

  const std::uint64_t rows = std::uint64_t{1} << params.k;
  const std::uint64_t full =
      rows >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rows) - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<NodeId> layer;
  std::vector<NodeId> fanins(params.k);
  for (std::size_t d = 0; d < params.depth; ++d) {
    layer.clear();
    for (std::size_t c = 0; c < params.width; ++c) {
      // Map this cell's column onto the previous layer, then route each
      // fanin either inside the local window or as a long-range tap.
      const std::size_t anchor = c * previous.size() / params.width;
      for (std::size_t j = 0; j < params.k; ++j) {
        if (d == 0 && c * params.k + j < params.inputs) {
          // Layer 0 consumes every primary input before routing randomly.
          fanins[j] = previous[c * params.k + j];
        } else if (unit(rng) < params.local_fraction) {
          const std::size_t lo =
              anchor > params.window ? anchor - params.window : 0;
          const std::size_t hi =
              std::min(previous.size() - 1, anchor + params.window);
          fanins[j] = previous[lo + rng() % (hi - lo + 1)];
        } else {
          fanins[j] = all[rng() % all.size()];
        }
      }
      // Non-constant mask so no cell collapses to a tie cell.
      std::uint64_t mask = rng() & full;
      if (mask == 0 || mask == full) mask = 0x6;  // XOR-ish fallback
      layer.push_back(
          nl.add_lut(std::span<const NodeId>(fanins.data(), params.k), mask));
    }
    all.insert(all.end(), layer.begin(), layer.end());
    previous = layer;
  }

  // Outputs: evenly spaced cells of the last layer. Structural hashing can
  // merge identical cells, so probe forward past already-chosen ids.
  std::vector<char> taken(nl.node_count(), 0);
  std::size_t named = 0;
  for (std::size_t o = 0; o < params.outputs && named < previous.size();
       ++o) {
    std::size_t idx = o * previous.size() / params.outputs;
    while (taken[previous[idx]]) idx = (idx + 1) % previous.size();
    const NodeId cell = previous[idx];
    taken[cell] = 1;
    nl.rename(cell, "out" + std::to_string(named++));
    nl.mark_output(cell);
  }
  return nl;
}

}  // namespace ril::benchgen
