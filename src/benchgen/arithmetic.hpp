// Structural arithmetic circuit generators (adders, multiplier, ALU, ...).
//
// These provide small, fully understood hosts for unit/property tests and
// for the quickstart example; the crypto generators provide the CEP-class
// hosts for the paper's tables.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace ril::benchgen {

/// width-bit ripple-carry adder: inputs a_*, b_*, cin; outputs sum_*, cout.
netlist::Netlist make_ripple_adder(std::size_t width);

/// width-bit carry-lookahead adder (block size 4).
netlist::Netlist make_cla_adder(std::size_t width);

/// width x width array multiplier: output is 2*width bits.
netlist::Netlist make_array_multiplier(std::size_t width);

/// width-bit two-operand ALU with a 2-bit opcode:
/// 00 -> ADD, 01 -> AND, 10 -> OR, 11 -> XOR. Outputs y_*.
netlist::Netlist make_alu(std::size_t width);

/// width-bit magnitude comparator: outputs lt, eq, gt.
netlist::Netlist make_comparator(std::size_t width);

/// width-input XOR parity tree: output parity.
netlist::Netlist make_parity_tree(std::size_t width);

}  // namespace ril::benchgen
