// eASIC-style LUT-fabric host generator (after the zero-trust eASIC flow
// of arXiv:2207.05413): a rectangular fabric of k-input LUT cells wired in
// layers, each cell reading from the previous layer through a local
// routing window with occasional long-range feedthroughs. The result is a
// pure kLut netlist whose size is width x depth cells -- the scalable
// million-gate host class for the IR and encoder benchmarks, structurally
// unlike the gate-level crypto datapaths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace ril::benchgen {

struct LutFabricParams {
  std::string name = "lut_fabric";
  /// LUT cells per layer.
  std::size_t width = 64;
  /// Number of layers; total cells = width * depth.
  std::size_t depth = 16;
  /// Primary inputs feeding layer 0.
  std::size_t inputs = 64;
  /// Primary outputs drawn from the last layer.
  std::size_t outputs = 64;
  /// LUT arity, 2..6.
  std::size_t k = 4;
  /// Fraction of fanins routed within the local window of the previous
  /// layer; the rest are long-range taps on any earlier signal.
  double local_fraction = 0.85;
  /// Local routing window, in cells, around the same column one layer up.
  std::size_t window = 8;
  std::uint64_t seed = 1;
};

/// Generates the fabric. Cells are unnamed (lazy auto-names materialize
/// only if the netlist is written out), masks are seeded-random and never
/// constant, and every primary input is consumed by layer 0. Throws on
/// degenerate parameters.
netlist::Netlist make_lut_fabric(const LutFabricParams& params);

}  // namespace ril::benchgen
