#include "benchgen/crypto.hpp"

#include <stdexcept>
#include <tuple>
#include <vector>

#include "netlist/builder.hpp"

namespace ril::benchgen {

using netlist::Builder;
using netlist::Netlist;

namespace {

constexpr std::array<std::uint8_t, 256> kAesSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::array<std::uint32_t, 16> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174};

constexpr std::array<std::uint32_t, 16> kMd5T = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821};

constexpr std::array<int, 4> kMd5Shift = {7, 12, 17, 22};

/// GF(2^8) doubling (xtime) as a bit rewiring + conditional 0x1b XOR.
Builder::Word xtime(Builder& b, const Builder::Word& in) {
  Builder::Word out(8);
  out[0] = in[7];
  out[1] = b.xor_(in[0], in[7]);
  out[2] = in[1];
  out[3] = b.xor_(in[2], in[7]);
  out[4] = b.xor_(in[3], in[7]);
  out[5] = in[4];
  out[6] = in[5];
  out[7] = in[6];
  return out;
}

std::uint8_t xtime_ref(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
std::uint32_t rotr32(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

/// One AES round (SubBytes, ShiftRows, MixColumns, AddRoundKey) over 16
/// byte words in column-major order. Returns the new state.
std::vector<Builder::Word> aes_round_words(
    Builder& b, const std::vector<Builder::Word>& state,
    const std::vector<Builder::Word>& rk) {
  // SubBytes.
  std::vector<Builder::Word> sub(16);
  for (std::size_t j = 0; j < 16; ++j) {
    sub[j] = b.sbox8(state[j], kAesSbox);
  }
  // ShiftRows: new[4c+r] = old[4*((c+r)%4)+r].
  std::vector<Builder::Word> shifted(16);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      shifted[4 * c + r] = sub[4 * ((c + r) % 4) + r];
    }
  }
  // MixColumns + AddRoundKey.
  std::vector<Builder::Word> next(16);
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& a0 = shifted[4 * c + 0];
    const auto& a1 = shifted[4 * c + 1];
    const auto& a2 = shifted[4 * c + 2];
    const auto& a3 = shifted[4 * c + 3];
    const auto x0 = xtime(b, a0);
    const auto x1 = xtime(b, a1);
    const auto x2 = xtime(b, a2);
    const auto x3 = xtime(b, a3);
    // out0 = 2*a0 + 3*a1 + a2 + a3, etc.
    const auto out0 =
        b.xor_w(b.xor_w(x0, b.xor_w(x1, a1)), b.xor_w(a2, a3));
    const auto out1 =
        b.xor_w(b.xor_w(a0, b.xor_w(x1, x2)), b.xor_w(a2, a3));
    const auto out2 =
        b.xor_w(b.xor_w(a0, a1), b.xor_w(x2, b.xor_w(x3, a3)));
    const auto out3 =
        b.xor_w(b.xor_w(x0, a0), b.xor_w(a1, b.xor_w(a2, x3)));
    const std::array<Builder::Word, 4> outs = {out0, out1, out2, out3};
    for (std::size_t r = 0; r < 4; ++r) {
      next[4 * c + r] = b.xor_w(outs[r], rk[4 * c + r]);
    }
  }
  return next;
}

}  // namespace

const std::array<std::uint8_t, 256>& aes_sbox() { return kAesSbox; }

Netlist make_aes_round() {
  Builder b("aes");
  // 16 bytes, column-major: byte index 4*col + row. Bit i of byte j is
  // input st_{8j+i}.
  std::vector<Builder::Word> state(16);
  for (std::size_t j = 0; j < 16; ++j) {
    state[j] = b.input_word("st" + std::to_string(j), 8);
  }
  std::vector<Builder::Word> rk(16);
  for (std::size_t j = 0; j < 16; ++j) {
    rk[j] = b.input_word("rk" + std::to_string(j), 8);
  }
  const auto next = aes_round_words(b, state, rk);
  for (std::size_t j = 0; j < 16; ++j) {
    b.output_word(next[j], "out" + std::to_string(j));
  }
  return b.take();
}

Netlist make_aes_deep(std::size_t rounds) {
  if (rounds == 0 || rounds > 512) {
    throw std::invalid_argument("make_aes_deep: rounds must be 1..512");
  }
  Builder b("aes_deep");
  std::vector<Builder::Word> state(16);
  for (std::size_t j = 0; j < 16; ++j) {
    state[j] = b.input_word("st" + std::to_string(j), 8);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Builder::Word> rk(16);
    for (std::size_t j = 0; j < 16; ++j) {
      rk[j] = b.input_word("rk" + std::to_string(r) + "_" + std::to_string(j),
                           8);
    }
    state = aes_round_words(b, state, rk);
  }
  for (std::size_t j = 0; j < 16; ++j) {
    b.output_word(state[j], "out" + std::to_string(j));
  }
  return b.take();
}

Netlist make_aes_column() {
  Builder b("aes_col");
  std::vector<Builder::Word> state(4);
  std::vector<Builder::Word> rk(4);
  for (std::size_t j = 0; j < 4; ++j) {
    state[j] = b.input_word("st" + std::to_string(j), 8);
    rk[j] = b.input_word("rk" + std::to_string(j), 8);
  }
  std::vector<Builder::Word> sub(4);
  for (std::size_t j = 0; j < 4; ++j) sub[j] = b.sbox8(state[j], kAesSbox);
  const auto x0 = xtime(b, sub[0]);
  const auto x1 = xtime(b, sub[1]);
  const auto x2 = xtime(b, sub[2]);
  const auto x3 = xtime(b, sub[3]);
  const auto out0 =
      b.xor_w(b.xor_w(x0, b.xor_w(x1, sub[1])), b.xor_w(sub[2], sub[3]));
  const auto out1 =
      b.xor_w(b.xor_w(sub[0], b.xor_w(x1, x2)), b.xor_w(sub[2], sub[3]));
  const auto out2 =
      b.xor_w(b.xor_w(sub[0], sub[1]), b.xor_w(x2, b.xor_w(x3, sub[3])));
  const auto out3 =
      b.xor_w(b.xor_w(x0, sub[0]), b.xor_w(sub[1], b.xor_w(sub[2], x3)));
  const std::array<Builder::Word, 4> outs = {out0, out1, out2, out3};
  for (std::size_t j = 0; j < 4; ++j) {
    b.output_word(b.xor_w(outs[j], rk[j]), "out" + std::to_string(j));
  }
  return b.take();
}

Netlist make_sha256_rounds(std::size_t rounds) {
  if (rounds == 0 || rounds > 16) {
    throw std::invalid_argument("make_sha256_rounds: rounds must be 1..16");
  }
  Builder b("sha256");
  std::array<Builder::Word, 8> s;
  const char* names[8] = {"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"};
  for (std::size_t i = 0; i < 8; ++i) s[i] = b.input_word(names[i], 32);
  std::vector<Builder::Word> w(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    w[i] = b.input_word("w" + std::to_string(i), 32);
  }

  auto [a, bb, c, d, e, f, g, h] =
      std::tie(s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]);
  for (std::size_t i = 0; i < rounds; ++i) {
    const auto s1 = b.xor_w(b.xor_w(b.rotr_w(e, 6), b.rotr_w(e, 11)),
                            b.rotr_w(e, 25));
    const auto ch = b.xor_w(b.and_w(e, f), b.and_w(b.not_w(e), g));
    const auto k = b.constant(32, kSha256K[i]);
    auto temp1 = b.add_w(h, s1);
    temp1 = b.add_w(temp1, ch);
    temp1 = b.add_w(temp1, k);
    temp1 = b.add_w(temp1, w[i]);
    const auto s0 = b.xor_w(b.xor_w(b.rotr_w(a, 2), b.rotr_w(a, 13)),
                            b.rotr_w(a, 22));
    const auto maj = b.xor_w(b.xor_w(b.and_w(a, bb), b.and_w(a, c)),
                             b.and_w(bb, c));
    const auto temp2 = b.add_w(s0, maj);
    h = g;
    g = f;
    f = e;
    e = b.add_w(d, temp1);
    d = c;
    c = bb;
    bb = a;
    a = b.add_w(temp1, temp2);
  }
  const char* out_names[8] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  const std::array<Builder::Word, 8> finals = {a, bb, c, d, e, f, g, h};
  for (std::size_t i = 0; i < 8; ++i) {
    b.output_word(finals[i], out_names[i]);
  }
  return b.take();
}

Netlist make_md5_steps(std::size_t steps) {
  if (steps == 0 || steps > 16) {
    throw std::invalid_argument("make_md5_steps: steps must be 1..16");
  }
  Builder b("md5");
  auto a = b.input_word("a", 32);
  auto bb = b.input_word("b", 32);
  auto c = b.input_word("c", 32);
  auto d = b.input_word("d", 32);
  std::vector<Builder::Word> m(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    m[i] = b.input_word("m" + std::to_string(i), 32);
  }
  for (std::size_t i = 0; i < steps; ++i) {
    // F(b,c,d) = (b & c) | (~b & d)
    const auto f = b.or_w(b.and_w(bb, c), b.and_w(b.not_w(bb), d));
    auto sum = b.add_w(a, f);
    sum = b.add_w(sum, m[i]);
    sum = b.add_w(sum, b.constant(32, kMd5T[i]));
    const auto rotated = b.rotl_w(sum, kMd5Shift[i % 4]);
    const auto new_b = b.add_w(bb, rotated);
    a = d;
    d = c;
    c = bb;
    bb = new_b;
  }
  b.output_word(a, "out_a");
  b.output_word(bb, "out_b");
  b.output_word(c, "out_c");
  b.output_word(d, "out_d");
  return b.take();
}

Netlist make_gps_ca(std::size_t chips) {
  if (chips == 0) throw std::invalid_argument("make_gps_ca: chips must be > 0");
  Builder b("gps");
  auto g1 = b.input_word("g1", 10);  // bit i = stage i+1
  auto g2 = b.input_word("g2", 10);
  Builder::Word out;
  for (std::size_t t = 0; t < chips; ++t) {
    // PRN-1 taps: G2 stages 2 and 6.
    const auto g2_tap = b.xor_(g2[1], g2[5]);
    out.push_back(b.xor_(g1[9], g2_tap));
    // G1: x^10 + x^3 + 1 -> feedback = s3 ^ s10.
    const auto fb1 = b.xor_(g1[2], g1[9]);
    // G2: x^10+x^9+x^8+x^6+x^3+x^2+1 -> feedback = s2^s3^s6^s8^s9^s10.
    auto fb2 = b.xor_(g2[1], g2[2]);
    fb2 = b.xor_(fb2, g2[5]);
    fb2 = b.xor_(fb2, g2[7]);
    fb2 = b.xor_(fb2, g2[8]);
    fb2 = b.xor_(fb2, g2[9]);
    Builder::Word n1(10), n2(10);
    n1[0] = fb1;
    n2[0] = fb2;
    for (std::size_t i = 1; i < 10; ++i) {
      n1[i] = g1[i - 1];
      n2[i] = g2[i - 1];
    }
    g1 = n1;
    g2 = n2;
  }
  b.output_word(out, "chip");
  return b.take();
}

// ---- reference models -----------------------------------------------------

std::array<std::uint8_t, 16> aes_round_reference(
    const std::array<std::uint8_t, 16>& state,
    const std::array<std::uint8_t, 16>& round_key) {
  std::array<std::uint8_t, 16> sub{};
  for (std::size_t j = 0; j < 16; ++j) sub[j] = kAesSbox[state[j]];
  std::array<std::uint8_t, 16> shifted{};
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      shifted[4 * c + r] = sub[4 * ((c + r) % 4) + r];
    }
  }
  std::array<std::uint8_t, 16> out{};
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = shifted[4 * c + 0];
    const std::uint8_t a1 = shifted[4 * c + 1];
    const std::uint8_t a2 = shifted[4 * c + 2];
    const std::uint8_t a3 = shifted[4 * c + 3];
    out[4 * c + 0] = xtime_ref(a0) ^ (xtime_ref(a1) ^ a1) ^ a2 ^ a3;
    out[4 * c + 1] = a0 ^ xtime_ref(a1) ^ (xtime_ref(a2) ^ a2) ^ a3;
    out[4 * c + 2] = a0 ^ a1 ^ xtime_ref(a2) ^ (xtime_ref(a3) ^ a3);
    out[4 * c + 3] = (xtime_ref(a0) ^ a0) ^ a1 ^ a2 ^ xtime_ref(a3);
  }
  for (std::size_t j = 0; j < 16; ++j) out[j] ^= round_key[j];
  return out;
}

std::array<std::uint32_t, 8> sha256_rounds_reference(
    const std::array<std::uint32_t, 8>& state, const std::uint32_t* w,
    std::size_t rounds) {
  auto [a, b, c, d, e, f, g, h] =
      std::tuple(state[0], state[1], state[2], state[3], state[4], state[5],
                 state[6], state[7]);
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g; g = f; f = e; e = d + temp1;
    d = c; c = b; b = a; a = temp1 + temp2;
  }
  return {a, b, c, d, e, f, g, h};
}

std::array<std::uint32_t, 4> md5_steps_reference(
    const std::array<std::uint32_t, 4>& state, const std::uint32_t* m,
    std::size_t steps) {
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint32_t f = (b & c) | (~b & d);
    const std::uint32_t sum = a + f + m[i] + kMd5T[i];
    const std::uint32_t new_b = b + rotl32(sum, kMd5Shift[i % 4]);
    a = d; d = c; c = b; b = new_b;
  }
  return {a, b, c, d};
}

std::vector<bool> gps_ca_reference(std::uint16_t g1, std::uint16_t g2,
                                   std::size_t chips) {
  std::vector<bool> out;
  out.reserve(chips);
  for (std::size_t t = 0; t < chips; ++t) {
    const bool g2_tap = ((g2 >> 1) ^ (g2 >> 5)) & 1;
    out.push_back((((g1 >> 9) & 1) ^ g2_tap) != 0);
    const bool fb1 = ((g1 >> 2) ^ (g1 >> 9)) & 1;
    const bool fb2 =
        ((g2 >> 1) ^ (g2 >> 2) ^ (g2 >> 5) ^ (g2 >> 7) ^ (g2 >> 8) ^
         (g2 >> 9)) & 1;
    g1 = static_cast<std::uint16_t>(((g1 << 1) | (fb1 ? 1 : 0)) & 0x3ff);
    g2 = static_cast<std::uint16_t>(((g2 << 1) | (fb2 ? 1 : 0)) & 0x3ff);
  }
  return out;
}

}  // namespace ril::benchgen
