// Parallel portfolio execution layer over the CDCL solver.
//
// A SolverPortfolio keeps N diversified Solver instances in lock-step:
// every variable and clause added through the ClauseSink interface is
// mirrored into all members, so at any point each member holds the same
// formula (plus its own private learned clauses) and a solve() can race
// them. solve() runs the members on std::threads with first-to-finish-wins
// semantics: the first decisive (SAT/UNSAT) member raises a shared
// std::atomic<bool> cancellation token that the losers observe on their
// periodic stop-check path and unwind. Because members are incremental,
// learned clauses survive across calls — each DIP iteration of the SAT
// attack resumes N warm solvers, not N cold ones.
//
// Job 0 always runs the deterministic baseline configuration, and with
// jobs == 1 solve() calls it synchronously on the caller's thread, so a
// single-job portfolio is bit-identical to the historical serial code.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sat/clause_sink.hpp"
#include "sat/preprocessor.hpp"
#include "sat/proof.hpp"
#include "sat/remapper.hpp"
#include "sat/solver.hpp"

namespace ril::runtime {

/// A named solver configuration for one portfolio member.
struct PortfolioJobConfig {
  std::string name;
  sat::SolverConfig config;
};

/// Diversified configuration for job `index`. Index 0 is the deterministic
/// baseline; 1..5 are hand-picked classic portfolio roles (rapid/slow
/// restarts, phase inversion, random walk, clause hoarding/purging);
/// higher indices derive seeded random mixtures from `base_seed`.
PortfolioJobConfig diversified_config(unsigned index,
                                      std::uint64_t base_seed);

/// Outcome of one portfolio solve call.
struct SolveOutcome {
  sat::Result result = sat::Result::kUnknown;
  /// Member that decided the call (-1 when no member finished in time).
  int winner = -1;
  std::string winner_config;
  std::uint64_t winner_seed = 0;
  /// Conflicts spent by the winner on this call.
  std::uint64_t conflicts = 0;
  /// Conflicts spent across all members on this call (total work).
  std::uint64_t total_conflicts = 0;
  double seconds = 0.0;
  /// Size of the winner's proof trace after this call (0 unless proof
  /// logging is enabled via SolverPortfolio::enable_proof).
  std::uint64_t proof_steps = 0;
  /// Model self-check verdict for a kSat result when proof logging is on:
  /// 1 = model replays against every problem clause, 0 = it does not
  /// (solver unsoundness), -1 = not checked.
  int model_verified = -1;
};

/// Serializes an outcome as a JSON object (stable key order).
std::string to_json(const SolveOutcome& outcome);

class SolverPortfolio : public sat::ClauseSink {
 public:
  /// `jobs` is clamped to [1, 64]; `base_seed` diversifies members >= 1.
  explicit SolverPortfolio(unsigned jobs = 1, std::uint64_t base_seed = 1);

  unsigned jobs() const { return static_cast<unsigned>(solvers_.size()); }

  // ClauseSink: mirrored into every member.
  sat::Var new_var() override;
  void ensure_var(sat::Var v) override;
  bool add_clause(sat::Clause lits) override;
  /// Chunk-parallel mirroring: a large batch is fed to the members from
  /// one worker thread per member (each member is an independent solver,
  /// including its private proof trace, so the fan-out needs no locking).
  /// Small batches and preprocessing-staged formulas take the serial
  /// per-clause path, which is bit-identical.
  bool add_clauses(const sat::ClauseBatch& batch) override;
  using sat::ClauseSink::add_clause;

  /// Per-call resource limits, applied to every member at the next solve.
  void set_limits(const sat::SolverLimits& limits) { limits_ = limits; }

  /// Optional external stop flag (e.g. an attack-level cancellation token).
  /// When the flag becomes true, an in-flight solve() unwinds cooperatively
  /// and returns kUnknown, and the portfolio stays usable afterwards.
  /// Pass nullptr (the default) to clear it.
  void set_external_stop(const std::atomic<bool>* stop) {
    external_stop_ = stop;
  }

  /// Turns on per-member DRAT proof logging plus the post-SAT model
  /// self-check. Call before the first add_clause so every member's trace
  /// carries the complete axiom stream (each member records originals as
  /// the mirrored add_clause reaches it, and its own private learned
  /// clauses; the winner's trace is therefore self-contained). Idempotent.
  void enable_proof();
  /// File-backed variant of enable_proof(): each member streams its trace
  /// into `stem + ".m<i>.drat.tmp"` through a sat::FileProofTracer, so no
  /// member ever buffers its proof in memory. promote_winner_trace()
  /// seals the winning member's file and atomically renames it to the
  /// requested path (after a decisive UNSAT the published trace is a
  /// closed refutation; earlier it is an open certificate -- see
  /// sat::check_derivations_file); the losers' temps are unlinked.
  /// Mutually exclusive with enable_proof(); call before the first
  /// add_clause. Idempotent.
  void enable_proof_files(const std::string& stem);
  bool proof_enabled() const {
    return !traces_.empty() || !file_traces_.empty();
  }
  bool proof_files_enabled() const { return !file_traces_.empty(); }

  /// Turns on SatELite-style preprocessing (sat/preprocessor.hpp). Must be
  /// called before the first new_var/add_clause. Variables and clauses are
  /// then staged in a Preprocessor instead of the members; the first
  /// solve() freezes its assumption variables, simplifies the staged
  /// formula, and feeds the result (variables packed by a sat::Remapper)
  /// into every member. Callers own the freeze obligation: every variable
  /// referenced by later add_clause / assumption / model_value calls must
  /// be frozen before that first solve, or those calls throw
  /// std::logic_error when they hit an eliminated variable.
  ///
  /// Composes with enable_proof(): the preprocessor's elimination and
  /// strengthening steps are replayed into each member's trace (originals
  /// first, so the axiom set stays the unsimplified formula), variable
  /// numbering stays identity, and the simplified clauses are fed with
  /// member-side logging detached -- the resulting traces still pass
  /// sat::check_refutation. Models are reconstructed against the original
  /// formula via Preprocessor::extend_model before the self-check runs.
  void enable_preprocessing(
      const sat::PreprocessConfig& config = sat::PreprocessConfig{});
  bool preprocessing_enabled() const { return prep_ != nullptr; }
  /// Protects a variable from elimination; only meaningful between
  /// enable_preprocessing() and the first solve().
  void freeze(sat::Var v);
  void freeze(const std::vector<sat::Var>& vars);
  /// Preprocessing statistics; nullptr until the first solve() after
  /// enable_preprocessing() has run the simplifier.
  const sat::PreprocessStats* preprocess_stats() const {
    return prep_ && prep_done_ ? &prep_->stats() : nullptr;
  }

  /// Turns on restart-time inprocessing (sat/inprocess.hpp) in every
  /// member, with diversified cadences: member 0 runs the exact base
  /// config (deterministic baseline), members >= 1 stagger the conflict
  /// interval and rotate budget emphasis between vivification, probing,
  /// and subsumption so the members never pause in lock-step. May be
  /// called at any time; variables passed to freeze() are forwarded to
  /// the members as probing exemptions (mapped through the preprocessor's
  /// numbering when preprocessing is also enabled). Orthogonal to
  /// enable_preprocessing().
  void enable_inprocessing(
      const sat::InprocessConfig& config = sat::InprocessConfig{});
  bool inprocessing_enabled() const { return ipc_.enabled; }
  /// Sum of the members' inprocessing counters (every member inprocesses
  /// its own clause database, not just the winner).
  sat::InprocessStats inprocess_stats_total() const;
  /// The decisive member's trace after solve() (nullptr when proof
  /// logging is off or file-backed). For an UNSAT verdict with no
  /// assumptions the trace is a closed refutation checkable by
  /// sat::check_refutation.
  const sat::DratTrace* winner_trace() const;
  /// The decisive member's on-disk tracer (nullptr unless
  /// enable_proof_files was used).
  const sat::FileProofTracer* winner_file_trace() const;
  /// Seals the winning member's streamed trace and publishes it under
  /// `path` (atomic rename); the losing members' temp files are removed
  /// and proof logging detaches, so later solves on this portfolio are
  /// uncertified. Returns the published trace's size in bytes. Throws
  /// std::logic_error outside file mode.
  std::uint64_t promote_winner_trace(const std::string& path);

  /// Races the members under the current limits. First decisive member
  /// wins and cancels the rest; if every member hits its limit the result
  /// is kUnknown (deadline/conflict budget expired).
  SolveOutcome solve(const std::vector<sat::Lit>& assumptions = {});

  /// Model access, valid after solve() returned kSat (winner's model).
  sat::LBool model_value(sat::Var v) const;
  bool model_bool(sat::Var v) const;

  std::size_t num_vars() const {
    return prep_ ? prep_->num_vars() : solvers_.front()->num_vars();
  }
  std::uint64_t total_conflicts() const;
  const sat::Solver& member(unsigned index) const { return *solvers_[index]; }
  const std::string& member_name(unsigned index) const {
    return names_[index];
  }

 private:
  /// Runs the staged preprocessor and feeds the members (first solve()).
  void finish_preprocessing(const std::vector<sat::Lit>& assumptions);
  /// Throws if a literal of `lits` lost its variable to elimination.
  void check_not_eliminated(const sat::Clause& lits) const;
  /// Member i's proof sink in either mode (nullptr when logging is off).
  sat::ProofTracer* member_tracer(std::size_t i);
  bool member_trace_closed(std::size_t i) const;
  std::uint64_t member_trace_steps(std::size_t i) const;

  std::vector<std::unique_ptr<sat::Solver>> solvers_;
  std::vector<std::unique_ptr<sat::DratTrace>> traces_;
  std::vector<std::unique_ptr<sat::FileProofTracer>> file_traces_;
  std::vector<std::string> names_;
  sat::SolverLimits limits_;
  const std::atomic<bool>* external_stop_ = nullptr;
  int last_winner_ = 0;
  bool proven_unsat_ = false;

  /// Base inprocessing config (enabled == false until
  /// enable_inprocessing); members run diversified variants of it.
  sat::InprocessConfig ipc_;
  /// Outer-numbered freeze() vars awaiting the preprocessing remap before
  /// they can be forwarded to the members as probing exemptions.
  std::vector<sat::Var> ipc_frozen_outer_;

  std::unique_ptr<sat::Preprocessor> prep_;
  sat::Remapper remap_;
  /// Model over the outer (pre-preprocessing) numbering, reconstructed
  /// after a kSat solve with preprocessing on.
  std::vector<sat::LBool> ext_model_;
  bool prep_done_ = false;
};

}  // namespace ril::runtime
