#include "runtime/portfolio.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

namespace ril::runtime {

using sat::Clause;
using sat::LBool;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::SolverConfig;
using sat::Var;

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Member `index`'s inprocessing variant of `base`. Member 0 keeps the
/// base untouched (deterministic baseline); the others stagger the
/// conflict cadence and lean their budgets toward one technique each, so
/// a portfolio covers vivify-heavy, probe-heavy, and subsume-heavy
/// schedules without any member paying for all three at full strength.
sat::InprocessConfig diversified_inprocess(const sat::InprocessConfig& base,
                                           unsigned index) {
  sat::InprocessConfig c = base;
  if (index == 0) return c;
  c.interval_base = base.interval_base + (base.interval_base / 4) * (index % 4);
  switch (index % 3) {
    case 1:
      c.vivify_budget = base.vivify_budget * 2;
      c.probe_budget = base.probe_budget / 2;
      break;
    case 2:
      c.probe_budget = base.probe_budget * 2;
      c.subsume_budget = base.subsume_budget / 2;
      break;
    default:
      c.subsume_budget = base.subsume_budget * 2;
      c.vivify_budget = base.vivify_budget / 2;
      break;
  }
  return c;
}

}  // namespace

PortfolioJobConfig diversified_config(unsigned index,
                                      std::uint64_t base_seed) {
  PortfolioJobConfig job;
  SolverConfig& c = job.config;
  c.seed = splitmix64(base_seed + index);
  switch (index) {
    case 0:
      // Deterministic baseline: default knobs, no randomness consumed.
      job.name = "baseline";
      c = SolverConfig{};
      break;
    case 1:
      job.name = "rapid-restart";
      c.restart_base = 32;
      c.random_polarity_freq = 0.02;
      break;
    case 2:
      job.name = "deep-dive";
      c.restart_base = 1024;
      c.init_phase_true = true;
      break;
    case 3:
      job.name = "random-walk";
      c.random_branch_freq = 0.05;
      c.random_polarity_freq = 0.05;
      break;
    case 4:
      job.name = "hoarder";
      c.max_learned = 32768;
      c.var_decay = 0.99;
      c.restart_base = 256;
      break;
    case 5:
      job.name = "purger";
      c.max_learned = 2048;
      c.var_decay = 0.85;
      c.random_polarity_freq = 0.01;
      break;
    default: {
      // Seeded mixture over the knob space for arbitrarily wide portfolios.
      const std::uint64_t r = splitmix64(c.seed);
      job.name = "mix-" + std::to_string(index);
      c.restart_base = 32u << (r % 5);                      // 32..512
      c.var_decay = 0.85 + 0.02 * ((r >> 8) % 8);           // 0.85..0.99
      c.random_branch_freq = 0.01 * ((r >> 16) % 6);        // 0..0.05
      c.random_polarity_freq = 0.005 * ((r >> 24) % 9);     // 0..0.04
      c.max_learned = 2048u << ((r >> 32) % 5);             // 2k..32k
      c.init_phase_true = (r >> 40) & 1;
      break;
    }
  }
  return job;
}

SolverPortfolio::SolverPortfolio(unsigned jobs, std::uint64_t base_seed) {
  if (jobs < 1) jobs = 1;
  if (jobs > 64) jobs = 64;
  solvers_.reserve(jobs);
  names_.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    PortfolioJobConfig job = diversified_config(i, base_seed);
    auto solver = std::make_unique<Solver>();
    solver->set_config(job.config);
    solvers_.push_back(std::move(solver));
    names_.push_back(std::move(job.name));
  }
}

void SolverPortfolio::enable_proof() {
  if (proof_enabled()) return;
  traces_.reserve(solvers_.size());
  for (auto& solver : solvers_) {
    traces_.push_back(std::make_unique<sat::DratTrace>());
    solver->set_proof(traces_.back().get());
  }
}

void SolverPortfolio::enable_proof_files(const std::string& stem) {
  if (proof_enabled()) return;
  file_traces_.reserve(solvers_.size());
  for (std::size_t i = 0; i < solvers_.size(); ++i) {
    file_traces_.push_back(std::make_unique<sat::FileProofTracer>(
        stem + ".m" + std::to_string(i) + ".drat"));
    solvers_[i]->set_proof(file_traces_[i].get());
  }
}

const sat::DratTrace* SolverPortfolio::winner_trace() const {
  if (traces_.empty()) return nullptr;
  return traces_[last_winner_].get();
}

const sat::FileProofTracer* SolverPortfolio::winner_file_trace() const {
  if (file_traces_.empty()) return nullptr;
  return file_traces_[last_winner_].get();
}

std::uint64_t SolverPortfolio::promote_winner_trace(const std::string& path) {
  if (file_traces_.empty()) {
    throw std::logic_error(
        "SolverPortfolio::promote_winner_trace: file-backed proofs are not "
        "enabled");
  }
  sat::FileProofTracer& winner = *file_traces_[last_winner_];
  winner.finalize_to(path);
  const std::uint64_t bytes = winner.bytes_written();
  for (std::size_t i = 0; i < file_traces_.size(); ++i) {
    if (static_cast<int>(i) != last_winner_) file_traces_[i]->abandon();
  }
  // The published winner and the abandoned losers can take no more steps;
  // detach so later incremental solves do not try to append, and drop the
  // tracers so proof_enabled() reports the detached state.
  for (auto& solver : solvers_) solver->set_proof(nullptr);
  file_traces_.clear();
  return bytes;
}

sat::ProofTracer* SolverPortfolio::member_tracer(std::size_t i) {
  if (!traces_.empty()) return traces_[i].get();
  if (!file_traces_.empty()) return file_traces_[i].get();
  return nullptr;
}

bool SolverPortfolio::member_trace_closed(std::size_t i) const {
  if (!traces_.empty()) return traces_[i]->closed();
  if (!file_traces_.empty()) return file_traces_[i]->closed();
  return false;
}

std::uint64_t SolverPortfolio::member_trace_steps(std::size_t i) const {
  if (!traces_.empty()) return traces_[i]->size();
  if (!file_traces_.empty()) return file_traces_[i]->steps();
  return 0;
}

void SolverPortfolio::enable_preprocessing(
    const sat::PreprocessConfig& config) {
  if (prep_) return;
  if (solvers_.front()->num_vars() != 0 ||
      solvers_.front()->num_clauses() != 0) {
    throw std::logic_error(
        "SolverPortfolio::enable_preprocessing: call before the first "
        "new_var/add_clause");
  }
  prep_ = std::make_unique<sat::Preprocessor>(config);
}

void SolverPortfolio::enable_inprocessing(const sat::InprocessConfig& config) {
  ipc_ = config;
  ipc_.enabled = true;
  for (std::size_t i = 0; i < solvers_.size(); ++i) {
    solvers_[i]->set_inprocess(
        diversified_inprocess(ipc_, static_cast<unsigned>(i)));
  }
}

sat::InprocessStats SolverPortfolio::inprocess_stats_total() const {
  sat::InprocessStats total;
  for (const auto& solver : solvers_) {
    const sat::InprocessStats& s = solver->inprocess_stats();
    total.passes += s.passes;
    total.vivify_checked += s.vivify_checked;
    total.vivified_clauses += s.vivified_clauses;
    total.vivified_literals += s.vivified_literals;
    total.subsume_checked += s.subsume_checked;
    total.subsumed_clauses += s.subsumed_clauses;
    total.strengthened_clauses += s.strengthened_clauses;
    total.probed_literals += s.probed_literals;
    total.failed_literals += s.failed_literals;
    total.hyper_binaries += s.hyper_binaries;
  }
  return total;
}

void SolverPortfolio::freeze(Var v) {
  if (!prep_) {
    // Without preprocessing the freeze still matters to inprocessing:
    // frozen variables are exempt from failed-literal probing. Recorded
    // unconditionally so enable_inprocessing() order does not matter.
    for (auto& solver : solvers_) solver->freeze_inprocess(v);
    return;
  }
  if (prep_done_) {
    throw std::logic_error(
        "SolverPortfolio::freeze: preprocessing already ran (freeze before "
        "the first solve)");
  }
  ipc_frozen_outer_.push_back(v);
  prep_->freeze(v);
}

void SolverPortfolio::freeze(const std::vector<Var>& vars) {
  for (const Var v : vars) freeze(v);
}

void SolverPortfolio::check_not_eliminated(const Clause& lits) const {
  for (const Lit l : lits) {
    if (prep_->is_eliminated(l.var())) {
      throw std::logic_error(
          "SolverPortfolio: variable " + std::to_string(l.var()) +
          " was eliminated by preprocessing; freeze() it before the first "
          "solve");
    }
  }
}

Var SolverPortfolio::new_var() {
  if (prep_ && !prep_done_) return prep_->new_var();
  const Var inner = solvers_.front()->new_var();
  for (std::size_t i = 1; i < solvers_.size(); ++i) solvers_[i]->new_var();
  if (!prep_) return inner;
  // Post-preprocessing variables exist on both sides of the remap.
  const Var outer = prep_->new_var();
  remap_.append(outer, inner);
  return outer;
}

void SolverPortfolio::ensure_var(Var v) {
  if (prep_ && !prep_done_) {
    prep_->ensure_var(v);
    return;
  }
  if (prep_) {
    while (prep_->num_vars() <= static_cast<std::size_t>(v)) new_var();
    return;
  }
  for (auto& solver : solvers_) solver->ensure_var(v);
}

bool SolverPortfolio::add_clause(Clause lits) {
  if (prep_ && !prep_done_) {
    // Staged: the members see the clause (simplified) at the first solve.
    return prep_->add_clause(std::move(lits));
  }
  if (prep_) {
    check_not_eliminated(lits);
    Clause inner;
    remap_.clause_to_inner(lits, inner);
    lits = std::move(inner);
  }
  bool ok = true;
  for (auto& solver : solvers_) {
    // Members may disagree on *detecting* root unsatisfiability (their
    // private learned clauses propagate differently), but any detection is
    // sound, so one dead member proves the shared formula UNSAT.
    if (!solver->add_clause(lits)) ok = false;
  }
  if (!ok) proven_unsat_ = true;
  return ok;
}

bool SolverPortfolio::add_clauses(const sat::ClauseBatch& batch) {
  // Below this size the thread fan-out costs more than it saves; the
  // preprocessing paths (staging and post-simplify remapping) stay serial
  // because they funnel through shared Preprocessor/Remapper state.
  constexpr std::size_t kParallelBatchMin = 512;
  if (prep_ || solvers_.size() == 1 || batch.size() < kParallelBatchMin) {
    return ClauseSink::add_clauses(batch);
  }
  std::vector<char> member_ok(solvers_.size(), 1);
  const auto feed = [this, &batch, &member_ok](std::size_t m) {
    sat::Solver& solver = *solvers_[m];
    bool ok = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto c = batch.clause(i);
      if (!solver.add_clause(Clause(c.begin(), c.end()))) ok = false;
    }
    if (!ok) member_ok[m] = 0;
  };
  std::vector<std::thread> workers;
  workers.reserve(solvers_.size() - 1);
  for (std::size_t m = 1; m < solvers_.size(); ++m) workers.emplace_back(feed, m);
  feed(0);
  for (auto& w : workers) w.join();
  bool ok = true;
  for (const char okm : member_ok) ok = ok && (okm != 0);
  if (!ok) proven_unsat_ = true;
  return ok;
}

void SolverPortfolio::finish_preprocessing(
    const std::vector<Lit>& assumptions) {
  prep_done_ = true;
  // The first solve's assumption variables must survive elimination; later
  // solves may only assume variables the caller froze explicitly.
  for (const Lit a : assumptions) {
    prep_->freeze(a.var());
    ipc_frozen_outer_.push_back(a.var());
  }
  const bool proof = proof_enabled();
  if (proof) prep_->enable_proof();
  prep_->run();

  const std::size_t outer_count = prep_->num_vars();
  if (proof) {
    // Identity numbering keeps the trace replayable without a translation
    // table (eliminated vars stay as unconstrained member variables; the
    // reconstructed model overrides them).
    remap_ = sat::Remapper::identity(outer_count);
  } else {
    std::vector<bool> keep(outer_count);
    for (std::size_t v = 0; v < outer_count; ++v) {
      keep[v] = !prep_->is_eliminated(static_cast<Var>(v));
    }
    remap_ = sat::Remapper::compacting(keep);
  }

  // With the remap fixed, the staged freeze() vars can finally reach the
  // members as inprocessing probe exemptions (inner numbering).
  for (const Var outer : ipc_frozen_outer_) {
    if (prep_->is_eliminated(outer)) continue;
    const Var inner = remap_.to_inner(outer);
    if (inner == sat::kNoVar) continue;
    for (auto& solver : solvers_) solver->freeze_inprocess(inner);
  }
  ipc_frozen_outer_.clear();

  const std::vector<Clause> simplified = prep_->clauses();
  for (std::size_t i = 0; i < solvers_.size(); ++i) {
    sat::Solver& solver = *solvers_[i];
    if (proof) {
      // The trace's axiom set is the *original* formula; the prep steps
      // derive the simplified one, and the members are then fed silently
      // so they do not re-log the simplified clauses as axioms.
      sat::ProofTracer& trace = *member_tracer(i);
      for (const Clause& original : prep_->originals()) {
        trace.original(original);
      }
      for (const sat::ProofStep& step : prep_->trace().steps()) {
        switch (step.kind) {
          case sat::ProofStepKind::kOriginal:
            trace.original(step.lits);
            break;
          case sat::ProofStepKind::kDerive:
            trace.derive(step.lits);
            break;
          case sat::ProofStepKind::kErase:
            trace.erase(step.lits);
            break;
        }
      }
      solver.set_proof(nullptr);
    }
    if (remap_.inner_count() > 0) {
      solver.ensure_var(static_cast<Var>(remap_.inner_count()) - 1);
    }
    bool ok = !prep_->contradiction();
    if (!ok) {
      solver.add_clause(Clause{});
    } else {
      Clause inner;
      for (const Clause& c : simplified) {
        remap_.clause_to_inner(c, inner);
        if (!solver.add_clause(inner)) {
          ok = false;
          break;
        }
      }
    }
    if (proof) {
      // A member that went dead during the silent feed derived UNSAT by
      // root unit propagation over the live set, so the empty clause is
      // RUP here; prep-detected contradictions already closed the trace.
      sat::ProofTracer& trace = *member_tracer(i);
      if (!ok && !member_trace_closed(i)) trace.derive({});
      solver.set_proof(&trace);
    }
    if (!ok) proven_unsat_ = true;
  }
}

SolveOutcome SolverPortfolio::solve(const std::vector<Lit>& assumptions) {
  const auto start = std::chrono::steady_clock::now();
  if (prep_ && !prep_done_) finish_preprocessing(assumptions);
  std::vector<Lit> mapped_assumptions;
  const std::vector<Lit>* effective = &assumptions;
  if (prep_) {
    check_not_eliminated(assumptions);
    mapped_assumptions.reserve(assumptions.size());
    for (const Lit a : assumptions) {
      mapped_assumptions.push_back(remap_.lit_to_inner(a));
    }
    effective = &mapped_assumptions;
  }
  SolveOutcome outcome;
  const std::size_t n = solvers_.size();
  std::vector<std::uint64_t> conflicts_before(n);
  for (std::size_t i = 0; i < n; ++i) {
    conflicts_before[i] = solvers_[i]->stats().conflicts;
  }

  int winner_index = -1;
  if (n == 1 || proven_unsat_) {
    // Serial fast path: run the baseline member on the caller's thread
    // (bit-identical to pre-portfolio behaviour). A formula already proven
    // UNSAT at the root is answered by whichever member went dead.
    std::size_t pick = 0;
    if (proven_unsat_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!solvers_[i]->okay()) {
          pick = i;
          break;
        }
      }
    }
    Solver& solver = *solvers_[pick];
    solver.set_limits(limits_);
    solver.set_cancel_flag(external_stop_);
    outcome.result = solver.solve(*effective);
    solver.set_cancel_flag(nullptr);
    winner_index = static_cast<int>(pick);
  } else {
    std::atomic<bool> cancel{false};
    std::atomic<int> claimed{-1};
    std::atomic<std::size_t> finished{0};
    std::vector<Result> results(n, Result::kUnknown);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, i, effective, &cancel, &claimed,
                            &results, &finished] {
        Solver& solver = *solvers_[i];
        solver.set_limits(limits_);
        solver.set_cancel_flag(&cancel);
        const Result r = solver.solve(*effective);
        results[i] = r;
        if (r != Result::kUnknown) {
          int expected = -1;
          if (claimed.compare_exchange_strong(expected,
                                              static_cast<int>(i))) {
            cancel.store(true, std::memory_order_release);
          }
        }
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    // Relay an external stop into the members' shared cancel flag; the
    // members themselves only poll the per-call token.
    if (external_stop_) {
      while (finished.load(std::memory_order_acquire) < n) {
        if (external_stop_->load(std::memory_order_relaxed)) {
          cancel.store(true, std::memory_order_release);
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    for (auto& thread : threads) thread.join();
    for (auto& solver : solvers_) solver->set_cancel_flag(nullptr);
    winner_index = claimed.load();
    if (winner_index >= 0) outcome.result = results[winner_index];
  }

  if (winner_index >= 0) {
    last_winner_ = winner_index;
    outcome.winner = winner_index;
    outcome.winner_config = names_[winner_index];
    outcome.winner_seed = solvers_[winner_index]->config().seed;
    outcome.conflicts = solvers_[winner_index]->stats().conflicts -
                        conflicts_before[winner_index];
    if (prep_ && outcome.result == Result::kSat) {
      // Reconstruct the outer model: copy surviving variables from the
      // winner, then replay the elimination stack.
      ext_model_.assign(prep_->num_vars(), LBool::kUndef);
      const Solver& winner = *solvers_[winner_index];
      for (std::size_t v = 0; v < ext_model_.size(); ++v) {
        const Var outer = static_cast<Var>(v);
        if (prep_->is_eliminated(outer)) continue;
        const Var inner = remap_.to_inner(outer);
        if (inner != sat::kNoVar &&
            static_cast<std::size_t>(inner) < winner.num_vars()) {
          ext_model_[v] = winner.model_value(inner);
        }
      }
      prep_->extend_model(ext_model_);
    }
    if (proof_enabled()) {
      outcome.proof_steps = member_trace_steps(winner_index);
      if (outcome.result == Result::kSat) {
        // With preprocessing the member check covers the simplified
        // formula plus post-prep clauses; the preprocessor check replays
        // the reconstructed model against every *original* clause.
        bool verified = solvers_[winner_index]->verify_model(*effective);
        if (prep_) verified = verified && prep_->verify_model(ext_model_);
        outcome.model_verified = verified ? 1 : 0;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    outcome.total_conflicts +=
        solvers_[i]->stats().conflicts - conflicts_before[i];
  }
  outcome.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return outcome;
}

LBool SolverPortfolio::model_value(Var v) const {
  if (prep_) {
    if (v >= 0 && static_cast<std::size_t>(v) < ext_model_.size()) {
      return ext_model_[v];
    }
    return LBool::kUndef;
  }
  return solvers_[last_winner_]->model_value(v);
}

bool SolverPortfolio::model_bool(Var v) const {
  return model_value(v) == LBool::kTrue;
}

std::uint64_t SolverPortfolio::total_conflicts() const {
  std::uint64_t total = 0;
  for (const auto& solver : solvers_) total += solver->stats().conflicts;
  return total;
}

std::string to_json(const SolveOutcome& outcome) {
  const char* result = outcome.result == Result::kSat     ? "sat"
                       : outcome.result == Result::kUnsat ? "unsat"
                                                          : "unknown";
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "{\"result\":\"%s\",\"winner\":%d,\"config\":\"%s\","
                "\"seed\":%llu,\"conflicts\":%llu,"
                "\"total_conflicts\":%llu,\"seconds\":%.6f",
                result, outcome.winner, outcome.winner_config.c_str(),
                static_cast<unsigned long long>(outcome.winner_seed),
                static_cast<unsigned long long>(outcome.conflicts),
                static_cast<unsigned long long>(outcome.total_conflicts),
                outcome.seconds);
  std::string json(buffer);
  // Certification fields only appear when proof logging was active, so
  // consumers of the historical shape are unaffected.
  if (outcome.proof_steps != 0 || outcome.model_verified >= 0) {
    json += ",\"proof_steps\":" + std::to_string(outcome.proof_steps);
    if (outcome.model_verified >= 0) {
      json += std::string(",\"model_ok\":") +
              (outcome.model_verified == 1 ? "true" : "false");
    }
  }
  json += "}";
  return json;
}

}  // namespace ril::runtime
