#include "runtime/portfolio.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

namespace ril::runtime {

using sat::Clause;
using sat::LBool;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::SolverConfig;
using sat::Var;

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PortfolioJobConfig diversified_config(unsigned index,
                                      std::uint64_t base_seed) {
  PortfolioJobConfig job;
  SolverConfig& c = job.config;
  c.seed = splitmix64(base_seed + index);
  switch (index) {
    case 0:
      // Deterministic baseline: default knobs, no randomness consumed.
      job.name = "baseline";
      c = SolverConfig{};
      break;
    case 1:
      job.name = "rapid-restart";
      c.restart_base = 32;
      c.random_polarity_freq = 0.02;
      break;
    case 2:
      job.name = "deep-dive";
      c.restart_base = 1024;
      c.init_phase_true = true;
      break;
    case 3:
      job.name = "random-walk";
      c.random_branch_freq = 0.05;
      c.random_polarity_freq = 0.05;
      break;
    case 4:
      job.name = "hoarder";
      c.max_learned = 32768;
      c.var_decay = 0.99;
      c.restart_base = 256;
      break;
    case 5:
      job.name = "purger";
      c.max_learned = 2048;
      c.var_decay = 0.85;
      c.random_polarity_freq = 0.01;
      break;
    default: {
      // Seeded mixture over the knob space for arbitrarily wide portfolios.
      const std::uint64_t r = splitmix64(c.seed);
      job.name = "mix-" + std::to_string(index);
      c.restart_base = 32u << (r % 5);                      // 32..512
      c.var_decay = 0.85 + 0.02 * ((r >> 8) % 8);           // 0.85..0.99
      c.random_branch_freq = 0.01 * ((r >> 16) % 6);        // 0..0.05
      c.random_polarity_freq = 0.005 * ((r >> 24) % 9);     // 0..0.04
      c.max_learned = 2048u << ((r >> 32) % 5);             // 2k..32k
      c.init_phase_true = (r >> 40) & 1;
      break;
    }
  }
  return job;
}

SolverPortfolio::SolverPortfolio(unsigned jobs, std::uint64_t base_seed) {
  if (jobs < 1) jobs = 1;
  if (jobs > 64) jobs = 64;
  solvers_.reserve(jobs);
  names_.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    PortfolioJobConfig job = diversified_config(i, base_seed);
    auto solver = std::make_unique<Solver>();
    solver->set_config(job.config);
    solvers_.push_back(std::move(solver));
    names_.push_back(std::move(job.name));
  }
}

void SolverPortfolio::enable_proof() {
  if (!traces_.empty()) return;
  traces_.reserve(solvers_.size());
  for (auto& solver : solvers_) {
    traces_.push_back(std::make_unique<sat::DratTrace>());
    solver->set_proof(traces_.back().get());
  }
}

const sat::DratTrace* SolverPortfolio::winner_trace() const {
  if (traces_.empty()) return nullptr;
  return traces_[last_winner_].get();
}

Var SolverPortfolio::new_var() {
  const Var v = solvers_.front()->new_var();
  for (std::size_t i = 1; i < solvers_.size(); ++i) solvers_[i]->new_var();
  return v;
}

void SolverPortfolio::ensure_var(Var v) {
  for (auto& solver : solvers_) solver->ensure_var(v);
}

bool SolverPortfolio::add_clause(Clause lits) {
  bool ok = true;
  for (auto& solver : solvers_) {
    // Members may disagree on *detecting* root unsatisfiability (their
    // private learned clauses propagate differently), but any detection is
    // sound, so one dead member proves the shared formula UNSAT.
    if (!solver->add_clause(lits)) ok = false;
  }
  if (!ok) proven_unsat_ = true;
  return ok;
}

SolveOutcome SolverPortfolio::solve(const std::vector<Lit>& assumptions) {
  const auto start = std::chrono::steady_clock::now();
  SolveOutcome outcome;
  const std::size_t n = solvers_.size();
  std::vector<std::uint64_t> conflicts_before(n);
  for (std::size_t i = 0; i < n; ++i) {
    conflicts_before[i] = solvers_[i]->stats().conflicts;
  }

  int winner_index = -1;
  if (n == 1 || proven_unsat_) {
    // Serial fast path: run the baseline member on the caller's thread
    // (bit-identical to pre-portfolio behaviour). A formula already proven
    // UNSAT at the root is answered by whichever member went dead.
    std::size_t pick = 0;
    if (proven_unsat_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!solvers_[i]->okay()) {
          pick = i;
          break;
        }
      }
    }
    Solver& solver = *solvers_[pick];
    solver.set_limits(limits_);
    solver.set_cancel_flag(external_stop_);
    outcome.result = solver.solve(assumptions);
    solver.set_cancel_flag(nullptr);
    winner_index = static_cast<int>(pick);
  } else {
    std::atomic<bool> cancel{false};
    std::atomic<int> claimed{-1};
    std::atomic<std::size_t> finished{0};
    std::vector<Result> results(n, Result::kUnknown);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, i, &assumptions, &cancel, &claimed,
                            &results, &finished] {
        Solver& solver = *solvers_[i];
        solver.set_limits(limits_);
        solver.set_cancel_flag(&cancel);
        const Result r = solver.solve(assumptions);
        results[i] = r;
        if (r != Result::kUnknown) {
          int expected = -1;
          if (claimed.compare_exchange_strong(expected,
                                              static_cast<int>(i))) {
            cancel.store(true, std::memory_order_release);
          }
        }
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    // Relay an external stop into the members' shared cancel flag; the
    // members themselves only poll the per-call token.
    if (external_stop_) {
      while (finished.load(std::memory_order_acquire) < n) {
        if (external_stop_->load(std::memory_order_relaxed)) {
          cancel.store(true, std::memory_order_release);
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    for (auto& thread : threads) thread.join();
    for (auto& solver : solvers_) solver->set_cancel_flag(nullptr);
    winner_index = claimed.load();
    if (winner_index >= 0) outcome.result = results[winner_index];
  }

  if (winner_index >= 0) {
    last_winner_ = winner_index;
    outcome.winner = winner_index;
    outcome.winner_config = names_[winner_index];
    outcome.winner_seed = solvers_[winner_index]->config().seed;
    outcome.conflicts = solvers_[winner_index]->stats().conflicts -
                        conflicts_before[winner_index];
    if (!traces_.empty()) {
      outcome.proof_steps = traces_[winner_index]->size();
      if (outcome.result == Result::kSat) {
        outcome.model_verified =
            solvers_[winner_index]->verify_model(assumptions) ? 1 : 0;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    outcome.total_conflicts +=
        solvers_[i]->stats().conflicts - conflicts_before[i];
  }
  outcome.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return outcome;
}

LBool SolverPortfolio::model_value(Var v) const {
  return solvers_[last_winner_]->model_value(v);
}

bool SolverPortfolio::model_bool(Var v) const {
  return solvers_[last_winner_]->model_bool(v);
}

std::uint64_t SolverPortfolio::total_conflicts() const {
  std::uint64_t total = 0;
  for (const auto& solver : solvers_) total += solver->stats().conflicts;
  return total;
}

std::string to_json(const SolveOutcome& outcome) {
  const char* result = outcome.result == Result::kSat     ? "sat"
                       : outcome.result == Result::kUnsat ? "unsat"
                                                          : "unknown";
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "{\"result\":\"%s\",\"winner\":%d,\"config\":\"%s\","
                "\"seed\":%llu,\"conflicts\":%llu,"
                "\"total_conflicts\":%llu,\"seconds\":%.6f",
                result, outcome.winner, outcome.winner_config.c_str(),
                static_cast<unsigned long long>(outcome.winner_seed),
                static_cast<unsigned long long>(outcome.conflicts),
                static_cast<unsigned long long>(outcome.total_conflicts),
                outcome.seconds);
  std::string json(buffer);
  // Certification fields only appear when proof logging was active, so
  // consumers of the historical shape are unaffected.
  if (outcome.proof_steps != 0 || outcome.model_verified >= 0) {
    json += ",\"proof_steps\":" + std::to_string(outcome.proof_steps);
    if (outcome.model_verified >= 0) {
      json += std::string(",\"model_ok\":") +
              (outcome.model_verified == 1 ? "true" : "false");
    }
  }
  json += "}";
  return json;
}

}  // namespace ril::runtime
