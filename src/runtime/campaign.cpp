#include "runtime/campaign.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ril::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string format_seconds(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Position just past `"field":` in `line`, or npos.
std::size_t find_field_value(const std::string& line,
                             const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

}  // namespace

std::string json_string_field(const std::string& line,
                              const std::string& field) {
  auto pos = find_field_value(line, field);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return {};
  }
  ++pos;
  std::string out;
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '"') return out;
    if (c == '\\' && pos + 1 < line.size()) {
      const char next = line[++pos];
      switch (next) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += next;
      }
    } else {
      out += c;
    }
    ++pos;
  }
  return {};  // unterminated string
}

double json_number_field(const std::string& line, const std::string& field,
                         double fallback) {
  const auto pos = find_field_value(line, field);
  if (pos == std::string::npos) return fallback;
  // std::from_chars, not std::stod: stod reads the decimal separator from
  // the global LC_NUMERIC, so resuming a campaign under a comma-decimal
  // locale would truncate "0.25" to 0. from_chars always parses the JSON
  // ("C") number format.
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  double value = fallback;
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc() || result.ptr == begin) return fallback;
  return value;
}

std::string json_object_field(const std::string& line,
                              const std::string& field) {
  auto pos = find_field_value(line, field);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '{') {
    return {};
  }
  const std::size_t body_start = pos + 1;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = pos; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}') {
      if (--depth == 0) return line.substr(body_start, i - body_start);
    }
  }
  return {};  // unbalanced
}

std::string job_record_json(const JobRecord& record) {
  std::string out = "{\"key\":\"" + json_escape(record.key) +
                    "\",\"status\":\"" + json_escape(record.status) +
                    "\",\"queue_seconds\":" +
                    format_seconds(record.queue_seconds) +
                    ",\"run_seconds\":" + format_seconds(record.run_seconds);
  if (!record.error.empty()) {
    out += ",\"error\":\"" + json_escape(record.error) + "\"";
  }
  if (!record.payload.empty()) {
    out += ",\"data\":{" + record.payload + "}";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// JsonlWriter
// ---------------------------------------------------------------------------

void JsonlWriter::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.open(path, std::ios::app);
  if (!out_) throw std::runtime_error("cannot open " + path);
  path_ = path;
}

bool JsonlWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return false;
  out_ << line << "\n";
  out_.flush();  // survive a kill mid-run
  if (!out_.fail()) return true;
  // Disk full / I/O error: the record is lost for resume purposes. Count
  // it, warn once, and clear the stream state so later records still get
  // a chance to land (a transient ENOSPC may pass).
  failures_.fetch_add(1, std::memory_order_relaxed);
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "warning: checkpoint write to %s failed (disk full or I/O "
                 "error); records may be missing on resume\n",
                 path_.c_str());
  }
  out_.clear();
  return false;
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

JobQueue::JobQueue(unsigned workers) {
  const unsigned count = std::max(1u, std::min(workers, 256u));
  active_.assign(count, nullptr);
  pool_.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    pool_.emplace_back([this, w] { worker_loop(w); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

JobQueue::~JobQueue() {
  cancel_all();
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
  watchdog_.join();
}

void JobQueue::submit(std::string key, double timeout_seconds, RunFn run,
                      DoneFn done) {
  Pending pending;
  pending.key = std::move(key);
  pending.timeout = timeout_seconds;
  pending.run = std::move(run);
  pending.done = std::move(done);
  pending.enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancelling_) {
      // The queue is shutting down: fail fast instead of queueing work
      // that would only be dropped.
      JobRecord record;
      record.key = std::move(pending.key);
      record.status = "error";
      record.error = "cancelled";
      if (pending.done) pending.done(std::move(record));
      return;
    }
    queue_.push_back(std::move(pending));
  }
  work_cv_.notify_one();
}

void JobQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void JobQueue::cancel_all() {
  std::deque<Pending> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelling_ = true;
    dropped.swap(queue_);
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (JobContext* ctx : active_) {
      if (ctx) ctx->cancel_.store(true, std::memory_order_relaxed);
    }
  }
  for (Pending& pending : dropped) {
    JobRecord record;
    record.key = std::move(pending.key);
    record.status = "error";
    record.error = "cancelled";
    if (pending.done) pending.done(std::move(record));
  }
  idle_cv_.notify_all();
}

std::size_t JobQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + running_;
}

void JobQueue::arm(unsigned slot, JobContext* ctx, double timeout) {
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    ctx->timeout_ = timeout;
    if (timeout > 0) {
      ctx->deadline_ = Clock::now() + std::chrono::duration_cast<
          Clock::duration>(std::chrono::duration<double>(timeout));
      ctx->has_deadline_ = true;
    }
    active_[slot] = ctx;
  }
  // Close the pop/cancel race: cancel_all() may have iterated active_
  // after this worker popped the job (observing cancelling_ == false) but
  // before the registration above, in which case nobody set our flag.
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelling_) ctx->cancel_.store(true, std::memory_order_relaxed);
}

void JobQueue::disarm(unsigned slot) {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  active_[slot] = nullptr;
}

void JobQueue::watchdog_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      const auto now = Clock::now();
      for (JobContext* ctx : active_) {
        if (ctx && ctx->has_deadline_ && now >= ctx->deadline_) {
          ctx->cancel_.store(true, std::memory_order_relaxed);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void JobQueue::worker_loop(unsigned slot) {
  for (;;) {
    Pending pending;
    bool cancelled = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
      cancelled = cancelling_;
      ++running_;
    }

    JobRecord record;
    record.key = pending.key;
    const auto start = Clock::now();
    record.queue_seconds = seconds_between(pending.enqueued, start);

    if (cancelled) {
      record.status = "error";
      record.error = "cancelled";
    } else {
      JobContext ctx;
      arm(slot, &ctx, pending.timeout);
      try {
        record.payload = pending.run ? pending.run(ctx) : std::string();
        record.status = "ok";
      } catch (const std::exception& e) {
        record.status = "error";
        record.error = e.what();
      } catch (...) {
        record.status = "error";
        record.error = "unknown exception";
      }
      disarm(slot);
    }
    record.run_seconds = seconds_between(start, Clock::now());

    if (pending.done) {
      try {
        pending.done(std::move(record));
      } catch (...) {
        // A throwing completion callback must not take down the worker.
      }
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// run_campaign
// ---------------------------------------------------------------------------

CampaignSummary run_campaign(const std::vector<CampaignJob>& jobs,
                             const CampaignOptions& options) {
  {
    std::unordered_set<std::string> keys;
    for (const CampaignJob& job : jobs) {
      if (!keys.insert(job.key).second) {
        throw std::invalid_argument("run_campaign: duplicate job key '" +
                                    job.key + "'");
      }
    }
  }

  CampaignSummary summary;
  summary.records.resize(jobs.size());
  const auto campaign_start = Clock::now();

  // Restore terminal records from a previous (possibly killed) run.
  std::unordered_map<std::string, JobRecord> restored;
  if (options.resume && !options.out_path.empty()) {
    std::ifstream in(options.out_path);
    std::string line;
    while (std::getline(in, line)) {
      const std::string key = json_string_field(line, "key");
      const std::string status = json_string_field(line, "status");
      if (key.empty() || (status != "ok" && status != "error")) continue;
      JobRecord record;
      record.key = key;
      record.status = "cached";
      record.error = json_string_field(line, "error");
      record.payload = json_object_field(line, "data");
      record.queue_seconds = json_number_field(line, "queue_seconds");
      record.run_seconds = json_number_field(line, "run_seconds");
      restored[key] = std::move(record);  // last line wins
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto it = restored.find(jobs[i].key);
    if (it != restored.end()) {
      summary.records[i] = it->second;
      ++summary.cached;
    } else {
      pending.push_back(i);
    }
  }

  JsonlWriter checkpoint;
  if (!options.out_path.empty()) checkpoint.open(options.out_path);

  const unsigned workers = std::max<unsigned>(
      1, std::min<unsigned>(std::min<unsigned>(options.jobs, 256),
                            std::max<std::size_t>(pending.size(), 1)));

  std::atomic<std::size_t> errors{0};
  {
    JobQueue queue(workers);
    for (std::size_t index : pending) {
      const CampaignJob& job = jobs[index];
      queue.submit(
          job.key, job.timeout_seconds,
          [&job](JobContext& ctx) {
            return job.run ? job.run(ctx) : std::string();
          },
          [&summary, &checkpoint, &errors, index](JobRecord&& record) {
            if (record.status == "error") {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
            if (checkpoint.is_open()) {
              checkpoint.write_line(job_record_json(record));
            }
            summary.records[index] = std::move(record);  // distinct: safe
          });
    }
    queue.wait_idle();
  }

  summary.completed = pending.size();
  summary.errors = errors.load();
  summary.checkpoint_failures = checkpoint.failures();
  summary.seconds = seconds_between(campaign_start, Clock::now());
  return summary;
}

}  // namespace ril::runtime
