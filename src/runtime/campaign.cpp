#include "runtime/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace ril::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string format_seconds(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Position just past `"field":` in `line`, or npos.
std::size_t find_field_value(const std::string& line,
                             const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

}  // namespace

std::string json_string_field(const std::string& line,
                              const std::string& field) {
  auto pos = find_field_value(line, field);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return {};
  }
  ++pos;
  std::string out;
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '"') return out;
    if (c == '\\' && pos + 1 < line.size()) {
      const char next = line[++pos];
      switch (next) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += next;
      }
    } else {
      out += c;
    }
    ++pos;
  }
  return {};  // unterminated string
}

double json_number_field(const std::string& line, const std::string& field,
                         double fallback) {
  const auto pos = find_field_value(line, field);
  if (pos == std::string::npos) return fallback;
  try {
    return std::stod(line.substr(pos));
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string json_object_field(const std::string& line,
                              const std::string& field) {
  auto pos = find_field_value(line, field);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '{') {
    return {};
  }
  const std::size_t body_start = pos + 1;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = pos; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}') {
      if (--depth == 0) return line.substr(body_start, i - body_start);
    }
  }
  return {};  // unbalanced
}

std::string job_record_json(const JobRecord& record) {
  std::string out = "{\"key\":\"" + json_escape(record.key) +
                    "\",\"status\":\"" + json_escape(record.status) +
                    "\",\"queue_seconds\":" +
                    format_seconds(record.queue_seconds) +
                    ",\"run_seconds\":" + format_seconds(record.run_seconds);
  if (!record.error.empty()) {
    out += ",\"error\":\"" + json_escape(record.error) + "\"";
  }
  if (!record.payload.empty()) {
    out += ",\"data\":{" + record.payload + "}";
  }
  out += "}";
  return out;
}

/// Shared mutable state of one run_campaign() invocation; owns the slot
/// table the watchdog scans and the serialized JSONL stream.
struct CampaignState {
  std::mutex slots_mutex;
  std::vector<JobContext*> active;  // one slot per worker, null when idle

  std::mutex out_mutex;
  std::ofstream out;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> errors{0};
  std::atomic<bool> done{false};

  void arm(unsigned slot, JobContext* ctx, double timeout) {
    std::lock_guard<std::mutex> lock(slots_mutex);
    ctx->timeout_ = timeout;
    if (timeout > 0) {
      ctx->deadline_ = Clock::now() + std::chrono::duration_cast<
          Clock::duration>(std::chrono::duration<double>(timeout));
      ctx->has_deadline_ = true;
    }
    active[slot] = ctx;
  }

  void disarm(unsigned slot) {
    std::lock_guard<std::mutex> lock(slots_mutex);
    active[slot] = nullptr;
  }

  void watchdog_tick() {
    std::lock_guard<std::mutex> lock(slots_mutex);
    const auto now = Clock::now();
    for (JobContext* ctx : active) {
      if (ctx && ctx->has_deadline_ && now >= ctx->deadline_) {
        ctx->cancel_.store(true, std::memory_order_relaxed);
      }
    }
  }

  void checkpoint(const JobRecord& record) {
    if (!out.is_open()) return;
    std::lock_guard<std::mutex> lock(out_mutex);
    out << job_record_json(record) << "\n";
    out.flush();  // survive a kill mid-campaign
  }
};

CampaignSummary run_campaign(const std::vector<CampaignJob>& jobs,
                             const CampaignOptions& options) {
  {
    std::unordered_set<std::string> keys;
    for (const CampaignJob& job : jobs) {
      if (!keys.insert(job.key).second) {
        throw std::invalid_argument("run_campaign: duplicate job key '" +
                                    job.key + "'");
      }
    }
  }

  CampaignSummary summary;
  summary.records.resize(jobs.size());
  const auto campaign_start = Clock::now();

  // Restore terminal records from a previous (possibly killed) run.
  std::unordered_map<std::string, JobRecord> restored;
  if (options.resume && !options.out_path.empty()) {
    std::ifstream in(options.out_path);
    std::string line;
    while (std::getline(in, line)) {
      const std::string key = json_string_field(line, "key");
      const std::string status = json_string_field(line, "status");
      if (key.empty() || (status != "ok" && status != "error")) continue;
      JobRecord record;
      record.key = key;
      record.status = "cached";
      record.error = json_string_field(line, "error");
      record.payload = json_object_field(line, "data");
      record.queue_seconds = json_number_field(line, "queue_seconds");
      record.run_seconds = json_number_field(line, "run_seconds");
      restored[key] = std::move(record);  // last line wins
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto it = restored.find(jobs[i].key);
    if (it != restored.end()) {
      summary.records[i] = it->second;
      ++summary.cached;
    } else {
      pending.push_back(i);
    }
  }

  CampaignState state;
  if (!options.out_path.empty()) {
    state.out.open(options.out_path, std::ios::app);
    if (!state.out) {
      throw std::runtime_error("run_campaign: cannot open " +
                               options.out_path);
    }
  }

  const unsigned workers = std::max<unsigned>(
      1, std::min<unsigned>(std::min<unsigned>(options.jobs, 256),
                            std::max<std::size_t>(pending.size(), 1)));
  state.active.assign(workers, nullptr);

  auto worker_fn = [&](unsigned slot) {
    for (;;) {
      const std::size_t n =
          state.next.fetch_add(1, std::memory_order_relaxed);
      if (n >= pending.size()) return;
      const std::size_t index = pending[n];
      const CampaignJob& job = jobs[index];

      JobRecord record;
      record.key = job.key;
      const auto start = Clock::now();
      record.queue_seconds = seconds_between(campaign_start, start);

      JobContext ctx;
      state.arm(slot, &ctx, job.timeout_seconds);
      try {
        record.payload = job.run ? job.run(ctx) : std::string();
        record.status = "ok";
      } catch (const std::exception& e) {
        record.status = "error";
        record.error = e.what();
        state.errors.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        record.status = "error";
        record.error = "unknown exception";
        state.errors.fetch_add(1, std::memory_order_relaxed);
      }
      state.disarm(slot);
      record.run_seconds = seconds_between(start, Clock::now());

      state.checkpoint(record);
      summary.records[index] = std::move(record);  // distinct indices: safe
    }
  };

  std::thread watchdog([&state] {
    while (!state.done.load(std::memory_order_relaxed)) {
      state.watchdog_tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_fn, w);
  for (std::thread& t : pool) t.join();
  state.done.store(true, std::memory_order_relaxed);
  watchdog.join();

  summary.completed = pending.size();
  summary.errors = state.errors.load();
  summary.seconds = seconds_between(campaign_start, Clock::now());
  return summary;
}

}  // namespace ril::runtime
