// Parallel, crash-isolated campaign runner.
//
// The paper's evaluation is a *campaign*: hundreds of independent
// (benchmark x scheme x budget) cells, each seconds-to-hours of solver
// work. run_campaign() executes a declarative list of such cells on a
// thread pool and makes the sweep survivable:
//
//  * work queue — `jobs` worker threads drain the cell list; each cell is
//    an independent closure, so the pool saturates the machine without the
//    cells knowing about each other;
//  * per-job deadline — a watchdog thread raises the job's JobContext
//    cancel flag when its wall-clock budget passes; cells wire that flag
//    into AttackBudget / SatAttackOptions::cancel so an in-flight CDCL
//    search unwinds cooperatively instead of being killed;
//  * exception isolation — a throwing cell is recorded as
//    `"status":"error"` with the exception text; the sweep continues;
//  * JSONL checkpoint/resume — every finished cell is appended (and
//    flushed) to `out_path` as one JSON line; with `resume`, keys already
//    present in that file are not re-run and their recorded payloads are
//    returned as `"cached"` records, so a killed campaign restarts where
//    it died.
//
// The pool itself is the reusable `JobQueue`: a long-lived submit/complete
// worker pool with the deadline watchdog and cooperative cancellation
// built in. run_campaign() is one batch client of it; the attack service
// daemon (src/service) keeps one alive for its whole process lifetime.
//
// Cells stay deterministic: a cell derives everything from its own seeds,
// so the same job list produces the same verdicts at any `jobs` width —
// only the wall clock changes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ril::runtime {

/// Cooperative context handed to a running campaign job. The runner raises
/// the cancel flag when the job's wall-clock deadline passes or the whole
/// campaign is aborted; job bodies hand cancel_flag() to
/// SatAttackOptions::cancel / AttackBudget / SolverPortfolio so in-flight
/// solves unwind instead of overrunning the deadline.
class JobContext {
 public:
  const std::atomic<bool>& cancel_flag() const { return cancel_; }
  bool cancelled() const { return cancel_.load(std::memory_order_relaxed); }
  /// The job's deadline in seconds (0 = none).
  double timeout_seconds() const { return timeout_; }

 private:
  friend class JobQueue;
  std::atomic<bool> cancel_{false};
  double timeout_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// One cell of a campaign. `key` must be unique within the job list; it is
/// the checkpoint identity (resume skips keys already present in the JSONL
/// stream). `run` returns the cell's JSON payload *fields* — a fragment
/// like `"cell":"0.61","iterations":12` without enclosing braces — which
/// the runner wraps into the record's `"data"` object.
struct CampaignJob {
  std::string key;
  /// Per-job wall-clock deadline in seconds; 0 disables the watchdog.
  double timeout_seconds = 0;
  std::function<std::string(JobContext&)> run;
};

/// Result of one cell, either executed now or restored from the JSONL
/// stream (`status == "cached"`).
struct JobRecord {
  std::string key;
  std::string status;  ///< "ok" | "error" | "cached"
  std::string error;   ///< exception text when status == "error"
  std::string payload; ///< the job's JSON fields (empty on error)
  double queue_seconds = 0;  ///< enqueue -> start wait
  double run_seconds = 0;    ///< start -> finish
};

/// Serializes one record as a single JSON line (stable key order):
/// {"key":...,"status":...,"queue_seconds":...,"run_seconds":...,
///  ["error":...,]["data":{<payload>}]}
std::string job_record_json(const JobRecord& record);

/// Append-only JSONL stream with write-failure detection. Every line is
/// flushed so the stream survives a kill mid-run; a failed write (disk
/// full, I/O error) is *counted* instead of silently dropped — the first
/// failure also warns once on stderr, because a checkpoint stream that
/// loses records makes a later --resume re-run or lose jobs. The stream
/// error state is cleared after each failure so later records still get a
/// chance to land. Thread-safe.
class JsonlWriter {
 public:
  JsonlWriter() = default;

  /// Opens `path` for append; throws std::runtime_error when the file
  /// cannot be opened.
  void open(const std::string& path);
  bool is_open() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  /// Appends one line (a newline is added) and flushes. Returns false when
  /// the write failed; the failure is counted and warned once.
  bool write_line(const std::string& line);

  /// Lines that failed to reach disk.
  std::size_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
  std::atomic<std::size_t> failures_{0};
  bool warned_ = false;
};

/// Long-lived worker pool with per-job wall-clock deadlines, a 10 ms
/// watchdog, cooperative cancellation, and completion callbacks. submit()
/// enqueues a job; a worker runs it inside an exception-isolating frame
/// and hands the finished JobRecord to the job's `done` callback (invoked
/// on the worker thread — callbacks synchronize their own state).
/// cancel_all() raises every running job's cancel flag and fails queued
/// jobs with status "error"/"cancelled". The destructor cancels and joins.
class JobQueue {
 public:
  explicit JobQueue(unsigned workers);
  ~JobQueue();

  using RunFn = std::function<std::string(JobContext&)>;
  using DoneFn = std::function<void(JobRecord&&)>;

  /// Enqueues one job. `timeout_seconds` <= 0 disables the deadline.
  void submit(std::string key, double timeout_seconds, RunFn run,
              DoneFn done);

  /// Blocks until the queue is empty and no job is running.
  void wait_idle();

  /// Cancels running jobs (cooperatively) and fails queued ones. New
  /// submissions after this call are failed immediately.
  void cancel_all();

  unsigned workers() const { return static_cast<unsigned>(pool_.size()); }
  /// Jobs currently queued or running.
  std::size_t in_flight() const;

 private:
  struct Pending {
    std::string key;
    double timeout = 0;
    RunFn run;
    DoneFn done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(unsigned slot);
  void watchdog_loop();
  void arm(unsigned slot, JobContext* ctx, double timeout);
  void disarm(unsigned slot);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Pending> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  bool cancelling_ = false;

  std::mutex slots_mutex_;
  std::vector<JobContext*> active_;  // one slot per worker, null when idle

  std::vector<std::thread> pool_;
  std::thread watchdog_;
};

struct CampaignOptions {
  /// Worker threads; clamped to [1, 256].
  unsigned jobs = 1;
  /// JSONL stream path; empty disables checkpointing.
  std::string out_path;
  /// Skip jobs whose key already has a terminal ("ok"/"error") line in
  /// out_path; their payloads are returned as "cached" records.
  bool resume = false;
};

struct CampaignSummary {
  /// One record per submitted job, in submission order.
  std::vector<JobRecord> records;
  std::size_t completed = 0;  ///< ran in this invocation
  std::size_t cached = 0;     ///< restored from the JSONL stream
  std::size_t errors = 0;     ///< jobs that threw (this invocation)
  /// JSONL checkpoint lines that failed to reach disk (disk full / I/O
  /// error); those cells' results are *not* resumable.
  std::size_t checkpoint_failures = 0;
  double seconds = 0;         ///< campaign wall clock
};

/// Runs the jobs; see file comment. Throws std::invalid_argument on
/// duplicate job keys (resume identity would be ambiguous).
CampaignSummary run_campaign(const std::vector<CampaignJob>& jobs,
                             const CampaignOptions& options);

// ----- minimal JSONL field access (the subset job_record_json emits) -----

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& text);

/// Extracts the string value of `"field":"..."` from a flat JSON object
/// line. Returns "" when the field is absent.
std::string json_string_field(const std::string& line,
                              const std::string& field);

/// Extracts the numeric value of `"field":N`. Returns `fallback` when the
/// field is absent or non-numeric. Locale-independent: always parses the
/// JSON ("C" locale) number format, regardless of LC_NUMERIC.
double json_number_field(const std::string& line, const std::string& field,
                         double fallback = 0);

/// Extracts the body of `"field":{...}` (without the braces) via brace
/// matching that ignores braces inside strings. Returns "" when absent.
std::string json_object_field(const std::string& line,
                              const std::string& field);

}  // namespace ril::runtime
