// Parallel, crash-isolated campaign runner.
//
// The paper's evaluation is a *campaign*: hundreds of independent
// (benchmark x scheme x budget) cells, each seconds-to-hours of solver
// work. run_campaign() executes a declarative list of such cells on a
// thread pool and makes the sweep survivable:
//
//  * work queue — `jobs` worker threads drain the cell list; each cell is
//    an independent closure, so the pool saturates the machine without the
//    cells knowing about each other;
//  * per-job deadline — a watchdog thread raises the job's JobContext
//    cancel flag when its wall-clock budget passes; cells wire that flag
//    into AttackBudget / SatAttackOptions::cancel so an in-flight CDCL
//    search unwinds cooperatively instead of being killed;
//  * exception isolation — a throwing cell is recorded as
//    `"status":"error"` with the exception text; the sweep continues;
//  * JSONL checkpoint/resume — every finished cell is appended (and
//    flushed) to `out_path` as one JSON line; with `resume`, keys already
//    present in that file are not re-run and their recorded payloads are
//    returned as `"cached"` records, so a killed campaign restarts where
//    it died.
//
// Cells stay deterministic: a cell derives everything from its own seeds,
// so the same job list produces the same verdicts at any `jobs` width —
// only the wall clock changes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ril::runtime {

/// Cooperative context handed to a running campaign job. The runner raises
/// the cancel flag when the job's wall-clock deadline passes or the whole
/// campaign is aborted; job bodies hand cancel_flag() to
/// SatAttackOptions::cancel / AttackBudget / SolverPortfolio so in-flight
/// solves unwind instead of overrunning the deadline.
class JobContext {
 public:
  const std::atomic<bool>& cancel_flag() const { return cancel_; }
  bool cancelled() const { return cancel_.load(std::memory_order_relaxed); }
  /// The job's deadline in seconds (0 = none).
  double timeout_seconds() const { return timeout_; }

 private:
  friend struct CampaignState;
  std::atomic<bool> cancel_{false};
  double timeout_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// One cell of a campaign. `key` must be unique within the job list; it is
/// the checkpoint identity (resume skips keys already present in the JSONL
/// stream). `run` returns the cell's JSON payload *fields* — a fragment
/// like `"cell":"0.61","iterations":12` without enclosing braces — which
/// the runner wraps into the record's `"data"` object.
struct CampaignJob {
  std::string key;
  /// Per-job wall-clock deadline in seconds; 0 disables the watchdog.
  double timeout_seconds = 0;
  std::function<std::string(JobContext&)> run;
};

/// Result of one cell, either executed now or restored from the JSONL
/// stream (`status == "cached"`).
struct JobRecord {
  std::string key;
  std::string status;  ///< "ok" | "error" | "cached"
  std::string error;   ///< exception text when status == "error"
  std::string payload; ///< the job's JSON fields (empty on error)
  double queue_seconds = 0;  ///< enqueue -> start wait
  double run_seconds = 0;    ///< start -> finish
};

/// Serializes one record as a single JSON line (stable key order):
/// {"key":...,"status":...,"queue_seconds":...,"run_seconds":...,
///  ["error":...,]["data":{<payload>}]}
std::string job_record_json(const JobRecord& record);

struct CampaignOptions {
  /// Worker threads; clamped to [1, 256].
  unsigned jobs = 1;
  /// JSONL stream path; empty disables checkpointing.
  std::string out_path;
  /// Skip jobs whose key already has a terminal ("ok"/"error") line in
  /// out_path; their payloads are returned as "cached" records.
  bool resume = false;
};

struct CampaignSummary {
  /// One record per submitted job, in submission order.
  std::vector<JobRecord> records;
  std::size_t completed = 0;  ///< ran in this invocation
  std::size_t cached = 0;     ///< restored from the JSONL stream
  std::size_t errors = 0;     ///< jobs that threw (this invocation)
  double seconds = 0;         ///< campaign wall clock
};

/// Runs the jobs; see file comment. Throws std::invalid_argument on
/// duplicate job keys (resume identity would be ambiguous).
CampaignSummary run_campaign(const std::vector<CampaignJob>& jobs,
                             const CampaignOptions& options);

// ----- minimal JSONL field access (the subset job_record_json emits) -----

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& text);

/// Extracts the string value of `"field":"..."` from a flat JSON object
/// line. Returns "" when the field is absent.
std::string json_string_field(const std::string& line,
                              const std::string& field);

/// Extracts the numeric value of `"field":N`. Returns `fallback` when the
/// field is absent or non-numeric.
double json_number_field(const std::string& line, const std::string& field,
                         double fallback = 0);

/// Extracts the body of `"field":{...}` (without the braces) via brace
/// matching that ignores braces inside strings. Returns "" when absent.
std::string json_object_field(const std::string& line,
                              const std::string& field);

}  // namespace ril::runtime
