// Structural statistics for netlists (sizes, gate histogram, depth).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace ril::netlist {

struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t key_inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;
  std::size_t dffs = 0;
  std::size_t depth = 0;
  std::map<GateType, std::size_t> histogram;
};

NetlistStats compute_stats(const Netlist& netlist);

/// One-line human-readable summary.
std::string format_stats(const NetlistStats& stats);

}  // namespace ril::netlist
