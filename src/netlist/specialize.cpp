#include "netlist/specialize.hpp"

#include <stdexcept>

namespace ril::netlist {

Netlist specialize_inputs(const Netlist& circuit,
                          const std::vector<NodeId>& fixed_inputs,
                          const std::vector<bool>& values) {
  if (fixed_inputs.size() != values.size()) {
    throw std::invalid_argument("specialize_inputs: value count mismatch");
  }
  // Constant per node id, fixed inputs only.
  std::vector<int> fixed_value(circuit.node_count(), -1);
  std::vector<char> is_key(circuit.node_count(), 0);
  for (NodeId id : circuit.key_inputs()) is_key[id] = 1;
  for (std::size_t i = 0; i < fixed_inputs.size(); ++i) {
    const NodeId id = fixed_inputs[i];
    if (id >= circuit.node_count() ||
        circuit.type(id) != GateType::kInput) {
      throw std::invalid_argument("specialize_inputs: not a primary input");
    }
    if (is_key[id]) {
      throw std::invalid_argument(
          "specialize_inputs: key inputs must stay symbolic");
    }
    fixed_value[id] = values[i] ? 1 : 0;
  }

  Netlist out(circuit.name() + "_cofactor");
  out.reserve(circuit.node_count() + 1, circuit.fanin_pool_size());
  std::vector<NodeId> remap(circuit.node_count(), kNoNode);
  // Preserve the primary-input order; fixed inputs become constants.
  for (NodeId id : circuit.inputs()) {
    if (fixed_value[id] >= 0) {
      remap[id] = out.add_const(fixed_value[id] == 1);
      out.rename(remap[id], circuit.name_of(id) + "_fixed");
    } else if (is_key[id]) {
      remap[id] = out.add_key_input(circuit.name_of(id));
    } else {
      remap[id] = out.add_input(circuit.name_of(id));
    }
  }
  // DFFs are topological sources; fanins are patched at the end.
  NodeId placeholder = kNoNode;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (circuit.type(id) != GateType::kDff) continue;
    if (placeholder == kNoNode) placeholder = out.add_const(false);
    remap[id] =
        out.add_gate(GateType::kDff, {placeholder}, circuit.name_of(id));
  }
  // Cofactors exist to be encoded, not written out: nodes still carrying a
  // lazy auto-name are cloned unnamed so no string work happens here.
  std::vector<NodeId> fanins;
  for (NodeId id : circuit.topological_order()) {
    if (remap[id] != kNoNode) continue;
    const GateType type = circuit.type(id);
    switch (type) {
      case GateType::kInput:
        break;  // handled above
      case GateType::kConst0:
      case GateType::kConst1:
        remap[id] = out.add_const(type == GateType::kConst1);
        if (!circuit.is_auto_named(id)) {
          out.rename(remap[id], circuit.name_of(id));
        }
        break;
      default: {
        fanins.clear();
        for (NodeId f : circuit.fanins(id)) fanins.push_back(remap[f]);
        const std::string_view name =
            circuit.is_auto_named(id) ? std::string_view{}
                                      : std::string_view(circuit.name_of(id));
        if (type == GateType::kLut) {
          remap[id] = out.add_lut(std::span<const NodeId>(fanins),
                                  circuit.lut_mask(id), name);
        } else {
          remap[id] =
              out.add_gate(type, std::span<const NodeId>(fanins), name);
        }
      }
    }
  }
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (circuit.type(id) == GateType::kDff) {
      out.set_fanin(remap[id], 0, remap[circuit.fanin(id, 0)]);
    }
  }
  for (NodeId id : circuit.outputs()) out.mark_output(remap[id]);
  return out;
}

}  // namespace ril::netlist
