#include "netlist/specialize.hpp"

#include <stdexcept>

namespace ril::netlist {

Netlist specialize_inputs(const Netlist& circuit,
                          const std::vector<NodeId>& fixed_inputs,
                          const std::vector<bool>& values) {
  if (fixed_inputs.size() != values.size()) {
    throw std::invalid_argument("specialize_inputs: value count mismatch");
  }
  // Constant per node id, fixed inputs only.
  std::vector<int> fixed_value(circuit.node_count(), -1);
  std::vector<char> is_key(circuit.node_count(), 0);
  for (NodeId id : circuit.key_inputs()) is_key[id] = 1;
  for (std::size_t i = 0; i < fixed_inputs.size(); ++i) {
    const NodeId id = fixed_inputs[i];
    if (id >= circuit.node_count() ||
        circuit.node(id).type != GateType::kInput) {
      throw std::invalid_argument("specialize_inputs: not a primary input");
    }
    if (is_key[id]) {
      throw std::invalid_argument(
          "specialize_inputs: key inputs must stay symbolic");
    }
    fixed_value[id] = values[i] ? 1 : 0;
  }

  Netlist out(circuit.name() + "_cofactor");
  std::vector<NodeId> remap(circuit.node_count(), kNoNode);
  // Preserve the primary-input order; fixed inputs become constants.
  for (NodeId id : circuit.inputs()) {
    if (fixed_value[id] >= 0) {
      remap[id] = out.add_const(fixed_value[id] == 1);
      out.rename(remap[id], circuit.node(id).name + "_fixed");
    } else if (is_key[id]) {
      remap[id] = out.add_key_input(circuit.node(id).name);
    } else {
      remap[id] = out.add_input(circuit.node(id).name);
    }
  }
  // DFFs are topological sources; fanins are patched at the end.
  NodeId placeholder = kNoNode;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (circuit.node(id).type != GateType::kDff) continue;
    if (placeholder == kNoNode) placeholder = out.add_const(false);
    remap[id] =
        out.add_gate(GateType::kDff, {placeholder}, circuit.node(id).name);
  }
  for (NodeId id : circuit.topological_order()) {
    const Node& node = circuit.node(id);
    if (remap[id] != kNoNode) continue;
    switch (node.type) {
      case GateType::kInput:
        break;  // handled above
      case GateType::kConst0:
      case GateType::kConst1:
        remap[id] = out.add_const(node.type == GateType::kConst1);
        out.rename(remap[id], node.name);
        break;
      default: {
        std::vector<NodeId> fanins;
        fanins.reserve(node.fanins.size());
        for (NodeId f : node.fanins) fanins.push_back(remap[f]);
        if (node.type == GateType::kLut) {
          remap[id] = out.add_lut(std::move(fanins), node.lut_mask, node.name);
        } else {
          remap[id] = out.add_gate(node.type, std::move(fanins), node.name);
        }
      }
    }
  }
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (circuit.node(id).type == GateType::kDff) {
      out.node(remap[id]).fanins[0] = remap[circuit.node(id).fanins[0]];
    }
  }
  for (NodeId id : circuit.outputs()) out.mark_output(remap[id]);
  return out;
}

}  // namespace ril::netlist
