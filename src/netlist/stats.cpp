#include "netlist/stats.hpp"

#include <sstream>

namespace ril::netlist {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.inputs = netlist.inputs().size();
  stats.key_inputs = netlist.key_inputs().size();
  stats.outputs = netlist.outputs().size();
  stats.gates = netlist.gate_count();
  stats.dffs = netlist.dff_count();
  stats.depth = netlist.depth();
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    ++stats.histogram[netlist.node(id).type];
  }
  return stats;
}

std::string format_stats(const NetlistStats& stats) {
  std::ostringstream out;
  out << "pi=" << stats.inputs - stats.key_inputs
      << " key=" << stats.key_inputs << " po=" << stats.outputs
      << " gates=" << stats.gates << " dff=" << stats.dffs
      << " depth=" << stats.depth;
  return out.str();
}

}  // namespace ril::netlist
