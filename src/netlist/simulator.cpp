#include "netlist/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "netlist/lut_rows.hpp"

namespace ril::netlist {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist),
      order_(netlist.topological_order()),
      values_(netlist.node_count(), 0),
      state_(netlist.node_count(), 0) {
  std::size_t max_arity = 1;
  for (NodeId id = 0; id < netlist_.node_count(); ++id) {
    max_arity = std::max(max_arity, netlist_.node(id).fanins.size());
  }
  operands_.resize(max_arity);
}

void Simulator::set_input(NodeId input, std::uint64_t patterns) {
  if (input >= values_.size() ||
      netlist_.node(input).type != GateType::kInput) {
    throw std::invalid_argument("set_input: not a primary input");
  }
  values_[input] = patterns;
}

void Simulator::set_input_all(NodeId input, bool value) {
  set_input(input, value ? ~std::uint64_t{0} : 0);
}

void Simulator::evaluate() {
  std::vector<std::uint64_t>& operands = operands_;
  for (NodeId id : order_) {
    const Node& node = netlist_.node(id);
    switch (node.type) {
      case GateType::kInput:
        break;  // already set
      case GateType::kDff:
        values_[id] = state_[id];
        break;
      case GateType::kMux: {
        const std::uint64_t s = values_[node.fanins[0]];
        const std::uint64_t d0 = values_[node.fanins[1]];
        const std::uint64_t d1 = values_[node.fanins[2]];
        values_[id] = (s & d1) | (~s & d0);
        break;
      }
      case GateType::kLut: {
        const std::size_t k = node.fanins.size();
        std::uint64_t result = 0;
        for_each_lut_minterm(node.lut_mask, k, [&](std::uint64_t row) {
          std::uint64_t match = ~std::uint64_t{0};
          for (std::size_t j = 0; j < k; ++j) {
            const std::uint64_t v = values_[node.fanins[j]];
            match &= lut_fanin_positive(row, j) ? v : ~v;
          }
          result |= match;
        });
        values_[id] = result;
        break;
      }
      default: {
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          operands[i] = values_[node.fanins[i]];
        }
        values_[id] =
            eval_word(node.type, operands.data(), node.fanins.size());
      }
    }
  }
}

void Simulator::step() {
  evaluate();
  for (NodeId id = 0; id < netlist_.node_count(); ++id) {
    const Node& node = netlist_.node(id);
    if (node.type == GateType::kDff) {
      state_[id] = values_[node.fanins[0]];
    }
  }
}

void Simulator::reset_state() {
  std::fill(state_.begin(), state_.end(), 0);
}

std::vector<std::uint64_t> Simulator::output_words() const {
  std::vector<std::uint64_t> out;
  out.reserve(netlist_.outputs().size());
  for (NodeId id : netlist_.outputs()) out.push_back(values_[id]);
  return out;
}

std::vector<bool> evaluate_once(const Netlist& netlist,
                                const std::vector<bool>& input_values) {
  Simulator sim(netlist);
  return evaluate_once(sim, input_values);
}

std::vector<bool> evaluate_with_key(const Netlist& netlist,
                                    const std::vector<bool>& data_values,
                                    const std::vector<bool>& key_values) {
  Simulator sim(netlist);
  return evaluate_with_key(sim, data_values, key_values);
}

std::vector<bool> evaluate_once(Simulator& sim,
                                const std::vector<bool>& input_values) {
  const Netlist& netlist = sim.netlist();
  if (input_values.size() != netlist.inputs().size()) {
    throw std::invalid_argument("evaluate_once: input count mismatch");
  }
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    sim.set_input_all(netlist.inputs()[i], input_values[i]);
  }
  sim.evaluate();
  std::vector<bool> out;
  out.reserve(netlist.outputs().size());
  for (NodeId id : netlist.outputs()) out.push_back(sim.value(id) & 1);
  return out;
}

std::vector<bool> evaluate_with_key(Simulator& sim,
                                    const std::vector<bool>& data_values,
                                    const std::vector<bool>& key_values) {
  const Netlist& netlist = sim.netlist();
  const auto data_inputs = netlist.data_inputs();
  if (data_values.size() != data_inputs.size() ||
      key_values.size() != netlist.key_inputs().size()) {
    throw std::invalid_argument("evaluate_with_key: size mismatch");
  }
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    sim.set_input_all(data_inputs[i], data_values[i]);
  }
  for (std::size_t i = 0; i < key_values.size(); ++i) {
    sim.set_input_all(netlist.key_inputs()[i], key_values[i]);
  }
  sim.evaluate();
  std::vector<bool> out;
  out.reserve(netlist.outputs().size());
  for (NodeId id : netlist.outputs()) out.push_back(sim.value(id) & 1);
  return out;
}

}  // namespace ril::netlist
