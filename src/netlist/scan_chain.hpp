// Scan-chain insertion and a cycle-accurate scan tester.
//
// Design-for-test substrate behind the paper's threat model: the SAT
// attacker reaches a sequential circuit's internal state through the scan
// chain (shift in a state, apply primary inputs, capture, shift out). Scan
// insertion rewrites every DFF as
//     d' = MUX(scan_en, d_functional, previous_flop_output)
// threading the flops into one chain from SCAN_IN to SCAN_OUT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"

namespace ril::netlist {

struct ScanInsertion {
  Netlist netlist;                 ///< copy with the chain stitched in
  NodeId scan_enable = kNoNode;    ///< SCAN_EN primary input
  NodeId scan_in = kNoNode;        ///< SCAN_IN primary input
  NodeId scan_out = kNoNode;       ///< SCAN_OUT primary output node
  std::vector<NodeId> chain;       ///< DFF nodes, scan-in -> scan-out order
};

/// Stitches all DFFs of `sequential` into one scan chain (original DFF
/// order). Throws if the circuit has no DFFs.
ScanInsertion insert_scan_chain(const Netlist& sequential);

/// Drives a scan-inserted netlist like an ATE would.
class ScanTester {
 public:
  explicit ScanTester(const ScanInsertion& design);

  std::size_t chain_length() const { return design_.chain.size(); }

  /// Shifts a full state image into the chain (element 0 ends up in the
  /// scan-in-nearest flop, i.e. chain[0]).
  void shift_in(const std::vector<bool>& state);
  /// One functional-capture cycle with the given primary inputs (order =
  /// data inputs of the original circuit, excluding scan pins).
  void capture(const std::vector<bool>& primary_inputs);
  /// Shifts the chain out (and back in circularly, preserving state).
  std::vector<bool> shift_out();
  /// Primary-output values observed during the last capture cycle.
  const std::vector<bool>& last_outputs() const { return last_outputs_; }

 private:
  void clock_cycle(bool scan_en, bool scan_in_bit);

  const ScanInsertion& design_;
  Simulator simulator_;
  std::vector<NodeId> functional_inputs_;
  std::vector<bool> last_outputs_;
};

}  // namespace ril::netlist
