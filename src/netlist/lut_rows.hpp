// Shared truth-table row expansion for k-input LUT masks.
//
// A LUT mask stores one output bit per input row: row r (0 <= r < 2^k) is
// the assignment where fanin j reads bit ((r >> j) & 1). Everything that
// expands a mask into its set rows -- the word-parallel simulator, the
// Verilog sum-of-products writer -- must agree on that bit order, or the
// same .bench file means different functions in different backends. This
// header is the single definition of that order.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ril::netlist {

/// Invokes fn(row) for every set truth-table row (minterm) of a k-input
/// LUT mask, in ascending row order. k must be <= 6 (mask fits 64 bits);
/// bits of `mask` above row 2^k - 1 are ignored.
template <typename Fn>
inline void for_each_lut_minterm(std::uint64_t mask, std::size_t k, Fn&& fn) {
  const std::uint64_t rows = std::uint64_t{1} << k;
  for (std::uint64_t row = 0; row < rows; ++row) {
    if ((mask >> row) & 1) fn(row);
  }
}

/// True iff fanin j appears positive (uncomplemented) in minterm `row`.
inline bool lut_fanin_positive(std::uint64_t row, std::size_t j) {
  return ((row >> j) & 1) != 0;
}

}  // namespace ril::netlist
