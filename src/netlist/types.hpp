// Basic node/gate vocabulary shared by the whole netlist layer.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace ril::netlist {

/// Identifier of a node inside one Netlist. Dense, starts at 0.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Gate/node kinds supported by the IR.
///
/// kMux fanins are ordered [sel, d0, d1] with out = sel ? d1 : d0.
/// kLut holds up to 6 fanins plus a truth-table mask; bit i of the mask is the
/// output for the input minterm i, where fanin[0] is the least-significant bit.
/// kDff has a single fanin (the next-state input); its output is the stored
/// state. SAT-attack flows cut DFFs into pseudo-PI/PO pairs (see
/// Netlist::combinational_core()).
enum class GateType : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,
  kDff,
  kLut,
};

/// Human-readable mnemonic used by the .bench writer and debug dumps.
std::string_view to_string(GateType type);

/// Number of fanins a gate type requires; 0 means "variadic, >= 2" for the
/// associative gates, and is reported via is_variadic() instead.
bool is_variadic(GateType type);

/// True for AND/NAND/OR/NOR/XOR/XNOR (accept 2+ fanins).
bool is_logic_op(GateType type);

/// Evaluate a gate over word-parallel operand values (64 patterns at once).
/// Only valid for fixed-arity and variadic logic ops, not kLut/kMux/kDff.
std::uint64_t eval_word(GateType type, const std::uint64_t* operands,
                        std::size_t count);

}  // namespace ril::netlist
