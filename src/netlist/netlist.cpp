#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace ril::netlist {

namespace {

std::size_t fixed_arity(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    case GateType::kMux:
      return 3;
    default:
      return static_cast<std::size_t>(-1);  // variadic / lut
  }
}

bool commutative(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t Netlist::intern_name(std::string_view name, NodeId id) const {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Netlist: duplicate node name '" +
                                std::string(name) + "'");
  }
  const std::uint32_t index = static_cast<std::uint32_t>(name_table_.size());
  name_table_.emplace_back(name);
  by_name_.emplace(std::string_view(name_table_.back()), id);
  return index;
}

void Netlist::check_fanins(std::span<const NodeId> fanins,
                           const char* what) const {
  for (NodeId f : fanins) {
    if (f >= types_.size()) {
      throw std::invalid_argument(std::string(what) + ": bad fanin");
    }
  }
}

NodeId Netlist::append_node(GateType type, std::span<const NodeId> fanins,
                            std::uint64_t lut_mask, std::string_view name) {
  const NodeId id = static_cast<NodeId>(types_.size());
  std::uint32_t ref;
  if (name.empty()) {
    ref = kAutoFlag | auto_counter_++;
  } else {
    ref = intern_name(name, id);
  }
  types_.push_back(type);
  fanin_offset_.push_back(static_cast<std::uint32_t>(fanin_pool_.size()));
  fanin_count_.push_back(static_cast<std::uint32_t>(fanins.size()));
  lut_mask_.push_back(lut_mask);
  name_ref_.push_back(ref);
  fanin_pool_.insert(fanin_pool_.end(), fanins.begin(), fanins.end());
  is_key_.push_back(false);
  return id;
}

std::string Netlist::fresh_name(std::string_view stem) {
  std::string candidate;
  do {
    candidate = std::string(stem) + "_" + std::to_string(name_counter_++);
  } while (by_name_.contains(candidate));
  return candidate;
}

const std::string& Netlist::name_of(NodeId id) const {
  std::uint32_t ref = name_ref_[id];
  if (ref & kAutoFlag) {
    // Materialize the auto-name now, deduping against user-supplied names
    // through the interned table (a file may legitimately contain "__n_7").
    const std::uint32_t seq = ref & ~kAutoFlag;
    std::string candidate = "__n_" + std::to_string(seq);
    for (std::uint32_t probe = 0; by_name_.contains(candidate); ++probe) {
      candidate = "__n_" + std::to_string(seq) + "__r" + std::to_string(probe);
    }
    ref = intern_name(candidate, id);
    name_ref_[id] = ref;
  }
  return name_table_[ref];
}

NodeId Netlist::add_input(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("add_input: inputs need explicit names");
  }
  const NodeId id = append_node(GateType::kInput, {}, 0, name);
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_key_input(const std::string& name) {
  const NodeId id = add_input(name);
  is_key_[id] = true;
  key_inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value) {
  const GateType type = value ? GateType::kConst1 : GateType::kConst0;
  if (strash_enabled_) {
    if (auto hit = strash_lookup(type, 0, {})) return *hit;
  }
  const NodeId id =
      append_node(type, {}, 0, fresh_name(value ? "__const1" : "__const0"));
  if (strash_enabled_) strash_insert(id);
  return id;
}

NodeId Netlist::add_gate(GateType type, std::span<const NodeId> fanins,
                         std::string_view name) {
  if (type == GateType::kInput || type == GateType::kLut) {
    throw std::invalid_argument("add_gate: use add_input/add_lut");
  }
  const std::size_t arity = fixed_arity(type);
  if (arity != static_cast<std::size_t>(-1)) {
    if (fanins.size() != arity) {
      throw std::invalid_argument("add_gate: bad arity for " +
                                  std::string(to_string(type)));
    }
  } else if (fanins.size() < 2) {
    throw std::invalid_argument("add_gate: variadic gate needs >= 2 fanins");
  }
  check_fanins(fanins, "add_gate");
  if (strash_enabled_ && name.empty() && dedupable(type)) {
    if (auto hit = strash_lookup(type, 0, fanins)) {
      ++strash_hits_;
      return *hit;
    }
    const NodeId id = append_node(type, fanins, 0, name);
    strash_insert(id);
    return id;
  }
  return append_node(type, fanins, 0, name);
}

NodeId Netlist::add_mux(NodeId sel, NodeId d0, NodeId d1,
                        std::string_view name) {
  const NodeId fanins[3] = {sel, d0, d1};
  return add_gate(GateType::kMux, std::span<const NodeId>(fanins, 3), name);
}

NodeId Netlist::add_lut(std::span<const NodeId> fanins, std::uint64_t mask,
                        std::string_view name) {
  if (fanins.empty() || fanins.size() > 6) {
    throw std::invalid_argument("add_lut: arity must be 1..6");
  }
  // Reject masks wider than the truth table up front: the simulator and
  // Tseitin paths index rows [0, 2^k) and would silently ignore high bits.
  if (fanins.size() < 6) {
    const std::uint64_t rows = std::uint64_t{1} << fanins.size();
    if ((mask >> rows) != 0) {
      char buffer[80];
      std::snprintf(buffer, sizeof(buffer),
                    "add_lut: mask 0x%llx wider than 2^%zu truth-table rows",
                    static_cast<unsigned long long>(mask), fanins.size());
      throw std::invalid_argument(buffer);
    }
  }
  check_fanins(fanins, "add_lut");
  if (strash_enabled_ && name.empty()) {
    if (auto hit = strash_lookup(GateType::kLut, mask, fanins)) {
      ++strash_hits_;
      return *hit;
    }
    const NodeId id = append_node(GateType::kLut, fanins, mask, name);
    strash_insert(id);
    return id;
  }
  return append_node(GateType::kLut, fanins, mask, name);
}

void Netlist::mark_output(NodeId id) {
  if (id >= types_.size()) throw std::invalid_argument("mark_output: bad id");
  outputs_.push_back(id);
}

void Netlist::set_outputs(std::vector<NodeId> outputs) {
  for (NodeId id : outputs) {
    if (id >= types_.size()) throw std::invalid_argument("set_outputs: bad id");
  }
  outputs_ = std::move(outputs);
}

void Netlist::reserve(std::size_t nodes, std::size_t fanin_edges) {
  types_.reserve(nodes);
  fanin_offset_.reserve(nodes);
  fanin_count_.reserve(nodes);
  lut_mask_.reserve(nodes);
  name_ref_.reserve(nodes);
  is_key_.reserve(nodes);
  fanin_pool_.reserve(fanin_edges);
}

// ----- structural hashing ---------------------------------------------

void Netlist::set_structural_hashing(bool enabled) {
  strash_enabled_ = enabled;
  if (enabled) {
    strash_rebuild();
  } else {
    strash_.clear();
  }
}

std::uint64_t Netlist::strash_hash(GateType type, std::uint64_t mask,
                                   std::span<const NodeId> sorted) const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(type) * 0x100 + 1);
  h ^= mix64(mask + 0x51ed2701);
  for (NodeId f : sorted) h = mix64(h ^ (f + 0x9e37));
  return h;
}

std::span<const NodeId> Netlist::strash_canon(GateType type,
                                              std::span<const NodeId> fanins) {
  if (!commutative(type) || std::is_sorted(fanins.begin(), fanins.end())) {
    return fanins;
  }
  strash_scratch_.assign(fanins.begin(), fanins.end());
  std::sort(strash_scratch_.begin(), strash_scratch_.end());
  return strash_scratch_;
}

std::optional<NodeId> Netlist::strash_lookup(GateType type, std::uint64_t mask,
                                             std::span<const NodeId> fanins) {
  if (strash_dirty_) strash_rebuild();
  const auto canon = strash_canon(type, fanins);
  const std::uint64_t h = strash_hash(type, mask, canon);
  auto [begin, end] = strash_.equal_range(h);
  std::optional<NodeId> best;
  std::vector<NodeId> candidate;
  for (auto it = begin; it != end; ++it) {
    const NodeId id = it->second;
    if (types_[id] != type || lut_mask_[id] != mask) continue;
    const auto cf = this->fanins(id);
    if (cf.size() != canon.size()) continue;
    candidate.assign(cf.begin(), cf.end());
    if (commutative(type)) std::sort(candidate.begin(), candidate.end());
    if (!std::equal(candidate.begin(), candidate.end(), canon.begin())) {
      continue;
    }
    // Deterministic winner regardless of hash-table iteration order.
    if (!best || id < *best) best = id;
  }
  return best;
}

void Netlist::strash_insert(NodeId id) {
  // Canonicalize through a copy: strash_canon may use strash_scratch_.
  const auto canon = strash_canon(types_[id], fanins(id));
  strash_.emplace(strash_hash(types_[id], lut_mask_[id], canon), id);
}

void Netlist::strash_rebuild() {
  strash_.clear();
  strash_dirty_ = false;
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (dedupable(types_[id])) strash_insert(id);
  }
}

// ----- mutation --------------------------------------------------------

void Netlist::replace_uses(NodeId from, NodeId to) {
  // Fast path: one scan over the flat pool (orphaned slices are rewritten
  // too, harmlessly -- nothing reads them).
  for (NodeId& f : fanin_pool_) {
    if (f == from) f = to;
  }
  for (NodeId& o : outputs_) {
    if (o == from) o = to;
  }
  strash_dirty_ = true;
}

void Netlist::replace_uses_except(NodeId from, NodeId to,
                                  std::span<const NodeId> except) {
  if (except.empty()) {
    replace_uses(from, to);
    return;
  }
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (std::find(except.begin(), except.end(), id) != except.end()) continue;
    const std::uint32_t off = fanin_offset_[id];
    for (std::uint32_t k = 0; k < fanin_count_[id]; ++k) {
      if (fanin_pool_[off + k] == from) fanin_pool_[off + k] = to;
    }
  }
  for (NodeId& o : outputs_) {
    if (o == from) o = to;
  }
  strash_dirty_ = true;
}

void Netlist::rewrite_as_buf(NodeId id, NodeId src) {
  if (id >= types_.size() || src >= types_.size()) {
    throw std::invalid_argument("rewrite_as_buf: bad id");
  }
  if (types_[id] == GateType::kInput) {
    throw std::invalid_argument("rewrite_as_buf: cannot rewrite an input");
  }
  types_[id] = GateType::kBuf;
  lut_mask_[id] = 0;
  set_fanins(id, std::span<const NodeId>(&src, 1));
}

void Netlist::rewrite_as_not(NodeId id, NodeId src) {
  if (id >= types_.size() || src >= types_.size()) {
    throw std::invalid_argument("rewrite_as_not: bad id");
  }
  if (types_[id] == GateType::kInput) {
    throw std::invalid_argument("rewrite_as_not: cannot rewrite an input");
  }
  types_[id] = GateType::kNot;
  lut_mask_[id] = 0;
  set_fanins(id, std::span<const NodeId>(&src, 1));
}

void Netlist::fold_to_const(NodeId id, bool value) {
  if (id >= types_.size()) throw std::invalid_argument("fold_to_const: bad id");
  if (types_[id] == GateType::kInput) {
    throw std::invalid_argument("fold_to_const: cannot fold an input");
  }
  types_[id] = value ? GateType::kConst1 : GateType::kConst0;
  lut_mask_[id] = 0;
  fanin_count_[id] = 0;
  strash_dirty_ = true;
}

void Netlist::set_fanin(NodeId id, std::size_t index, NodeId fanin) {
  if (id >= types_.size() || fanin >= types_.size() ||
      index >= fanin_count_[id]) {
    throw std::invalid_argument("set_fanin: bad id/index");
  }
  fanin_pool_[fanin_offset_[id] + index] = fanin;
  strash_dirty_ = true;
}

void Netlist::set_fanins(NodeId id, std::span<const NodeId> fanins) {
  if (id >= types_.size()) throw std::invalid_argument("set_fanins: bad id");
  check_fanins(fanins, "set_fanins");
  if (fanins.size() <= fanin_count_[id]) {
    // Shrink (or same size) in place.
    std::copy(fanins.begin(), fanins.end(),
              fanin_pool_.begin() + fanin_offset_[id]);
    fanin_count_[id] = static_cast<std::uint32_t>(fanins.size());
  } else {
    // Growth relocates to the end of the pool; the old slice is orphaned
    // until the next sweep_dead compaction.
    fanin_offset_[id] = static_cast<std::uint32_t>(fanin_pool_.size());
    fanin_count_[id] = static_cast<std::uint32_t>(fanins.size());
    fanin_pool_.insert(fanin_pool_.end(), fanins.begin(), fanins.end());
  }
  strash_dirty_ = true;
}

void Netlist::set_gate_type(NodeId id, GateType type) {
  if (id >= types_.size()) throw std::invalid_argument("set_gate_type: bad id");
  types_[id] = type;
  strash_dirty_ = true;
}

void Netlist::set_lut_mask(NodeId id, std::uint64_t mask) {
  if (id >= types_.size()) throw std::invalid_argument("set_lut_mask: bad id");
  lut_mask_[id] = mask;
  strash_dirty_ = true;
}

void Netlist::rename(NodeId id, const std::string& name) {
  if (id >= types_.size()) throw std::invalid_argument("rename: bad id");
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second == id) return;  // renaming to itself is a no-op
    throw std::invalid_argument("rename: name exists: " + name);
  }
  const std::uint32_t ref = name_ref_[id];
  if (ref & kAutoFlag) {
    name_ref_[id] = intern_name(name, id);
    return;
  }
  // Reuse the intern slot: drop the old index entry first so the
  // string_view key never dangles while we overwrite the storage.
  by_name_.erase(std::string_view(name_table_[ref]));
  name_table_[ref] = name;
  by_name_.emplace(std::string_view(name_table_[ref]), id);
}

// ----- queries ---------------------------------------------------------

std::vector<NodeId> Netlist::data_inputs() const {
  std::vector<NodeId> result;
  result.reserve(inputs_.size() - key_inputs_.size());
  for (NodeId id : inputs_) {
    if (!is_key_[id]) result.push_back(id);
  }
  return result;
}

bool Netlist::is_key_input(NodeId id) const {
  return id < is_key_.size() && is_key_[id];
}

std::optional<NodeId> Netlist::find(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> Netlist::topological_order() const {
  // Kahn's algorithm; DFF fanin edges are ignored so sequential loops do
  // not create cycles (DFF outputs act as sources). The traversal order is
  // identical to the historical array-of-structs implementation, which
  // downstream encoders rely on for bit-exact CNF.
  const std::size_t n = types_.size();
  std::vector<std::uint32_t> pending(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (types_[id] == GateType::kDff) continue;
    pending[id] = fanin_count_[id];
  }
  const FanoutMap fo = fanouts();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId user : fo[id]) {
      if (types_[user] == GateType::kDff) continue;
      if (--pending[user] == 0) ready.push_back(user);
    }
  }
  if (order.size() != n) {
    throw std::runtime_error("topological_order: combinational cycle");
  }
  return order;
}

FanoutMap Netlist::fanouts() const {
  // Counting sort into one flat pool: consumers end up in ascending id
  // order per driver, matching the old vector-of-vectors construction.
  const std::size_t n = types_.size();
  FanoutMap fo;
  fo.offset_.assign(n + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId f : fanins(id)) ++fo.offset_[f + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) fo.offset_[i] += fo.offset_[i - 1];
  fo.pool_.resize(fo.offset_[n]);
  std::vector<std::uint32_t> cursor(fo.offset_.begin(), fo.offset_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId f : fanins(id)) fo.pool_[cursor[f]++] = id;
  }
  return fo;
}

std::size_t Netlist::gate_count() const {
  std::size_t count = 0;
  for (GateType type : types_) {
    switch (type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
        break;
      default:
        ++count;
    }
  }
  return count;
}

std::size_t Netlist::dff_count() const {
  std::size_t count = 0;
  for (GateType type : types_) {
    if (type == GateType::kDff) ++count;
  }
  return count;
}

std::size_t Netlist::depth() const {
  std::vector<std::size_t> level(types_.size(), 0);
  std::size_t max_level = 0;
  for (NodeId id : topological_order()) {
    if (types_[id] == GateType::kDff) continue;
    std::size_t lvl = 0;
    for (NodeId f : fanins(id)) lvl = std::max(lvl, level[f] + 1);
    level[id] = lvl;
    max_level = std::max(max_level, lvl);
  }
  return max_level;
}

std::size_t Netlist::approx_bytes() const {
  return types_.capacity() * sizeof(GateType) +
         fanin_offset_.capacity() * sizeof(std::uint32_t) +
         fanin_count_.capacity() * sizeof(std::uint32_t) +
         lut_mask_.capacity() * sizeof(std::uint64_t) +
         name_ref_.capacity() * sizeof(std::uint32_t) +
         fanin_pool_.capacity() * sizeof(NodeId) + is_key_.capacity() / 8;
}

std::string Netlist::validate() const {
  for (NodeId id = 0; id < types_.size(); ++id) {
    const auto node_fanins = fanins(id);
    for (NodeId f : node_fanins) {
      if (f >= types_.size()) return "node " + name_of(id) + ": fanin oob";
    }
    const std::size_t arity = fixed_arity(types_[id]);
    if (arity != static_cast<std::size_t>(-1) && node_fanins.size() != arity) {
      return "node " + name_of(id) + ": bad arity";
    }
    if (is_logic_op(types_[id]) && node_fanins.size() < 2) {
      return "node " + name_of(id) + ": variadic gate with < 2 fanins";
    }
    if (types_[id] == GateType::kLut) {
      if (node_fanins.empty() || node_fanins.size() > 6) {
        return "node " + name_of(id) + ": LUT arity out of range";
      }
      if (node_fanins.size() < 6) {
        const std::uint64_t width = std::uint64_t{1} << node_fanins.size();
        if (width < 64 && (lut_mask_[id] >> width) != 0) {
          return "node " + name_of(id) + ": LUT mask wider than 2^arity";
        }
      }
    }
  }
  for (NodeId id : outputs_) {
    if (id >= types_.size()) return "output id oob";
  }
  try {
    (void)topological_order();
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

Netlist Netlist::combinational_core() const {
  Netlist core(name_ + "_comb");
  core.reserve(types_.size() + dff_count(), fanin_pool_.size());
  std::vector<NodeId> remap(types_.size(), kNoNode);
  // Inputs (and DFF outputs as pseudo-inputs) first.
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (types_[id] == GateType::kInput) {
      remap[id] = is_key_[id] ? core.add_key_input(name_of(id))
                              : core.add_input(name_of(id));
    } else if (types_[id] == GateType::kDff) {
      remap[id] = core.add_input(name_of(id) + "_ppi");
    }
  }
  std::vector<NodeId> mapped;
  for (NodeId id : topological_order()) {
    if (remap[id] != kNoNode) continue;  // inputs / dffs done
    mapped.clear();
    for (NodeId f : fanins(id)) {
      assert(remap[f] != kNoNode);
      mapped.push_back(remap[f]);
    }
    switch (types_[id]) {
      case GateType::kConst0:
      case GateType::kConst1:
        remap[id] = core.add_const(types_[id] == GateType::kConst1);
        core.rename(remap[id], name_of(id));
        break;
      case GateType::kLut:
        remap[id] = core.add_lut(std::span<const NodeId>(mapped), lut_mask_[id],
                                 name_of(id));
        break;
      default:
        remap[id] = core.add_gate(types_[id], std::span<const NodeId>(mapped),
                                  name_of(id));
    }
  }
  for (NodeId id : outputs_) core.mark_output(remap[id]);
  // DFF inputs become pseudo-outputs.
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (types_[id] != GateType::kDff) continue;
    const NodeId src = remap[fanin(id, 0)];
    const NodeId buf = core.add_gate(GateType::kBuf, {src}, name_of(id) + "_ppo");
    core.mark_output(buf);
  }
  return core;
}

std::vector<NodeId> Netlist::sweep_dead(bool keep_all_inputs) {
  const std::size_t n = types_.size();
  std::vector<bool> live(n, false);
  std::vector<NodeId> stack(outputs_.begin(), outputs_.end());
  if (keep_all_inputs) {
    for (NodeId id : inputs_) {
      live[id] = true;  // keep the interface stable
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    for (NodeId f : fanins(id)) {
      if (!live[f]) stack.push_back(f);
    }
  }
  // DFFs reachable from outputs keep their fanin cones alive; iterate until
  // fixed point (a DFF made live above enqueues its fanin).
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < n; ++id) {
      if (!live[id] || types_[id] != GateType::kDff) continue;
      std::vector<NodeId> work = {fanin(id, 0)};
      while (!work.empty()) {
        const NodeId w = work.back();
        work.pop_back();
        if (live[w]) continue;
        live[w] = true;
        changed = true;
        for (NodeId f : fanins(w)) work.push_back(f);
      }
    }
  }

  // Compact every parallel array and the fanin pool in one pass. Fanin
  // values can reference later ids (patched DFF feedback), so remap the
  // pool contents in a second pass once the full mapping exists.
  std::vector<NodeId> remap(n, kNoNode);
  std::vector<GateType> types;
  std::vector<std::uint32_t> offset;
  std::vector<std::uint32_t> count;
  std::vector<std::uint64_t> masks;
  std::vector<std::uint32_t> refs;
  std::vector<NodeId> pool;
  std::vector<bool> keep_is_key;
  for (NodeId id = 0; id < n; ++id) {
    if (!live[id]) continue;
    remap[id] = static_cast<NodeId>(types.size());
    types.push_back(types_[id]);
    offset.push_back(static_cast<std::uint32_t>(pool.size()));
    count.push_back(fanin_count_[id]);
    masks.push_back(lut_mask_[id]);
    refs.push_back(name_ref_[id]);
    const auto f = fanins(id);
    pool.insert(pool.end(), f.begin(), f.end());
    keep_is_key.push_back(is_key_[id]);
  }
  for (NodeId& f : pool) f = remap[f];
  types_ = std::move(types);
  fanin_offset_ = std::move(offset);
  fanin_count_ = std::move(count);
  lut_mask_ = std::move(masks);
  name_ref_ = std::move(refs);
  fanin_pool_ = std::move(pool);
  is_key_ = std::move(keep_is_key);
  // Rebuild the name index for surviving explicit names. Intern-table
  // strings of dropped nodes stay allocated (bounded by the pre-sweep
  // size) but are no longer reachable through the index.
  by_name_.clear();
  for (NodeId id = 0; id < types_.size(); ++id) {
    const std::uint32_t ref = name_ref_[id];
    if (!(ref & kAutoFlag)) {
      by_name_.emplace(std::string_view(name_table_[ref]), id);
    }
  }
  auto remap_list = [&](std::vector<NodeId>& list) {
    for (NodeId& id : list) id = remap[id];
    std::erase(list, kNoNode);
  };
  remap_list(inputs_);
  remap_list(outputs_);
  remap_list(key_inputs_);
  strash_dirty_ = true;
  return remap;
}

}  // namespace ril::netlist
