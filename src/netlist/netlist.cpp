#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace ril::netlist {

namespace {

std::size_t fixed_arity(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    case GateType::kMux:
      return 3;
    default:
      return static_cast<std::size_t>(-1);  // variadic / lut
  }
}

}  // namespace

NodeId Netlist::add_node(Node node) {
  if (node.name.empty()) {
    node.name = fresh_name("__n");
  }
  if (by_name_.contains(node.name)) {
    throw std::invalid_argument("Netlist: duplicate node name '" + node.name +
                                "'");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  is_key_.push_back(false);
  return id;
}

std::string Netlist::fresh_name(std::string_view stem) {
  std::string candidate;
  do {
    candidate = std::string(stem) + "_" + std::to_string(name_counter_++);
  } while (by_name_.contains(candidate));
  return candidate;
}

NodeId Netlist::add_input(const std::string& name) {
  Node node;
  node.type = GateType::kInput;
  node.name = name;
  const NodeId id = add_node(std::move(node));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_key_input(const std::string& name) {
  const NodeId id = add_input(name);
  is_key_[id] = true;
  key_inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value) {
  Node node;
  node.type = value ? GateType::kConst1 : GateType::kConst0;
  node.name = fresh_name(value ? "__const1" : "__const0");
  return add_node(std::move(node));
}

NodeId Netlist::add_gate(GateType type, std::vector<NodeId> fanins,
                         std::string name) {
  if (type == GateType::kInput || type == GateType::kLut) {
    throw std::invalid_argument("add_gate: use add_input/add_lut");
  }
  const std::size_t arity = fixed_arity(type);
  if (arity != static_cast<std::size_t>(-1)) {
    if (fanins.size() != arity) {
      throw std::invalid_argument("add_gate: bad arity for " +
                                  std::string(to_string(type)));
    }
  } else if (fanins.size() < 2) {
    throw std::invalid_argument("add_gate: variadic gate needs >= 2 fanins");
  }
  for (NodeId f : fanins) {
    if (f >= nodes_.size()) throw std::invalid_argument("add_gate: bad fanin");
  }
  Node node;
  node.type = type;
  node.fanins = std::move(fanins);
  node.name = std::move(name);
  return add_node(std::move(node));
}

NodeId Netlist::add_mux(NodeId sel, NodeId d0, NodeId d1, std::string name) {
  return add_gate(GateType::kMux, {sel, d0, d1}, std::move(name));
}

NodeId Netlist::add_lut(std::vector<NodeId> fanins, std::uint64_t mask,
                        std::string name) {
  if (fanins.empty() || fanins.size() > 6) {
    throw std::invalid_argument("add_lut: arity must be 1..6");
  }
  // Reject masks wider than the truth table up front: the simulator and
  // Tseitin paths index rows [0, 2^k) and would silently ignore high bits.
  if (fanins.size() < 6) {
    const std::uint64_t rows = std::uint64_t{1} << fanins.size();
    if ((mask >> rows) != 0) {
      char buffer[80];
      std::snprintf(buffer, sizeof(buffer),
                    "add_lut: mask 0x%llx wider than 2^%zu truth-table rows",
                    static_cast<unsigned long long>(mask), fanins.size());
      throw std::invalid_argument(buffer);
    }
  }
  for (NodeId f : fanins) {
    if (f >= nodes_.size()) throw std::invalid_argument("add_lut: bad fanin");
  }
  Node node;
  node.type = GateType::kLut;
  node.fanins = std::move(fanins);
  node.lut_mask = mask;
  node.name = std::move(name);
  return add_node(std::move(node));
}

void Netlist::mark_output(NodeId id) {
  if (id >= nodes_.size()) throw std::invalid_argument("mark_output: bad id");
  outputs_.push_back(id);
}

void Netlist::set_outputs(std::vector<NodeId> outputs) {
  for (NodeId id : outputs) {
    if (id >= nodes_.size()) throw std::invalid_argument("set_outputs: bad id");
  }
  outputs_ = std::move(outputs);
}

void Netlist::replace_uses(NodeId from, NodeId to) {
  replace_uses_except(from, to, {});
}

void Netlist::replace_uses_except(NodeId from, NodeId to,
                                  std::span<const NodeId> except) {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (std::find(except.begin(), except.end(), id) != except.end()) continue;
    for (NodeId& f : nodes_[id].fanins) {
      if (f == from) f = to;
    }
  }
  for (NodeId& o : outputs_) {
    if (o == from) o = to;
  }
}

void Netlist::rewrite_as_buf(NodeId id, NodeId src) {
  if (id >= nodes_.size() || src >= nodes_.size()) {
    throw std::invalid_argument("rewrite_as_buf: bad id");
  }
  Node& node = nodes_[id];
  if (node.type == GateType::kInput) {
    throw std::invalid_argument("rewrite_as_buf: cannot rewrite an input");
  }
  node.type = GateType::kBuf;
  node.fanins = {src};
  node.lut_mask = 0;
}

void Netlist::rename(NodeId id, const std::string& name) {
  if (id >= nodes_.size()) throw std::invalid_argument("rename: bad id");
  if (nodes_[id].name == name) return;  // renaming to itself is a no-op
  if (by_name_.contains(name)) {
    throw std::invalid_argument("rename: name exists: " + name);
  }
  by_name_.erase(nodes_[id].name);
  nodes_[id].name = name;
  by_name_.emplace(name, id);
}

std::vector<NodeId> Netlist::data_inputs() const {
  std::vector<NodeId> result;
  result.reserve(inputs_.size() - key_inputs_.size());
  for (NodeId id : inputs_) {
    if (!is_key_[id]) result.push_back(id);
  }
  return result;
}

bool Netlist::is_key_input(NodeId id) const {
  return id < is_key_.size() && is_key_[id];
}

std::optional<NodeId> Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> Netlist::topological_order() const {
  // Kahn's algorithm; DFF fanin edges are ignored so sequential loops do
  // not create cycles (DFF outputs act as sources).
  std::vector<std::uint32_t> pending(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == GateType::kDff) continue;
    pending[id] = static_cast<std::uint32_t>(nodes_[id].fanins.size());
  }
  auto fo = fanouts();
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId user : fo[id]) {
      if (nodes_[user].type == GateType::kDff) continue;
      if (--pending[user] == 0) ready.push_back(user);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::runtime_error("topological_order: combinational cycle");
  }
  return order;
}

std::vector<std::vector<NodeId>> Netlist::fanouts() const {
  std::vector<std::vector<NodeId>> fo(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId f : nodes_[id].fanins) fo[f].push_back(id);
  }
  return fo;
}

std::size_t Netlist::gate_count() const {
  std::size_t count = 0;
  for (const Node& node : nodes_) {
    switch (node.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
        break;
      default:
        ++count;
    }
  }
  return count;
}

std::size_t Netlist::dff_count() const {
  std::size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.type == GateType::kDff) ++count;
  }
  return count;
}

std::size_t Netlist::depth() const {
  std::vector<std::size_t> level(nodes_.size(), 0);
  std::size_t max_level = 0;
  for (NodeId id : topological_order()) {
    const Node& node = nodes_[id];
    if (node.type == GateType::kDff) continue;
    std::size_t lvl = 0;
    for (NodeId f : node.fanins) lvl = std::max(lvl, level[f] + 1);
    level[id] = lvl;
    max_level = std::max(max_level, lvl);
  }
  return max_level;
}

std::string Netlist::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    for (NodeId f : node.fanins) {
      if (f >= nodes_.size()) return "node " + node.name + ": fanin oob";
    }
    const std::size_t arity = fixed_arity(node.type);
    if (arity != static_cast<std::size_t>(-1) &&
        node.fanins.size() != arity) {
      return "node " + node.name + ": bad arity";
    }
    if (is_logic_op(node.type) && node.fanins.size() < 2) {
      return "node " + node.name + ": variadic gate with < 2 fanins";
    }
    if (node.type == GateType::kLut) {
      if (node.fanins.empty() || node.fanins.size() > 6) {
        return "node " + node.name + ": LUT arity out of range";
      }
      if (node.fanins.size() < 6) {
        const std::uint64_t width = std::uint64_t{1} << node.fanins.size();
        if (width < 64 && (node.lut_mask >> width) != 0) {
          return "node " + node.name + ": LUT mask wider than 2^arity";
        }
      }
    }
  }
  for (NodeId id : outputs_) {
    if (id >= nodes_.size()) return "output id oob";
  }
  try {
    (void)topological_order();
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

Netlist Netlist::combinational_core() const {
  Netlist core(name_ + "_comb");
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  // Inputs (and DFF outputs as pseudo-inputs) first.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.type == GateType::kInput) {
      remap[id] = is_key_[id] ? core.add_key_input(node.name)
                              : core.add_input(node.name);
    } else if (node.type == GateType::kDff) {
      remap[id] = core.add_input(node.name + "_ppi");
    }
  }
  for (NodeId id : topological_order()) {
    const Node& node = nodes_[id];
    if (remap[id] != kNoNode) continue;  // inputs / dffs done
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) {
      assert(remap[f] != kNoNode);
      fanins.push_back(remap[f]);
    }
    switch (node.type) {
      case GateType::kConst0:
      case GateType::kConst1:
        remap[id] = core.add_const(node.type == GateType::kConst1);
        core.rename(remap[id], node.name);
        break;
      case GateType::kLut:
        remap[id] = core.add_lut(std::move(fanins), node.lut_mask, node.name);
        break;
      default:
        remap[id] = core.add_gate(node.type, std::move(fanins), node.name);
    }
  }
  for (NodeId id : outputs_) core.mark_output(remap[id]);
  // DFF inputs become pseudo-outputs.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.type != GateType::kDff) continue;
    const NodeId src = remap[node.fanins[0]];
    const NodeId buf =
        core.add_gate(GateType::kBuf, {src}, node.name + "_ppo");
    core.mark_output(buf);
  }
  return core;
}

std::vector<NodeId> Netlist::sweep_dead(bool keep_all_inputs) {
  std::vector<bool> live(nodes_.size(), false);
  std::vector<NodeId> stack(outputs_.begin(), outputs_.end());
  if (keep_all_inputs) {
    for (NodeId id : inputs_) {
      live[id] = true;  // keep the interface stable
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    for (NodeId f : nodes_[id].fanins) {
      if (!live[f]) stack.push_back(f);
    }
  }
  // DFFs reachable from outputs keep their fanin cones alive; iterate until
  // fixed point (a DFF made live above enqueues its fanin).
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (!live[id] || nodes_[id].type != GateType::kDff) continue;
      std::vector<NodeId> work = {nodes_[id].fanins[0]};
      while (!work.empty()) {
        const NodeId w = work.back();
        work.pop_back();
        if (live[w]) continue;
        live[w] = true;
        changed = true;
        for (NodeId f : nodes_[w].fanins) work.push_back(f);
      }
    }
  }

  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<Node> kept;
  std::vector<bool> kept_is_key;
  kept.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!live[id]) continue;
    remap[id] = static_cast<NodeId>(kept.size());
    kept.push_back(std::move(nodes_[id]));
    kept_is_key.push_back(is_key_[id]);
  }
  for (Node& node : kept) {
    for (NodeId& f : node.fanins) f = remap[f];
  }
  nodes_ = std::move(kept);
  is_key_ = std::move(kept_is_key);
  by_name_.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    by_name_.emplace(nodes_[id].name, id);
  }
  auto remap_list = [&](std::vector<NodeId>& list) {
    for (NodeId& id : list) id = remap[id];
    std::erase(list, kNoNode);
  };
  remap_list(inputs_);
  remap_list(outputs_);
  remap_list(key_inputs_);
  return remap;
}

}  // namespace ril::netlist
