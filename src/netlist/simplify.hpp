// Netlist simplification: constant propagation, buffer collapsing,
// single-input gate folding, and dead-node sweeping.
//
// Used after specialize_keys() to measure the *net* silicon the unlocked
// design actually needs (overhead analysis), and by the removal attack to
// normalize its reconstruction.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace ril::netlist {

struct SimplifyStats {
  std::size_t constants_folded = 0;
  std::size_t buffers_collapsed = 0;
  std::size_t gates_pruned = 0;  ///< removed by the final dead sweep
};

/// Iterates constant propagation + buffer collapsing to a fixed point,
/// then sweeps dead logic. Preserves the primary input/output interface
/// (outputs may become constants or inputs). Returns what happened.
SimplifyStats simplify(Netlist& netlist);

}  // namespace ril::netlist
