// Word-level circuit builder.
//
// Thin convenience layer over Netlist for constructing datapaths (adders,
// rotates, S-boxes) bit by bit. Words are little-endian: word[0] is bit 0.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::netlist {

class Builder {
 public:
  using Bit = NodeId;
  using Word = std::vector<NodeId>;

  /// Datapath construction generates heavy structural duplication (shared
  /// S-box subtrees, repeated carry logic), so structural hashing is on by
  /// default; pass false to keep every requested gate distinct.
  explicit Builder(std::string name, bool structural_hashing = true)
      : netlist_(std::move(name)) {
    netlist_.set_structural_hashing(structural_hashing);
  }

  // ----- interface ------------------------------------------------------
  Bit input(const std::string& name) { return netlist_.add_input(name); }
  Word input_word(const std::string& stem, std::size_t width);
  void output(Bit bit, const std::string& name);
  void output_word(const Word& word, const std::string& stem);

  // ----- bit ops ----------------------------------------------------------
  Bit zero();
  Bit one();
  Bit not_(Bit a) { return netlist_.add_gate(GateType::kNot, {a}); }
  Bit and_(Bit a, Bit b) { return netlist_.add_gate(GateType::kAnd, {a, b}); }
  Bit or_(Bit a, Bit b) { return netlist_.add_gate(GateType::kOr, {a, b}); }
  Bit xor_(Bit a, Bit b) { return netlist_.add_gate(GateType::kXor, {a, b}); }
  Bit nand_(Bit a, Bit b) { return netlist_.add_gate(GateType::kNand, {a, b}); }
  Bit nor_(Bit a, Bit b) { return netlist_.add_gate(GateType::kNor, {a, b}); }
  Bit xnor_(Bit a, Bit b) { return netlist_.add_gate(GateType::kXnor, {a, b}); }
  Bit mux(Bit sel, Bit d0, Bit d1) { return netlist_.add_mux(sel, d0, d1); }

  // ----- word ops ---------------------------------------------------------
  Word constant(std::size_t width, std::uint64_t value);
  Word not_w(const Word& a);
  Word and_w(const Word& a, const Word& b);
  Word or_w(const Word& a, const Word& b);
  Word xor_w(const Word& a, const Word& b);
  /// sel ? d1 : d0, elementwise.
  Word mux_w(Bit sel, const Word& d0, const Word& d1);
  /// Ripple-carry modular addition (mod 2^width).
  Word add_w(const Word& a, const Word& b);
  /// Rotate right/left by n (word width fixed).
  Word rotr_w(const Word& a, std::size_t n);
  Word rotl_w(const Word& a, std::size_t n);
  /// Logical shift right by n (zero fill).
  Word shr_w(const Word& a, std::size_t n);

  /// Builds an arbitrary k-input boolean function (k <= 16) from its truth
  /// table as a Shannon MUX tree over plain gates (no kLut nodes), so the
  /// result is a standard gate-level netlist. table bit i = output for
  /// minterm i with inputs[0] as LSB.
  Bit truth_table(const std::vector<Bit>& inputs,
                  const std::vector<bool>& table);

  /// 8-bit S-box lookup: out[j] = table[in][j-th bit].
  Word sbox8(const Word& in, const std::array<std::uint8_t, 256>& table);

  Netlist& netlist() { return netlist_; }
  Netlist take() { return std::move(netlist_); }

 private:
  Netlist netlist_;
  NodeId const0_ = kNoNode;
  NodeId const1_ = kNoNode;
};

}  // namespace ril::netlist
