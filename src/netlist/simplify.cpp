#include "netlist/simplify.hpp"

#include <algorithm>
#include <vector>

namespace ril::netlist {

namespace {

bool is_const_type(GateType type) {
  return type == GateType::kConst0 || type == GateType::kConst1;
}

bool const_value(GateType type) { return type == GateType::kConst1; }

}  // namespace

SimplifyStats simplify(Netlist& netlist) {
  SimplifyStats stats;
  const std::size_t before = netlist.node_count();

  std::vector<NodeId> scratch;  // chased fanins of the current node
  std::vector<NodeId> kept;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : netlist.topological_order()) {
      const GateType type = netlist.type(id);
      // Chase buffer chains on every fanin (also applies to DFF inputs).
      const auto fanins = netlist.fanins(id);
      scratch.assign(fanins.begin(), fanins.end());
      bool chased = false;
      for (NodeId& f : scratch) {
        while (netlist.type(f) == GateType::kBuf) {
          f = netlist.fanin(f, 0);
          ++stats.buffers_collapsed;
          chased = true;
          changed = true;
        }
      }
      if (chased) netlist.set_fanins(id, scratch);  // same arity, in place

      switch (type) {
        case GateType::kInput:
        case GateType::kConst0:
        case GateType::kConst1:
        case GateType::kBuf:
        case GateType::kDff:
          break;
        case GateType::kNot: {
          const GateType a = netlist.type(scratch[0]);
          if (is_const_type(a)) {
            netlist.fold_to_const(id, !const_value(a));
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor: {
          const bool is_and_like =
              type == GateType::kAnd || type == GateType::kNand;
          const bool inverted =
              type == GateType::kNand || type == GateType::kNor;
          // Dominant / neutral constants.
          const bool dominant = !is_and_like;  // 1 dominates OR, 0 AND
          bool saturated = false;
          kept.clear();
          for (NodeId f : scratch) {
            const GateType fan = netlist.type(f);
            if (is_const_type(fan)) {
              if (const_value(fan) == dominant) saturated = true;
              // neutral constants dropped
              continue;
            }
            kept.push_back(f);
          }
          // Duplicate operands are idempotent for AND/OR.
          std::sort(kept.begin(), kept.end());
          kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
          if (saturated) {
            netlist.fold_to_const(id, dominant != inverted);
            ++stats.constants_folded;
            changed = true;
          } else if (kept.empty()) {
            netlist.fold_to_const(id, !dominant != inverted);
            ++stats.constants_folded;
            changed = true;
          } else if (kept.size() == 1) {
            if (inverted) {
              netlist.rewrite_as_not(id, kept[0]);
            } else {
              netlist.rewrite_as_buf(id, kept[0]);
            }
            ++stats.constants_folded;
            changed = true;
          } else if (kept.size() != scratch.size()) {
            netlist.set_fanins(id, kept);
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          bool parity = type == GateType::kXnor;
          kept.clear();
          for (NodeId f : scratch) {
            const GateType fan = netlist.type(f);
            if (is_const_type(fan)) {
              parity ^= const_value(fan);
              continue;
            }
            kept.push_back(f);
          }
          // Equal pairs cancel.
          std::sort(kept.begin(), kept.end());
          std::vector<NodeId> reduced;
          for (std::size_t i = 0; i < kept.size();) {
            if (i + 1 < kept.size() && kept[i] == kept[i + 1]) {
              i += 2;  // x ^ x = 0
            } else {
              reduced.push_back(kept[i]);
              ++i;
            }
          }
          if (reduced.empty()) {
            netlist.fold_to_const(id, parity);
            ++stats.constants_folded;
            changed = true;
          } else if (reduced.size() == 1) {
            if (parity) {
              netlist.rewrite_as_not(id, reduced[0]);
            } else {
              netlist.rewrite_as_buf(id, reduced[0]);
            }
            ++stats.constants_folded;
            changed = true;
          } else if (reduced.size() != scratch.size() ||
                     parity != (type == GateType::kXnor)) {
            netlist.set_gate_type(id,
                                  parity ? GateType::kXnor : GateType::kXor);
            netlist.set_fanins(id, reduced);
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kMux: {
          const NodeId sel = scratch[0];
          const NodeId d0 = scratch[1];
          const NodeId d1 = scratch[2];
          const GateType sel_type = netlist.type(sel);
          const GateType d0_type = netlist.type(d0);
          const GateType d1_type = netlist.type(d1);
          if (is_const_type(sel_type)) {
            netlist.rewrite_as_buf(id, const_value(sel_type) ? d1 : d0);
            ++stats.constants_folded;
            changed = true;
          } else if (d0 == d1) {
            netlist.rewrite_as_buf(id, d0);
            ++stats.constants_folded;
            changed = true;
          } else if (is_const_type(d0_type) && is_const_type(d1_type)) {
            if (!const_value(d0_type) && const_value(d1_type)) {
              netlist.rewrite_as_buf(id, sel);
            } else if (const_value(d0_type) && !const_value(d1_type)) {
              netlist.rewrite_as_not(id, sel);
            } else {
              netlist.fold_to_const(id, const_value(d0_type));
            }
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kLut: {
          // Substitute constant fanins into the mask.
          bool shrunk = false;
          std::uint64_t mask = netlist.lut_mask(id);
          for (std::size_t i = 0; i < scratch.size();) {
            const GateType fan = netlist.type(scratch[i]);
            if (!is_const_type(fan)) {
              ++i;
              continue;
            }
            const bool v = const_value(fan);
            const std::size_t k = scratch.size();
            std::uint64_t new_mask = 0;
            std::size_t out_row = 0;
            for (std::uint64_t row = 0; row < (std::uint64_t{1} << k);
                 ++row) {
              if ((((row >> i) & 1) != 0) != v) continue;
              if ((mask >> row) & 1) {
                new_mask |= std::uint64_t{1} << out_row;
              }
              ++out_row;
            }
            mask = new_mask;
            scratch.erase(scratch.begin() + static_cast<std::ptrdiff_t>(i));
            shrunk = true;
          }
          if (shrunk) {
            netlist.set_lut_mask(id, mask);
            netlist.set_fanins(id, scratch);
          }
          if (scratch.empty()) {
            netlist.fold_to_const(id, mask & 1);
            ++stats.constants_folded;
            changed = true;
            break;
          }
          const std::size_t k = scratch.size();
          const std::uint64_t rows = std::uint64_t{1} << k;
          const std::uint64_t full =
              rows >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rows) - 1);
          const std::uint64_t trimmed = mask & full;
          if (trimmed == 0 || trimmed == full) {
            netlist.fold_to_const(id, trimmed != 0);
            ++stats.constants_folded;
            changed = true;
          } else if (k == 1) {
            if (trimmed == 0b10) {
              netlist.rewrite_as_buf(id, scratch[0]);
            } else {
              netlist.rewrite_as_not(id, scratch[0]);
            }
            ++stats.constants_folded;
            changed = true;
          } else if (shrunk) {
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
      }
    }
  }

  // Outputs may point at buffers; chase them before sweeping.
  std::vector<NodeId> outputs = netlist.outputs();
  for (NodeId& o : outputs) {
    while (netlist.type(o) == GateType::kBuf) {
      o = netlist.fanin(o, 0);
    }
  }
  netlist.set_outputs(std::move(outputs));
  netlist.sweep_dead();
  stats.gates_pruned = before - netlist.node_count();
  return stats;
}

}  // namespace ril::netlist
