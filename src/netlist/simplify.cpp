#include "netlist/simplify.hpp"

#include <algorithm>

namespace ril::netlist {

namespace {

bool is_const(const Node& node) {
  return node.type == GateType::kConst0 || node.type == GateType::kConst1;
}

bool const_value(const Node& node) { return node.type == GateType::kConst1; }

void make_const(Node& node, bool value) {
  node.type = value ? GateType::kConst1 : GateType::kConst0;
  node.fanins.clear();
  node.lut_mask = 0;
}

void make_buf(Node& node, NodeId src) {
  node.type = GateType::kBuf;
  node.fanins = {src};
  node.lut_mask = 0;
}

void make_not(Node& node, NodeId src) {
  node.type = GateType::kNot;
  node.fanins = {src};
  node.lut_mask = 0;
}

}  // namespace

SimplifyStats simplify(Netlist& netlist) {
  SimplifyStats stats;
  const std::size_t before = netlist.node_count();

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : netlist.topological_order()) {
      Node& node = netlist.node(id);
      // Chase buffer chains on every fanin (also applies to DFF inputs).
      for (NodeId& f : node.fanins) {
        while (netlist.node(f).type == GateType::kBuf) {
          f = netlist.node(f).fanins[0];
          ++stats.buffers_collapsed;
          changed = true;
        }
      }

      switch (node.type) {
        case GateType::kInput:
        case GateType::kConst0:
        case GateType::kConst1:
        case GateType::kBuf:
        case GateType::kDff:
          break;
        case GateType::kNot: {
          const Node& a = netlist.node(node.fanins[0]);
          if (is_const(a)) {
            make_const(node, !const_value(a));
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor: {
          const bool is_and_like = node.type == GateType::kAnd ||
                                   node.type == GateType::kNand;
          const bool inverted = node.type == GateType::kNand ||
                                node.type == GateType::kNor;
          // Dominant / neutral constants.
          const bool dominant = !is_and_like;  // 1 dominates OR, 0 AND
          bool saturated = false;
          std::vector<NodeId> kept;
          for (NodeId f : node.fanins) {
            const Node& fan = netlist.node(f);
            if (is_const(fan)) {
              if (const_value(fan) == dominant) saturated = true;
              // neutral constants dropped
              continue;
            }
            kept.push_back(f);
          }
          // Duplicate operands are idempotent for AND/OR.
          std::sort(kept.begin(), kept.end());
          kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
          if (saturated) {
            make_const(node, dominant != inverted);
            ++stats.constants_folded;
            changed = true;
          } else if (kept.empty()) {
            make_const(node, !dominant != inverted);
            ++stats.constants_folded;
            changed = true;
          } else if (kept.size() == 1) {
            if (inverted) {
              make_not(node, kept[0]);
            } else {
              make_buf(node, kept[0]);
            }
            ++stats.constants_folded;
            changed = true;
          } else if (kept.size() != node.fanins.size()) {
            node.fanins = std::move(kept);
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          bool parity = node.type == GateType::kXnor;
          std::vector<NodeId> kept;
          for (NodeId f : node.fanins) {
            const Node& fan = netlist.node(f);
            if (is_const(fan)) {
              parity ^= const_value(fan);
              continue;
            }
            kept.push_back(f);
          }
          // Equal pairs cancel.
          std::sort(kept.begin(), kept.end());
          std::vector<NodeId> reduced;
          for (std::size_t i = 0; i < kept.size();) {
            if (i + 1 < kept.size() && kept[i] == kept[i + 1]) {
              i += 2;  // x ^ x = 0
            } else {
              reduced.push_back(kept[i]);
              ++i;
            }
          }
          if (reduced.empty()) {
            make_const(node, parity);
            ++stats.constants_folded;
            changed = true;
          } else if (reduced.size() == 1) {
            if (parity) {
              make_not(node, reduced[0]);
            } else {
              make_buf(node, reduced[0]);
            }
            ++stats.constants_folded;
            changed = true;
          } else if (reduced.size() != node.fanins.size() ||
                     parity != (node.type == GateType::kXnor)) {
            node.type = parity ? GateType::kXnor : GateType::kXor;
            node.fanins = std::move(reduced);
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kMux: {
          const NodeId sel = node.fanins[0];
          const NodeId d0 = node.fanins[1];
          const NodeId d1 = node.fanins[2];
          const Node& sel_node = netlist.node(sel);
          const Node& d0_node = netlist.node(d0);
          const Node& d1_node = netlist.node(d1);
          if (is_const(sel_node)) {
            make_buf(node, const_value(sel_node) ? d1 : d0);
            ++stats.constants_folded;
            changed = true;
          } else if (d0 == d1) {
            make_buf(node, d0);
            ++stats.constants_folded;
            changed = true;
          } else if (is_const(d0_node) && is_const(d1_node)) {
            if (!const_value(d0_node) && const_value(d1_node)) {
              make_buf(node, sel);
            } else if (const_value(d0_node) && !const_value(d1_node)) {
              make_not(node, sel);
            } else {
              make_const(node, const_value(d0_node));
            }
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
        case GateType::kLut: {
          // Substitute constant fanins into the mask.
          bool shrunk = false;
          for (std::size_t i = 0; i < node.fanins.size();) {
            const Node& fan = netlist.node(node.fanins[i]);
            if (!is_const(fan)) {
              ++i;
              continue;
            }
            const bool v = const_value(fan);
            const std::size_t k = node.fanins.size();
            std::uint64_t new_mask = 0;
            std::size_t out_row = 0;
            for (std::uint64_t row = 0; row < (std::uint64_t{1} << k);
                 ++row) {
              if ((((row >> i) & 1) != 0) != v) continue;
              if ((node.lut_mask >> row) & 1) {
                new_mask |= std::uint64_t{1} << out_row;
              }
              ++out_row;
            }
            node.lut_mask = new_mask;
            node.fanins.erase(node.fanins.begin() +
                              static_cast<std::ptrdiff_t>(i));
            shrunk = true;
          }
          if (node.fanins.empty()) {
            make_const(node, node.lut_mask & 1);
            ++stats.constants_folded;
            changed = true;
            break;
          }
          const std::size_t k = node.fanins.size();
          const std::uint64_t rows = std::uint64_t{1} << k;
          const std::uint64_t full =
              rows >= 64 ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << rows) - 1);
          const std::uint64_t mask = node.lut_mask & full;
          if (mask == 0 || mask == full) {
            make_const(node, mask != 0);
            ++stats.constants_folded;
            changed = true;
          } else if (k == 1) {
            if (mask == 0b10) {
              make_buf(node, node.fanins[0]);
            } else {
              make_not(node, node.fanins[0]);
            }
            ++stats.constants_folded;
            changed = true;
          } else if (shrunk) {
            ++stats.constants_folded;
            changed = true;
          }
          break;
        }
      }
    }
  }

  // Outputs may point at buffers; chase them before sweeping.
  std::vector<NodeId> outputs = netlist.outputs();
  for (NodeId& o : outputs) {
    while (netlist.node(o).type == GateType::kBuf) {
      o = netlist.node(o).fanins[0];
    }
  }
  netlist.set_outputs(std::move(outputs));
  netlist.sweep_dead();
  stats.gates_pruned = before - netlist.node_count();
  return stats;
}

}  // namespace ril::netlist
