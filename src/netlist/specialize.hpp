// Non-destructive input specialization (cofactoring).
//
// specialize_inputs() copies a netlist with a chosen subset of its primary
// inputs replaced by constants. Every other input -- in particular the key
// inputs -- survives with its order and name preserved, so positional
// interfaces (oracles, key binding, equivalence checks) keep working on the
// cofactor. Combined with simplify(), this is how the attack engine shrinks
// a DIP-fixed circuit down to its key-dependent cone before Tseitin
// encoding an I/O constraint.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace ril::netlist {

/// Returns a copy of `circuit` with each input in `fixed_inputs` replaced
/// by the constant in `values` (positional). Fixed nodes must be primary
/// inputs; key inputs may not be fixed (specialize a key with
/// locking::specialize_keys instead). Output count and order are
/// preserved. Throws std::invalid_argument on interface violations.
Netlist specialize_inputs(const Netlist& circuit,
                          const std::vector<NodeId>& fixed_inputs,
                          const std::vector<bool>& values);

}  // namespace ril::netlist
