// ISCAS .bench reader/writer.
//
// Supported grammar (case-insensitive op names):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = OP(a, b, ...)        OP in {AND OR NAND NOR XOR XNOR NOT BUF BUFF DFF MUX}
//   name = LUT 0xMASK (a, b)    extension used for LUT nodes
//   name = vcc / gnd            constants (also CONST0/CONST1)
//
// Inputs whose names start with "keyinput" are registered as key inputs, the
// convention used by the logic-locking community's locked-bench distributions.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace ril::netlist {

/// Parses a .bench file from a stream. Throws std::runtime_error with a
/// line-number diagnostic on malformed input.
Netlist read_bench(std::istream& in, std::string name = "top");

/// Parses a .bench file from a string.
Netlist read_bench_string(const std::string& text, std::string name = "top");

/// Parses a .bench file from disk.
Netlist read_bench_file(const std::string& path);

/// Serializes to .bench. LUT nodes use the extension syntax above; MUX nodes
/// are emitted as the extension "MUX(sel, d0, d1)".
void write_bench(std::ostream& out, const Netlist& netlist);

std::string write_bench_string(const Netlist& netlist);

void write_bench_file(const std::string& path, const Netlist& netlist);

}  // namespace ril::netlist
