// 64-way bit-parallel logic simulator.
//
// Each node value is a 64-bit word: bit p is the node's value under input
// pattern p, so one sweep evaluates 64 input vectors. Sequential circuits are
// supported by step(): DFF outputs hold state words updated from their fanin
// values at the end of each step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  /// Sets the pattern word of a primary-input node.
  void set_input(NodeId input, std::uint64_t patterns);
  /// Sets one input across all 64 patterns to the same value.
  void set_input_all(NodeId input, bool value);

  /// Combinational evaluation of every node from current input words and
  /// DFF state.
  void evaluate();
  /// evaluate() then latch DFF next-state into DFF outputs.
  void step();
  /// Clears DFF state to 0.
  void reset_state();

  std::uint64_t value(NodeId id) const { return values_[id]; }
  /// Output words in Netlist::outputs() order (valid after evaluate()).
  std::vector<std::uint64_t> output_words() const;

  const Netlist& netlist() const { return netlist_; }

 private:
  const Netlist& netlist_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> state_;  // indexed by NodeId, DFFs only
  std::vector<std::uint64_t> operands_;  // scratch, sized to max fan-in
};

/// Single-vector convenience wrapper: evaluates the combinational view of
/// `netlist` on one input assignment (indexed by position in inputs()).
/// Constructs a throwaway Simulator; for repeated evaluation of the same
/// netlist prefer the Simulator-reusing overloads below, which skip the
/// per-call topological sort and allocations.
std::vector<bool> evaluate_once(const Netlist& netlist,
                                const std::vector<bool>& input_values);

/// Evaluates with separate data/key assignments: data_values follows
/// data_inputs() order, key_values follows key_inputs() order.
std::vector<bool> evaluate_with_key(const Netlist& netlist,
                                    const std::vector<bool>& data_values,
                                    const std::vector<bool>& key_values);

/// As evaluate_once(netlist, ...) but reuses a caller-owned Simulator
/// (which fixes the netlist being evaluated).
std::vector<bool> evaluate_once(Simulator& sim,
                                const std::vector<bool>& input_values);

/// As evaluate_with_key(netlist, ...) but reuses a caller-owned Simulator.
std::vector<bool> evaluate_with_key(Simulator& sim,
                                    const std::vector<bool>& data_values,
                                    const std::vector<bool>& key_values);

}  // namespace ril::netlist
