// Structural Verilog export/import (gate-level subset).
//
// The writer emits synthesizable structural Verilog: primitive gate
// instantiations for the logic ops, continuous assigns for MUX/LUT/const,
// and a clocked always block per DFF (a `clk` port is added when the
// design is sequential). The reader accepts the same subset -- primitive
// gates, `assign` of ternaries / minterm sums emitted by the writer --
// which guarantees round-tripping of anything this library produces.
// Key inputs follow the `keyinput*` naming convention, as in .bench files.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace ril::netlist {

void write_verilog(std::ostream& out, const Netlist& netlist);
std::string write_verilog_string(const Netlist& netlist);
void write_verilog_file(const std::string& path, const Netlist& netlist);

Netlist read_verilog(std::istream& in);
Netlist read_verilog_string(const std::string& text);
Netlist read_verilog_file(const std::string& path);

}  // namespace ril::netlist
