// Gate-level netlist IR.
//
// A Netlist is a DAG of nodes. Each node produces exactly one signal; primary
// outputs are references to producing nodes. Key inputs (the locking key bits)
// are primary inputs additionally recorded in key_inputs(); by convention they
// carry a "keyinput" name prefix so they round-trip through .bench files.
//
// Storage is struct-of-arrays so million-gate hosts stay memory-lean: gate
// types, LUT masks, and name references live in parallel arrays indexed by
// NodeId, and every fanin list is a slice of one flat CSR-style pool
// (fanin_offset_/fanin_count_ into fanin_pool_, all 32-bit). Names live in an
// interned side table; auto-generated names ("__n_<seq>") are materialized
// lazily on first query so build/encode paths never touch strings.
//
// node(id) returns a lightweight by-value view (Node). Mutation goes through
// explicit mutators (set_fanin, set_fanins, fold_to_const, ...) so the
// structural-hash table and name index can stay consistent.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/types.hpp"

namespace ril::netlist {

class Netlist;

/// Read-only view of one node. Cheap to copy; `fanins` points into the
/// netlist's fanin pool and is invalidated by any node-adding or
/// fanin-growing mutation (same hazard as holding a reference across a
/// vector reallocation in the old array-of-structs layout).
struct Node {
  GateType type = GateType::kConst0;
  /// Truth table for kLut (bit i = output for minterm i, fanin[0] = LSB).
  std::uint64_t lut_mask = 0;
  std::span<const NodeId> fanins;

  /// Node name; materializes a lazy auto-name on first access.
  const std::string& name() const;

 private:
  friend class Netlist;
  const Netlist* netlist_ = nullptr;
  NodeId id_ = kNoNode;
};

/// CSR fanout map: fanouts[id] = consumers of id (gate fanin references
/// only), in ascending consumer id, one entry per fanin reference.
class FanoutMap {
 public:
  std::span<const NodeId> operator[](NodeId id) const {
    return {pool_.data() + offset_[id], offset_[id + 1] - offset_[id]};
  }
  std::size_t size() const { return offset_.empty() ? 0 : offset_.size() - 1; }

 private:
  friend class Netlist;
  std::vector<std::uint32_t> offset_;  // node_count + 1 entries
  std::vector<NodeId> pool_;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ----- construction -------------------------------------------------
  NodeId add_input(const std::string& name);
  NodeId add_key_input(const std::string& name);
  NodeId add_const(bool value);
  /// Adds a gate; fixed-arity types are arity-checked. Empty name -> auto.
  NodeId add_gate(GateType type, std::span<const NodeId> fanins,
                  std::string_view name = {});
  NodeId add_gate(GateType type, std::initializer_list<NodeId> fanins,
                  std::string_view name = {}) {
    return add_gate(type, std::span<const NodeId>(fanins.begin(), fanins.size()),
                    name);
  }
  /// Adds a MUX node: out = sel ? d1 : d0.
  NodeId add_mux(NodeId sel, NodeId d0, NodeId d1, std::string_view name = {});
  /// Adds a LUT node over `fanins` (<= 6) with the given truth-table mask.
  NodeId add_lut(std::span<const NodeId> fanins, std::uint64_t mask,
                 std::string_view name = {});
  NodeId add_lut(std::initializer_list<NodeId> fanins, std::uint64_t mask,
                 std::string_view name = {}) {
    return add_lut(std::span<const NodeId>(fanins.begin(), fanins.size()), mask,
                   name);
  }
  void mark_output(NodeId id);
  /// Replaces the output list wholesale (used by netlist transforms).
  void set_outputs(std::vector<NodeId> outputs);
  /// Pre-sizes the node arrays and the fanin pool (perf only).
  void reserve(std::size_t nodes, std::size_t fanin_edges);

  // ----- structural hashing -------------------------------------------
  /// When enabled, add_gate/add_lut with an empty name (and add_const)
  /// return an existing structurally identical node instead of creating a
  /// duplicate. Commutative gate fanins are canonicalized by sorting; DFFs
  /// and inputs never dedupe. Mutations invalidate the hash table; it is
  /// rebuilt lazily on the next hashed add.
  void set_structural_hashing(bool enabled);
  bool structural_hashing() const { return strash_enabled_; }
  /// Number of adds answered from the hash table since construction.
  std::size_t strash_hits() const { return strash_hits_; }

  // ----- mutation ------------------------------------------------------
  /// Redirects every fanin reference of `from` (in gates and the output
  /// list) to `to`. `from` itself stays in the node table (possibly dead).
  void replace_uses(NodeId from, NodeId to);
  /// Same as replace_uses but leaves the fanins of `except` untouched;
  /// needed when re-wiring a signal into logic that must still consume the
  /// original (e.g. feeding a tapped wire into an obfuscation block).
  void replace_uses_except(NodeId from, NodeId to,
                           std::span<const NodeId> except);
  /// Rewrites node `id` in place to a BUF of `src` (absorbs a gate).
  void rewrite_as_buf(NodeId id, NodeId src);
  /// Rewrites node `id` in place to a NOT of `src`.
  void rewrite_as_not(NodeId id, NodeId src);
  /// Rewrites node `id` in place to a constant (keeps the name).
  void fold_to_const(NodeId id, bool value);
  /// Replaces fanin slot `index` of node `id`.
  void set_fanin(NodeId id, std::size_t index, NodeId fanin);
  /// Replaces the whole fanin list. Shrinks reuse the node's pool slice;
  /// growth relocates the slice to the end of the pool (the old slice is
  /// left unused until the next sweep_dead compaction).
  void set_fanins(NodeId id, std::span<const NodeId> fanins);
  /// Overwrites the gate type without touching fanins (e.g. kXor<->kXnor).
  void set_gate_type(NodeId id, GateType type);
  /// Overwrites a LUT mask. Deliberately unvalidated so tests can inject
  /// malformed masks; validate() reports them.
  void set_lut_mask(NodeId id, std::uint64_t mask);
  /// Renames a node, keeping the name index consistent.
  void rename(NodeId id, const std::string& name);

  // ----- queries -------------------------------------------------------
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  std::size_t node_count() const { return types_.size(); }
  Node node(NodeId id) const {
    Node view;
    view.type = types_[id];
    view.lut_mask = lut_mask_[id];
    view.fanins = fanins(id);
    view.netlist_ = this;
    view.id_ = id;
    return view;
  }
  GateType type(NodeId id) const { return types_[id]; }
  std::uint64_t lut_mask(NodeId id) const { return lut_mask_[id]; }
  std::span<const NodeId> fanins(NodeId id) const {
    return {fanin_pool_.data() + fanin_offset_[id], fanin_count_[id]};
  }
  std::size_t fanin_count(NodeId id) const { return fanin_count_[id]; }
  NodeId fanin(NodeId id, std::size_t index) const {
    return fanin_pool_[fanin_offset_[id] + index];
  }
  /// Node name; materializes a lazy auto-name ("__n_<seq>", deduped against
  /// user names through the interned table) on first access.
  const std::string& name_of(NodeId id) const;
  /// True while the node still carries an unmaterialized auto-name. Clones
  /// that exist only to be encoded (cofactors) can skip copying such names.
  bool is_auto_named(NodeId id) const {
    return (name_ref_[id] & kAutoFlag) != 0;
  }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& key_inputs() const { return key_inputs_; }
  /// Primary inputs that are not key inputs.
  std::vector<NodeId> data_inputs() const;
  bool is_key_input(NodeId id) const;
  std::optional<NodeId> find(std::string_view name) const;

  /// Nodes in a topological order (fanins before uses). DFF outputs are
  /// treated as sources (their fanin edge is ignored for ordering).
  std::vector<NodeId> topological_order() const;
  /// CSR fanout map (one flat pool; no per-node vectors).
  FanoutMap fanouts() const;
  /// Number of gates (everything but inputs/consts).
  std::size_t gate_count() const;
  std::size_t dff_count() const;
  /// Logic depth (levels over the topological order, DFFs as sources).
  std::size_t depth() const;
  /// Total fanin references (pool entries in use, including slices
  /// orphaned by shrinking rewrites until the next sweep_dead).
  std::size_t fanin_pool_size() const { return fanin_pool_.size(); }
  /// Approximate heap bytes of the IR arrays (names excluded).
  std::size_t approx_bytes() const;

  /// Checks structural sanity (acyclic, arities, fanin ids in range,
  /// LUT arity vs mask width). Returns an error description or empty.
  std::string validate() const;

  /// Returns a copy with every DFF cut: DFF output becomes a fresh PI
  /// "<name>_ppi", DFF input becomes a PO "<name>_ppo". The result is
  /// purely combinational (standard SAT-attack preprocessing).
  Netlist combinational_core() const;

  /// Removes nodes not reachable from outputs. By default every primary
  /// input is preserved (interface stability); pass keep_all_inputs=false
  /// to drop inputs with no remaining fanout. Returns the mapping
  /// old-id -> new-id (kNoNode for dropped nodes).
  std::vector<NodeId> sweep_dead(bool keep_all_inputs = true);

 private:
  static constexpr std::uint32_t kAutoFlag = 0x8000'0000u;

  NodeId append_node(GateType type, std::span<const NodeId> fanins,
                     std::uint64_t lut_mask, std::string_view name);
  std::string fresh_name(std::string_view stem);
  /// Copies `name` into the intern table and registers it; returns the
  /// table index. Throws on duplicates.
  std::uint32_t intern_name(std::string_view name, NodeId id) const;
  void check_fanins(std::span<const NodeId> fanins, const char* what) const;

  // Structural hashing helpers.
  bool dedupable(GateType type) const {
    return type != GateType::kInput && type != GateType::kDff;
  }
  std::uint64_t strash_hash(GateType type, std::uint64_t mask,
                            std::span<const NodeId> sorted_fanins) const;
  /// Canonicalizes fanins into strash_scratch_ (sorts commutative ops).
  std::span<const NodeId> strash_canon(GateType type,
                                       std::span<const NodeId> fanins);
  std::optional<NodeId> strash_lookup(GateType type, std::uint64_t mask,
                                      std::span<const NodeId> fanins);
  void strash_insert(NodeId id);
  void strash_rebuild();

  std::string name_ = "top";

  // --- struct-of-arrays node storage (parallel, indexed by NodeId) ---
  std::vector<GateType> types_;
  std::vector<std::uint32_t> fanin_offset_;
  std::vector<std::uint32_t> fanin_count_;
  std::vector<std::uint64_t> lut_mask_;
  /// Explicit: index into name_table_. Auto: kAutoFlag | sequence number.
  mutable std::vector<std::uint32_t> name_ref_;
  std::vector<NodeId> fanin_pool_;

  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> key_inputs_;
  std::vector<bool> is_key_;

  // Interned names. The deque gives stable string storage so by_name_ can
  // key on string_views into it. Lazy auto-name materialization mutates
  // these from const accessors (hence mutable); concurrent name queries on
  // the same Netlist are not thread-safe, everything else is const-safe.
  mutable std::deque<std::string> name_table_;
  mutable std::unordered_map<std::string_view, NodeId> by_name_;
  std::uint64_t name_counter_ = 0;  // feeds fresh_name (consts)
  std::uint32_t auto_counter_ = 0;  // feeds lazy "__n_<seq>" names

  // Structural hashing (opt-in). Maps canonical hash -> candidate ids.
  bool strash_enabled_ = false;
  bool strash_dirty_ = false;
  std::size_t strash_hits_ = 0;
  std::unordered_multimap<std::uint64_t, NodeId> strash_;
  std::vector<NodeId> strash_scratch_;
};

inline const std::string& Node::name() const { return netlist_->name_of(id_); }

}  // namespace ril::netlist
