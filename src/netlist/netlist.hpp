// Gate-level netlist IR.
//
// A Netlist is a DAG of Nodes. Each node produces exactly one signal; primary
// outputs are references to producing nodes. Key inputs (the locking key bits)
// are primary inputs additionally recorded in key_inputs(); by convention they
// carry a "keyinput" name prefix so they round-trip through .bench files.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/types.hpp"

namespace ril::netlist {

struct Node {
  GateType type = GateType::kConst0;
  std::vector<NodeId> fanins;
  /// Truth table for kLut (bit i = output for minterm i, fanin[0] = LSB).
  std::uint64_t lut_mask = 0;
  std::string name;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ----- construction -------------------------------------------------
  NodeId add_input(const std::string& name);
  NodeId add_key_input(const std::string& name);
  NodeId add_const(bool value);
  /// Adds a gate; fixed-arity types are arity-checked. Empty name -> auto.
  NodeId add_gate(GateType type, std::vector<NodeId> fanins,
                  std::string name = {});
  /// Adds a MUX node: out = sel ? d1 : d0.
  NodeId add_mux(NodeId sel, NodeId d0, NodeId d1, std::string name = {});
  /// Adds a LUT node over `fanins` (<= 6) with the given truth-table mask.
  NodeId add_lut(std::vector<NodeId> fanins, std::uint64_t mask,
                 std::string name = {});
  void mark_output(NodeId id);
  /// Replaces the output list wholesale (used by netlist transforms).
  void set_outputs(std::vector<NodeId> outputs);

  // ----- mutation ------------------------------------------------------
  /// Redirects every fanin reference of `from` (in gates and the output
  /// list) to `to`. `from` itself stays in the node table (possibly dead).
  void replace_uses(NodeId from, NodeId to);
  /// Same as replace_uses but leaves the fanins of `except` untouched;
  /// needed when re-wiring a signal into logic that must still consume the
  /// original (e.g. feeding a tapped wire into an obfuscation block).
  void replace_uses_except(NodeId from, NodeId to,
                           std::span<const NodeId> except);
  /// Rewrites node `id` in place to a BUF of `src` (absorbs a gate).
  void rewrite_as_buf(NodeId id, NodeId src);
  /// Renames a node, keeping the name index consistent.
  void rename(NodeId id, const std::string& name);

  // ----- queries -------------------------------------------------------
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& node(NodeId id) { return nodes_[id]; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& key_inputs() const { return key_inputs_; }
  /// Primary inputs that are not key inputs.
  std::vector<NodeId> data_inputs() const;
  bool is_key_input(NodeId id) const;
  std::optional<NodeId> find(const std::string& name) const;

  /// Nodes in a topological order (fanins before uses). DFF outputs are
  /// treated as sources (their fanin edge is ignored for ordering).
  std::vector<NodeId> topological_order() const;
  /// fanouts()[id] = consumers of id (gate fanin references only).
  std::vector<std::vector<NodeId>> fanouts() const;
  /// Number of gates (everything but inputs/consts).
  std::size_t gate_count() const;
  std::size_t dff_count() const;
  /// Logic depth (levels over the topological order, DFFs as sources).
  std::size_t depth() const;

  /// Checks structural sanity (acyclic, arities, fanin ids in range,
  /// LUT arity vs mask width). Returns an error description or empty.
  std::string validate() const;

  /// Returns a copy with every DFF cut: DFF output becomes a fresh PI
  /// "<name>_ppi", DFF input becomes a PO "<name>_ppo". The result is
  /// purely combinational (standard SAT-attack preprocessing).
  Netlist combinational_core() const;

  /// Removes nodes not reachable from outputs. By default every primary
  /// input is preserved (interface stability); pass keep_all_inputs=false
  /// to drop inputs with no remaining fanout. Returns the mapping
  /// old-id -> new-id (kNoNode for dropped nodes).
  std::vector<NodeId> sweep_dead(bool keep_all_inputs = true);

 private:
  NodeId add_node(Node node);
  std::string fresh_name(std::string_view stem);

  std::string name_ = "top";
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> key_inputs_;
  std::vector<bool> is_key_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::uint64_t name_counter_ = 0;
};

}  // namespace ril::netlist
