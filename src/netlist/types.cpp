#include "netlist/types.hpp"

#include <cassert>

namespace ril::netlist {

std::string_view to_string(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
    case GateType::kDff: return "DFF";
    case GateType::kLut: return "LUT";
  }
  return "?";
}

bool is_variadic(GateType type) { return is_logic_op(type); }

bool is_logic_op(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

std::uint64_t eval_word(GateType type, const std::uint64_t* operands,
                        std::size_t count) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~std::uint64_t{0};
    case GateType::kBuf:
      assert(count == 1);
      return operands[0];
    case GateType::kNot:
      assert(count == 1);
      return ~operands[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::size_t i = 0; i < count; ++i) acc &= operands[i];
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc |= operands[i];
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc ^= operands[i];
      return type == GateType::kXor ? acc : ~acc;
    }
    default:
      assert(false && "eval_word: unsupported gate type");
      return 0;
  }
}

}  // namespace ril::netlist
