#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ril::netlist {

namespace {

std::string trim(std::string s) {
  auto not_space = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct PendingGate {
  std::string name;
  std::string op;
  std::uint64_t lut_mask = 0;
  std::vector<std::string> fanins;
  std::size_t line = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " +
                           message);
}

std::vector<std::string> split_args(const std::string& args, std::size_t line) {
  std::vector<std::string> result;
  std::string current;
  for (char c : args) {
    if (c == ',') {
      result.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!trim(current).empty()) result.push_back(trim(current));
  for (const std::string& a : result) {
    if (a.empty()) fail(line, "empty argument");
  }
  return result;
}

GateType op_to_type(const std::string& op, std::size_t line) {
  static const std::map<std::string, GateType> kOps = {
      {"AND", GateType::kAnd},   {"NAND", GateType::kNand},
      {"OR", GateType::kOr},     {"NOR", GateType::kNor},
      {"XOR", GateType::kXor},   {"XNOR", GateType::kXnor},
      {"NOT", GateType::kNot},   {"INV", GateType::kNot},
      {"BUF", GateType::kBuf},   {"BUFF", GateType::kBuf},
      {"DFF", GateType::kDff},   {"MUX", GateType::kMux},
      {"VCC", GateType::kConst1},{"GND", GateType::kConst0},
      {"CONST1", GateType::kConst1}, {"CONST0", GateType::kConst0},
  };
  auto it = kOps.find(op);
  if (it == kOps.end()) fail(line, "unknown op '" + op + "'");
  return it->second;
}

}  // namespace

Netlist read_bench(std::istream& in, std::string name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> gates;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::string uline = upper(line);
    if (uline.rfind("INPUT", 0) == 0 || uline.rfind("OUTPUT", 0) == 0) {
      const bool is_input = uline.rfind("INPUT", 0) == 0;
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no, "malformed INPUT/OUTPUT");
      }
      const std::string sig = trim(line.substr(open + 1, close - open - 1));
      if (sig.empty()) fail(line_no, "empty signal name");
      (is_input ? input_names : output_names).push_back(sig);
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected '='");
    PendingGate gate;
    gate.name = trim(line.substr(0, eq));
    gate.line = line_no;
    std::string rhs = trim(line.substr(eq + 1));
    if (gate.name.empty() || rhs.empty()) fail(line_no, "malformed assignment");

    const std::string urhs = upper(rhs);
    if (urhs == "VCC" || urhs == "GND" || urhs == "CONST0" ||
        urhs == "CONST1") {
      gate.op = urhs;
      gates.push_back(std::move(gate));
      continue;
    }

    if (urhs.rfind("LUT", 0) == 0) {
      // name = LUT 0xMASK (a, b, ...)
      std::string rest = trim(rhs.substr(3));
      const auto open = rest.find('(');
      const auto close = rest.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no,
             "malformed LUT (expected 'LUT <mask> (a, b, ...)'; check "
             "parentheses)");
      }
      const std::string mask_text = trim(rest.substr(0, open));
      gate.op = "LUT";
      // stoull silently accepts a sign prefix: "-1" wraps to the all-ones
      // mask and "+1" parses as 1, both hiding writer bugs. A truth-table
      // mask is a plain non-negative bit pattern, so reject signs outright.
      if (mask_text.empty() || mask_text[0] == '-' || mask_text[0] == '+') {
        fail(line_no, "bad LUT mask '" + mask_text +
                          "' (mask must be an unsigned number)");
      }
      std::size_t mask_len = 0;
      try {
        gate.lut_mask = std::stoull(mask_text, &mask_len, 0);
      } catch (const std::exception&) {
        fail(line_no, "bad LUT mask '" + mask_text + "'");
      }
      if (mask_len != mask_text.size()) {
        fail(line_no, "bad LUT mask '" + mask_text +
                          "' (trailing junk after the number)");
      }
      gate.fanins =
          split_args(rest.substr(open + 1, close - open - 1), line_no);
      const std::size_t arity = gate.fanins.size();
      if (arity == 0 || arity > 6) {
        fail(line_no, "LUT arity must be 1..6, got " + std::to_string(arity));
      }
      if (arity < 6) {
        const std::uint64_t rows = std::uint64_t{1} << arity;
        if ((gate.lut_mask >> rows) != 0) {
          fail(line_no, "LUT mask '" + mask_text + "' needs more than 2^" +
                            std::to_string(arity) + " = " +
                            std::to_string(rows) + " truth-table rows for " +
                            std::to_string(arity) + " fanins");
        }
      }
      gates.push_back(std::move(gate));
      continue;
    }

    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail(line_no, "malformed gate expression");
    }
    gate.op = upper(trim(rhs.substr(0, open)));
    gate.fanins = split_args(rhs.substr(open + 1, close - open - 1), line_no);
    gates.push_back(std::move(gate));
  }

  Netlist netlist(std::move(name));
  for (const std::string& in_name : input_names) {
    if (in_name.rfind("keyinput", 0) == 0) {
      netlist.add_key_input(in_name);
    } else {
      netlist.add_input(in_name);
    }
  }

  // Two passes: DFF outputs may be referenced before definition, and gates
  // may appear in any order. First create placeholder ids in dependency
  // order via iterative resolution.
  std::unordered_map<std::string, std::size_t> gate_by_name;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (gate_by_name.contains(gates[i].name)) {
      fail(gates[i].line, "redefinition of '" + gates[i].name + "'");
    }
    gate_by_name.emplace(gates[i].name, i);
  }

  std::vector<NodeId> created(gates.size(), kNoNode);
  // DFFs first (as state sources) so cycles through DFFs resolve.
  // They share one temporary const fanin (reserved name that cannot clash
  // with any signal in this file), patched below.
  std::vector<std::size_t> dffs;
  NodeId placeholder = kNoNode;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (upper(gates[i].op) == "DFF") {
      if (placeholder == kNoNode) {
        placeholder = netlist.add_const(false);
        std::string ph_name = "__bench_dff_ph";
        int suffix = 0;
        while (gate_by_name.contains(ph_name) || netlist.find(ph_name)) {
          ph_name = "__bench_dff_ph" + std::to_string(suffix++);
        }
        netlist.rename(placeholder, ph_name);
      }
      created[i] = netlist.add_gate(GateType::kDff, {placeholder},
                                    gates[i].name);
      dffs.push_back(i);
    }
  }

  // Iteratively create remaining gates when all fanins are known.
  auto lookup = [&](const std::string& signal) -> NodeId {
    if (auto id = netlist.find(signal)) return *id;
    return kNoNode;
  };
  bool progress = true;
  std::size_t remaining =
      std::count(created.begin(), created.end(), kNoNode);
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (created[i] != kNoNode) continue;
      const PendingGate& gate = gates[i];
      std::vector<NodeId> fanins;
      fanins.reserve(gate.fanins.size());
      bool ready = true;
      for (const std::string& f : gate.fanins) {
        const NodeId id = lookup(f);
        if (id == kNoNode) {
          ready = false;
          break;
        }
        fanins.push_back(id);
      }
      if (!ready) continue;
      if (gate.op == "LUT") {
        created[i] = netlist.add_lut(std::move(fanins), gate.lut_mask,
                                     gate.name);
      } else {
        const GateType type = op_to_type(gate.op, gate.line);
        if (type == GateType::kConst0 || type == GateType::kConst1) {
          created[i] = netlist.add_const(type == GateType::kConst1);
          netlist.rename(created[i], gate.name);
        } else {
          created[i] = netlist.add_gate(type, std::move(fanins), gate.name);
        }
      }
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (created[i] == kNoNode) {
        fail(gates[i].line,
             "unresolved fanin (undefined signal or combinational cycle)");
      }
    }
  }

  // Patch DFF fanins.
  for (std::size_t i : dffs) {
    const NodeId src = lookup(gates[i].fanins.at(0));
    if (src == kNoNode) fail(gates[i].line, "DFF fanin undefined");
    netlist.node(created[i]).fanins[0] = src;
  }

  for (const std::string& out_name : output_names) {
    const NodeId id = lookup(out_name);
    if (id == kNoNode) {
      throw std::runtime_error(".bench: OUTPUT(" + out_name + ") undefined");
    }
    netlist.mark_output(id);
  }

  if (std::string err = netlist.validate(); !err.empty()) {
    throw std::runtime_error(".bench: invalid netlist: " + err);
  }
  return netlist;
}

Netlist read_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_bench(in, std::move(name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_bench(in, std::move(name));
}

void write_bench(std::ostream& out, const Netlist& netlist) {
  out << "# " << netlist.name() << "\n";
  out << "# gates=" << netlist.gate_count()
      << " inputs=" << netlist.inputs().size()
      << " outputs=" << netlist.outputs().size()
      << " keys=" << netlist.key_inputs().size() << "\n";
  for (NodeId id : netlist.inputs()) {
    out << "INPUT(" << netlist.node(id).name << ")\n";
  }
  for (NodeId id : netlist.outputs()) {
    out << "OUTPUT(" << netlist.node(id).name << ")\n";
  }
  for (NodeId id : netlist.topological_order()) {
    const Node& node = netlist.node(id);
    switch (node.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        out << node.name << " = gnd\n";
        break;
      case GateType::kConst1:
        out << node.name << " = vcc\n";
        break;
      case GateType::kLut: {
        out << node.name << " = LUT 0x" << std::hex << node.lut_mask
            << std::dec << " (";
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          if (i) out << ", ";
          out << netlist.node(node.fanins[i]).name;
        }
        out << ")\n";
        break;
      }
      default: {
        out << node.name << " = " << to_string(node.type) << "(";
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          if (i) out << ", ";
          out << netlist.node(node.fanins[i]).name;
        }
        out << ")\n";
      }
    }
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream out;
  write_bench(out, netlist);
  return out.str();
}

void write_bench_file(const std::string& path, const Netlist& netlist) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_bench(out, netlist);
}

}  // namespace ril::netlist
