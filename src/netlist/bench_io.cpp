#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ril::netlist {

namespace {

// The reader is a single-pass streaming tokenizer: the whole file is read
// into one buffer and every signal name below is a string_view into it, so
// million-line files do not allocate per-line temporaries. Gate creation
// uses waiter-list dependency resolution (O(edges log nodes)) instead of
// repeated full passes.

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Case-insensitive equality against an uppercase literal.
bool ieq(std::string_view s, std::string_view upper_ref) {
  if (s.size() != upper_ref.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) != upper_ref[i]) {
      return false;
    }
  }
  return true;
}

/// Case-insensitive prefix test against an uppercase literal.
bool istarts_with(std::string_view s, std::string_view upper_prefix) {
  return s.size() >= upper_prefix.size() &&
         ieq(s.substr(0, upper_prefix.size()), upper_prefix);
}

struct PendingGate {
  std::string_view name;
  GateType type = GateType::kConst0;
  bool is_lut = false;
  std::uint64_t lut_mask = 0;
  std::uint32_t fanin_begin = 0;  // slice of the shared fanin-name pool
  std::uint32_t fanin_count = 0;
  std::uint32_t line = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " +
                           message);
}

GateType op_to_type(std::string_view op, std::size_t line) {
  static const std::unordered_map<std::string_view, GateType> kOps = {
      {"AND", GateType::kAnd},   {"NAND", GateType::kNand},
      {"OR", GateType::kOr},     {"NOR", GateType::kNor},
      {"XOR", GateType::kXor},   {"XNOR", GateType::kXnor},
      {"NOT", GateType::kNot},   {"INV", GateType::kNot},
      {"BUF", GateType::kBuf},   {"BUFF", GateType::kBuf},
      {"DFF", GateType::kDff},   {"MUX", GateType::kMux},
      {"VCC", GateType::kConst1},{"GND", GateType::kConst0},
      {"CONST1", GateType::kConst1}, {"CONST0", GateType::kConst0},
  };
  char upper[8];
  if (op.size() >= sizeof(upper)) fail(line, "unknown op '" + std::string(op) + "'");
  for (std::size_t i = 0; i < op.size(); ++i) {
    upper[i] = static_cast<char>(std::toupper(static_cast<unsigned char>(op[i])));
  }
  auto it = kOps.find(std::string_view(upper, op.size()));
  if (it == kOps.end()) fail(line, "unknown op '" + std::string(op) + "'");
  return it->second;
}

/// Splits a comma-separated argument list into the shared name pool.
/// Mirrors the historical splitter: a trailing empty segment is dropped,
/// an interior empty segment is an error.
void split_args(std::string_view args, std::size_t line,
                std::vector<std::string_view>& pool) {
  const std::size_t first = pool.size();
  std::size_t start = 0;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    if (i == args.size() || args[i] == ',') {
      std::string_view piece = trim_view(args.substr(start, i - start));
      if (i == args.size() && piece.empty() && pool.size() > first) {
        break;  // trailing comma
      }
      if (i == args.size() && piece.empty()) break;  // "()" -> no args
      pool.push_back(piece);
      start = i + 1;
    }
  }
  for (std::size_t i = first; i < pool.size(); ++i) {
    if (pool[i].empty()) fail(line, "empty argument");
  }
}

Netlist parse_bench(std::string_view text, std::string name) {
  std::vector<std::string_view> input_names;
  std::vector<std::string_view> output_names;
  std::vector<PendingGate> gates;
  std::vector<std::string_view> fanin_names;

  // Rough up-front reserves from one cheap scan: most lines are gates with
  // a couple of fanins.
  const std::size_t approx_lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
  gates.reserve(approx_lines);
  fanin_names.reserve(approx_lines * 2 +
                      static_cast<std::size_t>(
                          std::count(text.begin(), text.end(), ',')));

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim_view(line);
    if (line.empty()) {
      if (eol == text.size()) break;
      continue;
    }

    if (istarts_with(line, "INPUT") || istarts_with(line, "OUTPUT")) {
      const bool is_input = istarts_with(line, "INPUT");
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        fail(line_no, "malformed INPUT/OUTPUT");
      }
      const std::string_view sig =
          trim_view(line.substr(open + 1, close - open - 1));
      if (sig.empty()) fail(line_no, "empty signal name");
      (is_input ? input_names : output_names).push_back(sig);
      if (eol == text.size()) break;
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected '='");
    PendingGate gate;
    gate.name = trim_view(line.substr(0, eq));
    gate.line = static_cast<std::uint32_t>(line_no);
    std::string_view rhs = trim_view(line.substr(eq + 1));
    if (gate.name.empty() || rhs.empty()) fail(line_no, "malformed assignment");

    if (ieq(rhs, "VCC") || ieq(rhs, "GND") || ieq(rhs, "CONST0") ||
        ieq(rhs, "CONST1")) {
      gate.type = (ieq(rhs, "VCC") || ieq(rhs, "CONST1")) ? GateType::kConst1
                                                          : GateType::kConst0;
      gates.push_back(gate);
      if (eol == text.size()) break;
      continue;
    }

    if (istarts_with(rhs, "LUT")) {
      // name = LUT 0xMASK (a, b, ...)
      std::string_view rest = trim_view(rhs.substr(3));
      const auto open = rest.find('(');
      const auto close = rest.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        fail(line_no,
             "malformed LUT (expected 'LUT <mask> (a, b, ...)'; check "
             "parentheses)");
      }
      const std::string mask_text{trim_view(rest.substr(0, open))};
      gate.is_lut = true;
      gate.type = GateType::kLut;
      // stoull silently accepts a sign prefix: "-1" wraps to the all-ones
      // mask and "+1" parses as 1, both hiding writer bugs. A truth-table
      // mask is a plain non-negative bit pattern, so reject signs outright.
      if (mask_text.empty() || mask_text[0] == '-' || mask_text[0] == '+') {
        fail(line_no, "bad LUT mask '" + mask_text +
                          "' (mask must be an unsigned number)");
      }
      std::size_t mask_len = 0;
      try {
        gate.lut_mask = std::stoull(mask_text, &mask_len, 0);
      } catch (const std::exception&) {
        fail(line_no, "bad LUT mask '" + mask_text + "'");
      }
      if (mask_len != mask_text.size()) {
        fail(line_no, "bad LUT mask '" + mask_text +
                          "' (trailing junk after the number)");
      }
      gate.fanin_begin = static_cast<std::uint32_t>(fanin_names.size());
      split_args(rest.substr(open + 1, close - open - 1), line_no,
                 fanin_names);
      gate.fanin_count =
          static_cast<std::uint32_t>(fanin_names.size()) - gate.fanin_begin;
      const std::size_t arity = gate.fanin_count;
      if (arity == 0 || arity > 6) {
        fail(line_no, "LUT arity must be 1..6, got " + std::to_string(arity));
      }
      if (arity < 6) {
        const std::uint64_t rows = std::uint64_t{1} << arity;
        if ((gate.lut_mask >> rows) != 0) {
          fail(line_no, "LUT mask '" + mask_text + "' needs more than 2^" +
                            std::to_string(arity) + " = " +
                            std::to_string(rows) + " truth-table rows for " +
                            std::to_string(arity) + " fanins");
        }
      }
      gates.push_back(gate);
      if (eol == text.size()) break;
      continue;
    }

    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      fail(line_no, "malformed gate expression");
    }
    gate.type = op_to_type(trim_view(rhs.substr(0, open)), line_no);
    gate.fanin_begin = static_cast<std::uint32_t>(fanin_names.size());
    split_args(rhs.substr(open + 1, close - open - 1), line_no, fanin_names);
    gate.fanin_count =
        static_cast<std::uint32_t>(fanin_names.size()) - gate.fanin_begin;
    gates.push_back(gate);
    if (eol == text.size()) break;
  }

  Netlist netlist(std::move(name));
  netlist.reserve(input_names.size() + gates.size() + 1,
                  fanin_names.size() + gates.size());
  for (std::string_view in_name : input_names) {
    if (in_name.substr(0, 8) == "keyinput") {
      netlist.add_key_input(std::string(in_name));
    } else {
      netlist.add_input(std::string(in_name));
    }
  }

  std::unordered_map<std::string_view, std::size_t> gate_by_name;
  gate_by_name.reserve(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!gate_by_name.emplace(gates[i].name, i).second) {
      fail(gates[i].line, "redefinition of '" + std::string(gates[i].name) +
                              "'");
    }
  }

  std::vector<NodeId> created(gates.size(), kNoNode);
  // DFFs first (as state sources) so cycles through DFFs resolve. They
  // share one temporary const fanin (reserved name that cannot clash with
  // any signal in this file), patched below.
  std::vector<std::size_t> dffs;
  NodeId placeholder = kNoNode;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (gates[i].type == GateType::kDff && !gates[i].is_lut) {
      if (placeholder == kNoNode) {
        placeholder = netlist.add_const(false);
        std::string ph_name = "__bench_dff_ph";
        int suffix = 0;
        while (gate_by_name.contains(std::string_view(ph_name)) ||
               netlist.find(ph_name)) {
          ph_name = "__bench_dff_ph" + std::to_string(suffix++);
        }
        netlist.rename(placeholder, ph_name);
      }
      created[i] =
          netlist.add_gate(GateType::kDff, {placeholder}, gates[i].name);
      dffs.push_back(i);
    }
  }

  // Waiter-list resolution: each gate counts its not-yet-created fanins;
  // creating a signal wakes the gates waiting on it. The ready heap pops
  // the smallest file index first, which reproduces the historical
  // forward-sweep creation order on any file whose definitions precede
  // uses (in particular everything write_bench emits).
  auto lookup = [&](std::string_view signal) -> NodeId {
    if (auto id = netlist.find(signal)) return *id;
    return kNoNode;
  };
  std::unordered_map<std::string_view, std::vector<std::uint32_t>> waiters;
  std::vector<std::uint32_t> missing(gates.size(), 0);
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      ready;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (created[i] != kNoNode) continue;
    for (std::uint32_t k = 0; k < gates[i].fanin_count; ++k) {
      const std::string_view f = fanin_names[gates[i].fanin_begin + k];
      if (lookup(f) != kNoNode) continue;  // input or pre-created DFF
      waiters[f].push_back(static_cast<std::uint32_t>(i));
      ++missing[i];
    }
    if (missing[i] == 0) ready.push(static_cast<std::uint32_t>(i));
  }
  std::vector<NodeId> fanins;
  while (!ready.empty()) {
    const std::uint32_t i = ready.top();
    ready.pop();
    const PendingGate& gate = gates[i];
    fanins.clear();
    for (std::uint32_t k = 0; k < gate.fanin_count; ++k) {
      const NodeId id = lookup(fanin_names[gate.fanin_begin + k]);
      fanins.push_back(id);
    }
    if (gate.is_lut) {
      created[i] = netlist.add_lut(std::span<const NodeId>(fanins),
                                   gate.lut_mask, gate.name);
    } else if (gate.type == GateType::kConst0 ||
               gate.type == GateType::kConst1) {
      created[i] = netlist.add_const(gate.type == GateType::kConst1);
      netlist.rename(created[i], std::string(gate.name));
    } else {
      created[i] = netlist.add_gate(gate.type, std::span<const NodeId>(fanins),
                                    gate.name);
    }
    if (auto it = waiters.find(gate.name); it != waiters.end()) {
      for (std::uint32_t waiter : it->second) {
        if (--missing[waiter] == 0) ready.push(waiter);
      }
      waiters.erase(it);
    }
  }
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (created[i] == kNoNode) {
      fail(gates[i].line,
           "unresolved fanin (undefined signal or combinational cycle)");
    }
  }

  // Patch DFF fanins.
  for (std::size_t i : dffs) {
    if (gates[i].fanin_count != 1) fail(gates[i].line, "DFF needs one fanin");
    const NodeId src = lookup(fanin_names[gates[i].fanin_begin]);
    if (src == kNoNode) fail(gates[i].line, "DFF fanin undefined");
    netlist.set_fanin(created[i], 0, src);
  }

  for (std::string_view out_name : output_names) {
    const NodeId id = lookup(out_name);
    if (id == kNoNode) {
      throw std::runtime_error(".bench: OUTPUT(" + std::string(out_name) +
                               ") undefined");
    }
    netlist.mark_output(id);
  }

  if (std::string err = netlist.validate(); !err.empty()) {
    throw std::runtime_error(".bench: invalid netlist: " + err);
  }
  return netlist;
}

}  // namespace

Netlist read_bench(std::istream& in, std::string name) {
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  return parse_bench(text, std::move(name));
}

Netlist read_bench_string(const std::string& text, std::string name) {
  return parse_bench(text, std::move(name));
}

Netlist read_bench_file(const std::string& path) {
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Map the file read-only and parse straight out of the page cache: the
  // tokenizer's string_views then alias mapped pages instead of a heap
  // copy of the whole file (one copy saved on multi-10MB hosts, and no
  // istreambuf_iterator per-char loop). Anything mmap cannot serve --
  // pipes, empty files, exotic filesystems -- falls back to a plain
  // read() loop into a buffer. parse_bench sees the same bytes either
  // way, so line-numbered parse errors are bit-identical across paths.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open " + path);
  struct FdGuard {
    int fd;
    ~FdGuard() {
      if (fd >= 0) ::close(fd);
    }
  } fd_guard{fd};
  struct stat st {};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      struct MapGuard {
        void* p;
        std::size_t n;
        ~MapGuard() { ::munmap(p, n); }
      } map_guard{map, static_cast<std::size_t>(st.st_size)};
      return parse_bench(
          std::string_view(static_cast<const char*>(map),
                           static_cast<std::size_t>(st.st_size)),
          std::move(name));
    }
  }
  std::string text;
  if (st.st_size > 0) text.reserve(static_cast<std::size_t>(st.st_size));
  char chunk[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, chunk, sizeof(chunk))) > 0) {
    text.append(chunk, static_cast<std::size_t>(got));
  }
  if (got < 0) throw std::runtime_error("cannot read " + path);
  return parse_bench(text, std::move(name));
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_bench(in, std::move(name));
#endif
}

void write_bench(std::ostream& out, const Netlist& netlist) {
  out << "# " << netlist.name() << "\n";
  out << "# gates=" << netlist.gate_count()
      << " inputs=" << netlist.inputs().size()
      << " outputs=" << netlist.outputs().size()
      << " keys=" << netlist.key_inputs().size() << "\n";
  for (NodeId id : netlist.inputs()) {
    out << "INPUT(" << netlist.name_of(id) << ")\n";
  }
  for (NodeId id : netlist.outputs()) {
    out << "OUTPUT(" << netlist.name_of(id) << ")\n";
  }
  for (NodeId id : netlist.topological_order()) {
    const GateType type = netlist.type(id);
    const auto fanins = netlist.fanins(id);
    switch (type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        out << netlist.name_of(id) << " = gnd\n";
        break;
      case GateType::kConst1:
        out << netlist.name_of(id) << " = vcc\n";
        break;
      case GateType::kLut: {
        out << netlist.name_of(id) << " = LUT 0x" << std::hex
            << netlist.lut_mask(id) << std::dec << " (";
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          if (i) out << ", ";
          out << netlist.name_of(fanins[i]);
        }
        out << ")\n";
        break;
      }
      default: {
        out << netlist.name_of(id) << " = " << to_string(type) << "(";
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          if (i) out << ", ";
          out << netlist.name_of(fanins[i]);
        }
        out << ")\n";
      }
    }
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream out;
  write_bench(out, netlist);
  return out.str();
}

void write_bench_file(const std::string& path, const Netlist& netlist) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_bench(out, netlist);
  // A full disk or I/O error surfaces only on the stream's error state;
  // without this check a truncated netlist would be left on disk and the
  // call would report success.
  out.flush();
  if (out.fail()) {
    throw std::runtime_error("write failed (disk full or I/O error): " +
                             path);
  }
}

}  // namespace ril::netlist
