#include "netlist/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace ril::netlist {

Builder::Word Builder::input_word(const std::string& stem, std::size_t width) {
  Word word;
  word.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    word.push_back(input(stem + "_" + std::to_string(i)));
  }
  return word;
}

void Builder::output(Bit bit, const std::string& name) {
  // .bench outputs are named signals; emit a named BUF so the caller's
  // name survives even when `bit` is shared logic.
  const NodeId buf = netlist_.add_gate(GateType::kBuf, {bit}, name);
  netlist_.mark_output(buf);
}

void Builder::output_word(const Word& word, const std::string& stem) {
  for (std::size_t i = 0; i < word.size(); ++i) {
    output(word[i], stem + "_" + std::to_string(i));
  }
}

Builder::Bit Builder::zero() {
  if (const0_ == kNoNode) const0_ = netlist_.add_const(false);
  return const0_;
}

Builder::Bit Builder::one() {
  if (const1_ == kNoNode) const1_ = netlist_.add_const(true);
  return const1_;
}

Builder::Word Builder::constant(std::size_t width, std::uint64_t value) {
  Word word;
  word.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    word.push_back(((value >> i) & 1) ? one() : zero());
  }
  return word;
}

Builder::Word Builder::not_w(const Word& a) {
  Word out;
  out.reserve(a.size());
  for (Bit bit : a) out.push_back(not_(bit));
  return out;
}

namespace {
void check_widths(const Builder::Word& a, const Builder::Word& b,
                  const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(op) + ": width mismatch");
  }
}
}  // namespace

Builder::Word Builder::and_w(const Word& a, const Word& b) {
  check_widths(a, b, "and_w");
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(and_(a[i], b[i]));
  return out;
}

Builder::Word Builder::or_w(const Word& a, const Word& b) {
  check_widths(a, b, "or_w");
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(or_(a[i], b[i]));
  return out;
}

Builder::Word Builder::xor_w(const Word& a, const Word& b) {
  check_widths(a, b, "xor_w");
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor_(a[i], b[i]));
  return out;
}

Builder::Word Builder::mux_w(Bit sel, const Word& d0, const Word& d1) {
  check_widths(d0, d1, "mux_w");
  Word out;
  out.reserve(d0.size());
  for (std::size_t i = 0; i < d0.size(); ++i) {
    out.push_back(mux(sel, d0[i], d1[i]));
  }
  return out;
}

Builder::Word Builder::add_w(const Word& a, const Word& b) {
  check_widths(a, b, "add_w");
  Word sum;
  sum.reserve(a.size());
  Bit carry = kNoNode;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (carry == kNoNode) {
      sum.push_back(xor_(a[i], b[i]));
      carry = and_(a[i], b[i]);
    } else {
      const Bit axb = xor_(a[i], b[i]);
      sum.push_back(xor_(axb, carry));
      carry = or_(and_(a[i], b[i]), and_(axb, carry));
    }
  }
  return sum;
}

Builder::Word Builder::rotr_w(const Word& a, std::size_t n) {
  const std::size_t w = a.size();
  Word out(w);
  for (std::size_t i = 0; i < w; ++i) out[i] = a[(i + n) % w];
  return out;
}

Builder::Word Builder::rotl_w(const Word& a, std::size_t n) {
  return rotr_w(a, a.size() - (n % a.size()));
}

Builder::Word Builder::shr_w(const Word& a, std::size_t n) {
  const std::size_t w = a.size();
  Word out(w);
  for (std::size_t i = 0; i < w; ++i) {
    out[i] = (i + n < w) ? a[i + n] : zero();
  }
  return out;
}

Builder::Bit Builder::truth_table(const std::vector<Bit>& inputs,
                                  const std::vector<bool>& table) {
  if (inputs.empty() || inputs.size() > 16) {
    throw std::invalid_argument("truth_table: arity must be 1..16");
  }
  if (table.size() != (std::size_t{1} << inputs.size())) {
    throw std::invalid_argument("truth_table: table size != 2^arity");
  }
  // Shannon expansion on the most-significant input, recursively, with
  // constant folding at the leaves.
  struct Rec {
    Builder& b;
    const std::vector<Bit>& inputs;
    Bit go(const std::vector<bool>& t, std::size_t arity) {
      if (arity == 0) return t[0] ? b.one() : b.zero();
      const std::size_t half = t.size() / 2;
      const std::vector<bool> lo(t.begin(), t.begin() + half);
      const std::vector<bool> hi(t.begin() + half, t.end());
      const bool lo_const0 = std::all_of(lo.begin(), lo.end(),
                                         [](bool v) { return !v; });
      const bool lo_const1 = std::all_of(lo.begin(), lo.end(),
                                         [](bool v) { return v; });
      const bool hi_const0 = std::all_of(hi.begin(), hi.end(),
                                         [](bool v) { return !v; });
      const bool hi_const1 = std::all_of(hi.begin(), hi.end(),
                                         [](bool v) { return v; });
      const Bit sel = inputs[arity - 1];
      if (lo == hi) return go(lo, arity - 1);
      if (lo_const0 && hi_const1) return sel;
      if (lo_const1 && hi_const0) return b.not_(sel);
      if (lo_const0) return b.and_(sel, go(hi, arity - 1));
      if (hi_const0) return b.and_(b.not_(sel), go(lo, arity - 1));
      if (lo_const1) return b.or_(b.not_(sel), go(hi, arity - 1));
      if (hi_const1) return b.or_(sel, go(lo, arity - 1));
      return b.mux(sel, go(lo, arity - 1), go(hi, arity - 1));
    }
  };
  Rec rec{*this, inputs};
  return rec.go(table, inputs.size());
}

Builder::Word Builder::sbox8(const Word& in,
                             const std::array<std::uint8_t, 256>& table) {
  if (in.size() != 8) throw std::invalid_argument("sbox8: need 8-bit input");
  Word out;
  out.reserve(8);
  for (std::size_t bit = 0; bit < 8; ++bit) {
    std::vector<bool> tt(256);
    for (std::size_t row = 0; row < 256; ++row) {
      tt[row] = (table[row] >> bit) & 1;
    }
    out.push_back(truth_table(in, tt));
  }
  return out;
}

}  // namespace ril::netlist
