#include "netlist/scan_chain.hpp"

#include <algorithm>
#include <stdexcept>

namespace ril::netlist {

ScanInsertion insert_scan_chain(const Netlist& sequential) {
  ScanInsertion result;
  result.netlist = sequential;
  Netlist& nl = result.netlist;

  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::kDff) result.chain.push_back(id);
  }
  if (result.chain.empty()) {
    throw std::invalid_argument("insert_scan_chain: no DFFs");
  }

  result.scan_enable = nl.add_input("SCAN_EN");
  result.scan_in = nl.add_input("SCAN_IN");

  NodeId previous = result.scan_in;
  for (std::size_t i = 0; i < result.chain.size(); ++i) {
    const NodeId dff = result.chain[i];
    const NodeId functional_d = nl.fanin(dff, 0);
    const NodeId mux = nl.add_mux(result.scan_enable, functional_d, previous,
                                  "scan_mux_" + std::to_string(i));
    nl.set_fanin(dff, 0, mux);
    previous = dff;  // next flop shifts from this one's output
  }
  result.scan_out =
      nl.add_gate(GateType::kBuf, {previous}, "SCAN_OUT");
  nl.mark_output(result.scan_out);
  return result;
}

ScanTester::ScanTester(const ScanInsertion& design)
    : design_(design), simulator_(design.netlist) {
  for (NodeId id : design_.netlist.data_inputs()) {
    if (id != design_.scan_enable && id != design_.scan_in) {
      functional_inputs_.push_back(id);
    }
  }
  for (NodeId id : functional_inputs_) {
    simulator_.set_input_all(id, false);
  }
  simulator_.reset_state();
}

void ScanTester::clock_cycle(bool scan_en, bool scan_in_bit) {
  simulator_.set_input_all(design_.scan_enable, scan_en);
  simulator_.set_input_all(design_.scan_in, scan_in_bit);
  simulator_.step();
}

void ScanTester::shift_in(const std::vector<bool>& state) {
  if (state.size() != design_.chain.size()) {
    throw std::invalid_argument("shift_in: state width mismatch");
  }
  for (std::size_t t = 0; t < state.size(); ++t) {
    clock_cycle(/*scan_en=*/true, state[state.size() - 1 - t]);
  }
}

void ScanTester::capture(const std::vector<bool>& primary_inputs) {
  if (primary_inputs.size() != functional_inputs_.size()) {
    throw std::invalid_argument("capture: input width mismatch");
  }
  for (std::size_t i = 0; i < primary_inputs.size(); ++i) {
    simulator_.set_input_all(functional_inputs_[i], primary_inputs[i]);
  }
  simulator_.set_input_all(design_.scan_enable, false);
  simulator_.set_input_all(design_.scan_in, false);
  simulator_.evaluate();
  last_outputs_.clear();
  for (NodeId id : design_.netlist.outputs()) {
    if (id == design_.scan_out) continue;
    last_outputs_.push_back(simulator_.value(id) & 1);
  }
  simulator_.step();  // the capture clock edge
}

std::vector<bool> ScanTester::shift_out() {
  const std::size_t length = design_.chain.size();
  std::vector<bool> observed(length);
  for (std::size_t t = 0; t < length; ++t) {
    simulator_.set_input_all(design_.scan_enable, true);
    simulator_.evaluate();
    const bool bit = simulator_.value(design_.scan_out) & 1;
    observed[length - 1 - t] = bit;
    clock_cycle(/*scan_en=*/true, bit);  // circular: preserve the state
  }
  return observed;
}

}  // namespace ril::netlist
