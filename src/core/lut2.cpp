#include "core/lut2.hpp"

#include <stdexcept>

namespace ril::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

std::uint8_t mask_of_gate(GateType type) {
  switch (type) {
    case GateType::kAnd: return 0b1000;
    case GateType::kNand: return 0b0111;
    case GateType::kOr: return 0b1110;
    case GateType::kNor: return 0b0001;
    case GateType::kXor: return 0b0110;
    case GateType::kXnor: return 0b1001;
    default:
      throw std::invalid_argument("mask_of_gate: not a 2-input logic gate");
  }
}

std::uint8_t swap_operands(std::uint8_t mask) {
  // Swap minterms 01 (bit 1) and 10 (bit 2).
  return static_cast<std::uint8_t>((mask & 0b1001) | ((mask & 0b0010) << 1) |
                                   ((mask & 0b0100) >> 1));
}

std::array<bool, 4> table2_keys_from_mask(std::uint8_t mask) {
  return {
      static_cast<bool>((mask >> 3) & 1),  // K1: AB=11
      static_cast<bool>((mask >> 1) & 1),  // K2: AB=10
      static_cast<bool>((mask >> 2) & 1),  // K3: AB=01
      static_cast<bool>((mask >> 0) & 1),  // K4: AB=00
  };
}

std::uint8_t mask_from_table2_keys(const std::array<bool, 4>& k) {
  return static_cast<std::uint8_t>((k[0] << 3) | (k[1] << 1) | (k[2] << 2) |
                                   (k[3] << 0));
}

std::string function_name(std::uint8_t mask) {
  switch (mask & 0xF) {
    case 0b0000: return "0";
    case 0b1111: return "1";
    case 0b0001: return "A NOR B";
    case 0b1110: return "A OR B";
    case 0b0100: return "notA AND B";
    case 0b1011: return "notA NAND B";  // i.e. A OR notB
    case 0b0101: return "notA";
    case 0b1010: return "A";
    case 0b0010: return "A AND notB";
    case 0b1101: return "A NAND notB";
    case 0b0011: return "notB";
    case 0b1100: return "B";
    case 0b0110: return "A XOR B";
    case 0b1001: return "A XNOR B";
    case 0b0111: return "A NAND B";
    case 0b1000: return "A AND B";
  }
  return "?";
}

KeyedLut build_keyed_lut2(Netlist& netlist, NodeId a, NodeId b,
                          std::size_t& key_name_counter,
                          const std::string& node_prefix) {
  KeyedLut lut;
  for (std::size_t i = 0; i < 4; ++i) {
    lut.key_inputs[i] = netlist.add_key_input(
        "keyinput" + std::to_string(key_name_counter++));
  }
  // out = MUX(B, MUX(A, m00, m10), MUX(A, m01, m11));
  // mask order: m00 = key[0], m10 = key[1], m01 = key[2], m11 = key[3].
  const NodeId low = netlist.add_mux(a, lut.key_inputs[0], lut.key_inputs[1],
                                     node_prefix + "_m0");
  const NodeId high = netlist.add_mux(a, lut.key_inputs[2], lut.key_inputs[3],
                                      node_prefix + "_m1");
  lut.output = netlist.add_mux(b, low, high, node_prefix + "_out");
  return lut;
}

std::array<bool, 4> lut_key_values(std::uint8_t mask) {
  return {
      static_cast<bool>(mask & 1),
      static_cast<bool>((mask >> 1) & 1),
      static_cast<bool>((mask >> 2) & 1),
      static_cast<bool>((mask >> 3) & 1),
  };
}

}  // namespace ril::core
