#include "core/banyan.hpp"

#include <bit>
#include <stdexcept>

namespace ril::core {

using netlist::Netlist;
using netlist::NodeId;

namespace {

void check_size(std::size_t n) {
  if (n < 2 || !std::has_single_bit(n)) {
    throw std::invalid_argument("banyan: size must be a power of two >= 2");
  }
}

std::size_t stages(std::size_t n) {
  return static_cast<std::size_t>(std::bit_width(n) - 1);
}

}  // namespace

std::size_t banyan_switch_count(std::size_t n) {
  check_size(n);
  return (n / 2) * stages(n);
}

std::vector<std::size_t> banyan_permutation(const std::vector<bool>& keys,
                                            std::size_t n) {
  check_size(n);
  if (keys.size() != banyan_switch_count(n)) {
    throw std::invalid_argument("banyan_permutation: wrong key count");
  }
  // slot[p] = index of the input currently at position p.
  std::vector<std::size_t> slot(n);
  for (std::size_t i = 0; i < n; ++i) slot[i] = i;
  std::size_t key_index = 0;
  for (std::size_t s = 0; s < stages(n); ++s) {
    const std::size_t mask = std::size_t{1} << s;
    for (std::size_t lo = 0; lo < n; ++lo) {
      if (lo & mask) continue;  // handled with its partner
      const std::size_t hi = lo | mask;
      if (keys[key_index++]) std::swap(slot[lo], slot[hi]);
    }
  }
  std::vector<std::size_t> perm(n);
  for (std::size_t p = 0; p < n; ++p) perm[slot[p]] = p;
  return perm;
}

BanyanInstance build_banyan(Netlist& netlist,
                            std::span<const NodeId> inputs,
                            std::size_t& key_name_counter,
                            const std::string& node_prefix) {
  const std::size_t n = inputs.size();
  check_size(n);
  BanyanInstance instance;
  std::vector<NodeId> wires(inputs.begin(), inputs.end());
  std::size_t switch_index = 0;
  for (std::size_t s = 0; s < stages(n); ++s) {
    const std::size_t mask = std::size_t{1} << s;
    for (std::size_t lo = 0; lo < n; ++lo) {
      if (lo & mask) continue;
      const std::size_t hi = lo | mask;
      const NodeId key = netlist.add_key_input(
          "keyinput" + std::to_string(key_name_counter++));
      instance.key_inputs.push_back(key);
      const std::string stem =
          node_prefix + "_sw" + std::to_string(switch_index++);
      const NodeId out_lo =
          netlist.add_mux(key, wires[lo], wires[hi], stem + "_lo");
      const NodeId out_hi =
          netlist.add_mux(key, wires[hi], wires[lo], stem + "_hi");
      wires[lo] = out_lo;
      wires[hi] = out_hi;
    }
  }
  instance.outputs = std::move(wires);
  return instance;
}

BanyanInstance build_banyan_fulllock(Netlist& netlist,
                                     std::span<const NodeId> inputs,
                                     std::size_t& key_name_counter,
                                     const std::string& node_prefix) {
  const std::size_t n = inputs.size();
  check_size(n);
  BanyanInstance instance;
  std::vector<NodeId> wires(inputs.begin(), inputs.end());
  std::size_t switch_index = 0;
  auto fresh_key = [&] {
    const NodeId key = netlist.add_key_input(
        "keyinput" + std::to_string(key_name_counter++));
    instance.key_inputs.push_back(key);
    return key;
  };
  for (std::size_t s = 0; s < stages(n); ++s) {
    const std::size_t mask = std::size_t{1} << s;
    for (std::size_t lo = 0; lo < n; ++lo) {
      if (lo & mask) continue;
      const std::size_t hi = lo | mask;
      const NodeId swap_key = fresh_key();
      const NodeId inv_lo_key = fresh_key();
      const NodeId inv_hi_key = fresh_key();
      const std::string stem =
          node_prefix + "_flsw" + std::to_string(switch_index++);
      // Route MUX pair (2 MUXes) ...
      const NodeId route_lo =
          netlist.add_mux(swap_key, wires[lo], wires[hi], stem + "_rlo");
      const NodeId route_hi =
          netlist.add_mux(swap_key, wires[hi], wires[lo], stem + "_rhi");
      // ... plus a keyed-inversion MUX per output (2 more MUXes + inverters),
      // FullLock's costlier element.
      const NodeId not_lo =
          netlist.add_gate(netlist::GateType::kNot, {route_lo},
                           stem + "_nlo");
      const NodeId not_hi =
          netlist.add_gate(netlist::GateType::kNot, {route_hi},
                           stem + "_nhi");
      wires[lo] = netlist.add_mux(inv_lo_key, route_lo, not_lo, stem + "_ilo");
      wires[hi] = netlist.add_mux(inv_hi_key, route_hi, not_hi, stem + "_ihi");
    }
  }
  instance.outputs = std::move(wires);
  return instance;
}

std::vector<bool> fulllock_keys_from_banyan(const std::vector<bool>& keys) {
  std::vector<bool> out;
  out.reserve(keys.size() * 3);
  for (bool k : keys) {
    out.push_back(k);
    out.push_back(false);
    out.push_back(false);
  }
  return out;
}

}  // namespace ril::core
