// RIL-Block construction and insertion (the paper's primary contribution).
//
// A size-N RIL-Block replaces N randomly selected 2-input gates g_1..g_N:
//
//   * interconnect obfuscation: one operand of each gate is tapped into an
//     N x N key-configurable banyan network ("N x N" block);
//   * logic obfuscation: gate i becomes a key-programmable 2-input LUT whose
//     first input is banyan output i and whose second input is the gate's
//     other operand (the LUT config key absorbs which function the gate
//     computed, 16 candidates per LUT);
//   * for an "N x N x N" block, a second banyan network scrambles which LUT
//     drives which original fan-out set (output interconnect obfuscation);
//   * optionally, each LUT output is XORed with a hidden per-LUT MTJ_SE bit
//     that is active whenever the oracle is queried through the scan
//     interface (Scan-Enable obfuscation, Section III-C). In the attacker's
//     reverse-engineered view this is an XOR with an unknown key bit.
//
// Correct keys exist by construction: random switch keys are drawn first,
// the realized permutation is computed, and gate operands are attached to
// the network inputs that route to the right LUT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::core {

struct RilBlockConfig {
  /// Block size N (power of two >= 2). "2x2", "8x8" in the paper's tables.
  std::size_t size = 8;
  /// Adds the output banyan network ("8x8x8").
  bool output_network = false;
  /// Adds the Scan-Enable obfuscation cell per LUT.
  bool scan_obfuscation = false;
  /// LUT fan-in M (2..6). M > 2 feeds each LUT extra banyan outputs whose
  /// (non-)influence is decided by the 2^M-bit config key -- the paper's
  /// "increase the size of LUT to further fortify the security" knob.
  /// Requires M - 1 <= size.
  std::size_t lut_inputs = 2;

  std::string label() const;
};

struct RilLockResult {
  /// Correct functional key aligned with netlist.key_inputs() order
  /// (appended after any pre-existing key inputs). SE positions are 0:
  /// in functional mode (SE deasserted) the hidden inversion is inactive.
  std::vector<bool> functional_key;
  /// Key the *oracle* effectively computes with when queried through the
  /// scan interface: identical to functional_key except SE positions carry
  /// the randomly programmed MTJ_SE bits.
  std::vector<bool> oracle_scan_key;
  /// Positions (within the appended key range) that are SE bits.
  std::vector<std::size_t> se_key_positions;
  /// Per appended key bit: its role inside the block.
  enum class KeyClass : std::uint8_t { kRouting, kLutConfig, kScanEnable };
  std::vector<KeyClass> key_classes;
  /// Number of key bits appended by this insertion.
  std::size_t key_width = 0;
  /// Index of the first appended key input in netlist.key_inputs().
  std::size_t key_offset = 0;
  std::size_t blocks_inserted = 0;
};

/// Inserts `num_blocks` RIL-Blocks into `netlist` (modified in place; the
/// replaced gates are swept). Throws if the netlist does not contain enough
/// eligible 2-input gates.
RilLockResult insert_ril_blocks(netlist::Netlist& netlist,
                                std::size_t num_blocks,
                                const RilBlockConfig& config,
                                std::uint64_t seed);

/// Gate-count overhead of one block (MUXes + key logic), used by the
/// overhead comparisons in Table I's discussion: a 2-MUX switch box per
/// banyan element plus 3 MUXes per LUT (+1 XOR if scan obfuscation).
std::size_t ril_block_gate_cost(const RilBlockConfig& config);

}  // namespace ril::core
