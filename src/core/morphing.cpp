#include "core/morphing.hpp"

#include <algorithm>

namespace ril::core {

MorphingScheduler::MorphingScheduler(const RilLockResult& lock,
                                     MorphPolicy policy, std::uint64_t seed)
    : base_key_(lock.functional_key), seed_(seed) {
  using KeyClass = RilLockResult::KeyClass;
  for (std::size_t i = 0; i < base_key_.size(); ++i) {
    const KeyClass cls = lock.key_classes.at(i);
    switch (policy) {
      case MorphPolicy::kFullScramble:
        if (cls != KeyClass::kScanEnable) positions_.push_back(i);
        break;
      case MorphPolicy::kLutOnly:
        if (cls == KeyClass::kLutConfig) positions_.push_back(i);
        break;
      case MorphPolicy::kRoutingOnly:
        if (cls == KeyClass::kRouting) positions_.push_back(i);
        break;
      case MorphPolicy::kScanKeysOnly:
        if (cls == KeyClass::kScanEnable) positions_.push_back(i);
        break;
    }
  }
}

std::vector<bool> MorphingScheduler::key_for_epoch(
    std::uint64_t epoch) const {
  std::vector<bool> key = base_key_;
  if (epoch == 0) return key;
  for (std::size_t pos : positions_) {
    key[pos] = morph_key_bit(seed_, epoch, pos);
  }
  return key;
}

std::vector<std::vector<bool>> MorphingScheduler::schedule(
    std::size_t epochs) const {
  std::vector<std::vector<bool>> keys;
  keys.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    keys.push_back(key_for_epoch(e));
  }
  return keys;
}

}  // namespace ril::core
