// Key-configurable logarithmic (banyan/butterfly) routing network.
//
// An N-input network (N a power of two) has log2(N) stages of N/2 switch
// boxes. Each switch box is the paper's 2-MUX element: key bit 0 passes the
// pair straight through, key bit 1 crosses it (Fig. 3). Total switches:
// (N/2)*log2(N), matching the paper's count (and 1 switch for the 2x2 block).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::core {

/// Number of switch boxes (= key bits) in an N-input banyan network.
std::size_t banyan_switch_count(std::size_t n);

/// Computes the permutation realized by switch keys: result[in] = out.
/// keys.size() must equal banyan_switch_count(n).
/// Stage s pairs positions (i, i ^ (1 << s)); switches are keyed in stage
/// order, within a stage by ascending low index.
std::vector<std::size_t> banyan_permutation(const std::vector<bool>& keys,
                                            std::size_t n);

/// Result of instantiating a banyan network inside a netlist.
struct BanyanInstance {
  std::vector<netlist::NodeId> outputs;     ///< N output nets
  std::vector<netlist::NodeId> key_inputs;  ///< switch keys, stage-major
};

/// Builds the network over `inputs` (size must be a power of two >= 2).
/// Switch keys are fresh key inputs named `keyinput<counter++>`. The 2-MUX
/// switch box: out_lo = MUX(k, in_lo, in_hi), out_hi = MUX(k, in_hi, in_lo).
BanyanInstance build_banyan(netlist::Netlist& netlist,
                            std::span<const netlist::NodeId> inputs,
                            std::size_t& key_name_counter,
                            const std::string& node_prefix);

/// FullLock-style switch box variant (for the ablation bench): 4 MUXes plus
/// a keyed inversion on each output, i.e. 2 extra key bits per switch.
/// Matches the paper's claim that FullLock's element costs more and creates
/// key aliasing (double inversions cancel).
BanyanInstance build_banyan_fulllock(netlist::Netlist& netlist,
                                     std::span<const netlist::NodeId> inputs,
                                     std::size_t& key_name_counter,
                                     const std::string& node_prefix);

/// Keys (permutation part only) that make a FullLock network realize the
/// same permutation as `banyan_permutation(keys, n)` with zero inversions.
/// For build_banyan_fulllock the key layout per switch is
/// [swap, invert_lo, invert_hi], stage-major.
std::vector<bool> fulllock_keys_from_banyan(const std::vector<bool>& keys);

}  // namespace ril::core
