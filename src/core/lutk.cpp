#include "core/lutk.hpp"

#include <stdexcept>

namespace ril::core {

using netlist::Netlist;
using netlist::NodeId;

KeyedLutK build_keyed_lutk(Netlist& netlist,
                           const std::vector<NodeId>& inputs,
                           std::size_t& key_name_counter,
                           const std::string& node_prefix) {
  if (inputs.size() < 2 || inputs.size() > 6) {
    throw std::invalid_argument("build_keyed_lutk: 2..6 inputs");
  }
  KeyedLutK lut;
  const std::size_t rows = std::size_t{1} << inputs.size();
  lut.key_inputs.reserve(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    lut.key_inputs.push_back(netlist.add_key_input(
        "keyinput" + std::to_string(key_name_counter++)));
  }
  // Collapse the tree level by level: level j selects on inputs[j], halving
  // the candidate vector. layer[idx] holds the value for the remaining
  // minterm bits idx (bits j.. of the original row).
  std::vector<NodeId> layer = lut.key_inputs;
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    std::vector<NodeId> next;
    next.reserve(layer.size() / 2);
    for (std::size_t idx = 0; idx < layer.size(); idx += 2) {
      next.push_back(netlist.add_mux(
          inputs[j], layer[idx], layer[idx + 1],
          node_prefix + "_l" + std::to_string(j) + "_" +
              std::to_string(idx / 2)));
    }
    layer = std::move(next);
  }
  lut.output = layer[0];
  return lut;
}

std::vector<bool> lutk_key_values(std::uint64_t mask,
                                  std::size_t num_inputs) {
  const std::size_t rows = std::size_t{1} << num_inputs;
  std::vector<bool> values(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    values[row] = (mask >> row) & 1;
  }
  return values;
}

std::uint64_t lutk_expand_mask2(std::uint8_t mask2, std::size_t num_inputs,
                                std::size_t a_index, std::size_t b_index) {
  if (a_index >= num_inputs || b_index >= num_inputs ||
      a_index == b_index) {
    throw std::invalid_argument("lutk_expand_mask2: bad operand indices");
  }
  const std::size_t rows = std::size_t{1} << num_inputs;
  std::uint64_t mask = 0;
  for (std::size_t row = 0; row < rows; ++row) {
    const std::size_t a = (row >> a_index) & 1;
    const std::size_t b = (row >> b_index) & 1;
    if ((mask2 >> (a + 2 * b)) & 1) mask |= std::uint64_t{1} << row;
  }
  return mask;
}

}  // namespace ril::core
