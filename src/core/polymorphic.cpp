#include "core/polymorphic.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "core/lut2.hpp"

namespace ril::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

GateType meso_function(std::size_t index) {
  static constexpr GateType kFunctions[8] = {
      GateType::kAnd, GateType::kOr,   GateType::kNand, GateType::kNor,
      GateType::kXor, GateType::kXnor, GateType::kBuf,  GateType::kNot};
  return kFunctions[index % 8];
}

namespace {

std::size_t meso_index_of(GateType type) {
  for (std::size_t i = 0; i < 8; ++i) {
    if (meso_function(i) == type) return i;
  }
  throw std::invalid_argument("meso_index_of: function not offered");
}

bool eligible(const netlist::Node& node) {
  return netlist::is_logic_op(node.type) && node.fanins.size() == 2;
}

}  // namespace

PolymorphicLockResult insert_polymorphic_gates(Netlist& netlist,
                                               std::size_t count,
                                               PolymorphicEncoding encoding,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    if (eligible(netlist.node(id))) candidates.push_back(id);
  }
  if (candidates.size() < count) {
    throw std::invalid_argument(
        "insert_polymorphic_gates: not enough eligible gates");
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  candidates.resize(count);

  PolymorphicLockResult result;
  std::size_t key_counter = netlist.key_inputs().size();
  const std::size_t nodes_before = netlist.node_count();

  for (std::size_t g = 0; g < count; ++g) {
    const NodeId gate = candidates[g];
    const GateType type = netlist.node(gate).type;
    const NodeId a = netlist.node(gate).fanins[0];
    const NodeId b = netlist.node(gate).fanins[1];
    const std::string prefix = "poly" + std::to_string(g);

    NodeId replacement = netlist::kNoNode;
    if (encoding == PolymorphicEncoding::kMesoStyle) {
      // 8 explicit function gates.
      std::vector<NodeId> funcs;
      funcs.reserve(8);
      for (std::size_t i = 0; i < 8; ++i) {
        const GateType f = meso_function(i);
        const std::string name = prefix + "_f" + std::to_string(i);
        if (f == GateType::kBuf || f == GateType::kNot) {
          funcs.push_back(netlist.add_gate(f, {a}, name));
        } else {
          funcs.push_back(netlist.add_gate(f, {a, b}, name));
        }
      }
      // 3 key bits, 7-MUX binary selection tree.
      NodeId k[3];
      for (int i = 0; i < 3; ++i) {
        k[i] = netlist.add_key_input("keyinput" +
                                     std::to_string(key_counter++));
      }
      const std::size_t index = meso_index_of(type);
      for (int i = 0; i < 3; ++i) {
        result.key.push_back((index >> i) & 1);
      }
      // Level 0: 4 MUXes on k[0]; level 1: 2 MUXes on k[1]; level 2: 1 MUX.
      std::vector<NodeId> layer = funcs;
      for (int bit = 0; bit < 3; ++bit) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i < layer.size(); i += 2) {
          next.push_back(netlist.add_mux(
              k[bit], layer[i], layer[i + 1],
              prefix + "_mux" + std::to_string(bit) + "_" +
                  std::to_string(i / 2)));
        }
        layer = next;
      }
      replacement = layer[0];
    } else {
      const KeyedLut lut =
          build_keyed_lut2(netlist, a, b, key_counter, prefix);
      const auto key_vals = lut_key_values(mask_of_gate(type));
      for (bool v : key_vals) result.key.push_back(v);
      replacement = lut.output;
    }

    netlist.replace_uses(gate, replacement);
  }
  result.gates_replaced = count;
  result.added_gates = netlist.node_count() - nodes_before -
                       result.key.size();  // exclude key-input nodes
  netlist.sweep_dead();
  return result;
}

}  // namespace ril::core
