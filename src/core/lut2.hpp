// Key-programmable 2-input LUT (the logic half of a RIL-Block).
//
// The LUT stores 4 configuration bits addressed by inputs (A, B); it can
// realize all 16 two-input Boolean functions (Table II of the paper). The
// SAT-simulation form is the 3-MUX select tree of Fig. 1:
//     out = MUX(B, MUX(A, m00, m10), MUX(A, m01, m11))
// where m_{AB} is the stored bit for minterm (A, B).
//
// Key-bit conventions:
//  * "mask" order (used internally): bit i of a 4-bit mask is the output for
//    minterm i with A as the LSB (i = A + 2B).
//  * "Table II" order K1..K4 addresses minterms AB = 11, 10, 01, 00, i.e.
//    K1 = mask bit 3, K2 = mask bit 1, K3 = mask bit 2, K4 = mask bit 0.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::core {

/// 4-bit function mask (A = LSB) of a standard 2-input gate type.
/// Supported: AND/NAND/OR/NOR/XOR/XNOR; others throw.
std::uint8_t mask_of_gate(netlist::GateType type);

/// Mask with the two LUT operands swapped (B becomes the LSB).
std::uint8_t swap_operands(std::uint8_t mask);

/// Table II conversions.
std::array<bool, 4> table2_keys_from_mask(std::uint8_t mask);  // K1..K4
std::uint8_t mask_from_table2_keys(const std::array<bool, 4>& k);

/// Human-readable function name for each of the 16 masks ("A NOR B", ...).
std::string function_name(std::uint8_t mask);

/// Result of instantiating one keyed LUT.
struct KeyedLut {
  netlist::NodeId output;
  /// 4 key inputs in mask order (bit 0 = minterm A=0,B=0).
  std::array<netlist::NodeId, 4> key_inputs;
};

/// Builds the 3-MUX keyed LUT over (a, b) with fresh key inputs.
KeyedLut build_keyed_lut2(netlist::Netlist& netlist, netlist::NodeId a,
                          netlist::NodeId b, std::size_t& key_name_counter,
                          const std::string& node_prefix);

/// Key values (mask order) programming the LUT to `mask`.
std::array<bool, 4> lut_key_values(std::uint8_t mask);

}  // namespace ril::core
