#include "core/ril_block.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "core/banyan.hpp"
#include "core/lut2.hpp"
#include "core/lutk.hpp"

namespace ril::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

std::string RilBlockConfig::label() const {
  std::string s = std::to_string(size) + "x" + std::to_string(size);
  if (output_network) s += "x" + std::to_string(size);
  if (lut_inputs != 2) s += "-lut" + std::to_string(lut_inputs);
  return s;
}

namespace {

bool is_eligible_gate(const netlist::Node& node) {
  return netlist::is_logic_op(node.type) && node.fanins.size() == 2;
}

/// Selects `n` gates such that no selected gate lies on a path to any
/// selected gate's operand (no path g_i -> a_j). This is exactly the
/// condition under which the block insertion (all operands -> shared banyan
/// -> LUT layer -> consumers) stays acyclic: a cycle would need a LUT
/// output to reach a banyan input, i.e. an original path from a replaced
/// gate to some selected operand.
std::vector<NodeId> select_gates(const Netlist& netlist,
                                 const std::vector<bool>& excluded,
                                 std::size_t n, std::mt19937_64& rng) {
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    if (!excluded[id] && is_eligible_gate(netlist.node(id))) {
      candidates.push_back(id);
    }
  }
  if (candidates.size() < n) {
    throw std::invalid_argument(
        "insert_ril_blocks: not enough eligible 2-input gates");
  }

  // Fanin cone (including roots) of a candidate's operands.
  auto operand_cone = [&](NodeId gate) {
    std::vector<bool> cone(netlist.node_count(), false);
    std::vector<NodeId> stack(netlist.node(gate).fanins.begin(),
                              netlist.node(gate).fanins.end());
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (cone[id]) continue;
      cone[id] = true;
      for (NodeId f : netlist.node(id).fanins) {
        if (!cone[f]) stack.push_back(f);
      }
    }
    return cone;
  };

  std::shuffle(candidates.begin(), candidates.end(), rng);
  std::vector<NodeId> chosen;
  std::vector<bool> union_operand_cone(netlist.node_count(), false);
  for (NodeId c : candidates) {
    if (chosen.size() == n) break;
    // Reject if some chosen operand depends on c (path c -> a_s)...
    if (union_operand_cone[c]) continue;
    // ... or if c's operands depend on a chosen gate (path s -> a_c).
    const auto cone = operand_cone(c);
    bool clash = false;
    for (NodeId s : chosen) {
      if (cone[s]) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    chosen.push_back(c);
    for (std::size_t i = 0; i < cone.size(); ++i) {
      if (cone[i]) union_operand_cone[i] = true;
    }
  }
  if (chosen.size() < n) {
    throw std::invalid_argument(
        "insert_ril_blocks: could not find an acyclic gate selection");
  }
  return chosen;
}

}  // namespace

RilLockResult insert_ril_blocks(Netlist& netlist, std::size_t num_blocks,
                                const RilBlockConfig& config,
                                std::uint64_t seed) {
  if (num_blocks == 0) {
    throw std::invalid_argument("insert_ril_blocks: num_blocks must be > 0");
  }
  if (config.lut_inputs < 2 || config.lut_inputs > 6 ||
      config.lut_inputs - 1 > config.size) {
    throw std::invalid_argument(
        "insert_ril_blocks: lut_inputs must be 2..6 and <= size + 1");
  }
  std::mt19937_64 rng(seed);
  RilLockResult result;
  result.key_offset = netlist.key_inputs().size();
  std::size_t key_name_counter = netlist.key_inputs().size();

  std::vector<bool> excluded(netlist.node_count(), false);
  auto grow_excluded = [&] {
    excluded.resize(netlist.node_count(), true);  // new nodes are block parts
  };

  const std::size_t n = config.size;
  auto rand_bit = [&] { return static_cast<bool>(rng() & 1); };

  for (std::size_t block = 0; block < num_blocks; ++block) {
    const std::string prefix =
        "ril_b" + std::to_string(result.key_offset) + "_" +
        std::to_string(block);
    const auto gates = select_gates(netlist, excluded, n, rng);
    for (NodeId g : gates) excluded[g] = true;

    // Operand split: a_i is routed through the banyan, b_i feeds the LUT
    // directly; which fanin plays which role is random per gate.
    std::vector<NodeId> routed(n);
    std::vector<NodeId> direct(n);
    std::vector<bool> swapped(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& fanins = netlist.node(gates[i]).fanins;
      swapped[i] = rand_bit();
      routed[i] = fanins[swapped[i] ? 1 : 0];
      direct[i] = fanins[swapped[i] ? 0 : 1];
    }

    // Input banyan: draw random switch keys, compute the realized
    // permutation, and attach operands so that output i carries routed[i].
    const std::size_t switches = banyan_switch_count(n);
    std::vector<bool> in_keys(switches);
    for (auto&& k : in_keys) k = rand_bit();
    const auto perm = banyan_permutation(in_keys, n);
    std::vector<NodeId> banyan_inputs(n);
    for (std::size_t p = 0; p < n; ++p) {
      banyan_inputs[p] = routed[perm[p]];
    }
    const BanyanInstance in_net =
        build_banyan(netlist, banyan_inputs, key_name_counter,
                     prefix + "_in");
    for (bool k : in_keys) {
      result.functional_key.push_back(k);
      result.oracle_scan_key.push_back(k);
      result.key_classes.push_back(RilLockResult::KeyClass::kRouting);
    }

    // LUT layer (+ optional SE cell per LUT). LUT i reads banyan outputs
    // i .. i+M-2 (mod N) plus the gate's direct operand; the config key
    // absorbs both the gate function and which inputs actually matter.
    const std::size_t m = config.lut_inputs;
    std::vector<NodeId> lut_outputs(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<NodeId> lut_in;
      lut_in.reserve(m);
      for (std::size_t j = 0; j + 1 < m; ++j) {
        lut_in.push_back(in_net.outputs[(i + j) % n]);
      }
      lut_in.push_back(direct[i]);
      const KeyedLutK lut = build_keyed_lutk(
          netlist, lut_in, key_name_counter,
          prefix + "_lut" + std::to_string(i));
      std::uint8_t mask2 = mask_of_gate(netlist.node(gates[i]).type);
      if (swapped[i]) mask2 = swap_operands(mask2);
      const std::uint64_t mask =
          lutk_expand_mask2(mask2, m, /*a_index=*/0, /*b_index=*/m - 1);
      const auto key_vals = lutk_key_values(mask, m);
      for (bool k : key_vals) {
        result.functional_key.push_back(k);
        result.oracle_scan_key.push_back(k);
        result.key_classes.push_back(RilLockResult::KeyClass::kLutConfig);
      }
      NodeId out = lut.output;
      if (config.scan_obfuscation) {
        const NodeId se_key = netlist.add_key_input(
            "keyinput" + std::to_string(key_name_counter++));
        out = netlist.add_gate(GateType::kXor, {out, se_key},
                               prefix + "_se" + std::to_string(i));
        result.se_key_positions.push_back(result.functional_key.size());
        result.functional_key.push_back(false);     // SE inactive: no invert
        result.oracle_scan_key.push_back(rand_bit());  // programmed MTJ_SE
        result.key_classes.push_back(RilLockResult::KeyClass::kScanEnable);
      }
      lut_outputs[i] = out;
    }

    // Optional output banyan.
    std::vector<NodeId> finals(n);
    if (config.output_network) {
      std::vector<bool> out_keys(switches);
      for (auto&& k : out_keys) k = rand_bit();
      const auto operm = banyan_permutation(out_keys, n);
      std::vector<NodeId> net_inputs(n);
      for (std::size_t p = 0; p < n; ++p) {
        net_inputs[p] = lut_outputs[operm[p]];
      }
      const BanyanInstance out_net =
          build_banyan(netlist, net_inputs, key_name_counter,
                       prefix + "_out");
      for (bool k : out_keys) {
        result.functional_key.push_back(k);
        result.oracle_scan_key.push_back(k);
        result.key_classes.push_back(RilLockResult::KeyClass::kRouting);
      }
      finals = out_net.outputs;
    } else {
      finals = lut_outputs;
    }

    // Swing every consumer of gate i over to the block output.
    for (std::size_t i = 0; i < n; ++i) {
      netlist.replace_uses(gates[i], finals[i]);
    }
    grow_excluded();
  }

  result.key_width = result.functional_key.size();
  result.blocks_inserted = num_blocks;
  netlist.sweep_dead();
  return result;
}

std::size_t ril_block_gate_cost(const RilBlockConfig& config) {
  const std::size_t switches = banyan_switch_count(config.size);
  std::size_t cost = 2 * switches;  // input network MUXes
  // (2^M - 1)-MUX select tree per LUT (3 MUXes for the default M = 2).
  cost += ((std::size_t{1} << config.lut_inputs) - 1) * config.size;
  if (config.output_network) cost += 2 * switches;
  if (config.scan_obfuscation) cost += config.size;  // SE XORs
  return cost;
}

}  // namespace ril::core
