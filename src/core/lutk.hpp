// Key-programmable M-input LUT (generalization of the 2-input RIL LUT).
//
// The paper: "the LUT used in RIL-block can be increased to increase the
// SAT-hardness of the resulting RIL-Block" and "increasing the LUT size
// helps to reduce the overhead while increasing SAT-resiliency" (the write
// circuit is shared across cells). An M-input keyed LUT is a full binary
// select-tree of 2^M - 1 MUXes over 2^M key bits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::core {

struct KeyedLutK {
  netlist::NodeId output = netlist::kNoNode;
  /// 2^M key inputs in mask order: key_inputs[row] is the output for the
  /// input minterm `row`, with inputs[0] as the least-significant bit.
  std::vector<netlist::NodeId> key_inputs;
};

/// Builds the select tree over `inputs` (2..6 inputs). Fresh key inputs are
/// named "keyinput<counter++>".
KeyedLutK build_keyed_lutk(netlist::Netlist& netlist,
                           const std::vector<netlist::NodeId>& inputs,
                           std::size_t& key_name_counter,
                           const std::string& node_prefix);

/// Key values (mask order) that program an M-input LUT to `mask`.
std::vector<bool> lutk_key_values(std::uint64_t mask, std::size_t num_inputs);

/// Mask of an M-input LUT that computes the 2-input function `mask2`
/// (A = LSB) of (inputs[a_index], inputs[b_index]) and ignores the rest.
std::uint64_t lutk_expand_mask2(std::uint8_t mask2, std::size_t num_inputs,
                                std::size_t a_index, std::size_t b_index);

}  // namespace ril::core
