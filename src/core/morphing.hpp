// Dynamic-morphing scheduler (the paper's run-time reconfiguration knob).
//
// MRAM storage lets the chip rewrite its own LUT configs and routing keys
// in the field. The paper uses this two ways:
//  * against attackers: morph between (functionality-corrupting) states
//    while untrusted queries are possible, making the collected I/O pairs
//    mutually inconsistent -- the SAT attack's constraint set goes UNSAT;
//  * for error-tolerant applications: hop between states whose output
//    error stays inside a budget (the MESO-style dynamic camouflaging the
//    paper contrasts against).
//
// MorphingScheduler turns a RIL lock into an epoch sequence of key vectors
// and knows which positions are safe to scramble per policy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ril_block.hpp"

namespace ril::core {

/// The canonical morph-bit derivation shared by MorphingScheduler and
/// attacks::Oracle: splitmix64 over seed ^ epoch*FNV-prime ^ position —
/// cheap, stateless, and queryable out of order. Epoch 0 is by convention
/// the base (functional) key and never derived through this function, so
/// the same (seed, positions) pair yields exactly one key sequence on both
/// the scheduler (designer) side and the oracle (silicon) side.
inline bool morph_key_bit(std::uint64_t seed, std::uint64_t epoch,
                          std::uint64_t position) {
  std::uint64_t x = seed ^ (epoch * 0x100000001b3ull) ^ position;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return (x & 1) != 0;
}

enum class MorphPolicy : std::uint8_t {
  /// Scramble every non-SE key bit (maximal inconsistency; chip unusable
  /// during the morph window). The paper's anti-SAT-attack mode.
  kFullScramble,
  /// Scramble only the LUT configuration bits, keep routing stable.
  kLutOnly,
  /// Scramble only the routing bits, keep LUT configs stable.
  kRoutingOnly,
  /// Re-program the hidden MTJ_SE cells only. On silicon this leaves
  /// functional-mode behaviour untouched (SE is deasserted outside the
  /// scan interface) while every *scan-mode* response changes epoch to
  /// epoch; apply these epochs to the oracle's scan key.
  kScanKeysOnly,
};

class MorphingScheduler {
 public:
  /// `lock` must come from the insertion that produced `key_width` bits.
  MorphingScheduler(const RilLockResult& lock, MorphPolicy policy,
                    std::uint64_t seed);

  /// Key positions this policy is allowed to touch.
  const std::vector<std::size_t>& mutable_positions() const {
    return positions_;
  }

  /// The key vector for epoch `e` (epoch 0 = the functional key).
  /// Deterministic per (lock, policy, seed).
  std::vector<bool> key_for_epoch(std::uint64_t epoch) const;

  /// Convenience: epoch sequence [0, epochs).
  std::vector<std::vector<bool>> schedule(std::size_t epochs) const;

 private:
  std::vector<bool> base_key_;
  std::vector<std::size_t> positions_;
  std::uint64_t seed_;
};

}  // namespace ril::core
