// Polymorphic-device encodings (Figure 1 of the paper).
//
// A statically-programmed MESO-class device realizes one of 8 Boolean
// functions of (A, B). The paper observes two SAT encodings of that device:
//
//  * kMesoStyle — the formulation used in the MESO paper: the 8 candidate
//    functions instantiated as 8 explicit gates, selected by a 7-MUX binary
//    tree driven by 3 key bits ("a MUX with additional 8 gates and 7
//    MUXes").
//  * kLut2Style — the same device re-encoded as a 2-input LUT: a 3-MUX
//    select tree over 4 key bits (Fig. 1 right), which emulates all 16
//    functions and, as the paper shows, collapses the SAT-attack runtime of
//    MESO-style obfuscation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace ril::core {

enum class PolymorphicEncoding : std::uint8_t {
  kMesoStyle,  // 8 function gates + 7-MUX selector, 3 key bits
  kLut2Style,  // 3-MUX LUT, 4 key bits
};

/// The 8 functions a MESO device offers, by selector index.
/// {AND, OR, NAND, NOR, XOR, XNOR, BUF(A), NOT(A)}.
netlist::GateType meso_function(std::size_t index);

struct PolymorphicLockResult {
  /// Correct key aligned with the appended key inputs.
  std::vector<bool> key;
  std::size_t gates_replaced = 0;
  /// Extra (non-key) nodes added per replaced gate, for overhead reporting.
  std::size_t added_gates = 0;
};

/// Replaces `count` random eligible gates with polymorphic devices in the
/// chosen encoding. MESO-style requires the gate function to be one of the
/// 8 offered (BUF/NOT also eligible); LUT-2 accepts any 2-input logic gate.
PolymorphicLockResult insert_polymorphic_gates(netlist::Netlist& netlist,
                                               std::size_t count,
                                               PolymorphicEncoding encoding,
                                               std::uint64_t seed);

}  // namespace ril::core
