// Differential / correlation power analysis against a keyed LUT.
//
// Hypothesis space: the 16 possible 4-bit LUT configurations. For each
// hypothesis the attacker predicts the LUT output on every (known) input
// and tests whether measured power correlates with the prediction.
//  * DPA: signed difference of means between predicted-0 and predicted-1
//    partitions (read-0 is the costlier SRAM operation, so the true key
//    yields the largest positive difference).
//  * CPA: Pearson correlation between power and the predicted-0 indicator.
#pragma once

#include <array>
#include <cstdint>

#include "sca/power_trace.hpp"

namespace ril::sca {

struct ScaResult {
  std::uint8_t best_mask = 0;
  double best_score = 0;
  /// Gap between the best and second-best hypothesis scores, normalized by
  /// the score spread; ~0 means the attack cannot distinguish keys.
  double margin = 0;
  std::array<double, 16> scores{};

  bool recovered(std::uint8_t true_mask) const {
    return best_mask == (true_mask & 0xF);
  }
};

ScaResult run_dpa(const TraceSet& traces);
ScaResult run_cpa(const TraceSet& traces);

}  // namespace ril::sca
