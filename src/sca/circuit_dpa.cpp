#include "sca/circuit_dpa.hpp"

#include <limits>
#include <random>
#include <stdexcept>

#include "device/mram_lut.hpp"
#include "device/sram_lut.hpp"
#include "netlist/simulator.hpp"

namespace ril::sca {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

std::vector<KeyedLutInstance> find_keyed_luts(const Netlist& locked) {
  // Key-taint: nodes whose value depends on some key input.
  std::vector<bool> taint(locked.node_count(), false);
  for (NodeId id : locked.key_inputs()) taint[id] = true;
  for (NodeId id : locked.topological_order()) {
    if (taint[id]) continue;
    for (NodeId f : locked.node(id).fanins) {
      if (taint[f]) {
        taint[id] = true;
        break;
      }
    }
  }

  auto is_key = [&](NodeId id) { return locked.is_key_input(id); };
  std::vector<KeyedLutInstance> luts;
  for (NodeId id = 0; id < locked.node_count(); ++id) {
    const auto& out = locked.node(id);
    if (out.type != GateType::kMux) continue;
    const NodeId low_id = out.fanins[1];
    const NodeId high_id = out.fanins[2];
    const auto& low = locked.node(low_id);
    const auto& high = locked.node(high_id);
    if (low.type != GateType::kMux || high.type != GateType::kMux) continue;
    if (low.fanins[0] != high.fanins[0]) continue;  // must share select A
    if (!is_key(low.fanins[1]) || !is_key(low.fanins[2]) ||
        !is_key(high.fanins[1]) || !is_key(high.fanins[2])) {
      continue;
    }
    KeyedLutInstance lut;
    lut.input_a = low.fanins[0];
    lut.input_b = out.fanins[0];
    lut.key_inputs = {low.fanins[1], low.fanins[2], high.fanins[1],
                      high.fanins[2]};
    lut.output = id;
    lut.attackable = !taint[lut.input_a] && !taint[lut.input_b];
    luts.push_back(lut);
  }
  return luts;
}

CircuitTraceSet generate_circuit_traces(
    const Netlist& locked, const std::vector<bool>& key,
    const std::vector<KeyedLutInstance>& luts,
    const CircuitTraceOptions& options) {
  if (key.size() != locked.key_inputs().size()) {
    throw std::invalid_argument("generate_circuit_traces: key mismatch");
  }
  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> noise(0.0, options.noise_sigma);

  // True config of each LUT (mask order) from the programmed key.
  std::vector<int> key_position(locked.node_count(), -1);
  for (std::size_t i = 0; i < locked.key_inputs().size(); ++i) {
    key_position[locked.key_inputs()[i]] = static_cast<int>(i);
  }
  std::vector<std::uint8_t> masks;
  for (const KeyedLutInstance& lut : luts) {
    std::uint8_t mask = 0;
    for (std::size_t bit = 0; bit < 4; ++bit) {
      const int pos = key_position[lut.key_inputs[bit]];
      if (pos < 0) throw std::invalid_argument("bad LUT key input");
      if (key[static_cast<std::size_t>(pos)]) {
        mask |= static_cast<std::uint8_t>(1u << bit);
      }
    }
    masks.push_back(mask);
  }

  // One physical cell per LUT, with its own PV sample.
  std::vector<device::MramLut2> mram_cells;
  std::vector<device::SramLut2> sram_cells;
  for (std::size_t i = 0; i < luts.size(); ++i) {
    if (options.technology == LutTechnology::kMram) {
      mram_cells.emplace_back(options.mtj, options.cmos, options.variation,
                              rng);
      mram_cells.back().configure(masks[i]);
    } else {
      sram_cells.emplace_back(options.cmos, options.variation, rng);
      sram_cells.back().configure(masks[i]);
    }
  }

  netlist::Simulator sim(locked);
  for (std::size_t i = 0; i < key.size(); ++i) {
    sim.set_input_all(locked.key_inputs()[i], key[i]);
  }
  const auto data_inputs = locked.data_inputs();

  CircuitTraceSet set;
  set.technology = options.technology;
  set.plaintexts.reserve(options.traces);
  set.power.reserve(options.traces);
  for (std::size_t t = 0; t < options.traces; ++t) {
    std::vector<bool> x(data_inputs.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = rng() & 1;
      sim.set_input_all(data_inputs[i], x[i]);
    }
    sim.evaluate();
    double energy = noise(rng);
    for (std::size_t i = 0; i < luts.size(); ++i) {
      const bool a = sim.value(luts[i].input_a) & 1;
      const bool b = sim.value(luts[i].input_b) & 1;
      if (options.technology == LutTechnology::kMram) {
        energy += mram_cells[i].read_output(a, b, false).energy;
      } else {
        energy += sram_cells[i].read_output(a, b).energy;
      }
    }
    set.plaintexts.push_back(std::move(x));
    set.power.push_back(energy);
  }
  return set;
}

CircuitDpaResult run_circuit_dpa(const Netlist& locked,
                                 const std::vector<KeyedLutInstance>& luts,
                                 const CircuitTraceSet& traces,
                                 const std::vector<bool>& key) {
  CircuitDpaResult result;
  // Attacker-side simulator: key inputs held at 0 (the attackable LUT
  // inputs are key-independent by construction).
  netlist::Simulator sim(locked);
  for (NodeId k : locked.key_inputs()) sim.set_input_all(k, false);
  const auto data_inputs = locked.data_inputs();

  std::vector<int> key_position(locked.node_count(), -1);
  for (std::size_t i = 0; i < locked.key_inputs().size(); ++i) {
    key_position[locked.key_inputs()[i]] = static_cast<int>(i);
  }

  // Per-trace (a, b) for each attackable LUT.
  std::vector<const KeyedLutInstance*> targets;
  for (const KeyedLutInstance& lut : luts) {
    if (lut.attackable) targets.push_back(&lut);
  }
  result.attackable_luts = targets.size();
  std::vector<std::vector<std::uint8_t>> ab(
      targets.size(), std::vector<std::uint8_t>(traces.power.size()));
  for (std::size_t t = 0; t < traces.power.size(); ++t) {
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      sim.set_input_all(data_inputs[i], traces.plaintexts[t][i]);
    }
    sim.evaluate();
    for (std::size_t l = 0; l < targets.size(); ++l) {
      const std::uint8_t a = sim.value(targets[l]->input_a) & 1;
      const std::uint8_t b = sim.value(targets[l]->input_b) & 1;
      ab[l][t] = static_cast<std::uint8_t>(a | (b << 1));
    }
  }

  for (std::size_t l = 0; l < targets.size(); ++l) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint8_t best_mask = 0;
    for (unsigned mask = 0; mask < 16; ++mask) {
      double sum0 = 0;
      double sum1 = 0;
      std::size_t n0 = 0;
      std::size_t n1 = 0;
      for (std::size_t t = 0; t < traces.power.size(); ++t) {
        if ((mask >> ab[l][t]) & 1) {
          sum1 += traces.power[t];
          ++n1;
        } else {
          sum0 += traces.power[t];
          ++n0;
        }
      }
      if (n0 == 0 || n1 == 0) continue;
      const double score = sum0 / n0 - sum1 / n1;  // read-0 costs more
      if (score > best_score) {
        best_score = score;
        best_mask = static_cast<std::uint8_t>(mask);
      }
    }
    result.guesses.push_back(best_mask);
    std::uint8_t truth = 0;
    for (std::size_t bit = 0; bit < 4; ++bit) {
      const int pos = key_position[targets[l]->key_inputs[bit]];
      if (pos >= 0 && key[static_cast<std::size_t>(pos)]) {
        truth |= static_cast<std::uint8_t>(1u << bit);
      }
    }
    result.truths.push_back(truth);
    if (best_mask == truth) ++result.recovered_masks;
  }
  return result;
}

}  // namespace ril::sca
