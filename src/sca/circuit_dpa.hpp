// Circuit-level power side-channel analysis of a locked netlist.
//
// The single-LUT analysis (power_trace/dpa) isolates the device-level
// leak; here the victim is a whole locked circuit containing many keyed
// 2-input LUTs. Each trace applies a random primary-input vector and
// measures the summed read energy of every keyed LUT cell (each LUT's
// contribution depends on its output value for SRAM storage and is
// value-independent for complementary MRAM), plus measurement noise. The
// attacker targets the LUTs whose data inputs have key-free fan-in cones
// (computable from the reverse-engineered netlist alone) and runs
// per-LUT DPA against the global trace -- the other LUTs act as
// algorithmic noise, as on real silicon.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sca/power_trace.hpp"

namespace ril::sca {

/// One keyed 2-input LUT found in a locked netlist (the 3-MUX select tree
/// produced by the RIL/LUT locking passes).
struct KeyedLutInstance {
  netlist::NodeId input_a = netlist::kNoNode;
  netlist::NodeId input_b = netlist::kNoNode;
  /// Config key inputs in mask order (m00, m10, m01, m11).
  std::array<netlist::NodeId, 4> key_inputs{};
  netlist::NodeId output = netlist::kNoNode;
  /// True if both data inputs are computable without key knowledge.
  bool attackable = false;
};

/// Structural detection of keyed-LUT select trees.
std::vector<KeyedLutInstance> find_keyed_luts(const netlist::Netlist& locked);

struct CircuitTraceOptions {
  LutTechnology technology = LutTechnology::kSram;
  std::size_t traces = 4000;
  double noise_sigma = 0.5e-15;
  device::MtjParams mtj;
  device::CmosParams cmos;
  device::VariationSpec variation;
  std::uint64_t seed = 5;
};

struct CircuitTraceSet {
  LutTechnology technology = LutTechnology::kSram;
  std::vector<std::vector<bool>> plaintexts;  ///< PI vectors (data inputs)
  std::vector<double> power;                  ///< total keyed-cell energy [J]
};

/// Simulates the activated chip (locked netlist + correct key) and collects
/// power traces over random primary inputs.
CircuitTraceSet generate_circuit_traces(const netlist::Netlist& locked,
                                        const std::vector<bool>& key,
                                        const std::vector<KeyedLutInstance>&
                                            luts,
                                        const CircuitTraceOptions& options);

struct CircuitDpaResult {
  std::size_t attackable_luts = 0;
  std::size_t recovered_masks = 0;   ///< exact 4-bit config recoveries
  std::vector<std::uint8_t> guesses;  ///< per attackable LUT
  std::vector<std::uint8_t> truths;
};

/// Runs per-LUT DPA on the shared trace. `key` is only used to score the
/// guesses (the attack itself never reads it).
CircuitDpaResult run_circuit_dpa(const netlist::Netlist& locked,
                                 const std::vector<KeyedLutInstance>& luts,
                                 const CircuitTraceSet& traces,
                                 const std::vector<bool>& key);

}  // namespace ril::sca
