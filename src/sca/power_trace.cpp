#include "sca/power_trace.hpp"

#include "device/mram_lut.hpp"
#include "device/sram_lut.hpp"

namespace ril::sca {

TraceSet generate_traces(const TraceOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> noise(0.0, options.noise_sigma);
  TraceSet set;
  set.technology = options.technology;
  set.true_mask = options.mask & 0xF;
  set.inputs.reserve(options.traces);
  set.power.reserve(options.traces);

  if (options.technology == LutTechnology::kSram) {
    device::SramLut2 lut(options.cmos, options.variation, rng);
    lut.configure(set.true_mask);
    for (std::size_t i = 0; i < options.traces; ++i) {
      const bool a = rng() & 1;
      const bool b = rng() & 1;
      const auto r = lut.read_output(a, b);
      set.inputs.emplace_back(a, b);
      set.power.push_back(r.energy + noise(rng));
    }
  } else {
    device::MramLut2 lut(options.mtj, options.cmos, options.variation, rng);
    lut.configure(set.true_mask);
    for (std::size_t i = 0; i < options.traces; ++i) {
      const bool a = rng() & 1;
      const bool b = rng() & 1;
      const auto r = lut.read_output(a, b, /*scan_enable=*/false);
      set.inputs.emplace_back(a, b);
      set.power.push_back(r.energy + noise(rng));
    }
  }
  return set;
}

}  // namespace ril::sca
