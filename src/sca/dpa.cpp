#include "sca/dpa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ril::sca {

namespace {

bool predict(std::uint8_t mask, bool a, bool b) {
  const std::size_t minterm = (a ? 1 : 0) + (b ? 2 : 0);
  return (mask >> minterm) & 1;
}

ScaResult finish(std::array<double, 16> scores) {
  ScaResult result;
  result.scores = scores;
  result.best_mask = 0;
  result.best_score = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
  double lo = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < 16; ++m) {
    if (scores[m] > result.best_score) {
      second = result.best_score;
      result.best_score = scores[m];
      result.best_mask = static_cast<std::uint8_t>(m);
    } else if (scores[m] > second) {
      second = scores[m];
    }
    if (std::isfinite(scores[m])) lo = std::min(lo, scores[m]);
  }
  const double spread = result.best_score - lo;
  result.margin = spread > 0 ? (result.best_score - second) / spread : 0.0;
  return result;
}

}  // namespace

ScaResult run_dpa(const TraceSet& traces) {
  std::array<double, 16> scores{};
  for (std::size_t m = 0; m < 16; ++m) {
    double sum0 = 0;
    double sum1 = 0;
    std::size_t n0 = 0;
    std::size_t n1 = 0;
    for (std::size_t i = 0; i < traces.power.size(); ++i) {
      const auto [a, b] = traces.inputs[i];
      if (predict(static_cast<std::uint8_t>(m), a, b)) {
        sum1 += traces.power[i];
        ++n1;
      } else {
        sum0 += traces.power[i];
        ++n0;
      }
    }
    if (n0 == 0 || n1 == 0) {
      scores[m] = -std::numeric_limits<double>::infinity();
      continue;
    }
    scores[m] = sum0 / n0 - sum1 / n1;  // read-0 costs more on leaky tech
  }
  return finish(scores);
}

ScaResult run_cpa(const TraceSet& traces) {
  std::array<double, 16> scores{};
  const std::size_t n = traces.power.size();
  double p_mean = 0;
  for (double p : traces.power) p_mean += p;
  p_mean /= std::max<std::size_t>(1, n);
  double p_var = 0;
  for (double p : traces.power) p_var += (p - p_mean) * (p - p_mean);

  for (std::size_t m = 0; m < 16; ++m) {
    double h_mean = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [a, b] = traces.inputs[i];
      h_mean += predict(static_cast<std::uint8_t>(m), a, b) ? 0.0 : 1.0;
    }
    h_mean /= std::max<std::size_t>(1, n);
    double cov = 0;
    double h_var = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [a, b] = traces.inputs[i];
      const double h =
          (predict(static_cast<std::uint8_t>(m), a, b) ? 0.0 : 1.0) - h_mean;
      cov += h * (traces.power[i] - p_mean);
      h_var += h * h;
    }
    if (h_var <= 0 || p_var <= 0) {
      scores[m] = -std::numeric_limits<double>::infinity();
      continue;
    }
    scores[m] = cov / std::sqrt(h_var * p_var);
  }
  return finish(scores);
}

}  // namespace ril::sca
