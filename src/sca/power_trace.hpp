// Power-trace generation for side-channel analysis of keyed LUTs.
//
// The victim is a single key-programmed 2-input LUT (the secret is its
// 4-bit configuration). For each trace the attacker applies a known random
// input pair and measures total supply energy of the read operation plus
// measurement noise. SRAM LUTs leak because read energy depends on the
// output value; the complementary MRAM LUT's read path is value-symmetric.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "device/params.hpp"

namespace ril::sca {

enum class LutTechnology { kSram, kMram };

struct TraceSet {
  LutTechnology technology = LutTechnology::kSram;
  std::uint8_t true_mask = 0;
  std::vector<std::pair<bool, bool>> inputs;  ///< known plaintext inputs
  std::vector<double> power;                  ///< measured energy per op [J]
};

struct TraceOptions {
  LutTechnology technology = LutTechnology::kSram;
  std::uint8_t mask = 0b1000;
  std::size_t traces = 2000;
  /// Gaussian measurement noise sigma [J]. Default ~4% of an SRAM read.
  double noise_sigma = 0.3e-15;
  device::MtjParams mtj;
  device::CmosParams cmos;
  device::VariationSpec variation;
  std::uint64_t seed = 99;
};

TraceSet generate_traces(const TraceOptions& options);

}  // namespace ril::sca
