# Empty dependencies file for compare_defenses.
# This may be replaced when dependencies are built.
