file(REMOVE_RECURSE
  "CMakeFiles/compare_defenses.dir/compare_defenses.cpp.o"
  "CMakeFiles/compare_defenses.dir/compare_defenses.cpp.o.d"
  "compare_defenses"
  "compare_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
