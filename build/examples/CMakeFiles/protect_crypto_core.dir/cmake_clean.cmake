file(REMOVE_RECURSE
  "CMakeFiles/protect_crypto_core.dir/protect_crypto_core.cpp.o"
  "CMakeFiles/protect_crypto_core.dir/protect_crypto_core.cpp.o.d"
  "protect_crypto_core"
  "protect_crypto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_crypto_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
