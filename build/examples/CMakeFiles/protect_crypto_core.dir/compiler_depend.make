# Empty compiler generated dependencies file for protect_crypto_core.
# This may be replaced when dependencies are built.
