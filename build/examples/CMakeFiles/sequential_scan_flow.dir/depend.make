# Empty dependencies file for sequential_scan_flow.
# This may be replaced when dependencies are built.
