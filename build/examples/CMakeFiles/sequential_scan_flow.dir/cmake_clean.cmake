file(REMOVE_RECURSE
  "CMakeFiles/sequential_scan_flow.dir/sequential_scan_flow.cpp.o"
  "CMakeFiles/sequential_scan_flow.dir/sequential_scan_flow.cpp.o.d"
  "sequential_scan_flow"
  "sequential_scan_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_scan_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
