file(REMOVE_RECURSE
  "CMakeFiles/ril.dir/ril_cli.cpp.o"
  "CMakeFiles/ril.dir/ril_cli.cpp.o.d"
  "ril"
  "ril.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
