# Empty compiler generated dependencies file for ril.
# This may be replaced when dependencies are built.
