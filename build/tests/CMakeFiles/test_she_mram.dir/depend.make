# Empty dependencies file for test_she_mram.
# This may be replaced when dependencies are built.
