file(REMOVE_RECURSE
  "CMakeFiles/test_she_mram.dir/test_she_mram.cpp.o"
  "CMakeFiles/test_she_mram.dir/test_she_mram.cpp.o.d"
  "test_she_mram"
  "test_she_mram.pdb"
  "test_she_mram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_she_mram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
