# Empty dependencies file for test_montecarlo.
# This may be replaced when dependencies are built.
