file(REMOVE_RECURSE
  "CMakeFiles/test_montecarlo.dir/test_montecarlo.cpp.o"
  "CMakeFiles/test_montecarlo.dir/test_montecarlo.cpp.o.d"
  "test_montecarlo"
  "test_montecarlo.pdb"
  "test_montecarlo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
