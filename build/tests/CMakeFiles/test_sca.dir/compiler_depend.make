# Empty compiler generated dependencies file for test_sca.
# This may be replaced when dependencies are built.
