file(REMOVE_RECURSE
  "CMakeFiles/test_sca.dir/test_sca.cpp.o"
  "CMakeFiles/test_sca.dir/test_sca.cpp.o.d"
  "test_sca"
  "test_sca.pdb"
  "test_sca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
