file(REMOVE_RECURSE
  "CMakeFiles/test_bench_io.dir/test_bench_io.cpp.o"
  "CMakeFiles/test_bench_io.dir/test_bench_io.cpp.o.d"
  "test_bench_io"
  "test_bench_io.pdb"
  "test_bench_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
