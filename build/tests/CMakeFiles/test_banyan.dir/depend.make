# Empty dependencies file for test_banyan.
# This may be replaced when dependencies are built.
