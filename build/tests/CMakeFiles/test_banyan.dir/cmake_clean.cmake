file(REMOVE_RECURSE
  "CMakeFiles/test_banyan.dir/test_banyan.cpp.o"
  "CMakeFiles/test_banyan.dir/test_banyan.cpp.o.d"
  "test_banyan"
  "test_banyan.pdb"
  "test_banyan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banyan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
