# Empty compiler generated dependencies file for test_appsat.
# This may be replaced when dependencies are built.
