file(REMOVE_RECURSE
  "CMakeFiles/test_appsat.dir/test_appsat.cpp.o"
  "CMakeFiles/test_appsat.dir/test_appsat.cpp.o.d"
  "test_appsat"
  "test_appsat.pdb"
  "test_appsat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
