file(REMOVE_RECURSE
  "CMakeFiles/test_polymorphic.dir/test_polymorphic.cpp.o"
  "CMakeFiles/test_polymorphic.dir/test_polymorphic.cpp.o.d"
  "test_polymorphic"
  "test_polymorphic.pdb"
  "test_polymorphic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polymorphic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
