# Empty compiler generated dependencies file for test_polymorphic.
# This may be replaced when dependencies are built.
