file(REMOVE_RECURSE
  "CMakeFiles/test_tseitin.dir/test_tseitin.cpp.o"
  "CMakeFiles/test_tseitin.dir/test_tseitin.cpp.o.d"
  "test_tseitin"
  "test_tseitin.pdb"
  "test_tseitin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tseitin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
