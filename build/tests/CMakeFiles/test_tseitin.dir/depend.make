# Empty dependencies file for test_tseitin.
# This may be replaced when dependencies are built.
