file(REMOVE_RECURSE
  "CMakeFiles/test_transient.dir/test_transient.cpp.o"
  "CMakeFiles/test_transient.dir/test_transient.cpp.o.d"
  "test_transient"
  "test_transient.pdb"
  "test_transient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
