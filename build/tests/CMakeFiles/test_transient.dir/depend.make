# Empty dependencies file for test_transient.
# This may be replaced when dependencies are built.
