file(REMOVE_RECURSE
  "CMakeFiles/test_sat_solver.dir/test_sat_solver.cpp.o"
  "CMakeFiles/test_sat_solver.dir/test_sat_solver.cpp.o.d"
  "test_sat_solver"
  "test_sat_solver.pdb"
  "test_sat_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
