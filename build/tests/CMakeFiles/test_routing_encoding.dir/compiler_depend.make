# Empty compiler generated dependencies file for test_routing_encoding.
# This may be replaced when dependencies are built.
