file(REMOVE_RECURSE
  "CMakeFiles/test_routing_encoding.dir/test_routing_encoding.cpp.o"
  "CMakeFiles/test_routing_encoding.dir/test_routing_encoding.cpp.o.d"
  "test_routing_encoding"
  "test_routing_encoding.pdb"
  "test_routing_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
