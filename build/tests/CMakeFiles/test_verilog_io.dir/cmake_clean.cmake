file(REMOVE_RECURSE
  "CMakeFiles/test_verilog_io.dir/test_verilog_io.cpp.o"
  "CMakeFiles/test_verilog_io.dir/test_verilog_io.cpp.o.d"
  "test_verilog_io"
  "test_verilog_io.pdb"
  "test_verilog_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verilog_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
