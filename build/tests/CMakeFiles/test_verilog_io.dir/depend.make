# Empty dependencies file for test_verilog_io.
# This may be replaced when dependencies are built.
