# Empty dependencies file for test_circuit_dpa.
# This may be replaced when dependencies are built.
