file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_dpa.dir/test_circuit_dpa.cpp.o"
  "CMakeFiles/test_circuit_dpa.dir/test_circuit_dpa.cpp.o.d"
  "test_circuit_dpa"
  "test_circuit_dpa.pdb"
  "test_circuit_dpa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_dpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
