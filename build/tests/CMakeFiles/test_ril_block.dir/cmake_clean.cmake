file(REMOVE_RECURSE
  "CMakeFiles/test_ril_block.dir/test_ril_block.cpp.o"
  "CMakeFiles/test_ril_block.dir/test_ril_block.cpp.o.d"
  "test_ril_block"
  "test_ril_block.pdb"
  "test_ril_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ril_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
