file(REMOVE_RECURSE
  "CMakeFiles/test_bypass_sps.dir/test_bypass_sps.cpp.o"
  "CMakeFiles/test_bypass_sps.dir/test_bypass_sps.cpp.o.d"
  "test_bypass_sps"
  "test_bypass_sps.pdb"
  "test_bypass_sps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bypass_sps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
