# Empty compiler generated dependencies file for test_bypass_sps.
# This may be replaced when dependencies are built.
