# Empty dependencies file for test_morphing.
# This may be replaced when dependencies are built.
