file(REMOVE_RECURSE
  "CMakeFiles/test_morphing.dir/test_morphing.cpp.o"
  "CMakeFiles/test_morphing.dir/test_morphing.cpp.o.d"
  "test_morphing"
  "test_morphing.pdb"
  "test_morphing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morphing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
