file(REMOVE_RECURSE
  "CMakeFiles/test_lutk.dir/test_lutk.cpp.o"
  "CMakeFiles/test_lutk.dir/test_lutk.cpp.o.d"
  "test_lutk"
  "test_lutk.pdb"
  "test_lutk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lutk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
