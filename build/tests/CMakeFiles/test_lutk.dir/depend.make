# Empty dependencies file for test_lutk.
# This may be replaced when dependencies are built.
