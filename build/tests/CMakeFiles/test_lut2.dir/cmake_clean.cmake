file(REMOVE_RECURSE
  "CMakeFiles/test_lut2.dir/test_lut2.cpp.o"
  "CMakeFiles/test_lut2.dir/test_lut2.cpp.o.d"
  "test_lut2"
  "test_lut2.pdb"
  "test_lut2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lut2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
