# Empty compiler generated dependencies file for test_lut2.
# This may be replaced when dependencies are built.
