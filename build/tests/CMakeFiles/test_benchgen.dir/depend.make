# Empty dependencies file for test_benchgen.
# This may be replaced when dependencies are built.
