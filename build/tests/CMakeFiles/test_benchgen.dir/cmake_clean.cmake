file(REMOVE_RECURSE
  "CMakeFiles/test_benchgen.dir/test_benchgen.cpp.o"
  "CMakeFiles/test_benchgen.dir/test_benchgen.cpp.o.d"
  "test_benchgen"
  "test_benchgen.pdb"
  "test_benchgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
