file(REMOVE_RECURSE
  "CMakeFiles/test_sensitization.dir/test_sensitization.cpp.o"
  "CMakeFiles/test_sensitization.dir/test_sensitization.cpp.o.d"
  "test_sensitization"
  "test_sensitization.pdb"
  "test_sensitization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensitization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
