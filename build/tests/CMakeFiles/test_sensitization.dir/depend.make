# Empty dependencies file for test_sensitization.
# This may be replaced when dependencies are built.
