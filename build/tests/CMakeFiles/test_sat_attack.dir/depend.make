# Empty dependencies file for test_sat_attack.
# This may be replaced when dependencies are built.
