file(REMOVE_RECURSE
  "CMakeFiles/test_sat_attack.dir/test_sat_attack.cpp.o"
  "CMakeFiles/test_sat_attack.dir/test_sat_attack.cpp.o.d"
  "test_sat_attack"
  "test_sat_attack.pdb"
  "test_sat_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
