file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_morphing.dir/bench_ablation_morphing.cpp.o"
  "CMakeFiles/bench_ablation_morphing.dir/bench_ablation_morphing.cpp.o.d"
  "bench_ablation_morphing"
  "bench_ablation_morphing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_morphing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
