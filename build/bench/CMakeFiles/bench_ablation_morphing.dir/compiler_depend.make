# Empty compiler generated dependencies file for bench_ablation_morphing.
# This may be replaced when dependencies are built.
