file(REMOVE_RECURSE
  "libril_bench_util.a"
)
