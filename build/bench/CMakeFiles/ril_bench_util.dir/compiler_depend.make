# Empty compiler generated dependencies file for ril_bench_util.
# This may be replaced when dependencies are built.
