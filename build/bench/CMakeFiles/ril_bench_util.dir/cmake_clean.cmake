file(REMOVE_RECURSE
  "CMakeFiles/ril_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ril_bench_util.dir/bench_util.cpp.o.d"
  "libril_bench_util.a"
  "libril_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
