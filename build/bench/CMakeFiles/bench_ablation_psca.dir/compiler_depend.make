# Empty compiler generated dependencies file for bench_ablation_psca.
# This may be replaced when dependencies are built.
