file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_psca.dir/bench_ablation_psca.cpp.o"
  "CMakeFiles/bench_ablation_psca.dir/bench_ablation_psca.cpp.o.d"
  "bench_ablation_psca"
  "bench_ablation_psca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_psca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
