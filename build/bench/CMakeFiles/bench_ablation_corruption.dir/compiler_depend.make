# Empty compiler generated dependencies file for bench_ablation_corruption.
# This may be replaced when dependencies are built.
