file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_corruption.dir/bench_ablation_corruption.cpp.o"
  "CMakeFiles/bench_ablation_corruption.dir/bench_ablation_corruption.cpp.o.d"
  "bench_ablation_corruption"
  "bench_ablation_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
