file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_onehot.dir/bench_ablation_onehot.cpp.o"
  "CMakeFiles/bench_ablation_onehot.dir/bench_ablation_onehot.cpp.o.d"
  "bench_ablation_onehot"
  "bench_ablation_onehot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onehot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
