
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_onehot.cpp" "bench/CMakeFiles/bench_ablation_onehot.dir/bench_ablation_onehot.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_onehot.dir/bench_ablation_onehot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ril_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/ril_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/ril_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/ril_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ril_core.dir/DependInfo.cmake"
  "/root/repo/build/src/locking/CMakeFiles/ril_locking.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/ril_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ril_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/ril_sca.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
