# Empty dependencies file for bench_ablation_onehot.
# This may be replaced when dependencies are built.
