file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_switchbox.dir/bench_ablation_switchbox.cpp.o"
  "CMakeFiles/bench_ablation_switchbox.dir/bench_ablation_switchbox.cpp.o.d"
  "bench_ablation_switchbox"
  "bench_ablation_switchbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switchbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
