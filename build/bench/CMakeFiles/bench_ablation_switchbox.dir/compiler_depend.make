# Empty compiler generated dependencies file for bench_ablation_switchbox.
# This may be replaced when dependencies are built.
