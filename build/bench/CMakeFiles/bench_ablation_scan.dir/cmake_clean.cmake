file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scan.dir/bench_ablation_scan.cpp.o"
  "CMakeFiles/bench_ablation_scan.dir/bench_ablation_scan.cpp.o.d"
  "bench_ablation_scan"
  "bench_ablation_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
