# Empty dependencies file for bench_ablation_scan.
# This may be replaced when dependencies are built.
