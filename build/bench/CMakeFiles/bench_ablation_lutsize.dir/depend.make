# Empty dependencies file for bench_ablation_lutsize.
# This may be replaced when dependencies are built.
