file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lutsize.dir/bench_ablation_lutsize.cpp.o"
  "CMakeFiles/bench_ablation_lutsize.dir/bench_ablation_lutsize.cpp.o.d"
  "bench_ablation_lutsize"
  "bench_ablation_lutsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lutsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
