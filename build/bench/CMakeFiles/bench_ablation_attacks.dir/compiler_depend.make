# Empty compiler generated dependencies file for bench_ablation_attacks.
# This may be replaced when dependencies are built.
