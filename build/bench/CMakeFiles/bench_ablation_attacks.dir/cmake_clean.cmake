file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_attacks.dir/bench_ablation_attacks.cpp.o"
  "CMakeFiles/bench_ablation_attacks.dir/bench_ablation_attacks.cpp.o.d"
  "bench_ablation_attacks"
  "bench_ablation_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
