file(REMOVE_RECURSE
  "CMakeFiles/ril_core.dir/banyan.cpp.o"
  "CMakeFiles/ril_core.dir/banyan.cpp.o.d"
  "CMakeFiles/ril_core.dir/lut2.cpp.o"
  "CMakeFiles/ril_core.dir/lut2.cpp.o.d"
  "CMakeFiles/ril_core.dir/lutk.cpp.o"
  "CMakeFiles/ril_core.dir/lutk.cpp.o.d"
  "CMakeFiles/ril_core.dir/morphing.cpp.o"
  "CMakeFiles/ril_core.dir/morphing.cpp.o.d"
  "CMakeFiles/ril_core.dir/polymorphic.cpp.o"
  "CMakeFiles/ril_core.dir/polymorphic.cpp.o.d"
  "CMakeFiles/ril_core.dir/ril_block.cpp.o"
  "CMakeFiles/ril_core.dir/ril_block.cpp.o.d"
  "libril_core.a"
  "libril_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
