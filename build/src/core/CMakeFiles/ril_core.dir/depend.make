# Empty dependencies file for ril_core.
# This may be replaced when dependencies are built.
