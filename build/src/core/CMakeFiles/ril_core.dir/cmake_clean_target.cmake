file(REMOVE_RECURSE
  "libril_core.a"
)
