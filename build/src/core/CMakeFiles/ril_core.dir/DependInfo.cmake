
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/banyan.cpp" "src/core/CMakeFiles/ril_core.dir/banyan.cpp.o" "gcc" "src/core/CMakeFiles/ril_core.dir/banyan.cpp.o.d"
  "/root/repo/src/core/lut2.cpp" "src/core/CMakeFiles/ril_core.dir/lut2.cpp.o" "gcc" "src/core/CMakeFiles/ril_core.dir/lut2.cpp.o.d"
  "/root/repo/src/core/lutk.cpp" "src/core/CMakeFiles/ril_core.dir/lutk.cpp.o" "gcc" "src/core/CMakeFiles/ril_core.dir/lutk.cpp.o.d"
  "/root/repo/src/core/morphing.cpp" "src/core/CMakeFiles/ril_core.dir/morphing.cpp.o" "gcc" "src/core/CMakeFiles/ril_core.dir/morphing.cpp.o.d"
  "/root/repo/src/core/polymorphic.cpp" "src/core/CMakeFiles/ril_core.dir/polymorphic.cpp.o" "gcc" "src/core/CMakeFiles/ril_core.dir/polymorphic.cpp.o.d"
  "/root/repo/src/core/ril_block.cpp" "src/core/CMakeFiles/ril_core.dir/ril_block.cpp.o" "gcc" "src/core/CMakeFiles/ril_core.dir/ril_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
