file(REMOVE_RECURSE
  "CMakeFiles/ril_locking.dir/locked.cpp.o"
  "CMakeFiles/ril_locking.dir/locked.cpp.o.d"
  "CMakeFiles/ril_locking.dir/schemes.cpp.o"
  "CMakeFiles/ril_locking.dir/schemes.cpp.o.d"
  "libril_locking.a"
  "libril_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
