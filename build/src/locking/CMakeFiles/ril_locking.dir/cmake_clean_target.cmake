file(REMOVE_RECURSE
  "libril_locking.a"
)
