
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locking/locked.cpp" "src/locking/CMakeFiles/ril_locking.dir/locked.cpp.o" "gcc" "src/locking/CMakeFiles/ril_locking.dir/locked.cpp.o.d"
  "/root/repo/src/locking/schemes.cpp" "src/locking/CMakeFiles/ril_locking.dir/schemes.cpp.o" "gcc" "src/locking/CMakeFiles/ril_locking.dir/schemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ril_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
