# Empty dependencies file for ril_locking.
# This may be replaced when dependencies are built.
