# Empty compiler generated dependencies file for ril_netlist.
# This may be replaced when dependencies are built.
