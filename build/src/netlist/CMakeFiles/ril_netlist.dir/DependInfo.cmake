
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/bench_io.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/bench_io.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/builder.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/builder.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/scan_chain.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/scan_chain.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/scan_chain.cpp.o.d"
  "/root/repo/src/netlist/simplify.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/simplify.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/simplify.cpp.o.d"
  "/root/repo/src/netlist/simulator.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/simulator.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/simulator.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/stats.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/stats.cpp.o.d"
  "/root/repo/src/netlist/types.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/types.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/types.cpp.o.d"
  "/root/repo/src/netlist/verilog_io.cpp" "src/netlist/CMakeFiles/ril_netlist.dir/verilog_io.cpp.o" "gcc" "src/netlist/CMakeFiles/ril_netlist.dir/verilog_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
