file(REMOVE_RECURSE
  "CMakeFiles/ril_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/ril_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/builder.cpp.o"
  "CMakeFiles/ril_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/netlist.cpp.o"
  "CMakeFiles/ril_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/scan_chain.cpp.o"
  "CMakeFiles/ril_netlist.dir/scan_chain.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/simplify.cpp.o"
  "CMakeFiles/ril_netlist.dir/simplify.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/simulator.cpp.o"
  "CMakeFiles/ril_netlist.dir/simulator.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/stats.cpp.o"
  "CMakeFiles/ril_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/types.cpp.o"
  "CMakeFiles/ril_netlist.dir/types.cpp.o.d"
  "CMakeFiles/ril_netlist.dir/verilog_io.cpp.o"
  "CMakeFiles/ril_netlist.dir/verilog_io.cpp.o.d"
  "libril_netlist.a"
  "libril_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
