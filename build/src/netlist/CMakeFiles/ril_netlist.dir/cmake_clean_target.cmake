file(REMOVE_RECURSE
  "libril_netlist.a"
)
