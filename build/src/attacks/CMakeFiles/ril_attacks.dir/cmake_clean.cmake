file(REMOVE_RECURSE
  "CMakeFiles/ril_attacks.dir/appsat.cpp.o"
  "CMakeFiles/ril_attacks.dir/appsat.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/bypass.cpp.o"
  "CMakeFiles/ril_attacks.dir/bypass.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/metrics.cpp.o"
  "CMakeFiles/ril_attacks.dir/metrics.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/oracle.cpp.o"
  "CMakeFiles/ril_attacks.dir/oracle.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/removal.cpp.o"
  "CMakeFiles/ril_attacks.dir/removal.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/routing_encoding.cpp.o"
  "CMakeFiles/ril_attacks.dir/routing_encoding.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/sat_attack.cpp.o"
  "CMakeFiles/ril_attacks.dir/sat_attack.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/scansat.cpp.o"
  "CMakeFiles/ril_attacks.dir/scansat.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/sensitization.cpp.o"
  "CMakeFiles/ril_attacks.dir/sensitization.cpp.o.d"
  "CMakeFiles/ril_attacks.dir/sps.cpp.o"
  "CMakeFiles/ril_attacks.dir/sps.cpp.o.d"
  "libril_attacks.a"
  "libril_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
