file(REMOVE_RECURSE
  "libril_attacks.a"
)
