
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/appsat.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/appsat.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/appsat.cpp.o.d"
  "/root/repo/src/attacks/bypass.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/bypass.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/bypass.cpp.o.d"
  "/root/repo/src/attacks/metrics.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/metrics.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/metrics.cpp.o.d"
  "/root/repo/src/attacks/oracle.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/oracle.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/oracle.cpp.o.d"
  "/root/repo/src/attacks/removal.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/removal.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/removal.cpp.o.d"
  "/root/repo/src/attacks/routing_encoding.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/routing_encoding.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/routing_encoding.cpp.o.d"
  "/root/repo/src/attacks/sat_attack.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/sat_attack.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/sat_attack.cpp.o.d"
  "/root/repo/src/attacks/scansat.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/scansat.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/scansat.cpp.o.d"
  "/root/repo/src/attacks/sensitization.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/sensitization.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/sensitization.cpp.o.d"
  "/root/repo/src/attacks/sps.cpp" "src/attacks/CMakeFiles/ril_attacks.dir/sps.cpp.o" "gcc" "src/attacks/CMakeFiles/ril_attacks.dir/sps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/ril_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/ril_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/locking/CMakeFiles/ril_locking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ril_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
