# Empty compiler generated dependencies file for ril_attacks.
# This may be replaced when dependencies are built.
