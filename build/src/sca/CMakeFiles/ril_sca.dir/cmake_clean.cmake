file(REMOVE_RECURSE
  "CMakeFiles/ril_sca.dir/circuit_dpa.cpp.o"
  "CMakeFiles/ril_sca.dir/circuit_dpa.cpp.o.d"
  "CMakeFiles/ril_sca.dir/dpa.cpp.o"
  "CMakeFiles/ril_sca.dir/dpa.cpp.o.d"
  "CMakeFiles/ril_sca.dir/power_trace.cpp.o"
  "CMakeFiles/ril_sca.dir/power_trace.cpp.o.d"
  "libril_sca.a"
  "libril_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
