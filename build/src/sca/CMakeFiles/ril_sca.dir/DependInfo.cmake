
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sca/circuit_dpa.cpp" "src/sca/CMakeFiles/ril_sca.dir/circuit_dpa.cpp.o" "gcc" "src/sca/CMakeFiles/ril_sca.dir/circuit_dpa.cpp.o.d"
  "/root/repo/src/sca/dpa.cpp" "src/sca/CMakeFiles/ril_sca.dir/dpa.cpp.o" "gcc" "src/sca/CMakeFiles/ril_sca.dir/dpa.cpp.o.d"
  "/root/repo/src/sca/power_trace.cpp" "src/sca/CMakeFiles/ril_sca.dir/power_trace.cpp.o" "gcc" "src/sca/CMakeFiles/ril_sca.dir/power_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/ril_device.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
