# Empty compiler generated dependencies file for ril_sca.
# This may be replaced when dependencies are built.
