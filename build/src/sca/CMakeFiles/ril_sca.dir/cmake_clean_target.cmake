file(REMOVE_RECURSE
  "libril_sca.a"
)
