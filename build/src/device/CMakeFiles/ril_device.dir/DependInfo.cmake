
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/montecarlo.cpp" "src/device/CMakeFiles/ril_device.dir/montecarlo.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/montecarlo.cpp.o.d"
  "/root/repo/src/device/mram_lut.cpp" "src/device/CMakeFiles/ril_device.dir/mram_lut.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/mram_lut.cpp.o.d"
  "/root/repo/src/device/mtj.cpp" "src/device/CMakeFiles/ril_device.dir/mtj.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/mtj.cpp.o.d"
  "/root/repo/src/device/params.cpp" "src/device/CMakeFiles/ril_device.dir/params.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/params.cpp.o.d"
  "/root/repo/src/device/she_mram_lut.cpp" "src/device/CMakeFiles/ril_device.dir/she_mram_lut.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/she_mram_lut.cpp.o.d"
  "/root/repo/src/device/sram_lut.cpp" "src/device/CMakeFiles/ril_device.dir/sram_lut.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/sram_lut.cpp.o.d"
  "/root/repo/src/device/transient.cpp" "src/device/CMakeFiles/ril_device.dir/transient.cpp.o" "gcc" "src/device/CMakeFiles/ril_device.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
