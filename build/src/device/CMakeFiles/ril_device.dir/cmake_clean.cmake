file(REMOVE_RECURSE
  "CMakeFiles/ril_device.dir/montecarlo.cpp.o"
  "CMakeFiles/ril_device.dir/montecarlo.cpp.o.d"
  "CMakeFiles/ril_device.dir/mram_lut.cpp.o"
  "CMakeFiles/ril_device.dir/mram_lut.cpp.o.d"
  "CMakeFiles/ril_device.dir/mtj.cpp.o"
  "CMakeFiles/ril_device.dir/mtj.cpp.o.d"
  "CMakeFiles/ril_device.dir/params.cpp.o"
  "CMakeFiles/ril_device.dir/params.cpp.o.d"
  "CMakeFiles/ril_device.dir/she_mram_lut.cpp.o"
  "CMakeFiles/ril_device.dir/she_mram_lut.cpp.o.d"
  "CMakeFiles/ril_device.dir/sram_lut.cpp.o"
  "CMakeFiles/ril_device.dir/sram_lut.cpp.o.d"
  "CMakeFiles/ril_device.dir/transient.cpp.o"
  "CMakeFiles/ril_device.dir/transient.cpp.o.d"
  "libril_device.a"
  "libril_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
