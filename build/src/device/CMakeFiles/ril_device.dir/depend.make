# Empty dependencies file for ril_device.
# This may be replaced when dependencies are built.
