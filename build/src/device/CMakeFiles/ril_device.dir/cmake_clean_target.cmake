file(REMOVE_RECURSE
  "libril_device.a"
)
