
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cnf/equivalence.cpp" "src/cnf/CMakeFiles/ril_cnf.dir/equivalence.cpp.o" "gcc" "src/cnf/CMakeFiles/ril_cnf.dir/equivalence.cpp.o.d"
  "/root/repo/src/cnf/tseitin.cpp" "src/cnf/CMakeFiles/ril_cnf.dir/tseitin.cpp.o" "gcc" "src/cnf/CMakeFiles/ril_cnf.dir/tseitin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/ril_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
