file(REMOVE_RECURSE
  "libril_cnf.a"
)
