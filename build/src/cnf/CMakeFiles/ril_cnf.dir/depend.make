# Empty dependencies file for ril_cnf.
# This may be replaced when dependencies are built.
