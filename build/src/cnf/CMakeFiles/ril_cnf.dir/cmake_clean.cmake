file(REMOVE_RECURSE
  "CMakeFiles/ril_cnf.dir/equivalence.cpp.o"
  "CMakeFiles/ril_cnf.dir/equivalence.cpp.o.d"
  "CMakeFiles/ril_cnf.dir/tseitin.cpp.o"
  "CMakeFiles/ril_cnf.dir/tseitin.cpp.o.d"
  "libril_cnf.a"
  "libril_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
