# Empty compiler generated dependencies file for ril_benchgen.
# This may be replaced when dependencies are built.
