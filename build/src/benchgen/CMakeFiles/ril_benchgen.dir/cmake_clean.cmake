file(REMOVE_RECURSE
  "CMakeFiles/ril_benchgen.dir/arithmetic.cpp.o"
  "CMakeFiles/ril_benchgen.dir/arithmetic.cpp.o.d"
  "CMakeFiles/ril_benchgen.dir/crypto.cpp.o"
  "CMakeFiles/ril_benchgen.dir/crypto.cpp.o.d"
  "CMakeFiles/ril_benchgen.dir/random_dag.cpp.o"
  "CMakeFiles/ril_benchgen.dir/random_dag.cpp.o.d"
  "CMakeFiles/ril_benchgen.dir/suite.cpp.o"
  "CMakeFiles/ril_benchgen.dir/suite.cpp.o.d"
  "libril_benchgen.a"
  "libril_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
