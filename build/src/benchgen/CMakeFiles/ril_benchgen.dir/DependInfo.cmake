
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchgen/arithmetic.cpp" "src/benchgen/CMakeFiles/ril_benchgen.dir/arithmetic.cpp.o" "gcc" "src/benchgen/CMakeFiles/ril_benchgen.dir/arithmetic.cpp.o.d"
  "/root/repo/src/benchgen/crypto.cpp" "src/benchgen/CMakeFiles/ril_benchgen.dir/crypto.cpp.o" "gcc" "src/benchgen/CMakeFiles/ril_benchgen.dir/crypto.cpp.o.d"
  "/root/repo/src/benchgen/random_dag.cpp" "src/benchgen/CMakeFiles/ril_benchgen.dir/random_dag.cpp.o" "gcc" "src/benchgen/CMakeFiles/ril_benchgen.dir/random_dag.cpp.o.d"
  "/root/repo/src/benchgen/suite.cpp" "src/benchgen/CMakeFiles/ril_benchgen.dir/suite.cpp.o" "gcc" "src/benchgen/CMakeFiles/ril_benchgen.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ril_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
