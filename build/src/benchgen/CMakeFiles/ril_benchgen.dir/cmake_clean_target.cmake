file(REMOVE_RECURSE
  "libril_benchgen.a"
)
