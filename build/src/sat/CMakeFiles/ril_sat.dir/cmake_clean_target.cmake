file(REMOVE_RECURSE
  "libril_sat.a"
)
