# Empty compiler generated dependencies file for ril_sat.
# This may be replaced when dependencies are built.
