file(REMOVE_RECURSE
  "CMakeFiles/ril_sat.dir/dimacs.cpp.o"
  "CMakeFiles/ril_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/ril_sat.dir/solver.cpp.o"
  "CMakeFiles/ril_sat.dir/solver.cpp.o.d"
  "libril_sat.a"
  "libril_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
