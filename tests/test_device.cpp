#include "device/mram_lut.hpp"

#include <gtest/gtest.h>

#include "device/mtj.hpp"
#include "device/sram_lut.hpp"

namespace ril::device {
namespace {

MramLut2 nominal_lut(std::mt19937_64& rng) {
  MtjParams mtj;
  CmosParams cmos;
  VariationSpec no_var;
  no_var.mtj_dim_sigma = 0;
  no_var.vth_sigma = 0;
  no_var.wl_sigma = 0;
  CmosParams quiet = cmos;
  quiet.sense_offset_sigma = 0;
  return MramLut2(mtj, quiet, no_var, rng);
}

TEST(Mtj, ResistanceStates) {
  MtjParams params;
  ProcessVariation nominal;
  Mtj mtj(params, nominal, /*initially_ap=*/false);
  EXPECT_DOUBLE_EQ(mtj.resistance(), params.r_p);
  mtj.force_state(true);
  EXPECT_DOUBLE_EQ(mtj.resistance(), params.r_p * (1.0 + params.tmr));
}

TEST(Mtj, SwitchingRequiresCriticalCurrent) {
  MtjParams params;
  ProcessVariation nominal;
  Mtj mtj(params, nominal, /*initially_ap=*/false);
  // Sub-critical pulse: no switch.
  EXPECT_FALSE(mtj.apply_pulse(params.i_c * 0.5, 10e-9));
  EXPECT_FALSE(mtj.is_ap());
  // Super-critical pulse long enough: switches to AP.
  EXPECT_TRUE(mtj.apply_pulse(params.i_c * 1.5, 10e-9));
  EXPECT_TRUE(mtj.is_ap());
  // Back to P (easy direction).
  EXPECT_TRUE(mtj.apply_pulse(-params.i_c * 1.2, 10e-9));
  EXPECT_FALSE(mtj.is_ap());
}

TEST(Mtj, ShortPulseDoesNotSwitch) {
  MtjParams params;
  ProcessVariation nominal;
  Mtj mtj(params, nominal, /*initially_ap=*/false);
  // Just above critical but far shorter than the switching time.
  EXPECT_FALSE(mtj.apply_pulse(params.i_c * 1.25, 0.1e-9));
  EXPECT_FALSE(mtj.is_ap());
}

TEST(Mtj, HardDirectionNeedsMoreCurrent) {
  MtjParams params;
  ProcessVariation nominal;
  Mtj mtj(params, nominal, false);
  EXPECT_GT(mtj.critical_current(/*to_ap=*/true),
            mtj.critical_current(/*to_ap=*/false));
}

TEST(MramLut, ProgramsAll16Functions) {
  std::mt19937_64 rng(1);
  for (unsigned mask = 0; mask < 16; ++mask) {
    MramLut2 lut = nominal_lut(rng);
    lut.configure(static_cast<std::uint8_t>(mask));
    EXPECT_EQ(lut.stored_mask(), mask);
    for (unsigned m = 0; m < 4; ++m) {
      const ReadSample r = lut.read_cell(m & 1, (m >> 1) & 1);
      EXPECT_FALSE(r.error);
      EXPECT_EQ(r.value, ((mask >> m) & 1) != 0) << "mask " << mask;
    }
  }
}

TEST(MramLut, ScanEnableInvertsWhenSeSet) {
  std::mt19937_64 rng(2);
  MramLut2 lut = nominal_lut(rng);
  lut.configure(0b1000);  // AND
  lut.write_se(true);
  EXPECT_TRUE(lut.stored_se());
  // SE=0: normal AND.
  EXPECT_FALSE(lut.read_output(true, false, false).value);
  EXPECT_TRUE(lut.read_output(true, true, false).value);
  // SE=1 with MTJ_SE=1: inverted (NAND behaviour at the pin).
  EXPECT_TRUE(lut.read_output(true, false, true).value);
  EXPECT_FALSE(lut.read_output(true, true, true).value);
  // MTJ_SE=0: scan mode passes through.
  lut.write_se(false);
  EXPECT_TRUE(lut.read_output(true, true, true).value);
}

TEST(MramLut, ReadEnergyCalibratedToTableIV) {
  std::mt19937_64 rng(3);
  MramLut2 lut = nominal_lut(rng);
  lut.configure(0b1000);
  const ReadSample r0 = lut.read_cell(false, false);  // stored 0
  const ReadSample r1 = lut.read_cell(true, true);    // stored 1
  // Table IV: read "0" = 12.47 fJ, read "1" = 12.50 fJ (within 1%).
  EXPECT_NEAR(r0.energy, 12.47e-15, 0.13e-15);
  EXPECT_NEAR(r1.energy, 12.50e-15, 0.13e-15);
  // Near-symmetric: gap below 0.5%.
  EXPECT_LT(std::abs(r1.energy - r0.energy) / r0.energy, 0.005);
}

TEST(MramLut, ReadPowerSymmetric) {
  // The P-SCA property: divider current identical for stored 0 and 1.
  std::mt19937_64 rng(4);
  MramLut2 lut = nominal_lut(rng);
  lut.configure(0b0110);
  const ReadSample r0 = lut.read_cell(false, false);
  const ReadSample r1 = lut.read_cell(true, false);
  EXPECT_NEAR(r0.power, r1.power, 1e-9);
  EXPECT_NEAR(r0.current, r1.current, 1e-9);
}

TEST(MramLut, WriteEnergyCalibratedToTableIV) {
  std::mt19937_64 rng(5);
  MramLut2 lut = nominal_lut(rng);
  const WriteSample w0 = lut.write_cell(0, false);
  const WriteSample w1 = lut.write_cell(1, true);
  ASSERT_TRUE(w0.success);
  ASSERT_TRUE(w1.success);
  // Table IV: write "0" = 34.45 fJ, write "1" = 34.94 fJ (within ~2%).
  EXPECT_NEAR(w0.energy, 34.45e-15, 0.8e-15);
  EXPECT_NEAR(w1.energy, 34.94e-15, 0.8e-15);
  EXPECT_GT(w1.energy, w0.energy);
}

TEST(MramLut, StandbyEnergyCalibratedToTableIV) {
  std::mt19937_64 rng(6);
  MramLut2 lut = nominal_lut(rng);
  // Table IV: 36.90 aJ per 1 ns standby window.
  EXPECT_NEAR(lut.standby_energy(1e-9), 36.90e-18, 0.5e-18);
}

TEST(MramLut, NoReadDisturbAtNominal) {
  std::mt19937_64 rng(7);
  MramLut2 lut = nominal_lut(rng);
  lut.configure(0b1001);
  for (int rep = 0; rep < 100; ++rep) {
    for (unsigned m = 0; m < 4; ++m) {
      const ReadSample r = lut.read_cell(m & 1, (m >> 1) & 1);
      EXPECT_FALSE(r.disturbed);
      EXPECT_FALSE(r.error);
    }
  }
  EXPECT_EQ(lut.stored_mask(), 0b1001);
}

TEST(MramLut, WideReadMargin) {
  std::mt19937_64 rng(8);
  MramLut2 lut = nominal_lut(rng);
  lut.configure(0b1110);
  for (unsigned m = 0; m < 4; ++m) {
    const ReadSample r = lut.read_cell(m & 1, (m >> 1) & 1);
    // Complementary sensing: margin (46 mV nominal) dwarfs the 8 mV
    // comparator-offset sigma.
    EXPECT_GT(r.margin, 0.04);
  }
}

TEST(SramLut, AsymmetricReadEnergy) {
  std::mt19937_64 rng(9);
  CmosParams cmos;
  VariationSpec no_var;
  no_var.vth_sigma = 0;
  SramLut2 lut(cmos, no_var, rng);
  lut.configure(0b1000);
  const auto r0 = lut.read_output(false, false);  // reads a stored 0
  const auto r1 = lut.read_output(true, true);    // reads a stored 1
  EXPECT_FALSE(r0.value);
  EXPECT_TRUE(r1.value);
  // The exploitable leak: >25% energy gap by data value.
  EXPECT_GT((r0.energy - r1.energy) / r1.energy, 0.25);
}

TEST(SramLut, StandbyFarAboveMram) {
  std::mt19937_64 rng(10);
  CmosParams cmos;
  VariationSpec no_var;
  SramLut2 sram(cmos, no_var, rng);
  MramLut2 mram = nominal_lut(rng);
  // Non-volatile MRAM cells: orders of magnitude lower standby power.
  EXPECT_GT(sram.standby_power() / mram.standby_power(), 10.0);
}

}  // namespace
}  // namespace ril::device
