#include "device/she_mram_lut.hpp"

#include <gtest/gtest.h>

namespace ril::device {
namespace {

SheMramLut2 nominal_she(std::mt19937_64& rng) {
  MtjParams mtj;
  CmosParams cmos;
  cmos.sense_offset_sigma = 0;
  SheParams she;
  VariationSpec no_var{0, 0, 0};
  return SheMramLut2(mtj, cmos, she, no_var, rng);
}

TEST(SheMram, ProgramsAllFunctions) {
  std::mt19937_64 rng(1);
  for (unsigned mask = 0; mask < 16; ++mask) {
    SheMramLut2 lut = nominal_she(rng);
    lut.configure(static_cast<std::uint8_t>(mask));
    EXPECT_EQ(lut.stored_mask(), mask);
    for (unsigned m = 0; m < 4; ++m) {
      EXPECT_EQ(lut.read_cell(m & 1, (m >> 1) & 1).value,
                ((mask >> m) & 1) != 0);
    }
  }
}

TEST(SheMram, WritesCheaperThanStt) {
  std::mt19937_64 rng(2);
  SheMramLut2 she = nominal_she(rng);
  MtjParams mtj;
  CmosParams cmos;
  cmos.sense_offset_sigma = 0;
  VariationSpec no_var{0, 0, 0};
  MramLut2 stt(mtj, cmos, no_var, rng);

  const auto w_she = she.write_cell(0, true);
  const auto w_stt = stt.write_cell(0, true);
  ASSERT_TRUE(w_she.success);
  ASSERT_TRUE(w_stt.success);
  // The SHE write path avoids the tunnel barrier: ~order of magnitude less.
  EXPECT_LT(w_she.energy, w_stt.energy / 5.0);
}

TEST(SheMram, ReadPathUnchanged) {
  std::mt19937_64 rng(3);
  SheMramLut2 she = nominal_she(rng);
  she.configure(0b0110);
  const auto r0 = she.read_cell(false, false);
  const auto r1 = she.read_cell(true, false);
  // Same complementary divider: value-independent power, Table IV energy.
  EXPECT_NEAR(r0.power, r1.power, 1e-9);
  EXPECT_NEAR(r0.energy, 12.47e-15, 0.15e-15);
  EXPECT_FALSE(r0.error);
  EXPECT_FALSE(r1.error);
}

TEST(SheMram, StandbyMatchesStt) {
  std::mt19937_64 rng(4);
  SheMramLut2 she = nominal_she(rng);
  EXPECT_NEAR(she.standby_power() * 1e-9, 36.9e-18, 1e-18);
}

}  // namespace
}  // namespace ril::device
