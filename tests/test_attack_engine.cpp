// Regression tests for the unified attack-engine layer.
//
// The engine refactor must not change attack behaviour: at jobs == 1 with
// DIP specialization off, the engine-routed SAT attack and AppSAT must be
// bit-identical to the historical implementations (replicated verbatim
// below as `legacy::`), and with specialization on they must reach the
// same verdict and the same canonical key while encoding strictly fewer
// I/O-constraint clauses.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>

#include "attacks/appsat.hpp"
#include "attacks/engine/attack_budget.hpp"
#include "attacks/engine/dip_encoder.hpp"
#include "attacks/engine/miter_context.hpp"
#include "attacks/metrics.hpp"
#include "attacks/sat_attack.hpp"
#include "attacks/scansat.hpp"
#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "cnf/tseitin.hpp"
#include "locking/schemes.hpp"
#include "netlist/simplify.hpp"
#include "netlist/simulator.hpp"
#include "netlist/specialize.hpp"
#include "runtime/portfolio.hpp"
#include "sat/solver.hpp"

namespace ril::attacks {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using runtime::SolverPortfolio;
using sat::ClauseSink;
using sat::Lit;
using sat::Var;

Netlist host_circuit(std::uint64_t seed = 1, std::size_t gates = 200) {
  benchgen::RandomDagParams params;
  params.num_inputs = 16;
  params.num_outputs = 8;
  params.num_gates = gates;
  params.seed = seed;
  return benchgen::generate_random_dag(params);
}

// ---------------------------------------------------------------------------
// Historical implementations, replicated verbatim from before the engine
// refactor. These are the bit-exactness baselines.
namespace legacy {

void add_io_constraint(ClauseSink& solver, const Netlist& locked,
                       const std::vector<NodeId>& data_inputs,
                       const std::vector<Var>& key_vars,
                       const std::vector<bool>& dip,
                       const std::vector<bool>& response) {
  std::unordered_map<NodeId, Var> bound;
  for (std::size_t i = 0; i < key_vars.size(); ++i) {
    bound.emplace(locked.key_inputs()[i], key_vars[i]);
  }
  const cnf::CircuitEncoding enc = cnf::encode_circuit(locked, solver, bound);
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(data_inputs[i]), !dip[i])});
  }
  const auto& outputs = locked.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    solver.add_clause({Lit::make(enc.var_of(outputs[i]), !response[i])});
  }
}

SatAttackResult run_sat_attack(const Netlist& locked, QueryOracle& oracle,
                               const SatAttackOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  SatAttackResult result;
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();

  SolverPortfolio miter(options.jobs, options.portfolio_seed);
  std::vector<Var> x_vars;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(miter.new_var());
  }
  std::vector<Var> k1;
  std::vector<Var> k2;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    k1.push_back(miter.new_var());
  }
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    k2.push_back(miter.new_var());
  }
  auto bind = [&](const std::vector<Var>& keys) {
    std::unordered_map<NodeId, Var> bound;
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      bound.emplace(data_inputs[i], x_vars[i]);
    }
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], keys[i]);
    }
    return bound;
  };
  const cnf::CircuitEncoding enc1 = cnf::encode_circuit(locked, miter, bind(k1));
  const cnf::CircuitEncoding enc2 = cnf::encode_circuit(locked, miter, bind(k2));
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(enc1.var_of(id));
    out2.push_back(enc2.var_of(id));
  }
  cnf::encode_miter(miter, out1, out2);

  SolverPortfolio key_solver(options.jobs, options.portfolio_seed + 0x9e37);
  std::vector<Var> key_vars;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    key_vars.push_back(key_solver.new_var());
  }

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = SatAttackStatus::kIterationLimit;
      break;
    }
    if (options.time_limit_seconds > 0) {
      const double remaining = options.time_limit_seconds - elapsed();
      if (remaining <= 0) {
        result.status = SatAttackStatus::kTimeout;
        break;
      }
      miter.set_limits({.time_limit_seconds = remaining});
    }
    const sat::Result r = miter.solve().result;
    if (r == sat::Result::kUnknown) {
      result.status = SatAttackStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      if (options.time_limit_seconds > 0) {
        const double remaining = options.time_limit_seconds - elapsed();
        if (remaining <= 0) {
          result.status = SatAttackStatus::kTimeout;
          break;
        }
        key_solver.set_limits({.time_limit_seconds = remaining});
      }
      const sat::Result kr = key_solver.solve().result;
      if (kr == sat::Result::kSat) {
        result.key.reserve(key_vars.size());
        for (Var v : key_vars) result.key.push_back(key_solver.model_bool(v));
        result.status = SatAttackStatus::kKeyFound;
        if (options.canonical_key) {
          std::vector<Lit> fixed;
          fixed.reserve(key_vars.size());
          bool complete = true;
          for (std::size_t i = 0; i < key_vars.size(); ++i) {
            if (options.time_limit_seconds > 0) {
              const double remaining = options.time_limit_seconds - elapsed();
              if (remaining <= 0) {
                complete = false;
                break;
              }
              key_solver.set_limits({.time_limit_seconds = remaining});
            }
            fixed.push_back(Lit::make(key_vars[i], true));
            const runtime::SolveOutcome probe = key_solver.solve(fixed);
            if (probe.result == sat::Result::kUnsat) {
              fixed.back() = Lit::make(key_vars[i]);
            } else if (probe.result != sat::Result::kSat) {
              complete = false;
              break;
            }
          }
          if (complete) {
            for (std::size_t i = 0; i < key_vars.size(); ++i) {
              result.key[i] = !fixed[i].sign();
            }
          }
        }
      } else if (kr == sat::Result::kUnsat) {
        result.status = SatAttackStatus::kInconsistent;
      } else {
        result.status = SatAttackStatus::kTimeout;
      }
      break;
    }

    std::vector<bool> dip;
    dip.reserve(x_vars.size());
    for (Var v : x_vars) dip.push_back(miter.model_bool(v));
    const std::vector<bool> response = oracle.query(dip);
    add_io_constraint(miter, locked, data_inputs, k1, dip, response);
    add_io_constraint(miter, locked, data_inputs, k2, dip, response);
    add_io_constraint(key_solver, locked, data_inputs, key_vars, dip,
                      response);
    ++result.iterations;
  }

  result.seconds = elapsed();
  result.conflicts = miter.total_conflicts();
  return result;
}

AppSatResult run_appsat(const Netlist& locked, QueryOracle& oracle,
                        const AppSatOptions& options) {
  std::mt19937_64 rng(options.seed);

  AppSatResult result;
  const auto data_inputs = locked.data_inputs();
  const auto& key_inputs = locked.key_inputs();

  sat::Solver miter;
  std::vector<Var> x_vars;
  for (std::size_t i = 0; i < data_inputs.size(); ++i) {
    x_vars.push_back(miter.new_var());
  }
  std::vector<Var> k1;
  std::vector<Var> k2;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) k1.push_back(miter.new_var());
  for (std::size_t i = 0; i < key_inputs.size(); ++i) k2.push_back(miter.new_var());
  auto bind = [&](const std::vector<Var>& keys) {
    std::unordered_map<NodeId, Var> bound;
    for (std::size_t i = 0; i < data_inputs.size(); ++i) {
      bound.emplace(data_inputs[i], x_vars[i]);
    }
    for (std::size_t i = 0; i < key_inputs.size(); ++i) {
      bound.emplace(key_inputs[i], keys[i]);
    }
    return bound;
  };
  const cnf::CircuitEncoding enc1 = cnf::encode_circuit(locked, miter, bind(k1));
  const cnf::CircuitEncoding enc2 = cnf::encode_circuit(locked, miter, bind(k2));
  std::vector<Var> out1;
  std::vector<Var> out2;
  for (NodeId id : locked.outputs()) {
    out1.push_back(enc1.var_of(id));
    out2.push_back(enc2.var_of(id));
  }
  cnf::encode_miter(miter, out1, out2);

  sat::Solver key_solver;
  std::vector<Var> key_vars;
  for (std::size_t i = 0; i < key_inputs.size(); ++i) {
    key_vars.push_back(key_solver.new_var());
  }

  auto extract_candidate = [&](std::vector<bool>& key) -> sat::Result {
    const sat::Result kr = key_solver.solve();
    if (kr == sat::Result::kSat) {
      key.clear();
      for (Var v : key_vars) key.push_back(key_solver.model_bool(v));
    }
    return kr;
  };

  auto random_vector = [&](std::size_t width) {
    std::vector<bool> v(width);
    for (std::size_t i = 0; i < width; ++i) v[i] = rng() & 1;
    return v;
  };

  auto settle = [&](const std::vector<bool>& key) -> double {
    netlist::Simulator sim(locked);
    for (std::size_t i = 0; i < key.size(); ++i) {
      sim.set_input_all(key_inputs[i], key[i]);
    }
    std::size_t mismatches = 0;
    for (std::size_t q = 0; q < options.random_queries; ++q) {
      const auto x = random_vector(data_inputs.size());
      const auto y = oracle.query(x);
      for (std::size_t i = 0; i < data_inputs.size(); ++i) {
        sim.set_input_all(data_inputs[i], x[i]);
      }
      sim.evaluate();
      bool differs = false;
      for (std::size_t i = 0; i < locked.outputs().size(); ++i) {
        if (static_cast<bool>(sim.value(locked.outputs()[i]) & 1) != y[i]) {
          differs = true;
          break;
        }
      }
      if (differs) {
        ++mismatches;
        add_io_constraint(miter, locked, data_inputs, k1, x, y);
        add_io_constraint(miter, locked, data_inputs, k2, x, y);
        add_io_constraint(key_solver, locked, data_inputs, key_vars, x, y);
      }
    }
    return options.random_queries == 0
               ? 1.0
               : static_cast<double>(mismatches) / options.random_queries;
  };

  while (true) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      result.status = AppSatStatus::kIterationLimit;
      break;
    }
    const sat::Result r = miter.solve();
    if (r == sat::Result::kUnknown) {
      result.status = AppSatStatus::kTimeout;
      break;
    }
    if (r == sat::Result::kUnsat) {
      const sat::Result kr = extract_candidate(result.key);
      if (kr == sat::Result::kSat) {
        result.status = AppSatStatus::kExact;
        result.sampled_error = 0.0;
      } else if (kr == sat::Result::kUnsat) {
        result.status = AppSatStatus::kInconsistent;
      } else {
        result.status = AppSatStatus::kTimeout;
      }
      break;
    }

    std::vector<bool> dip;
    for (Var v : x_vars) dip.push_back(miter.model_bool(v));
    const auto response = oracle.query(dip);
    add_io_constraint(miter, locked, data_inputs, k1, dip, response);
    add_io_constraint(miter, locked, data_inputs, k2, dip, response);
    add_io_constraint(key_solver, locked, data_inputs, key_vars, dip,
                      response);
    ++result.iterations;

    if (result.iterations % options.settle_interval == 0) {
      std::vector<bool> candidate;
      const sat::Result kr = extract_candidate(candidate);
      if (kr == sat::Result::kUnsat) {
        result.status = AppSatStatus::kInconsistent;
        break;
      }
      if (kr == sat::Result::kUnknown) {
        result.status = AppSatStatus::kTimeout;
        break;
      }
      const double error = settle(candidate);
      if (error <= options.error_threshold) {
        result.status = AppSatStatus::kApproximate;
        result.key = candidate;
        result.sampled_error = error;
        break;
      }
    }
  }
  return result;
}

}  // namespace legacy

// ---------------------------------------------------------------------------

TEST(AttackEngine, SatAttackMatchesLegacyBitForBit) {
  // jobs == 1, specialization off: same DIP sequence, same solver stream,
  // so status / iteration count / key / conflicts must all be identical.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Netlist host = host_circuit(seed);
    const auto locked = locking::lock_xor(host, 12, 20 + seed);
    SatAttackOptions options;
    options.specialize_dips = false;
    // The legacy replica predates the simplification layers; pin them off
    // so the solver streams stay comparable conflict-for-conflict.
    options.preprocess = false;
    options.preprocess_auto = false;
    options.inprocess = false;

    Oracle legacy_oracle(locked.netlist, locked.key);
    const auto expected =
        legacy::run_sat_attack(locked.netlist, legacy_oracle, options);
    Oracle oracle(locked.netlist, locked.key);
    const auto actual = run_sat_attack(locked.netlist, oracle, options);

    ASSERT_EQ(actual.status, expected.status) << "seed " << seed;
    EXPECT_EQ(actual.iterations, expected.iterations) << "seed " << seed;
    EXPECT_EQ(actual.key, expected.key) << "seed " << seed;
    EXPECT_EQ(actual.conflicts, expected.conflicts) << "seed " << seed;
    EXPECT_EQ(actual.saved_clauses, 0u);
  }
}

TEST(AttackEngine, AppSatMatchesLegacyBitForBit) {
  const Netlist host = host_circuit(4);
  const auto locked = locking::lock_lut(host, 6, 41);
  AppSatOptions options;
  options.specialize_dips = false;
  options.max_iterations = 64;
  options.preprocess = false;
  options.inprocess = false;

  Oracle legacy_oracle(locked.netlist, locked.key);
  const auto expected =
      legacy::run_appsat(locked.netlist, legacy_oracle, options);
  Oracle oracle(locked.netlist, locked.key);
  const auto actual = run_appsat(locked.netlist, oracle, options);

  ASSERT_EQ(actual.status, expected.status);
  EXPECT_EQ(actual.iterations, expected.iterations);
  EXPECT_EQ(actual.key, expected.key);
  EXPECT_EQ(actual.sampled_error, expected.sampled_error);
}

TEST(AttackEngine, SpecializedEncodingSameVerdictFewerClauses) {
  // Cone specialization must not change the verdict or the canonical key,
  // and must cut the per-DIP constraint clauses by at least 3x on an
  // RIL-locked host (acceptance bar; in practice the cut is much larger).
  const Netlist host = host_circuit(5, 400);
  core::RilBlockConfig config;
  config.size = 4;
  const auto ril = locking::lock_ril(host, 1, config, 55);

  SatAttackOptions full_options;
  full_options.specialize_dips = false;
  Oracle full_oracle(ril.locked.netlist, ril.locked.key);
  const auto full =
      run_sat_attack(ril.locked.netlist, full_oracle, full_options);

  SatAttackOptions cone_options;
  cone_options.specialize_dips = true;
  cone_options.record_solves = true;
  Oracle cone_oracle(ril.locked.netlist, ril.locked.key);
  const auto cone =
      run_sat_attack(ril.locked.netlist, cone_oracle, cone_options);

  ASSERT_EQ(full.status, SatAttackStatus::kKeyFound);
  ASSERT_EQ(cone.status, SatAttackStatus::kKeyFound);
  // Canonical minimization makes the key independent of the DIP sequence.
  EXPECT_EQ(cone.key, full.key);
  EXPECT_TRUE(
      cnf::check_equivalence(ril.locked.netlist, host, cone.key, {})
          .equivalent());

  ASSERT_GT(cone.iterations, 0u);
  ASSERT_GT(cone.encoded_clauses, 0u);
  // saved + encoded is what the historical encoder would have emitted.
  const std::size_t would_have = cone.encoded_clauses + cone.saved_clauses;
  EXPECT_GE(would_have, 3 * cone.encoded_clauses)
      << "cone encoding saved less than 3x (" << cone.encoded_clauses
      << " encoded vs " << would_have << " full)";
  // The per-solve log carries the same totals.
  std::size_t logged_encoded = 0;
  std::size_t logged_saved = 0;
  for (const auto& record : cone.solve_log) {
    logged_encoded += record.encoded_clauses;
    logged_saved += record.saved_clauses;
    const std::string json = solve_record_json(record);
    EXPECT_NE(json.find("\"encoded_clauses\":"), std::string::npos);
    EXPECT_NE(json.find("\"saved_clauses\":"), std::string::npos);
  }
  EXPECT_EQ(logged_encoded, cone.encoded_clauses);
  EXPECT_EQ(logged_saved, cone.saved_clauses);
}

TEST(AttackEngine, SpecializeInputsMatchesSimulation) {
  // The DIP-cofactored, simplified cone must agree with the original
  // circuit on every key for the pinned input pattern.
  const Netlist host = host_circuit(6);
  const auto locked = locking::lock_xor(host, 10, 66);
  const auto data_inputs = locked.netlist.data_inputs();
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<bool> dip(data_inputs.size());
    for (auto&& b : dip) b = rng() & 1;
    Netlist cone =
        netlist::specialize_inputs(locked.netlist, data_inputs, dip);
    netlist::simplify(cone);
    ASSERT_EQ(cone.key_inputs().size(), locked.netlist.key_inputs().size());
    ASSERT_EQ(cone.outputs().size(), locked.netlist.outputs().size());
    for (int k = 0; k < 4; ++k) {
      std::vector<bool> key(locked.key.size());
      for (auto&& b : key) b = rng() & 1;
      EXPECT_EQ(netlist::evaluate_with_key(cone, {}, key),
                netlist::evaluate_with_key(locked.netlist, dip, key));
    }
  }
}

TEST(AttackEngine, SpecializeInputsRejectsKeyInputs) {
  const Netlist host = host_circuit(7);
  const auto locked = locking::lock_xor(host, 4, 77);
  const std::vector<NodeId> keys = locked.netlist.key_inputs();
  EXPECT_THROW(netlist::specialize_inputs(locked.netlist, keys,
                                          std::vector<bool>(keys.size())),
               std::invalid_argument);
}

TEST(AttackEngine, CancellationFlagStopsAttack) {
  const Netlist host = host_circuit(8, 400);
  core::RilBlockConfig config;
  config.size = 8;
  const auto ril = locking::lock_ril(host, 2, config, 88);
  Oracle oracle(ril.locked.netlist, ril.locked.key);
  std::atomic<bool> cancel{true};  // raised before the attack starts
  SatAttackOptions options;
  options.cancel = &cancel;
  const auto result = run_sat_attack(ril.locked.netlist, oracle, options);
  EXPECT_EQ(result.status, SatAttackStatus::kTimeout);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(AttackEngine, SimulatorReuseOverloadsMatch) {
  const Netlist host = host_circuit(9);
  const auto locked = locking::lock_xor(host, 8, 99);
  netlist::Simulator sim(locked.netlist);
  std::mt19937_64 rng(11);
  for (int t = 0; t < 8; ++t) {
    std::vector<bool> x(locked.netlist.data_inputs().size());
    for (auto&& b : x) b = rng() & 1;
    std::vector<bool> key(locked.key.size());
    for (auto&& b : key) b = rng() & 1;
    EXPECT_EQ(netlist::evaluate_with_key(sim, x, key),
              netlist::evaluate_with_key(locked.netlist, x, key));
    netlist::Simulator host_sim(host);
    EXPECT_EQ(netlist::evaluate_once(host_sim, x),
              netlist::evaluate_once(host, x));
  }
}

TEST(AttackEngine, SampleKeyMismatchesFindsWrongKeys) {
  const Netlist host = host_circuit(10);
  const auto locked = locking::lock_xor(host, 8, 100);
  Oracle oracle(locked.netlist, locked.key);
  netlist::Simulator sim(locked.netlist);

  std::mt19937_64 rng(13);
  const auto clean =
      sample_key_mismatches(sim, locked.key, oracle, 32, rng);
  EXPECT_TRUE(clean.empty());  // correct key never disagrees

  std::vector<bool> wrong = locked.key;
  wrong[0] = !wrong[0];
  std::mt19937_64 rng2(13);
  const auto dirty = sample_key_mismatches(sim, wrong, oracle, 64, rng2);
  EXPECT_FALSE(dirty.empty());
  for (const auto& [x, y] : dirty) {
    EXPECT_EQ(oracle.query(x), y);
    EXPECT_NE(netlist::evaluate_with_key(sim, x, wrong), y);
  }
}

TEST(AttackEngine, CountingSinkCountsBothModes) {
  sat::CountingSink dry;  // standalone: prices without storing
  const Var a = dry.new_var();
  const Var b = dry.new_var();
  dry.add_clause({Lit::make(a), Lit::make(b)});
  dry.add_clause({Lit::make(a, true)});
  EXPECT_EQ(dry.vars(), 2u);
  EXPECT_EQ(dry.clauses(), 2u);

  sat::Solver solver;
  sat::CountingSink wrapped(&solver);
  const Var c = wrapped.new_var();
  wrapped.add_clause({Lit::make(c)});
  EXPECT_EQ(wrapped.vars(), 1u);
  EXPECT_EQ(wrapped.clauses(), 1u);
  EXPECT_EQ(solver.solve(), sat::Result::kSat);
  EXPECT_TRUE(solver.model_bool(c));
}

TEST(AttackEngine, BudgetRecordsConstraintCosts) {
  engine::AttackBudget budget(0.0);
  EXPECT_FALSE(budget.limited());
  EXPECT_FALSE(budget.expired());
  budget.enable_recording(true);
  budget.record(0, "miter", {});
  budget.add_constraints({100, 40});
  budget.record(1, "miter", {});
  budget.add_constraints({50, 10});
  EXPECT_EQ(budget.constraint_totals().encoded_clauses, 150u);
  EXPECT_EQ(budget.constraint_totals().saved_clauses, 50u);
  const auto log = budget.take_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].encoded_clauses, 100u);
  EXPECT_EQ(log[1].saved_clauses, 10u);
}

TEST(AttackEngine, ScanSatWrapperRecoversKey) {
  benchgen::RandomSequentialParams params;
  params.combinational.num_inputs = 10;
  params.combinational.num_outputs = 6;
  params.combinational.num_gates = 150;
  params.combinational.seed = 12;
  params.num_dffs = 8;
  const Netlist seq = benchgen::generate_random_sequential(params);
  ScanOracle oracle(seq);
  const Netlist core = seq.combinational_core();
  const auto locked = locking::lock_xor(core, 8, 120);

  // Interface mismatch (sequential netlist instead of the core) rejected.
  EXPECT_THROW(run_scansat_attack(seq, oracle), std::invalid_argument);

  const auto result = run_scansat_attack(locked.netlist, oracle);
  ASSERT_EQ(result.status, SatAttackStatus::kKeyFound);
  EXPECT_TRUE(cnf::check_equivalence(locked.netlist, core, result.key, {})
                  .equivalent());
}

}  // namespace
}  // namespace ril::attacks
