// Sequential-flow integration: random sequential hosts, scan insertion,
// locking the combinational core, attacking through the scan chain.
#include <gtest/gtest.h>

#include <random>

#include "attacks/sat_attack.hpp"
#include "attacks/scansat.hpp"
#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/scan_chain.hpp"
#include "netlist/simulator.hpp"

namespace ril {
namespace {

using netlist::Netlist;

Netlist make_seq_host(std::uint64_t seed, std::size_t dffs = 12) {
  benchgen::RandomSequentialParams params;
  params.combinational.num_inputs = 10;
  params.combinational.num_outputs = 6;
  params.combinational.num_gates = 150;
  params.combinational.seed = seed;
  params.num_dffs = dffs;
  return benchgen::generate_random_sequential(params);
}

TEST(Sequential, GeneratorShape) {
  const Netlist nl = make_seq_host(1);
  EXPECT_EQ(nl.dff_count(), 12u);
  EXPECT_EQ(nl.inputs().size(), 10u);  // pseudo-inputs dropped
  EXPECT_TRUE(nl.validate().empty());
  // Deterministic per seed.
  const Netlist again = make_seq_host(1);
  EXPECT_EQ(netlist::write_bench_string(nl),
            netlist::write_bench_string(again));
}

TEST(Sequential, CoreRoundTrip) {
  const Netlist nl = make_seq_host(2);
  const Netlist core = nl.combinational_core();
  EXPECT_EQ(core.dff_count(), 0u);
  EXPECT_EQ(core.inputs().size(), 10u + 12u);
  EXPECT_EQ(core.outputs().size(), nl.outputs().size() + 12u);
}

TEST(Sequential, StateEvolutionMatchesCore) {
  // Stepping the sequential netlist must equal iterating the core's
  // next-state function.
  const Netlist nl = make_seq_host(3);
  const Netlist core = nl.combinational_core();
  std::mt19937_64 rng(5);

  netlist::Simulator sim(nl);
  sim.reset_state();
  std::vector<bool> state(12, false);
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::vector<bool> pi(10);
    for (auto&& v : pi) v = rng() & 1;
    for (std::size_t i = 0; i < pi.size(); ++i) {
      sim.set_input_all(nl.inputs()[i], pi[i]);
    }
    sim.evaluate();
    std::vector<bool> outs;
    for (auto id : nl.outputs()) outs.push_back(sim.value(id) & 1);
    sim.step();

    std::vector<bool> core_in = pi;
    core_in.insert(core_in.end(), state.begin(), state.end());
    const auto expect = netlist::evaluate_once(core, core_in);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      EXPECT_EQ(outs[i], expect[i]) << "cycle " << cycle;
    }
    for (std::size_t i = 0; i < state.size(); ++i) {
      state[i] = expect[outs.size() + i];
    }
  }
}

TEST(Sequential, FullScanLockAttackFlow) {
  // Lock the core with a 4x4 RIL block, activate, attack via scan chain.
  const Netlist seq = make_seq_host(4, 8);
  const Netlist core = seq.combinational_core();
  core::RilBlockConfig config;
  config.size = 4;
  const auto ril = locking::lock_ril(core, 1, config, 6);

  // The activated chip is sequential: rebuild it by locking the sequential
  // netlist identically is complex; instead activate the locked core and
  // check the attack recovers a working key against it.
  const Netlist activated =
      locking::specialize_keys(ril.locked.netlist, ril.locked.key);
  attacks::Oracle oracle(activated, {});
  const auto result = attacks::run_sat_attack(ril.locked.netlist, oracle);
  ASSERT_EQ(result.status, attacks::SatAttackStatus::kKeyFound);
  EXPECT_TRUE(cnf::check_equivalence(ril.locked.netlist, core, result.key,
                                     {})
                  .equivalent());
}

TEST(Sequential, ScanOracleOnRandomSequentialHost) {
  const Netlist seq = make_seq_host(5, 10);
  attacks::ScanOracle scan_oracle(seq);
  const Netlist core = seq.combinational_core();
  std::mt19937_64 rng(7);
  for (int t = 0; t < 16; ++t) {
    std::vector<bool> x(scan_oracle.num_inputs());
    for (auto&& v : x) v = rng() & 1;
    EXPECT_EQ(scan_oracle.query(x), netlist::evaluate_once(core, x));
  }
}

}  // namespace
}  // namespace ril
