#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "netlist/simulator.hpp"

namespace ril::netlist {
namespace {

constexpr const char* kSample = R"(
# c17-like sample
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G2)
G22 = NAND(G10, G11)
G23 = NAND(G11, G2)
)";

TEST(BenchIo, ParsesSample) {
  const Netlist nl = read_bench_string(kSample, "c17ish");
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 4u);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(BenchIo, KeyInputConvention) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n");
  EXPECT_EQ(nl.key_inputs().size(), 1u);
  EXPECT_EQ(nl.data_inputs().size(), 1u);
}

TEST(BenchIo, RoundTripPreservesFunction) {
  const Netlist original = read_bench_string(kSample);
  const std::string text = write_bench_string(original);
  const Netlist reparsed = read_bench_string(text);
  ASSERT_EQ(original.inputs().size(), reparsed.inputs().size());
  ASSERT_EQ(original.outputs().size(), reparsed.outputs().size());
  for (unsigned pattern = 0; pattern < 8; ++pattern) {
    std::vector<bool> in = {static_cast<bool>(pattern & 1),
                            static_cast<bool>(pattern & 2),
                            static_cast<bool>(pattern & 4)};
    EXPECT_EQ(evaluate_once(original, in), evaluate_once(reparsed, in))
        << "pattern " << pattern;
  }
}

TEST(BenchIo, LutExtensionRoundTrip) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId lut = nl.add_lut({a, b}, 0b0110, "mylut");
  nl.mark_output(lut);
  const Netlist reparsed = read_bench_string(write_bench_string(nl));
  const NodeId rlut = *reparsed.find("mylut");
  EXPECT_EQ(reparsed.node(rlut).type, GateType::kLut);
  EXPECT_EQ(reparsed.node(rlut).lut_mask, 0b0110u);
}

TEST(BenchIo, MuxExtensionRoundTrip) {
  Netlist nl;
  const NodeId s = nl.add_input("s");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.add_mux(s, a, b, "m"));
  const Netlist reparsed = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(reparsed.node(*reparsed.find("m")).type, GateType::kMux);
}

TEST(BenchIo, DffAndConstRoundTrip) {
  const char* text =
      "INPUT(x)\nOUTPUT(q)\nc1 = vcc\nd = XOR(x, q)\nq = DFF(d)\n";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.dff_count(), 1u);
  const Netlist reparsed = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(reparsed.dff_count(), 1u);
  EXPECT_TRUE(reparsed.validate().empty());
}

TEST(BenchIo, OutOfOrderDefinitions) {
  const char* text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(t, b)\nt = OR(a, b)\n";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.gate_count(), 2u);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    read_bench_string("INPUT(a)\nbogus line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, UndefinedSignalRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, CombinationalCycleRejected) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = OR(y, a)\n"),
               std::runtime_error);
}

TEST(BenchIo, RedefinitionRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"),
      std::runtime_error);
}

TEST(BenchIo, CaseInsensitiveOps) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = nand(a, b)\n");
  EXPECT_EQ(nl.node(*nl.find("y")).type, GateType::kNand);
}

TEST(BenchIo, GoldenRoundTripLutVccGnd) {
  // Golden write -> read -> write round trip over every .bench extension at
  // once: LUT masks of different widths, constants, and a MUX.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId one = nl.add_const(true);
  nl.rename(one, "one");
  const NodeId zero = nl.add_const(false);
  nl.rename(zero, "zero");
  const NodeId lut2 = nl.add_lut({a, b}, 0b1001, "xnor_lut");
  const NodeId lut3 = nl.add_lut({a, b, c}, 0b10110001, "lut3");
  const NodeId mux = nl.add_mux(c, lut2, one, "m");
  nl.mark_output(lut3);
  nl.mark_output(mux);
  nl.mark_output(zero);

  const std::string first = write_bench_string(nl);
  const Netlist reparsed = read_bench_string(first);
  // Writing is deterministic, and the round trip preserves structure even
  // though gate ordering may differ between the two netlists.
  EXPECT_EQ(write_bench_string(nl), first);
  EXPECT_EQ(reparsed.gate_count(), nl.gate_count());
  EXPECT_EQ(reparsed.outputs().size(), 3u);
  EXPECT_EQ(reparsed.node(*reparsed.find("zero")).type, GateType::kConst0);
  EXPECT_EQ(reparsed.node(*reparsed.find("one")).type, GateType::kConst1);
  EXPECT_EQ(reparsed.node(*reparsed.find("m")).type, GateType::kMux);
  EXPECT_EQ(reparsed.node(*reparsed.find("xnor_lut")).lut_mask, 0b1001u);
  EXPECT_EQ(reparsed.node(*reparsed.find("lut3")).lut_mask, 0b10110001u);
  for (unsigned pattern = 0; pattern < 8; ++pattern) {
    std::vector<bool> in = {static_cast<bool>(pattern & 1),
                            static_cast<bool>(pattern & 2),
                            static_cast<bool>(pattern & 4)};
    EXPECT_EQ(evaluate_once(nl, in), evaluate_once(reparsed, in))
        << "pattern " << pattern;
  }
}

TEST(BenchIo, LutReversedParenthesesRejected) {
  // `close < open` used to slip past the LUT branch and slice a garbage
  // argument list; it must be a line-numbered parse error.
  try {
    read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT 0x6 )a, b(\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
    EXPECT_NE(message.find("LUT"), std::string::npos) << message;
  }
}

TEST(BenchIo, LutMissingParenthesesRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = LUT 0x1 a\n"),
      std::runtime_error);
}

TEST(BenchIo, LutMaskWiderThanTruthTableRejected) {
  // A 2-input LUT has 4 truth-table rows; bits above 2^4 used to be
  // silently truncated by the simulator and the CNF encoder.
  try {
    read_bench_string(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT 0x1ffff (a, b)\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
    EXPECT_NE(message.find("0x1ffff"), std::string::npos) << message;
  }
}

TEST(BenchIo, LutMaskFittingExactlyAccepted) {
  // 2-input LUT: all 4 truth-table rows set (0xf) is the widest legal mask.
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT 0xf (a, b)\n");
  EXPECT_EQ(nl.node(*nl.find("y")).lut_mask, 0xfu);
}

TEST(BenchIo, LutMaskTrailingJunkRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT 0x6q (a, b)\n"),
      std::runtime_error);
}

TEST(BenchIo, LutMaskNegativeRejected) {
  // stoull accepts a leading '-' and wraps: "-1" used to parse as the
  // all-ones 64-bit mask and, on a 6-input LUT (where no width check
  // applies), silently invert the intended function.
  try {
    read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT -1 (a, b)\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
    EXPECT_NE(message.find("-1"), std::string::npos) << message;
  }
}

TEST(BenchIo, LutMaskSignPrefixRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT +6 (a, b)\n"),
      std::runtime_error);
  EXPECT_THROW(
      read_bench_string(
          "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT -0x6 (a, b)\n"),
      std::runtime_error);
}

TEST(BenchIo, LutMaskOutOfRangeRejected) {
  // Wider than 64 bits: stoull throws out_of_range; must surface as a
  // line-numbered parse error, not an uncaught exception.
  try {
    read_bench_string(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT 0x1ffffffffffffffff (a, b)\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  }
}

TEST(BenchIo, WriteBenchFileThrowsOnUnopenablePath) {
  const Netlist nl = read_bench_string(kSample);
  EXPECT_THROW(write_bench_file("/nonexistent-dir/out.bench", nl),
               std::runtime_error);
}

TEST(BenchIo, WriteBenchFileSurfacesWriteFailure) {
  // /dev/full opens fine and fails every write with ENOSPC — exactly the
  // disk-full scenario that used to leave a truncated netlist on disk and
  // return success.
  {
    std::ofstream probe("/dev/full", std::ios::app);
    if (!probe.is_open()) GTEST_SKIP() << "/dev/full not available";
    probe << "x";
    probe.flush();
    if (!probe.fail()) GTEST_SKIP() << "/dev/full does not reject writes";
  }
  const Netlist nl = read_bench_string(kSample);
  try {
    write_bench_file("/dev/full", nl);
    FAIL() << "disk-full write reported success";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("/dev/full"), std::string::npos) << message;
    EXPECT_NE(message.find("write failed"), std::string::npos) << message;
  }
}

TEST(BenchIo, AddLutValidatesMaskWidth) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  EXPECT_THROW(nl.add_lut({a, b}, 0x10000, "wide"), std::invalid_argument);
  // 6-input LUTs use the full 64-bit mask; any value is in range.
  std::vector<NodeId> six;
  for (int i = 0; i < 6; ++i) {
    six.push_back(nl.add_input("i" + std::to_string(i)));
  }
  EXPECT_NO_THROW(nl.add_lut(six, ~0ull, "full"));
}

}  // namespace
}  // namespace ril::netlist
