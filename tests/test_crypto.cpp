#include "benchgen/crypto.hpp"

#include <gtest/gtest.h>

#include <random>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"

namespace ril::benchgen {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using netlist::Simulator;

/// Sets named word inputs ("stem_<i>") on a simulator (single pattern).
void set_word(Simulator& sim, const Netlist& nl, const std::string& stem,
              std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    const auto id = nl.find(stem + "_" + std::to_string(i));
    ASSERT_TRUE(id.has_value()) << stem << "_" << i;
    sim.set_input_all(*id, (value >> i) & 1);
  }
}

std::uint64_t get_word(const Simulator& sim, const Netlist& nl,
                       const std::string& stem, std::size_t width) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const auto id = nl.find(stem + "_" + std::to_string(i));
    if (!id) return ~0ull;
    if (sim.value(*id) & 1) value |= std::uint64_t{1} << i;
  }
  return value;
}

TEST(Crypto, AesRoundMatchesReference) {
  const Netlist nl = make_aes_round();
  EXPECT_TRUE(nl.validate().empty());
  std::mt19937_64 rng(7);
  Simulator sim(nl);
  for (int t = 0; t < 4; ++t) {
    std::array<std::uint8_t, 16> state{};
    std::array<std::uint8_t, 16> key{};
    for (auto& v : state) v = static_cast<std::uint8_t>(rng());
    for (auto& v : key) v = static_cast<std::uint8_t>(rng());
    for (std::size_t j = 0; j < 16; ++j) {
      set_word(sim, nl, "st" + std::to_string(j), state[j], 8);
      set_word(sim, nl, "rk" + std::to_string(j), key[j], 8);
    }
    sim.evaluate();
    const auto expect = aes_round_reference(state, key);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(get_word(sim, nl, "out" + std::to_string(j), 8), expect[j])
          << "byte " << j;
    }
  }
}

TEST(Crypto, AesSboxSpotChecks) {
  EXPECT_EQ(aes_sbox()[0x00], 0x63);
  EXPECT_EQ(aes_sbox()[0x53], 0xed);
  EXPECT_EQ(aes_sbox()[0xff], 0x16);
}

TEST(Crypto, Sha256RoundsMatchReference) {
  const std::size_t rounds = 4;
  const Netlist nl = make_sha256_rounds(rounds);
  std::mt19937_64 rng(8);
  Simulator sim(nl);
  for (int t = 0; t < 4; ++t) {
    std::array<std::uint32_t, 8> state{};
    std::array<std::uint32_t, 16> w{};
    for (auto& v : state) v = static_cast<std::uint32_t>(rng());
    for (auto& v : w) v = static_cast<std::uint32_t>(rng());
    const char* names[8] = {"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"};
    for (std::size_t i = 0; i < 8; ++i) {
      set_word(sim, nl, names[i], state[i], 32);
    }
    for (std::size_t i = 0; i < rounds; ++i) {
      set_word(sim, nl, "w" + std::to_string(i), w[i], 32);
    }
    sim.evaluate();
    const auto expect = sha256_rounds_reference(state, w.data(), rounds);
    const char* outs[8] = {"a", "b", "c", "d", "e", "f", "g", "h"};
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(get_word(sim, nl, outs[i], 32), expect[i]) << outs[i];
    }
  }
}

TEST(Crypto, Md5StepsMatchReference) {
  const std::size_t steps = 5;
  const Netlist nl = make_md5_steps(steps);
  std::mt19937_64 rng(9);
  Simulator sim(nl);
  for (int t = 0; t < 4; ++t) {
    std::array<std::uint32_t, 4> state{};
    std::array<std::uint32_t, 16> m{};
    for (auto& v : state) v = static_cast<std::uint32_t>(rng());
    for (auto& v : m) v = static_cast<std::uint32_t>(rng());
    set_word(sim, nl, "a", state[0], 32);
    set_word(sim, nl, "b", state[1], 32);
    set_word(sim, nl, "c", state[2], 32);
    set_word(sim, nl, "d", state[3], 32);
    for (std::size_t i = 0; i < steps; ++i) {
      set_word(sim, nl, "m" + std::to_string(i), m[i], 32);
    }
    sim.evaluate();
    const auto expect = md5_steps_reference(state, m.data(), steps);
    EXPECT_EQ(get_word(sim, nl, "out_a", 32), expect[0]);
    EXPECT_EQ(get_word(sim, nl, "out_b", 32), expect[1]);
    EXPECT_EQ(get_word(sim, nl, "out_c", 32), expect[2]);
    EXPECT_EQ(get_word(sim, nl, "out_d", 32), expect[3]);
  }
}

TEST(Crypto, GpsCaMatchesReference) {
  const std::size_t chips = 64;
  const Netlist nl = make_gps_ca(chips);
  Simulator sim(nl);
  // All-ones initial states, the standard C/A bootstrap.
  set_word(sim, nl, "g1", 0x3FF, 10);
  set_word(sim, nl, "g2", 0x3FF, 10);
  sim.evaluate();
  const auto expect = gps_ca_reference(0x3FF, 0x3FF, chips);
  for (std::size_t t = 0; t < chips; ++t) {
    const auto id = nl.find("chip_" + std::to_string(t));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(static_cast<bool>(sim.value(*id) & 1), expect[t])
        << "chip " << t;
  }
}

TEST(Crypto, GpsCaKnownPrefix) {
  // PRN-1 C/A code famously starts 1100100000 (octal 1440 in the first 10
  // chips) with all-ones initialization.
  const auto chips = gps_ca_reference(0x3FF, 0x3FF, 10);
  const bool expected[10] = {true, true, false, false, true,
                             false, false, false, false, false};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(chips[i], expected[i]) << "chip " << i;
  }
}

TEST(Crypto, ParameterValidation) {
  EXPECT_THROW(make_sha256_rounds(0), std::invalid_argument);
  EXPECT_THROW(make_sha256_rounds(17), std::invalid_argument);
  EXPECT_THROW(make_md5_steps(0), std::invalid_argument);
  EXPECT_THROW(make_gps_ca(0), std::invalid_argument);
}

}  // namespace
}  // namespace ril::benchgen
