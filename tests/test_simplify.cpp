#include "netlist/simplify.hpp"

#include <gtest/gtest.h>

#include <random>

#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "locking/locked.hpp"
#include "locking/schemes.hpp"
#include "netlist/simulator.hpp"

namespace ril::netlist {
namespace {

TEST(Simplify, ConstantFoldsThroughGates) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId one = nl.add_const(true);
  const NodeId zero = nl.add_const(false);
  const NodeId g1 = nl.add_gate(GateType::kAnd, {a, one}, "g1");    // = a
  const NodeId g2 = nl.add_gate(GateType::kOr, {g1, zero}, "g2");   // = a
  const NodeId g3 = nl.add_gate(GateType::kXor, {g2, one}, "g3");   // = !a
  const NodeId g4 = nl.add_gate(GateType::kAnd, {g3, zero}, "g4");  // = 0
  nl.mark_output(g3);
  nl.mark_output(g4);
  const auto stats = simplify(nl);
  EXPECT_GT(stats.constants_folded, 0u);
  EXPECT_EQ(nl.node(nl.outputs()[1]).type, GateType::kConst0);
  // g3 must reduce to NOT(a).
  EXPECT_EQ(nl.node(nl.outputs()[0]).type, GateType::kNot);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Simplify, BufferChainsCollapse) {
  Netlist nl;
  NodeId x = nl.add_input("x");
  NodeId prev = x;
  for (int i = 0; i < 5; ++i) {
    prev = nl.add_gate(GateType::kBuf, {prev});
  }
  const NodeId g = nl.add_gate(GateType::kNot, {prev}, "g");
  nl.mark_output(g);
  simplify(nl);
  EXPECT_EQ(nl.node(*nl.find("g")).fanins[0], *nl.find("x"));
  EXPECT_EQ(nl.gate_count(), 1u);
}

TEST(Simplify, XorCancellation) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kXor, {a, b, a}, "g");  // = b
  nl.mark_output(g);
  simplify(nl);
  EXPECT_EQ(nl.outputs()[0], *nl.find("b"));
}

TEST(Simplify, MuxRules) {
  Netlist nl;
  const NodeId s = nl.add_input("s");
  const NodeId d = nl.add_input("d");
  const NodeId one = nl.add_const(true);
  const NodeId zero = nl.add_const(false);
  nl.mark_output(nl.add_mux(one, d, s, "m1"));    // = s
  nl.mark_output(nl.add_mux(s, d, d, "m2"));      // = d
  nl.mark_output(nl.add_mux(s, zero, one, "m3"));  // = s
  nl.mark_output(nl.add_mux(s, one, zero, "m4"));  // = !s
  simplify(nl);
  EXPECT_EQ(nl.outputs()[0], *nl.find("s"));
  EXPECT_EQ(nl.outputs()[1], *nl.find("d"));
  EXPECT_EQ(nl.outputs()[2], *nl.find("s"));
  EXPECT_EQ(nl.node(nl.outputs()[3]).type, GateType::kNot);
}

TEST(Simplify, LutConstantInput) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId one = nl.add_const(true);
  // LUT(a, 1) with AND mask -> a.
  const NodeId lut = nl.add_lut({a, one}, 0b1000, "lut");
  nl.mark_output(lut);
  simplify(nl);
  EXPECT_EQ(nl.outputs()[0], *nl.find("a"));
}

TEST(Simplify, PreservesFunction) {
  // Property: simplify(specialize_keys(locked, key)) == host function.
  std::mt19937_64 rng(3);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    benchgen::RandomDagParams params;
    params.num_inputs = 14;
    params.num_outputs = 6;
    params.num_gates = 160;
    params.seed = seed;
    const Netlist host = benchgen::generate_random_dag(params);
    const auto locked = locking::lock_lut(host, 5, seed);
    Netlist fixed = locking::specialize_keys(locked.netlist, locked.key);
    const std::size_t before = fixed.gate_count();
    const auto stats = simplify(fixed);
    EXPECT_LT(fixed.gate_count(), before);  // the key MUX trees must melt
    EXPECT_GT(stats.gates_pruned, 0u);
    EXPECT_TRUE(cnf::check_equivalence(fixed, host).equivalent())
        << "seed " << seed;
  }
}

TEST(Simplify, UnlockedRilMeltsToHostSize) {
  // After unlocking with the correct key, the RIL MUX fabric should reduce
  // to within a whisker of the original area (the paper's "reconfigurable
  // fabric carries the overhead, not the unlocked function").
  benchgen::RandomDagParams params;
  params.num_inputs = 20;
  params.num_outputs = 10;
  params.num_gates = 260;
  params.seed = 9;
  const Netlist host = benchgen::generate_random_dag(params);
  core::RilBlockConfig config;
  config.size = 8;
  config.output_network = true;
  const auto ril = locking::lock_ril(host, 1, config, 10);
  Netlist fixed =
      locking::specialize_keys(ril.locked.netlist, ril.locked.key);
  simplify(fixed);
  EXPECT_LE(fixed.gate_count(), host.gate_count() + 4);
  EXPECT_TRUE(cnf::check_equivalence(fixed, host).equivalent());
}

TEST(Simplify, SequentialSafe) {
  Netlist nl;
  const NodeId x = nl.add_input("x");
  const NodeId one = nl.add_const(true);
  const NodeId dff = nl.add_gate(GateType::kDff, {x}, "q");
  const NodeId g = nl.add_gate(GateType::kAnd, {dff, one}, "g");  // = q
  const NodeId nxt = nl.add_gate(GateType::kXor, {g, x}, "nxt");
  nl.set_fanin(dff, 0, nxt);
  nl.mark_output(g);
  simplify(nl);
  EXPECT_EQ(nl.dff_count(), 1u);
  EXPECT_TRUE(nl.validate().empty());
}

}  // namespace
}  // namespace ril::netlist
