#include "attacks/bypass.hpp"
#include "attacks/sps.hpp"

#include <gtest/gtest.h>

#include "attacks/metrics.hpp"
#include "attacks/oracle.hpp"
#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"

namespace ril::attacks {
namespace {

using netlist::Netlist;

Netlist host_circuit(std::uint64_t seed = 1) {
  benchgen::RandomDagParams params;
  params.num_inputs = 16;
  params.num_outputs = 8;
  params.num_gates = 200;
  params.seed = seed;
  return benchgen::generate_random_dag(params);
}

TEST(Bypass, DefeatsSarlock) {
  const Netlist host = host_circuit(1);
  const auto locked = locking::lock_sarlock(host, 16, 71);
  Oracle oracle(locked.netlist, locked.key);
  const auto result = run_bypass_attack(locked.netlist, oracle);
  ASSERT_EQ(result.status, BypassStatus::kBypassed);
  EXPECT_LE(result.patterns, 4u);  // one-point corruption per wrong key
  EXPECT_TRUE(result.pirated.key_inputs().empty());
  EXPECT_TRUE(cnf::check_equivalence(result.pirated, host).equivalent());
}

TEST(Bypass, DefeatsAntisat) {
  const Netlist host = host_circuit(2);
  const auto locked = locking::lock_antisat(host, 16, 72);
  Oracle oracle(locked.netlist, locked.key);
  const auto result = run_bypass_attack(locked.netlist, oracle);
  ASSERT_EQ(result.status, BypassStatus::kBypassed);
  EXPECT_TRUE(cnf::check_equivalence(result.pirated, host).equivalent());
}

TEST(Bypass, FailsAgainstRil) {
  // A wrong RIL key corrupts a large share of input space: the pattern
  // enumeration blows straight through the budget.
  const Netlist host = host_circuit(3);
  core::RilBlockConfig config;
  config.size = 8;
  const auto ril = locking::lock_ril(host, 1, config, 73);
  Oracle oracle(ril.locked.netlist, ril.locked.key);
  BypassOptions options;
  options.max_patterns = 64;
  options.time_limit_seconds = 20;
  const auto result = run_bypass_attack(ril.locked.netlist, oracle, options);
  EXPECT_NE(result.status, BypassStatus::kBypassed);
}

TEST(Bypass, FailsAgainstXorLocking) {
  const Netlist host = host_circuit(4);
  const auto locked = locking::lock_xor(host, 16, 74);
  Oracle oracle(locked.netlist, locked.key);
  BypassOptions options;
  options.max_patterns = 32;
  options.time_limit_seconds = 20;
  const auto result = run_bypass_attack(locked.netlist, oracle, options);
  EXPECT_EQ(result.status, BypassStatus::kTooManyPatterns);
}

TEST(Sps, ProbabilitiesSane) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g_and = nl.add_gate(netlist::GateType::kAnd, {a, b}, "g_and");
  const auto g_xor = nl.add_gate(netlist::GateType::kXor, {a, b}, "g_xor");
  const auto one = nl.add_const(true);
  nl.mark_output(g_and);
  nl.mark_output(g_xor);
  nl.mark_output(one);
  const auto p = signal_probabilities(nl, 1 << 14, 3);
  EXPECT_NEAR(p[a], 0.5, 0.03);
  EXPECT_NEAR(p[g_and], 0.25, 0.03);
  EXPECT_NEAR(p[g_xor], 0.5, 0.03);
  EXPECT_DOUBLE_EQ(p[one], 1.0);
}

TEST(Sps, DefeatsAntisat) {
  const Netlist host = host_circuit(5);
  const auto locked = locking::lock_antisat(host, 12, 75);
  const auto result = run_sps_attack(locked.netlist);
  EXPECT_GE(result.cuts, 1u);
  EXPECT_TRUE(cnf::check_equivalence(result.recovered, host).equivalent());
}

TEST(Sps, DefeatsSarlock) {
  const Netlist host = host_circuit(6);
  const auto locked = locking::lock_sarlock(host, 12, 76);
  const auto result = run_sps_attack(locked.netlist);
  EXPECT_GE(result.cuts, 1u);
  EXPECT_TRUE(cnf::check_equivalence(result.recovered, host).equivalent());
}

TEST(Sps, FailsAgainstRil) {
  // The SE XOR operands are free key bits (probability 1/2) so the SE layer
  // itself is never cut; naturally skewed *host* signals may still trigger
  // false cuts (SPS's known weakness), but either way the reconstruction
  // cannot be the host -- the LUT/routing keys are untouched by SPS.
  const Netlist host = host_circuit(7);
  core::RilBlockConfig config;
  config.size = 8;
  config.scan_obfuscation = true;
  const auto ril = locking::lock_ril(host, 1, config, 77);
  const auto result = run_sps_attack(ril.locked.netlist);
  EXPECT_FALSE(cnf::check_equivalence(result.recovered, host).equivalent());

  // The SE XOR gates specifically must survive: their keyed operand is an
  // unskewed key input.
  const auto p = signal_probabilities(ril.locked.netlist, 1 << 14, 9);
  for (std::size_t pos : ril.info.se_key_positions) {
    const auto key_node = ril.locked.netlist.key_inputs()[pos];
    EXPECT_NEAR(p[key_node], 0.5, 0.05);
  }
}

}  // namespace
}  // namespace ril::attacks
