#include "attacks/metrics.hpp"

#include <gtest/gtest.h>

#include <random>

#include "attacks/oracle.hpp"
#include "benchgen/random_dag.hpp"
#include "locking/schemes.hpp"

namespace ril::attacks {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist host_circuit(std::uint64_t seed = 1) {
  benchgen::RandomDagParams params;
  params.num_inputs = 14;
  params.num_outputs = 7;
  params.num_gates = 150;
  params.seed = seed;
  return benchgen::generate_random_dag(params);
}

TEST(Metrics, CorrectKeyHasZeroError) {
  const auto locked = locking::lock_xor(host_circuit(1), 8, 71);
  EXPECT_EQ(functional_error_rate(locked.netlist, locked.key, locked.key,
                                  1024, 1),
            0.0);
}

TEST(Metrics, SingleXorKeyBitFullCorruption) {
  // y = x XOR k on a single output: every wrong key flips every pattern.
  Netlist nl;
  const NodeId x = nl.add_input("x");
  const NodeId k = nl.add_key_input("keyinput0");
  nl.mark_output(nl.add_gate(GateType::kXor, {x, k}));
  EXPECT_DOUBLE_EQ(output_corruptibility(nl, {false}, 512, 2), 1.0);
  EXPECT_DOUBLE_EQ(
      functional_error_rate(nl, {true}, {false}, 512, 3), 1.0);
  EXPECT_DOUBLE_EQ(bit_error_rate(nl, {true}, {false}, 512, 4), 1.0);
}

TEST(Metrics, OnePointVsRilCorruptibility) {
  // The paper's Table V story in one assert: RIL corruptibility dwarfs
  // SARLock's.
  const Netlist host = host_circuit(2);
  const auto sar = locking::lock_sarlock(host, 10, 72);
  core::RilBlockConfig config;
  config.size = 8;
  const auto ril = locking::lock_ril(host, 1, config, 73);
  const double c_sar =
      output_corruptibility(sar.netlist, sar.key, 4096, 5);
  const double c_ril =
      output_corruptibility(ril.locked.netlist, ril.locked.key, 4096, 5);
  EXPECT_LT(c_sar, 0.01);
  EXPECT_GT(c_ril, 10 * c_sar);
}

TEST(Metrics, CircuitErrorRateZeroForIdentical) {
  const Netlist host = host_circuit(3);
  EXPECT_EQ(circuit_error_rate(host, host, 1024, 6), 0.0);
}

TEST(Metrics, ChecksInterfaces) {
  const Netlist a = host_circuit(4);
  Netlist b;
  b.add_input("a");
  b.mark_output(b.add_gate(GateType::kNot, {0}));
  EXPECT_THROW(circuit_error_rate(a, b, 16, 1), std::invalid_argument);
}

TEST(Oracle, MatchesSimulation) {
  const auto locked = locking::lock_xor(host_circuit(5), 6, 74);
  Oracle oracle(locked.netlist, locked.key);
  std::mt19937_64 rng(9);
  for (int t = 0; t < 20; ++t) {
    std::vector<bool> x(oracle.num_data_inputs());
    for (auto&& v : x) v = rng() & 1;
    EXPECT_EQ(oracle.query(x),
              netlist::evaluate_with_key(locked.netlist, x, locked.key));
  }
  EXPECT_EQ(oracle.query_count(), 20u);
}

TEST(Oracle, MorphingChangesResponses) {
  const auto locked = locking::lock_xor(host_circuit(6), 8, 75);
  Oracle fixed(locked.netlist, locked.key);
  Oracle morphing(locked.netlist, locked.key);
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < locked.key.size(); ++i) positions.push_back(i);
  morphing.enable_morphing(1, positions, 123);
  std::mt19937_64 rng(10);
  std::size_t differences = 0;
  for (int t = 0; t < 64; ++t) {
    std::vector<bool> x(fixed.num_data_inputs());
    for (auto&& v : x) v = rng() & 1;
    if (fixed.query(x) != morphing.query(x)) ++differences;
  }
  EXPECT_GT(differences, 0u);
}

TEST(Oracle, RejectsBadInput) {
  const auto locked = locking::lock_xor(host_circuit(7), 4, 76);
  EXPECT_THROW(Oracle(locked.netlist, {}), std::invalid_argument);
  Oracle oracle(locked.netlist, locked.key);
  EXPECT_THROW(oracle.query({}), std::invalid_argument);
  EXPECT_THROW(oracle.enable_morphing(0, {}, 1), std::invalid_argument);
  EXPECT_THROW(oracle.enable_morphing(2, {999}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ril::attacks
