#include "device/transient.hpp"

#include <gtest/gtest.h>

namespace ril::device {
namespace {

TransientOptions nominal_options() {
  TransientOptions options;
  options.variation.mtj_dim_sigma = 0;
  options.variation.vth_sigma = 0;
  options.variation.wl_sigma = 0;
  options.cmos.sense_offset_sigma = 0;
  return options;
}

TEST(Transient, AndThenNorOutputs) {
  // Fig. 5(a)/(b): the same LUT implements AND, then is reconfigured to
  // NOR; read sweeps must match both truth tables.
  const TransientResult result = simulate_and_to_nor(nominal_options());
  EXPECT_TRUE(result.all_writes_ok);
  const std::array<int, 4> and_expected = {0, 0, 0, 1};  // minterm order
  const std::array<int, 4> nor_expected = {1, 0, 0, 0};
  EXPECT_EQ(result.and_outputs, and_expected);
  EXPECT_EQ(result.nor_outputs, nor_expected);
}

TEST(Transient, ScanEnableInvertsNorPhase) {
  TransientOptions options = nominal_options();
  options.scan_enable_reads = true;
  options.se_value_and = false;  // SE cell 0: scan mode passes through
  options.se_value_nor = true;   // SE cell 1: scan mode inverts
  const TransientResult result = simulate_and_to_nor(options);
  const std::array<int, 4> and_expected = {0, 0, 0, 1};
  const std::array<int, 4> nor_inverted = {0, 1, 1, 1};  // NOR -> OR
  EXPECT_EQ(result.and_outputs, and_expected);
  EXPECT_EQ(result.nor_outputs, nor_inverted);
}

TEST(Transient, WaveformStructure) {
  const TransientResult result = simulate_and_to_nor(nominal_options());
  // 2 config phases x (4 writes + 1 SE write) + 2 read sweeps x 4 reads.
  ASSERT_EQ(result.waveform.size(), 2u * 5u + 2u * 4u);
  // Time strictly increases.
  for (std::size_t i = 1; i < result.waveform.size(); ++i) {
    EXPECT_GT(result.waveform[i].time_ns, result.waveform[i - 1].time_ns);
  }
  // Writes assert WE or KWE; reads assert RE; phases labelled.
  for (const auto& p : result.waveform) {
    EXPECT_EQ(p.we + p.kwe + p.re, 1) << "at t=" << p.time_ns;
    EXPECT_FALSE(p.phase.empty());
  }
}

TEST(Transient, SenseVoltageTracksValue) {
  const TransientResult result = simulate_and_to_nor(nominal_options());
  for (const auto& p : result.waveform) {
    if (p.re == 0 || p.se == 1) continue;
    // Divider midpoint is above V_read/2 exactly when the output is 1.
    EXPECT_EQ(p.v_sense > 0.2, p.out == 1);
  }
}

TEST(Transient, ConfigEnergyAccounted) {
  const TransientResult result = simulate_and_to_nor(nominal_options());
  // 10 writes, ~34.7 fJ each.
  EXPECT_NEAR(result.total_config_energy, 10 * 34.7e-15, 3e-15);
}

}  // namespace
}  // namespace ril::device
