// Disk-backed proof streaming: FileProofTracer (binary DRAT, atomic
// temp+rename publish), TraceReader / check_refutation_file (single-pass
// streaming reads with bounded memory), truncation/garbage rejection, and
// the portfolio's winner-trace promotion -- including composition with the
// SatELite preprocessor's step replay.
#include "sat/proof.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "sat/drat_check.hpp"
#include "runtime/portfolio.hpp"

namespace ril::sat {
namespace {

using runtime::SolverPortfolio;

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Feeds every step of `trace` into `sink` in order.
void replay(const DratTrace& trace, ProofTracer& sink) {
  for (const ProofStep& step : trace.steps()) {
    switch (step.kind) {
      case ProofStepKind::kOriginal: sink.original(step.lits); break;
      case ProofStepKind::kDerive: sink.derive(step.lits); break;
      case ProofStepKind::kErase: sink.erase(step.lits); break;
    }
  }
}

void expect_same_steps(const DratTrace& a, const DratTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.steps()[i].kind, b.steps()[i].kind) << "step " << i;
    EXPECT_EQ(a.steps()[i].lits, b.steps()[i].lits) << "step " << i;
  }
}

/// A pseudo-random but deterministic trace large enough to cross several
/// stream-buffer flushes (the tracer's buffer is 1 MiB by default; we use
/// a small one in the tests that care).
DratTrace make_large_trace(std::size_t steps, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  DratTrace trace;
  for (std::size_t i = 0; i < steps; ++i) {
    Clause lits;
    const std::size_t width = 1 + rng() % 8;
    for (std::size_t k = 0; k < width; ++k) {
      lits.push_back(Lit::make(static_cast<Var>(rng() % 5000), rng() & 1));
    }
    switch (rng() % 3) {
      case 0: trace.original(lits); break;
      case 1: trace.derive(lits); break;
      default: trace.erase(lits); break;
    }
  }
  return trace;
}

void add_pigeonhole(ClauseSink& sink, int pigeons, int holes) {
  auto var = [&](int p, int h) { return p * holes + h; };
  sink.ensure_var(pigeons * holes - 1);
  for (int p = 0; p < pigeons; ++p) {
    Clause somewhere;
    for (int h = 0; h < holes; ++h) somewhere.push_back(Lit::make(var(p, h)));
    sink.add_clause(somewhere);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        sink.add_clause(
            {Lit::make(var(p1, h), true), Lit::make(var(p2, h), true)});
      }
    }
  }
}

// --- FileProofTracer --------------------------------------------------------

TEST(FileProofTracer, LargeTraceRoundTripsBitIdentically) {
  const std::string path = "proof_stream_large.drat";
  const DratTrace reference = make_large_trace(50000, 42);

  // Stream with a deliberately tiny buffer so the flush path is exercised
  // thousands of times.
  {
    FileProofTracer tracer(path, /*buffer_bytes=*/256);
    replay(reference, tracer);
    EXPECT_EQ(tracer.steps(), reference.size());
    tracer.finalize();
    EXPECT_TRUE(tracer.finalized());
  }
  ASSERT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp")) << "temp must be renamed away";

  const DratTrace reread = read_trace_file(path);
  expect_same_steps(reference, reread);

  // A second streaming pass over the same steps must produce the same
  // bytes -- the binary encoding is deterministic.
  const std::string first = read_bytes(path);
  {
    FileProofTracer tracer(path, /*buffer_bytes=*/1 << 20);
    replay(reference, tracer);
    tracer.finalize();
  }
  EXPECT_EQ(first, read_bytes(path));

  // The streaming reader agrees step-for-step too.
  TraceReader reader(path);
  ProofStep step;
  std::size_t i = 0;
  while (reader.next(step)) {
    ASSERT_LT(i, reference.size());
    EXPECT_EQ(step.kind, reference.steps()[i].kind);
    EXPECT_EQ(step.lits, reference.steps()[i].lits);
    ++i;
  }
  EXPECT_EQ(i, reference.size());
  EXPECT_TRUE(reader.binary());
  std::remove(path.c_str());
}

TEST(FileProofTracer, AbandonRemovesTempAndNeverPublishes) {
  const std::string path = "proof_stream_abandon.drat";
  std::remove(path.c_str());
  {
    FileProofTracer tracer(path);
    tracer.original({Lit::make(0)});
    tracer.abandon();
  }
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));

  // Destruction without finalize() abandons too (the kill-mid-write
  // story: an un-finalized temp never shadows a published proof).
  {
    FileProofTracer tracer(path);
    tracer.derive({Lit::make(1, true)});
  }
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(FileProofTracer, StepsAfterFinalizeThrow) {
  const std::string path = "proof_stream_sealed.drat";
  FileProofTracer tracer(path);
  tracer.original({Lit::make(0)});
  tracer.finalize();
  EXPECT_THROW(tracer.derive({Lit::make(1)}), std::logic_error);
  std::remove(path.c_str());
}

// --- truncation / garbage rejection -----------------------------------------

TEST(TraceReader, TruncatedBinaryTraceIsRejected) {
  const std::string path = "proof_stream_trunc.drat";
  {
    // Originals only: every step is checker-acceptable, so the streaming
    // checker must reach the torn tail and flag the parse failure instead
    // of rejecting some semantically-invalid step before it.
    std::mt19937_64 rng(7);
    FileProofTracer tracer(path);
    for (int i = 0; i < 500; ++i) {
      Clause lits;
      for (int k = 0; k < 4; ++k) {
        lits.push_back(Lit::make(static_cast<Var>(rng() % 5000), rng() & 1));
      }
      tracer.original(lits);
    }
    tracer.finalize();
  }
  const std::string full = read_bytes(path);
  // Cut the file mid-stream, as a crashed writer would leave it (if it
  // ever published, which FileProofTracer does not -- this simulates
  // external tampering or a torn copy).
  write_bytes(path, full.substr(0, full.size() / 2));
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  const DratCheckResult check = check_refutation_file(path);
  EXPECT_FALSE(check.valid);
  EXPECT_TRUE(check.malformed) << check.error;

  // Dropping only the end marker must also be rejected: a clean EOF
  // without the marker is indistinguishable from a truncated tail.
  write_bytes(path, full.substr(0, full.size() - 3));
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceReader, GarbageAndBadFooterAreRejectedWithLocation) {
  const std::string path = "proof_stream_garbage.drat";
  write_bytes(path, "this is not a proof trace\n");
  try {
    read_trace_file(path);
    FAIL() << "garbage trace must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }

  // Text trace whose footer count disagrees with the steps.
  write_bytes(path, "o 1 0\na -1 0\nc end 5\n");
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  // Text trace with content after the footer.
  write_bytes(path, "o 1 0\nc end 1\na -1 0\n");
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  // Text trace missing its footer entirely (torn tail).
  write_bytes(path, "o 1 0\na -1 0\n");
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceReader, FooterTamperRejectedEvenWhenRefutationChecks) {
  // A complete, checker-valid refutation whose end marker is then
  // corrupted: check_refutation_file must drain the reader past the empty
  // clause and reject the bad framing -- mid-trace literal flips can leave
  // a refutation that still checks, so the end marker is the integrity
  // anchor a tamper test can rely on.
  const std::string path = "proof_stream_footer_tamper.drat";
  {
    FileProofTracer tracer(path);
    tracer.original({Lit::make(0)});
    tracer.original({Lit::make(0, true)});
    tracer.derive({});
    tracer.finalize();
  }
  ASSERT_TRUE(check_refutation_file(path).valid);

  std::string bytes = read_bytes(path);
  ASSERT_GE(bytes.size(), 2u);
  bytes.back() = static_cast<char>(bytes.back() + 1);  // declared step count
  write_bytes(path, bytes);
  const DratCheckResult check = check_refutation_file(path);
  EXPECT_FALSE(check.valid);
  EXPECT_TRUE(check.malformed);
  EXPECT_NE(check.error.find("end marker"), std::string::npos) << check.error;
  std::remove(path.c_str());
}

TEST(TraceReader, EmptyFileIsACleanEmptyTrace) {
  const std::string path = "proof_stream_empty.drat";
  write_bytes(path, "");
  const DratTrace trace = read_trace_file(path);
  EXPECT_EQ(trace.size(), 0u);
  TraceReader reader(path);
  ProofStep step;
  EXPECT_FALSE(reader.next(step));
  std::remove(path.c_str());
}

TEST(WriteTraceFile, TextFormatIsAtomicAndRoundTrips) {
  const std::string path = "proof_stream_text.drat";
  DratTrace trace;
  trace.original({Lit::make(0), Lit::make(1, true)});
  trace.derive({Lit::make(2)});
  trace.erase({Lit::make(0), Lit::make(1, true)});
  trace.derive({});
  write_trace_file(path, trace);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  const DratTrace reread = read_trace_file(path);
  expect_same_steps(trace, reread);
  EXPECT_TRUE(reread.closed());
  std::remove(path.c_str());
}

// --- portfolio winner promotion ---------------------------------------------

TEST(PortfolioProofFiles, WinnerIsPromotedAndLosersCleanedUp) {
  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    const std::string stem = "proof_stream_portfolio.drat";
    const unsigned jobs = 3;
    SolverPortfolio portfolio(jobs, seed);
    portfolio.enable_proof_files(stem);
    EXPECT_TRUE(portfolio.proof_enabled());
    EXPECT_TRUE(portfolio.proof_files_enabled());
    add_pigeonhole(portfolio, 6, 5);
    const runtime::SolveOutcome outcome = portfolio.solve();
    ASSERT_EQ(outcome.result, Result::kUnsat);
    ASSERT_NE(portfolio.winner_file_trace(), nullptr);
    EXPECT_TRUE(portfolio.winner_file_trace()->closed());
    EXPECT_EQ(portfolio.winner_trace(), nullptr) << "file mode has no "
                                                    "in-memory trace";

    const std::uint64_t bytes = portfolio.promote_winner_trace(stem);
    EXPECT_GT(bytes, 0u);
    ASSERT_TRUE(file_exists(stem));
    for (unsigned i = 0; i < jobs; ++i) {
      const std::string member = stem + ".m" + std::to_string(i) + ".drat";
      EXPECT_FALSE(file_exists(member)) << member;
      EXPECT_FALSE(file_exists(member + ".tmp")) << member;
    }

    const DratCheckResult check = check_refutation_file(stem);
    EXPECT_TRUE(check.valid) << check.error;
    EXPECT_FALSE(check.malformed);
    std::remove(stem.c_str());

    // After promotion the portfolio detaches proof logging: later solves
    // are uncertified but still sound.
    EXPECT_FALSE(portfolio.proof_enabled());
  }
}

TEST(PortfolioProofFiles, PreprocessorReplayPassesStreamingChecker) {
  const std::string stem = "proof_stream_prep.drat";
  SolverPortfolio portfolio(2, 5);
  portfolio.enable_proof_files(stem);
  portfolio.enable_preprocessing();
  add_pigeonhole(portfolio, 7, 6);
  const runtime::SolveOutcome outcome = portfolio.solve();
  ASSERT_EQ(outcome.result, Result::kUnsat);
  ASSERT_NE(portfolio.winner_file_trace(), nullptr);
  ASSERT_TRUE(portfolio.winner_file_trace()->closed());
  portfolio.promote_winner_trace(stem);
  // The elimination/strengthening steps the preprocessor replayed into the
  // streamed trace must satisfy the independent streaming checker, exactly
  // like the in-memory path.
  const DratCheckResult check = check_refutation_file(stem);
  EXPECT_TRUE(check.valid) << check.error;
  std::remove(stem.c_str());
}

TEST(PortfolioProofFiles, ProofModesAreMutuallyExclusive) {
  // The second enable_* is an idempotent no-op: whichever mode was enabled
  // first wins, and promotion without file mode is a logic error.
  SolverPortfolio portfolio(1, 1);
  portfolio.enable_proof();
  portfolio.enable_proof_files("proof_stream_excl_a.drat");
  EXPECT_TRUE(portfolio.proof_enabled());
  EXPECT_FALSE(portfolio.proof_files_enabled());

  SolverPortfolio other(1, 1);
  other.enable_proof_files("proof_stream_excl_b.drat");
  other.enable_proof();
  EXPECT_TRUE(other.proof_files_enabled());
  EXPECT_EQ(other.winner_trace(), nullptr);

  SolverPortfolio plain(1, 1);
  EXPECT_THROW(plain.promote_winner_trace("y.drat"), std::logic_error);
}

}  // namespace
}  // namespace ril::sat
