#include "netlist/simulator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <random>

namespace ril::netlist {
namespace {

TEST(Simulator, AllBasicGates) {
  struct Case {
    GateType type;
    std::uint64_t expect;  // truth over patterns (a,b) = bits of (0..3)
  };
  // pattern index p: a = p&1, b = p>>1 (4 patterns packed into word bits).
  const std::uint64_t a_word = 0b0101;
  const std::uint64_t b_word = 0b0011;
  const Case cases[] = {
      {GateType::kAnd, 0b0001},  {GateType::kNand, 0b1110},
      {GateType::kOr, 0b0111},   {GateType::kNor, 0b1000},
      {GateType::kXor, 0b0110},  {GateType::kXnor, 0b1001},
  };
  for (const Case& c : cases) {
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId g = nl.add_gate(c.type, {a, b}, "g");
    nl.mark_output(g);
    Simulator sim(nl);
    sim.set_input(a, a_word);
    sim.set_input(b, b_word);
    sim.evaluate();
    EXPECT_EQ(sim.value(g) & 0xF, c.expect) << to_string(c.type);
  }
}

TEST(Simulator, NotBufConst) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::kNot, {a}, "n");
  const NodeId bf = nl.add_gate(GateType::kBuf, {a}, "bf");
  const NodeId c0 = nl.add_const(false);
  const NodeId c1 = nl.add_const(true);
  nl.mark_output(n);
  nl.mark_output(bf);
  nl.mark_output(c0);
  nl.mark_output(c1);
  Simulator sim(nl);
  sim.set_input(a, 0b10);
  sim.evaluate();
  EXPECT_EQ(sim.value(n) & 0b11, 0b01u);
  EXPECT_EQ(sim.value(bf) & 0b11, 0b10u);
  EXPECT_EQ(sim.value(c0) & 0b11, 0b00u);
  EXPECT_EQ(sim.value(c1) & 0b11, 0b11u);
}

TEST(Simulator, MuxSemantics) {
  Netlist nl;
  const NodeId s = nl.add_input("s");
  const NodeId d0 = nl.add_input("d0");
  const NodeId d1 = nl.add_input("d1");
  const NodeId m = nl.add_mux(s, d0, d1, "m");
  nl.mark_output(m);
  Simulator sim(nl);
  // 8 patterns: s d1 d0 as bits of index.
  std::uint64_t sw = 0, d0w = 0, d1w = 0, expect = 0;
  for (unsigned p = 0; p < 8; ++p) {
    const bool sv = p & 1, d0v = p & 2, d1v = p & 4;
    if (sv) sw |= 1ull << p;
    if (d0v) d0w |= 1ull << p;
    if (d1v) d1w |= 1ull << p;
    if (sv ? d1v : d0v) expect |= 1ull << p;
  }
  sim.set_input(s, sw);
  sim.set_input(d0, d0w);
  sim.set_input(d1, d1w);
  sim.evaluate();
  EXPECT_EQ(sim.value(m) & 0xFF, expect);
}

TEST(Simulator, LutMatchesMask) {
  std::mt19937_64 rng(11);
  for (int arity = 1; arity <= 4; ++arity) {
    Netlist nl;
    std::vector<NodeId> ins;
    for (int i = 0; i < arity; ++i) {
      ins.push_back(nl.add_input("i" + std::to_string(i)));
    }
    const std::uint64_t rows = 1ull << arity;
    const std::uint64_t mask = rng() & ((rows >= 64) ? ~0ull
                                                     : ((1ull << rows) - 1));
    const NodeId lut = nl.add_lut(ins, mask, "lut");
    nl.mark_output(lut);
    Simulator sim(nl);
    // pattern p encodes the input row.
    for (int i = 0; i < arity; ++i) {
      std::uint64_t w = 0;
      for (std::uint64_t p = 0; p < rows; ++p) {
        if ((p >> i) & 1) w |= 1ull << p;
      }
      sim.set_input(ins[i], w);
    }
    sim.evaluate();
    EXPECT_EQ(sim.value(lut) & ((1ull << rows) - 1), mask)
        << "arity " << arity;
  }
}

TEST(Simulator, VariadicGates) {
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId g = nl.add_gate(GateType::kXor, ins, "g");
  nl.mark_output(g);
  Simulator sim(nl);
  for (int i = 0; i < 4; ++i) {
    std::uint64_t w = 0;
    for (unsigned p = 0; p < 16; ++p) {
      if ((p >> i) & 1) w |= 1ull << p;
    }
    sim.set_input(ins[i], w);
  }
  sim.evaluate();
  for (unsigned p = 0; p < 16; ++p) {
    EXPECT_EQ((sim.value(g) >> p) & 1,
              static_cast<std::uint64_t>(std::popcount(p) % 2));
  }
}

TEST(Simulator, SequentialToggle) {
  // q' = XOR(q, 1): toggles every step.
  Netlist nl;
  const NodeId one = nl.add_const(true);
  const NodeId dff = nl.add_gate(GateType::kDff, {one}, "q");
  const NodeId nxt = nl.add_gate(GateType::kXor, {dff, one}, "nxt");
  nl.set_fanin(dff, 0, nxt);
  nl.mark_output(dff);
  Simulator sim(nl);
  sim.reset_state();
  sim.step();  // state becomes 1
  sim.evaluate();
  EXPECT_EQ(sim.value(dff) & 1, 1u);
  sim.step();  // state toggles back to 0
  sim.evaluate();
  EXPECT_EQ(sim.value(dff) & 1, 0u);
}

TEST(Simulator, EvaluateWithKey) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId k = nl.add_key_input("keyinput0");
  const NodeId g = nl.add_gate(GateType::kXor, {a, k}, "g");
  nl.mark_output(g);
  EXPECT_EQ(evaluate_with_key(nl, {true}, {false})[0], true);
  EXPECT_EQ(evaluate_with_key(nl, {true}, {true})[0], false);
}

TEST(Simulator, WideVariadicGates) {
  // Regression: gates with > 64 fanins (e.g. a full-width Anti-SAT AND
  // tree) must not overflow the evaluation scratch buffer.
  Netlist nl;
  std::vector<NodeId> ins;
  for (int i = 0; i < 200; ++i) {
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  }
  const NodeId g = nl.add_gate(GateType::kAnd, ins, "wide");
  nl.mark_output(g);
  Simulator sim(nl);
  for (NodeId id : ins) sim.set_input_all(id, true);
  sim.evaluate();
  EXPECT_EQ(sim.value(g) & 1, 1u);
  sim.set_input_all(ins[137], false);
  sim.evaluate();
  EXPECT_EQ(sim.value(g) & 1, 0u);
}

TEST(Simulator, InputWidthChecked) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(evaluate_once(nl, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ril::netlist
