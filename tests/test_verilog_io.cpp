#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include "benchgen/arithmetic.hpp"
#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/simulator.hpp"

namespace ril::netlist {
namespace {

TEST(VerilogIo, RoundTripCombinational) {
  const Netlist original = benchgen::make_ripple_adder(6);
  const Netlist reparsed =
      read_verilog_string(write_verilog_string(original));
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_TRUE(cnf::check_equivalence(original, reparsed).equivalent());
}

TEST(VerilogIo, RoundTripRandomDags) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    benchgen::RandomDagParams params;
    params.num_inputs = 12;
    params.num_outputs = 6;
    params.num_gates = 140;
    params.seed = seed;
    const Netlist original = benchgen::generate_random_dag(params);
    const Netlist reparsed =
        read_verilog_string(write_verilog_string(original));
    EXPECT_TRUE(cnf::check_equivalence(original, reparsed).equivalent())
        << "seed " << seed;
  }
}

TEST(VerilogIo, MuxAndLutSurvive) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  nl.mark_output(nl.add_mux(s, a, b, "m"));
  nl.mark_output(nl.add_lut({a, b, s}, 0b10010110, "l"));
  nl.mark_output(nl.add_const(true));
  const Netlist reparsed = read_verilog_string(write_verilog_string(nl));
  EXPECT_TRUE(cnf::check_equivalence(nl, reparsed).equivalent());
}

TEST(VerilogIo, KeyInputConventionPreserved) {
  const Netlist host = benchgen::make_ripple_adder(4);
  const auto locked = locking::lock_xor(host, 4, 7);
  const Netlist reparsed =
      read_verilog_string(write_verilog_string(locked.netlist));
  EXPECT_EQ(reparsed.key_inputs().size(), 4u);
  EXPECT_TRUE(
      cnf::check_equivalence(reparsed, host, locked.key, {}).equivalent());
}

TEST(VerilogIo, SequentialRoundTrip) {
  Netlist nl("counter");
  const NodeId x = nl.add_input("x");
  const NodeId q0 = nl.add_gate(GateType::kDff, {x}, "q0");
  const NodeId q1 = nl.add_gate(GateType::kDff, {q0}, "q1");
  const NodeId nxt = nl.add_gate(GateType::kXor, {q1, x}, "nxt");
  nl.node(q0).fanins[0] = nxt;
  nl.mark_output(q1);
  const std::string text = write_verilog_string(nl);
  EXPECT_NE(text.find("always @(posedge clk)"), std::string::npos);
  const Netlist reparsed = read_verilog_string(text);
  EXPECT_EQ(reparsed.dff_count(), 2u);
  EXPECT_TRUE(reparsed.validate().empty());

  // Behavioural check over a few cycles.
  Simulator sim_a(nl);
  Simulator sim_b(reparsed);
  sim_a.reset_state();
  sim_b.reset_state();
  for (int cycle = 0; cycle < 6; ++cycle) {
    const bool xv = cycle & 1;
    sim_a.set_input_all(x, xv);
    sim_b.set_input_all(*reparsed.find("x"), xv);
    sim_a.evaluate();
    sim_b.evaluate();
    EXPECT_EQ(sim_a.value(nl.outputs()[0]) & 1,
              sim_b.value(reparsed.outputs()[0]) & 1)
        << "cycle " << cycle;
    sim_a.step();
    sim_b.step();
  }
}

TEST(VerilogIo, RejectsGarbage) {
  EXPECT_THROW(read_verilog_string("module m (a); banana (x, y);"),
               std::runtime_error);
  EXPECT_THROW(
      read_verilog_string(
          "module m (a, po_0); input a; output po_0; assign po_0 = ghost;"),
      std::runtime_error);
}

}  // namespace
}  // namespace ril::netlist
