#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "benchgen/arithmetic.hpp"
#include "benchgen/random_dag.hpp"
#include "cnf/equivalence.hpp"
#include "locking/schemes.hpp"
#include "netlist/simulator.hpp"

namespace ril::netlist {
namespace {

TEST(VerilogIo, RoundTripCombinational) {
  const Netlist original = benchgen::make_ripple_adder(6);
  const Netlist reparsed =
      read_verilog_string(write_verilog_string(original));
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_TRUE(cnf::check_equivalence(original, reparsed).equivalent());
}

TEST(VerilogIo, RoundTripRandomDags) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    benchgen::RandomDagParams params;
    params.num_inputs = 12;
    params.num_outputs = 6;
    params.num_gates = 140;
    params.seed = seed;
    const Netlist original = benchgen::generate_random_dag(params);
    const Netlist reparsed =
        read_verilog_string(write_verilog_string(original));
    EXPECT_TRUE(cnf::check_equivalence(original, reparsed).equivalent())
        << "seed " << seed;
  }
}

TEST(VerilogIo, MuxAndLutSurvive) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  nl.mark_output(nl.add_mux(s, a, b, "m"));
  nl.mark_output(nl.add_lut({a, b, s}, 0b10010110, "l"));
  nl.mark_output(nl.add_const(true));
  const Netlist reparsed = read_verilog_string(write_verilog_string(nl));
  EXPECT_TRUE(cnf::check_equivalence(nl, reparsed).equivalent());
}

// Exhaustive truth-table comparison of a single k-input LUT against its
// Verilog sum-of-products round trip: both expansions go through the
// shared minterm helper (netlist/lut_rows.hpp), and this pins the two
// backends to the same row order.
void expect_lut_sop_matches_simulation(std::size_t k, std::uint64_t mask) {
  Netlist nl;
  std::vector<NodeId> inputs;
  for (std::size_t i = 0; i < k; ++i) {
    inputs.push_back(nl.add_input("i" + std::to_string(i)));
  }
  nl.mark_output(nl.add_lut(inputs, mask, "y"));
  const Netlist reparsed = read_verilog_string(write_verilog_string(nl));
  for (std::uint64_t row = 0; row < (std::uint64_t{1} << k); ++row) {
    std::vector<bool> in(k);
    for (std::size_t j = 0; j < k; ++j) in[j] = (row >> j) & 1;
    const bool simulated = evaluate_once(nl, in)[0];
    const bool via_verilog = evaluate_once(reparsed, in)[0];
    EXPECT_EQ(simulated, (mask >> row) & 1)
        << "k=" << k << " mask=" << mask << " row=" << row;
    EXPECT_EQ(simulated, via_verilog)
        << "k=" << k << " mask=" << mask << " row=" << row;
  }
}

TEST(VerilogIo, AllTwoInputLutFunctionsMatchSimulator) {
  // The paper's Table II: every one of the 16 two-input Boolean functions
  // is expressible in one LUT-2 mask. SOP emission and simulation must
  // agree on all of them, including the degenerate constants 0x0 / 0xf.
  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    expect_lut_sop_matches_simulation(2, mask);
  }
}

TEST(VerilogIo, RandomWideLutMasksMatchSimulator) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (std::size_t k = 1; k <= 6; ++k) {
    const std::uint64_t rows = std::uint64_t{1} << k;
    const std::uint64_t row_mask =
        rows >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rows) - 1;
    for (int trial = 0; trial < 4; ++trial) {
      expect_lut_sop_matches_simulation(k, next() & row_mask);
    }
  }
}

TEST(VerilogIo, KeyInputConventionPreserved) {
  const Netlist host = benchgen::make_ripple_adder(4);
  const auto locked = locking::lock_xor(host, 4, 7);
  const Netlist reparsed =
      read_verilog_string(write_verilog_string(locked.netlist));
  EXPECT_EQ(reparsed.key_inputs().size(), 4u);
  EXPECT_TRUE(
      cnf::check_equivalence(reparsed, host, locked.key, {}).equivalent());
}

TEST(VerilogIo, SequentialRoundTrip) {
  Netlist nl("counter");
  const NodeId x = nl.add_input("x");
  const NodeId q0 = nl.add_gate(GateType::kDff, {x}, "q0");
  const NodeId q1 = nl.add_gate(GateType::kDff, {q0}, "q1");
  const NodeId nxt = nl.add_gate(GateType::kXor, {q1, x}, "nxt");
  nl.set_fanin(q0, 0, nxt);
  nl.mark_output(q1);
  const std::string text = write_verilog_string(nl);
  EXPECT_NE(text.find("always @(posedge clk)"), std::string::npos);
  const Netlist reparsed = read_verilog_string(text);
  EXPECT_EQ(reparsed.dff_count(), 2u);
  EXPECT_TRUE(reparsed.validate().empty());

  // Behavioural check over a few cycles.
  Simulator sim_a(nl);
  Simulator sim_b(reparsed);
  sim_a.reset_state();
  sim_b.reset_state();
  for (int cycle = 0; cycle < 6; ++cycle) {
    const bool xv = cycle & 1;
    sim_a.set_input_all(x, xv);
    sim_b.set_input_all(*reparsed.find("x"), xv);
    sim_a.evaluate();
    sim_b.evaluate();
    EXPECT_EQ(sim_a.value(nl.outputs()[0]) & 1,
              sim_b.value(reparsed.outputs()[0]) & 1)
        << "cycle " << cycle;
    sim_a.step();
    sim_b.step();
  }
}

TEST(VerilogIo, FileReaderMatchesStringReader) {
  // The mmap-backed file path and the in-memory path must produce the same
  // netlist (and the same errors) for the same bytes.
  const Netlist original = benchgen::make_ripple_adder(5);
  const std::string path = "verilog_io_mmap_test.v";
  write_verilog_file(path, original);
  const Netlist from_file = read_verilog_file(path);
  const Netlist from_string =
      read_verilog_string(write_verilog_string(original));
  EXPECT_EQ(from_file.node_count(), from_string.node_count());
  EXPECT_EQ(from_file.inputs().size(), from_string.inputs().size());
  EXPECT_TRUE(cnf::check_equivalence(from_file, from_string).equivalent());
  EXPECT_TRUE(cnf::check_equivalence(original, from_file).equivalent());
  std::remove(path.c_str());

  // Same garbage, same rejection, through the file path.
  {
    std::ofstream bad("verilog_io_bad_test.v");
    bad << "module m (a); banana (x, y);";
  }
  EXPECT_THROW(read_verilog_file("verilog_io_bad_test.v"),
               std::runtime_error);
  std::remove("verilog_io_bad_test.v");
}

TEST(VerilogIo, WriteVerilogFileSurfacesWriteFailure) {
  {
    std::ofstream probe("/dev/full", std::ios::app);
    if (!probe.is_open()) GTEST_SKIP() << "/dev/full not available";
    probe << "x";
    probe.flush();
    if (!probe.fail()) GTEST_SKIP() << "/dev/full does not reject writes";
  }
  const Netlist nl = benchgen::make_ripple_adder(4);
  try {
    write_verilog_file("/dev/full", nl);
    FAIL() << "disk-full write reported success";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("/dev/full"), std::string::npos) << message;
  }
  EXPECT_THROW(write_verilog_file("/nonexistent-dir/out.v", nl),
               std::runtime_error);
}

TEST(VerilogIo, RejectsGarbage) {
  EXPECT_THROW(read_verilog_string("module m (a); banana (x, y);"),
               std::runtime_error);
  EXPECT_THROW(
      read_verilog_string(
          "module m (a, po_0); input a; output po_0; assign po_0 = ghost;"),
      std::runtime_error);
}

}  // namespace
}  // namespace ril::netlist
