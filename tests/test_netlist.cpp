#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"

namespace ril::netlist {
namespace {

Netlist small_circuit() {
  Netlist nl("small");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g1 = nl.add_gate(GateType::kAnd, {a, b}, "g1");
  const NodeId g2 = nl.add_gate(GateType::kOr, {g1, c}, "g2");
  nl.mark_output(g2);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  Netlist nl = small_circuit();
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, FindByName) {
  Netlist nl = small_circuit();
  ASSERT_TRUE(nl.find("g1").has_value());
  EXPECT_EQ(nl.node(*nl.find("g1")).type, GateType::kAnd);
  EXPECT_FALSE(nl.find("nope").has_value());
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
}

TEST(Netlist, ArityChecked) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kMux, {a, a}), std::invalid_argument);
}

TEST(Netlist, KeyInputsTracked) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId k = nl.add_key_input("keyinput0");
  EXPECT_TRUE(nl.is_key_input(k));
  EXPECT_FALSE(nl.is_key_input(a));
  EXPECT_EQ(nl.key_inputs().size(), 1u);
  EXPECT_EQ(nl.data_inputs().size(), 1u);
  EXPECT_EQ(nl.data_inputs()[0], a);
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
  Netlist nl = small_circuit();
  const auto order = nl.topological_order();
  std::vector<std::size_t> pos(nl.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::kDff) continue;
    for (NodeId f : nl.node(id).fanins) {
      EXPECT_LT(pos[f], pos[id]);
    }
  }
}

TEST(Netlist, DepthOfChain) {
  Netlist nl;
  NodeId prev = nl.add_input("x");
  for (int i = 0; i < 10; ++i) {
    prev = nl.add_gate(GateType::kNot, {prev});
  }
  nl.mark_output(prev);
  EXPECT_EQ(nl.depth(), 10u);
}

TEST(Netlist, ReplaceUses) {
  Netlist nl = small_circuit();
  const NodeId a = *nl.find("a");
  const NodeId c = *nl.find("c");
  nl.replace_uses(a, c);
  const NodeId g1 = *nl.find("g1");
  EXPECT_EQ(nl.node(g1).fanins[0], c);
}

TEST(Netlist, ReplaceUsesExcept) {
  Netlist nl = small_circuit();
  const NodeId a = *nl.find("a");
  const NodeId c = *nl.find("c");
  const NodeId g1 = *nl.find("g1");
  const std::vector<NodeId> except = {g1};
  nl.replace_uses_except(a, c, except);
  EXPECT_EQ(nl.node(g1).fanins[0], a);  // untouched
}

TEST(Netlist, ReplaceUsesUpdatesOutputs) {
  Netlist nl = small_circuit();
  const NodeId g2 = *nl.find("g2");
  const NodeId g1 = *nl.find("g1");
  nl.replace_uses(g2, g1);
  EXPECT_EQ(nl.outputs()[0], g1);
}

TEST(Netlist, SweepDeadRemovesUnreachable) {
  Netlist nl = small_circuit();
  const NodeId a = *nl.find("a");
  const NodeId b = *nl.find("b");
  nl.add_gate(GateType::kXor, {a, b}, "dead");
  const std::size_t before = nl.node_count();
  nl.sweep_dead();
  EXPECT_EQ(nl.node_count(), before - 1);
  EXPECT_FALSE(nl.find("dead").has_value());
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, SweepDeadKeepsInputs) {
  Netlist nl;
  nl.add_input("unused");
  const NodeId x = nl.add_input("x");
  const NodeId g = nl.add_gate(GateType::kNot, {x}, "g");
  nl.mark_output(g);
  nl.sweep_dead();
  EXPECT_TRUE(nl.find("unused").has_value());
  EXPECT_EQ(nl.inputs().size(), 2u);
}

TEST(Netlist, CombinationalCoreCutsDffs) {
  Netlist nl("seq");
  const NodeId x = nl.add_input("x");
  // dff feeds itself through an XOR (toggle-ish).
  const NodeId dff = nl.add_gate(GateType::kDff, {x}, "r1");
  const NodeId g = nl.add_gate(GateType::kXor, {x, dff}, "g");
  nl.set_fanin(dff, 0, g);  // close the loop
  nl.mark_output(g);
  ASSERT_TRUE(nl.validate().empty());

  const Netlist core = nl.combinational_core();
  EXPECT_EQ(core.dff_count(), 0u);
  EXPECT_TRUE(core.find("r1_ppi").has_value());
  EXPECT_TRUE(core.find("r1_ppo").has_value());
  EXPECT_EQ(core.inputs().size(), 2u);   // x + pseudo input
  EXPECT_EQ(core.outputs().size(), 2u);  // g + pseudo output
  EXPECT_TRUE(core.validate().empty());
}

TEST(Netlist, ValidateDetectsCycle) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::kAnd, {a, a}, "g1");
  const NodeId g2 = nl.add_gate(GateType::kOr, {g1, a}, "g2");
  nl.set_fanin(g1, 1, g2);  // introduce combinational cycle
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, LutMaskValidation) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId lut = nl.add_lut({a, b}, 0b1000, "lut");
  nl.mark_output(lut);
  EXPECT_TRUE(nl.validate().empty());
  nl.set_lut_mask(lut, 0x1F);  // 5 bits for a 2-input LUT
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, StatsHistogram) {
  const Netlist nl = small_circuit();
  const auto stats = compute_stats(nl);
  EXPECT_EQ(stats.gates, 2u);
  EXPECT_EQ(stats.histogram.at(GateType::kAnd), 1u);
  EXPECT_EQ(stats.histogram.at(GateType::kInput), 3u);
  EXPECT_FALSE(format_stats(stats).empty());
}

TEST(Netlist, RewriteAsBuf) {
  Netlist nl = small_circuit();
  const NodeId g1 = *nl.find("g1");
  const NodeId c = *nl.find("c");
  nl.rewrite_as_buf(g1, c);
  EXPECT_EQ(nl.node(g1).type, GateType::kBuf);
  EXPECT_EQ(nl.node(g1).fanins.size(), 1u);
  EXPECT_TRUE(nl.validate().empty());
}

}  // namespace
}  // namespace ril::netlist
